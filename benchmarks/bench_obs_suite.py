"""pytest-benchmark view of the ``tangled bench`` suite.

Each test times one :mod:`repro.obs.bench` spec through the
:func:`harness.run_bench_spec` bridge, so ``pytest benchmarks/`` and
``tangled bench`` report statistics over the identical unit of work.
"""

import pytest

from harness import run_bench_spec
from repro.obs import bench as obs_bench


@pytest.mark.parametrize(
    "name", [spec.name for spec in obs_bench.default_specs()]
)
def test_bench_suite_spec(benchmark, name):
    result = run_bench_spec(benchmark, name)
    assert result["seconds"] >= 0
    assert result["counters"], f"spec {name} recorded no counters"
