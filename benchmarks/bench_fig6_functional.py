"""FIG6 bench: the single-cycle (functional) datapath model's throughput."""

from repro.apps import fig10_program
from repro.cpu import FunctionalSimulator

from harness import experiment_fig6, format_table


def test_fig6_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_fig6, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[FIG6] simulator throughput on the Figure 10 workload")
        print(format_table(rows))
    assert all(r["instructions"] == rows[0]["instructions"] for r in rows)


def test_bench_functional_fig10(benchmark):
    program = fig10_program()

    def run():
        sim = FunctionalSimulator(ways=8)
        sim.load(program)
        sim.run()
        return sim.machine.read_reg(0), sim.machine.read_reg(1)

    assert benchmark(run) == (5, 3)


def test_bench_functional_fig10_full_scale(benchmark):
    """The same workload on 65,536-bit registers (author-scale Qat)."""
    program = fig10_program()

    def run():
        sim = FunctionalSimulator(ways=16)
        sim.load(program)
        sim.run()
        return sim.machine.read_reg(0), sim.machine.read_reg(1)

    assert benchmark(run) == (5, 3)
