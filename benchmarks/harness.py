"""Experiment harness: regenerates every table/figure-shaped result.

Each ``experiment_*`` function computes the rows for one experiment id of
DESIGN.md's per-experiment index and returns them as a list of dicts; the
``bench_*.py`` files wrap them with pytest-benchmark for timing, and

    python benchmarks/harness.py

prints every table (the output recorded in EXPERIMENTS.md).

The paper is a proof-of-concept without absolute performance tables, so
the quantities here are the ones its text argues about: instruction and
register counts, gate counts and logic depth, CPI and stall behaviour,
compression ratios, and measurement-model contrasts.  Shapes (who wins,
by what factor, where crossovers sit) are the reproduction targets.

All wall-clock timing goes through one pathway: the module-level
``OBS`` telemetry registry (:mod:`repro.obs`) via :func:`_timed`.  Every
measurement therefore also accumulates into named histograms, and
``main()`` installs ``OBS`` globally so the simulators' own telemetry
(pipeline stats, Qat op counts) lands in the same registry the tables
are printed from.
"""

from __future__ import annotations

import numpy as np

from repro import obs

from repro.aob import AoB
from repro.apps import (
    FIG10_SOURCE,
    compile_factor_program,
    factor_channels,
    factor_word_level,
    fig10_program,
    figure9_demo,
    run_factor_program,
)
from repro.asm import assemble
from repro.cpu import (
    CycleCosts,
    FunctionalSimulator,
    MultiCycleSimulator,
    PipelineConfig,
    PipelinedSimulator,
)
from repro.gates import EmitOptions
from repro.hw import had_cost, next_cost
from repro.hw.regfile import port_ablation_table
from repro.pattern import ChunkStore, PatternVector
from repro.pbp import PbpContext
from repro.quantum import (
    QuantumSimulator,
    expected_runs_to_see_all,
    runs_to_collect_all,
)

Row = dict

#: Shared telemetry registry: the harness's single timing pathway.
#: Tracing is off (metrics only) so timing the benches stays cheap.
OBS = obs.Telemetry(enabled=True, tracing=False)


def _timed(name: str, fn, reps: int = 1):
    """Run ``fn`` ``reps`` times under the ``OBS`` timer.

    Returns ``(last_result, mean_seconds)``; the total duration also
    lands in histogram ``name``, so repeated experiments build up
    percentile summaries instead of discarding their timings.
    """
    result = None
    with OBS.timer(name) as timing:
        for _ in range(reps):
            result = fn()
    return result, timing.elapsed / reps


def run_bench_spec(benchmark, name: str):
    """pytest-benchmark bridge onto the ``tangled bench`` suite.

    ``benchmark`` is the pytest-benchmark fixture and ``name`` a spec
    name from :mod:`repro.obs.bench` (``tangled bench --list``).  The
    timed body is exactly one bench round -- the same unit of work the
    ``BENCH_<label>.json`` trajectory records -- so pytest-benchmark's
    statistics and the CI perf gate measure the same thing.
    """
    from repro.obs import bench as obs_bench

    spec = obs_bench.spec_by_name(name)
    return benchmark(obs_bench.run_spec_once, spec)


# ---------------------------------------------------------------------------
# FIG1 -- AoB semantics
# ---------------------------------------------------------------------------

def experiment_fig1() -> list[Row]:
    """Figure 1 worked examples: channel pairings and value PDFs."""
    ctx = PbpContext(ways=2)
    uniform = ctx.pint_h(2, 0b11)
    skewed = ctx.pint_from_values(
        [AoB.from_bits([0, 0, 1, 0]), AoB.from_bits([0, 0, 1, 1])]
    )
    rows = []
    for label, pint in (("H(0),H(1) uniform", uniform), ("{0,0,1,0},{0,0,1,1}", skewed)):
        dist = pint.distribution()
        rows.append(
            {
                "vectors": label,
                **{f"P({v})": dist.get(v, 0.0) for v in range(4)},
            }
        )
    return rows


# ---------------------------------------------------------------------------
# TAB1 / TAB2 / TAB3 -- ISA execution
# ---------------------------------------------------------------------------

_TAB1_KERNELS = {
    "alu (add)": "lex $0, 1\n" + "add $0, $0\n" * 64,
    "mul": "lex $0, 3\n" + "mul $0, $0\n" * 64,
    "bfloat16 (addf)": "loadi $0, 0x3F80\nloadi $1, 0x3F00\n" + "addf $0, $1\n" * 64,
    "bfloat16 (recip)": "loadi $0, 0x4080\n" + "recip $0\n" * 64,
    "memory (load/store)": "loadi $1, 0x100\nlex $0, 7\n"
    + "store $0, $1\nload $0, $1\n" * 32,
    "branch loop": "lex $0, 32\nloop: lex $2, -1\nadd $0, $2\nbrt $0, loop\n",
}


def experiment_table1(ways: int = 8) -> list[Row]:
    """Dynamic behaviour of the Table 1 instruction classes: instructions,
    multi-cycle cycles, and pipelined cycles/CPI per kernel."""
    rows = []
    for label, body in _TAB1_KERNELS.items():
        program = assemble(body + "\nlex $rv, 0\nsys\n")
        func = FunctionalSimulator(ways=ways)
        func.load(program)
        func.run()
        multi = MultiCycleSimulator(ways=ways)
        multi.load(program)
        multi_cycles = multi.run()
        pipe = PipelinedSimulator(ways=ways)
        pipe.load(program)
        stats = pipe.run()
        rows.append(
            {
                "kernel": label,
                "instructions": func.machine.instret,
                "multicycle_cycles": multi_cycles,
                "pipeline_cycles": stats.cycles,
                "pipeline_cpi": round(stats.cpi, 3),
            }
        )
    return rows


def experiment_table2(ways: int = 8) -> list[Row]:
    """Pseudo-instruction expansion cost: words and cycles per macro."""
    from repro.asm.macros import LabelRef, expand_macro
    from repro.isa.instructions import INSTRUCTIONS

    cases = {
        "br lab": ("br", (LabelRef("x"),)),
        "jump lab": ("jump", (LabelRef("x"),)),
        "jumpf $c,lab": ("jumpf", (3, LabelRef("x"))),
        "jumpt $c,lab": ("jumpt", (3, LabelRef("x"))),
        "loadi $d,imm8": ("loadi", (0, 42)),
        "loadi $d,imm16": ("loadi", (0, 0x1234)),
    }
    rows = []
    for label, (name, ops) in cases.items():
        expansion = expand_macro(name, ops)
        words = sum(INSTRUCTIONS[p.mnemonic].words for p in expansion)
        rows.append(
            {
                "macro": label,
                "expands_to": " + ".join(p.mnemonic for p in expansion),
                "instructions": len(expansion),
                "words": words,
            }
        )
    return rows


def experiment_table3(ways: int = 16) -> list[Row]:
    """Qat ALU kernel timing on full-scale 65,536-bit AoB values
    (software SIMD throughput of each Table 3 operation)."""
    rng = np.random.default_rng(42)
    a = AoB.random(ways, rng)
    b = AoB.random(ways, rng)
    c = AoB.random(ways, rng)
    ops = {
        "and": lambda: a & b,
        "or": lambda: a | b,
        "xor": lambda: a ^ b,
        "not": lambda: ~a,
        "ccnot": lambda: a.ccnot(b, c),
        "cswap": lambda: a.cswap(b, c),
        "had": lambda: AoB.hadamard(ways, 7),
        "meas": lambda: a.meas(12345),
        "next": lambda: a.next(12345),
        "pop": lambda: a.pop_after(12345),
    }
    rows = []
    for label, fn in ops.items():
        _, elapsed = _timed(f"tab3.{label}", fn, reps=50)
        rows.append(
            {
                "op": label,
                "aob_bits": 1 << ways,
                "microseconds": round(elapsed * 1e6, 2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# FIG6 -- functional simulator throughput
# ---------------------------------------------------------------------------

def experiment_fig6(ways: int = 8) -> list[Row]:
    """Simulator speed executing the Figure 10 workload."""
    program = fig10_program()
    rows = []
    for label, make in (
        ("functional", lambda: FunctionalSimulator(ways=ways)),
        ("multicycle", lambda: MultiCycleSimulator(ways=ways)),
        ("pipelined-4", lambda: PipelinedSimulator(ways=ways)),
    ):
        sim = make()
        sim.load(program)
        _, elapsed = _timed(f"fig6.{label}", sim.run)
        rows.append(
            {
                "simulator": label,
                "instructions": sim.machine.instret,
                "sim_kips": round(sim.machine.instret / elapsed / 1e3, 1),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# FIG7 / FIG8 -- hardware cost of had and next
# ---------------------------------------------------------------------------

def experiment_fig7() -> list[Row]:
    """had generator hardware cost vs the reserved-constant alternative."""
    rows = []
    for ways in (4, 8, 12, 16):
        cost = had_cost(ways, wide=True)
        rows.append(
            {
                "ways": ways,
                "aob_bits": 1 << ways,
                "generator_gates": cost["gates"],
                "or_inputs": cost["or_inputs"],
                "constant_reg_bits": cost["constant_register_bits"],
            }
        )
    return rows


def experiment_fig8() -> list[Row]:
    """next logic: gate count and depth, wide vs narrow OR-reduction --
    the O(WAYS) vs O(WAYS^2) delay series of section 3.3."""
    rows = []
    for ways in (4, 6, 8, 10, 12, 14, 16):
        wide = next_cost(ways, wide=True)
        narrow = next_cost(ways, wide=False)
        rows.append(
            {
                "ways": ways,
                "gates": wide["gates"],
                "depth_wide_or": wide["depth"],
                "depth_2input_or": narrow["depth"],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# FIG9 / FIG10 -- factoring
# ---------------------------------------------------------------------------

def experiment_fig9() -> list[Row]:
    """Word-level factoring across problem sizes and substrates."""
    cases = [
        (15, 4, 4, "auto", None),
        (221, 5, 5, "auto", None),
        (59 * 61, 6, 6, "auto", None),
        (1013 * 1019, 11, 11, "pattern", 16),
    ]
    rows = []
    for n, bb, bc, backend, chunk in cases:
        pairs, elapsed = _timed(
            f"fig9.n{n}",
            lambda: factor_channels(n, bb, bc, backend=backend, chunk_ways=chunk),
        )
        nontrivial = sorted({p for pair in pairs for p in pair if p not in (1, n)})
        rows.append(
            {
                "n": n,
                "entanglement": bb + bc,
                "backend": backend if backend != "auto" else ("aob" if bb + bc <= 16 else "pattern"),
                "factors": "x".join(str(f) for f in nontrivial) or "prime",
                "ms": round(elapsed * 1e3, 1),
            }
        )
    return rows


def experiment_fig10(ways: int = 8) -> list[Row]:
    """The literal Figure 10 program on each simulator."""
    program = fig10_program()
    rows = []
    for simulator in ("functional", "multicycle", "pipelined"):
        sim, regs = run_factor_program(program, ways=ways, simulator=simulator)
        row = {
            "simulator": simulator,
            "$0": regs[0],
            "$1": regs[1],
            "instructions": sim.machine.instret,
            "cycles": "-",
            "cpi": "-",
        }
        if simulator == "multicycle":
            row["cycles"] = sim.cycles
            row["cpi"] = round(sim.cpi, 3)
        elif simulator == "pipelined":
            row["cycles"] = sim.stats.cycles
            row["cpi"] = round(sim.stats.cpi, 3)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# S31 -- pipeline CPI across configurations
# ---------------------------------------------------------------------------

_S31_WORKLOADS = {
    "straight-line alu": "\n".join(f"lex ${i % 8}, {i % 100}" for i in range(300)),
    "dependent alu": "lex $0, 1\n" + "add $0, $0\n" * 300,
    "qat 2-word heavy": "had @0, 1\nhad @1, 2\n" + "and @2, @0, @1\n" * 150,
    "branchy loop": "lex $0, 60\nloop: lex $2, -1\nadd $0, $2\nbrt $0, loop",
    "figure 10": None,  # special-cased below
}


def experiment_s31(ways: int = 8) -> list[Row]:
    """CPI of 4/5-stage pipelines, with and without forwarding."""
    rows = []
    configs = [
        ("4-stage fwd", PipelineConfig(stages=4, forwarding=True)),
        ("4-stage nofwd", PipelineConfig(stages=4, forwarding=False)),
        ("5-stage fwd", PipelineConfig(stages=5, forwarding=True)),
        ("5-stage nofwd", PipelineConfig(stages=5, forwarding=False)),
    ]
    for label, body in _S31_WORKLOADS.items():
        if body is None:
            program = fig10_program()
        else:
            program = assemble(body + "\nlex $rv, 0\nsys\n")
        row: Row = {"workload": label}
        for cfg_label, cfg in configs:
            sim = PipelinedSimulator(ways=ways, config=cfg)
            sim.load(program)
            stats = sim.run()
            row[cfg_label] = round(stats.cpi, 3)
        rows.append(row)
    return rows


def experiment_s31_teams() -> list[Row]:
    """The 'eight teams' sweep (section 3.1).

    The course produced eight independent pipelined implementations: six
    4-stage and two 5-stage, all "highly functional" and all sustaining
    one instruction per cycle absent interlocks, with design variation in
    the details.  We reproduce the cohort as eight simulator
    configurations (stage count x forwarding x Qat write ports, student
    8-way AoB) and verify every one executes Figure 10 correctly --
    the functional bar all eight teams met.
    """
    program = fig10_program()
    cohort = [
        ("team 1", PipelineConfig(4, True, True)),
        ("team 2", PipelineConfig(4, True, False)),
        ("team 3", PipelineConfig(4, False, True)),
        ("team 4", PipelineConfig(4, False, False)),
        ("team 5", PipelineConfig(4, True, True)),
        ("team 6", PipelineConfig(4, False, True)),
        ("team 7", PipelineConfig(5, True, True)),
        ("team 8", PipelineConfig(5, False, False)),
    ]
    rows = []
    for label, cfg in cohort:
        sim = PipelinedSimulator(ways=8, config=cfg)
        sim.load(program)
        stats = sim.run()
        correct = (sim.machine.read_reg(0), sim.machine.read_reg(1)) == (5, 3)
        rows.append(
            {
                "team": label,
                "stages": cfg.stages,
                "forwarding": "yes" if cfg.forwarding else "no",
                "qat_2nd_wport": "yes" if cfg.second_qat_write_port else "no",
                "fig10_correct": "yes" if correct else "NO",
                "cycles": stats.cycles,
                "cpi": round(stats.cpi, 3),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# S12 -- RE compression scaling
# ---------------------------------------------------------------------------

def experiment_s12() -> list[Row]:
    """Dense vs RE-compressed storage and gate time as entanglement grows.

    The paper's claim: RE encoding cuts storage and computational
    complexity 'by as much as an exponential factor' for regular values.
    """
    rows = []
    store = ChunkStore(16)
    for ways in (16, 18, 20, 22, 24):
        dense_bytes = (1 << ways) // 8
        h = PatternVector.hadamard(ways, ways - 1, store)
        g = PatternVector.hadamard(ways, 0, store)
        result, elapsed = _timed(f"s12.xor.w{ways}", lambda: h ^ g)
        op_us = elapsed * 1e6
        compressed_chunks = result.storage_chunks()
        rows.append(
            {
                "ways": ways,
                "value": f"H({ways - 1}) ^ H(0)",
                "dense_bytes": dense_bytes,
                "runs": result.num_runs,
                "distinct_chunks": compressed_chunks,
                "compression": round(result.compression_ratio(), 1),
                "xor_us": round(op_us, 1),
            }
        )
    # Honesty row: an irregular (random) value does not compress -- the
    # RE win is specific to the structured patterns PBP programs produce.
    rng = np.random.default_rng(12)
    irregular = PatternVector.from_aob(AoB.random(20, rng), store=store)
    result, elapsed = _timed(
        "s12.xor.random", lambda: irregular ^ PatternVector.hadamard(20, 0, store)
    )
    op_us = elapsed * 1e6
    rows.append(
        {
            "ways": 20,
            "value": "random (worst case)",
            "dense_bytes": (1 << 20) // 8,
            "runs": result.num_runs,
            "distinct_chunks": result.storage_chunks(),
            "compression": round(result.compression_ratio(), 1),
            "xor_us": round(op_us, 1),
        }
    )
    return rows


# ---------------------------------------------------------------------------
# S27 -- reductions: next-based vs meas enumeration
# ---------------------------------------------------------------------------

def experiment_s27() -> list[Row]:
    """ANY via next (O(1)-ish) vs meas enumeration (O(2^E)), timed."""
    rows = []
    rng = np.random.default_rng(7)
    for ways in (8, 12, 16):
        a = AoB.random(ways, rng, p=0.001)
        any_fast, fast_s = _timed(
            f"s27.next.w{ways}",
            lambda: a.next(0) != 0 or bool(a.meas(0)),
            reps=20,
        )
        fast_us = fast_s * 1e6

        def enumerate_any():
            for e in range(1 << ways):
                if a.meas(e):
                    return True
            return False

        any_slow, slow_s = _timed(f"s27.meas.w{ways}", enumerate_any)
        slow_us = slow_s * 1e6
        assert any_fast == any_slow == a.any()
        rows.append(
            {
                "ways": ways,
                "channels": 1 << ways,
                "next_based_us": round(fast_us, 1),
                "meas_enumeration_us": round(slow_us, 1),
                "speedup": round(slow_us / fast_us, 1),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# S5A -- ISA simplification ablation
# ---------------------------------------------------------------------------

def experiment_s5(ways: int = 8) -> list[Row]:
    """Emission cost of the factoring circuit per ISA variant."""
    variants = [
        ("paper greedy (Fig 10 style)", EmitOptions(allocator="greedy")),
        ("recycling allocator", EmitOptions(allocator="recycle")),
        ("+ reserved constants", EmitOptions(allocator="recycle", reserved_constants=True)),
        ("irreversible only", EmitOptions(gate_set="irreversible", allocator="recycle")),
        ("reversible only", EmitOptions(gate_set="reversible", allocator="recycle")),
    ]
    rows = []
    for label, options in variants:
        compiled = compile_factor_program(15, 4, 4, options)
        sim, regs = run_factor_program(compiled.program, ways=ways)
        assert regs == (5, 3)
        rows.append(
            {
                "variant": label,
                "qat_instructions": compiled.qat_instructions,
                "code_words": compiled.qat_words,
                "registers": compiled.high_water_regs,
                "pipeline_cycles": sim.stats.cycles,
            }
        )
    return rows


def experiment_s5_regfile() -> list[Row]:
    """Register-file port cost (sections 2.5/5)."""
    return [dict(row) for row in port_ablation_table()]


def experiment_lcpc17() -> list[Row]:
    """Gate-level compiler optimization across a circuit suite.

    The paper's introduction (citing Dietz, LCPC 2017) argues that
    compiler optimization *at the gate level* can cut the gate actions a
    computation needs.  This table quantifies our fold/CSE/DCE pipeline
    on representative PBP circuits: raw vs optimized gate counts and the
    emitted Qat instruction counts (recycling allocator).
    """
    from repro.gates import GateCircuit, multiply, optimize
    from repro.gates.library import equals, equals_const, less_than, ripple_add

    def adder(width):
        c = GateCircuit()
        a = [c.had(k) for k in range(width)]
        b = [c.had(width + k) for k in range(width)]
        total, carry = ripple_add(c, a, b)
        for i, bit in enumerate(total):
            c.mark_output(f"s{i}", bit)
        c.mark_output("carry", carry)
        return c

    def multiplier(width):
        c = GateCircuit()
        a = [c.had(k) for k in range(width)]
        b = [c.had(width + k) for k in range(width)]
        for i, bit in enumerate(multiply(c, a, b)):
            c.mark_output(f"p{i}", bit)
        return c

    def comparator(width):
        c = GateCircuit()
        a = [c.had(k) for k in range(width)]
        b = [c.had(width + k) for k in range(width)]
        c.mark_output("eq", equals(c, a, b))
        c.mark_output("lt", less_than(c, a, b))
        return c

    def factor15():
        from repro.apps.fig10 import build_factor_circuit

        return build_factor_circuit(15, 4, 4, optimized=False)

    suite = {
        "4-bit adder": adder(4),
        "8-bit adder": adder(8),
        "3x3 multiplier": multiplier(3),
        "4x4 multiplier": multiplier(4),
        "8-bit comparator": comparator(8),
        "factor-15 predicate": factor15(),
    }
    rows = []
    for label, circuit in suite.items():
        optimized = optimize(circuit)
        emission = emit_qat_for(optimized)
        rows.append(
            {
                "circuit": label,
                "raw_gates": circuit.gate_count(),
                "optimized_gates": optimized.gate_count(),
                "reduction": f"{circuit.gate_count() / max(1, optimized.gate_count()):.2f}x",
                "qat_instructions": emission.instruction_count,
                "depth": optimized.depth(),
            }
        )
    return rows


def emit_qat_for(circuit):
    from repro.gates import EmitOptions, emit_qat

    return emit_qat(circuit, EmitOptions(allocator="recycle"))


# ---------------------------------------------------------------------------
# QVP -- destructive vs non-destructive measurement
# ---------------------------------------------------------------------------

def experiment_qvp(seed: int = 2021) -> list[Row]:
    """Runs needed to read out all factoring answers: quantum (collapse)
    vs PBP (one non-destructive pass), plus state storage comparison."""
    rng = np.random.default_rng(seed)
    rows = []
    for n, bits in ((15, 4), (221, 5)):
        result = factor_word_level(n, bits, bits)
        counts = {}
        for b, _c in result.pairs:
            counts[b] = counts.get(b, 0) + 1
        distinct = len(counts)
        total = sum(counts.values())
        expected = expected_runs_to_see_all([v / total for v in counts.values()])
        measured = float(
            np.mean(
                [
                    runs_to_collect_all(
                        lambda: _prepared(bits, counts), distinct, rng
                    )
                    for _ in range(200)
                ]
            )
        )
        ways = 2 * bits
        rows.append(
            {
                "n": n,
                "answers": distinct,
                "quantum_expected_runs": round(expected, 2),
                "quantum_measured_runs": round(measured, 2),
                "pbp_readouts": 1,
                "statevector_bytes": (1 << ways) * 16,
                "aob_bytes_per_pbit": (1 << ways) // 8,
            }
        )
    return rows


def _prepared(bits: int, counts: dict[int, int]) -> QuantumSimulator:
    sim = QuantumSimulator(bits)
    sim.prepare_distribution(counts)
    return sim


def experiment_qvp_endtoend(seed: int = 7, trials: int = 30) -> list[Row]:
    """Full-computation comparison on factoring 6 (2+2 bits).

    Quantum side: the complete reversible circuit (Hadamards, controlled
    Cuccaro multiplier, equality flag), one destructive sample per run,
    re-prepared every time; runs counted until both factor pairs have
    been *seen with flag=1*.  PBP side: the same predicate as Qat gates,
    one non-destructive readout of every answer.
    """
    from repro.quantum import build_quantum_factor_circuit, run_factoring

    rng = np.random.default_rng(seed)
    fc = build_quantum_factor_circuit(6, 2, 2)
    gate_counts = fc.circuit.gate_count()
    run_counts = []
    for _ in range(trials):
        seen: set[tuple[int, int]] = set()
        runs = 0
        while seen != {(2, 3), (3, 2)}:
            runs += 1
            b, c, flag = run_factoring(fc, rng)
            if flag:
                seen.add((b, c))
        run_counts.append(runs)
    # PBP: identical predicate, one readout.
    pairs = factor_channels(6, 2, 2)
    compiled = compile_factor_program(6, 2, 2, EmitOptions(allocator="recycle"))
    # Expected runs: two target outcomes at 1/16 each (inclusion-exclusion).
    expected = 16 + 16 - 8
    return [
        {
            "approach": "quantum circuit (destructive)",
            "qubits_or_regs": fc.num_qubits,
            "gates": sum(gate_counts.values()),
            "runs_expected": expected,
            "runs_measured": round(float(np.mean(run_counts)), 1),
            "answers_per_run": "<= 1",
        },
        {
            "approach": "Tangled/Qat PBP (non-destructive)",
            "qubits_or_regs": compiled.high_water_regs,
            "gates": compiled.qat_instructions,
            "runs_expected": 1,
            "runs_measured": 1,
            "answers_per_run": f"all {len(pairs)}",
        },
    ]


# ---------------------------------------------------------------------------
# Printing
# ---------------------------------------------------------------------------

ALL_EXPERIMENTS = {
    "FIG1  AoB semantics (Figure 1)": experiment_fig1,
    "TAB1  base ISA kernels (Table 1)": experiment_table1,
    "TAB2  pseudo-instructions (Table 2)": experiment_table2,
    "TAB3  Qat ALU ops at 16-way (Table 3)": experiment_table3,
    "FIG6  simulator throughput (Figure 6)": experiment_fig6,
    "FIG7  had generator cost (Figure 7)": experiment_fig7,
    "FIG8  next logic cost (Figure 8)": experiment_fig8,
    "FIG9  word-level factoring (Figure 9)": experiment_fig9,
    "FIG10 Tangled/Qat factoring program (Figure 10)": experiment_fig10,
    "S31   pipeline CPI (section 3.1)": experiment_s31,
    "S31T  the eight-team cohort (section 3.1)": experiment_s31_teams,
    "S12   RE compression scaling (section 1.2)": experiment_s12,
    "S27   reductions via next (section 2.7)": experiment_s27,
    "LC17  gate-level compiler optimization (ref [2])": experiment_lcpc17,
    "S5A   ISA ablation (section 5)": experiment_s5,
    "S5B   register-file ports (sections 2.5/5)": experiment_s5_regfile,
    "QVP   quantum vs PBP measurement": experiment_qvp,
    "QVP2  end-to-end factoring: quantum circuit vs Qat": experiment_qvp_endtoend,
}


def format_table(rows: list[Row]) -> str:
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(str(r.get(h, ""))) for r in rows)) for h in headers
    }
    lines = ["  ".join(str(h).ljust(widths[h]) for h in headers)]
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def main() -> None:
    print("Tangled/Qat reproduction -- experiment harness")
    print("=" * 64)
    # Route simulator/kernel/chunkstore telemetry into the same registry
    # the timing helpers use: one measurement pathway for everything.
    obs.install(OBS)
    try:
        sanity = figure9_demo()
        print(f"Figure 9 sanity check: pint_measure(f) = {sanity}\n")
        for title, fn in ALL_EXPERIMENTS.items():
            print(title)
            print("-" * len(title))
            print(format_table(fn()))
            print()
    finally:
        obs.disable()
    print(OBS.report())


if __name__ == "__main__":
    main()
