"""S12 bench: RE (run-length) compression scaling past 16-way
entanglement -- the section 1.2 exponential-factor claim."""

import pytest

from repro.aob import AoB
from repro.pattern import ChunkStore, PatternVector

from harness import experiment_s12, format_table


def test_s12_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_s12, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[S12] RE compression scaling (section 1.2)")
        print(format_table(rows))
    regular = [r for r in rows if str(r["value"]).startswith("H(")]
    irregular = [r for r in rows if not str(r["value"]).startswith("H(")]
    # compression grows exponentially with ways while run count stays flat
    ratios = [r["compression"] for r in regular]
    assert ratios[-1] / max(ratios[0], 1) >= 64
    assert all(r["runs"] <= 2 for r in regular)
    # op time does NOT grow with the dense size (symbolic evaluation)
    assert regular[-1]["xor_us"] < 100 * max(regular[0]["xor_us"], 1)
    # the honesty row: random data does not compress
    assert irregular and irregular[0]["compression"] == 1.0


@pytest.fixture(scope="module")
def big_store():
    return ChunkStore(16)


def test_bench_pattern_xor_24way(benchmark, big_store):
    """XOR of two 16M-bit values in compressed form."""
    h = PatternVector.hadamard(24, 23, big_store)
    g = PatternVector.hadamard(24, 0, big_store)
    result = benchmark(lambda: h ^ g)
    assert result.popcount() == 1 << 23


def test_bench_dense_xor_24way_equivalent(benchmark):
    """The dense computation the compression avoids (one 2^24-bit XOR)."""
    import numpy as np

    a = AoB.hadamard(24, 23)
    b = AoB.hadamard(24, 0)
    result = benchmark(lambda: a ^ b)
    assert result.popcount() == 1 << 23


def test_bench_pattern_next_24way(benchmark, big_store):
    h = PatternVector.hadamard(24, 23, big_store)
    assert benchmark(h.next, 5) == 1 << 23


def test_bench_pattern_measure_distribution_20way(benchmark, big_store):
    """Joint chunk-merge measurement of a 4-pbit word at 2^20 channels."""
    from repro.pbp import PbpContext

    ctx = PbpContext(ways=20, backend="pattern", chunk_ways=16)
    p = ctx.pint_h(4, 0xF << 16)
    counts = benchmark(p.counts)
    assert sum(counts.values()) == 1 << 20
