"""FIG10 bench: the literal paper program through each simulator."""

from repro.apps import fig10_program, run_factor_program

from harness import experiment_fig10, format_table


def test_fig10_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_fig10, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[FIG10] the paper's factoring program (Figure 10)")
        print(format_table(rows))
    for row in rows:
        assert (row["$0"], row["$1"]) == (5, 3)


def _run(simulator, ways=8):
    program = fig10_program()

    def go():
        sim, regs = run_factor_program(program, ways=ways, simulator=simulator)
        return regs

    return go


def test_bench_fig10_functional(benchmark):
    assert benchmark(_run("functional")) == (5, 3)


def test_bench_fig10_multicycle(benchmark):
    assert benchmark(_run("multicycle")) == (5, 3)


def test_bench_fig10_pipelined(benchmark):
    assert benchmark(_run("pipelined")) == (5, 3)


def test_bench_fig10_pipelined_16way(benchmark):
    assert benchmark(_run("pipelined", ways=16)) == (5, 3)
