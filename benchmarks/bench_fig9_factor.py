"""FIG9 bench: the word-level factoring algorithm across sizes and
substrates."""

import pytest

from repro.apps import factor_channels, factor_word_level, figure9_demo

from harness import experiment_fig9, format_table


def test_fig9_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_fig9, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[FIG9] word-level factoring (Figure 9)")
        print(format_table(rows))
    assert rows[0]["factors"] == "3x5"
    assert rows[1]["factors"] == "13x17"
    assert rows[-1]["backend"] == "pattern"


def test_bench_figure9_exact_paper_run(benchmark):
    """The literal Figure 9 program: factor 15, 8-way entanglement."""
    assert benchmark(figure9_demo) == [0, 1, 3, 5, 15]


def test_bench_factor_221(benchmark):
    result = benchmark(factor_word_level, 221, 5, 5)
    assert result.nontrivial == [13, 17]


def test_bench_factor_12bit_dense(benchmark):
    pairs = benchmark(factor_channels, 59 * 61, 6, 6)
    assert (59, 61) in pairs


def test_bench_factor_16way_full_scale(benchmark):
    """251 * 241 needs the full 16-way hardware entanglement."""
    pairs = benchmark.pedantic(
        factor_channels, args=(251 * 241, 8, 8), rounds=2, iterations=1
    )
    assert (241, 251) in pairs


def test_bench_factor_pattern_backend(benchmark):
    """The same 8-way problem on the compressed substrate."""
    result = benchmark(
        factor_word_level, 15, 4, 4, backend="pattern", chunk_ways=6
    )
    assert result.nontrivial == [3, 5]
