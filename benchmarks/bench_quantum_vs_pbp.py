"""QVP bench: destructive vs non-destructive measurement, quantified."""

import numpy as np

from repro.apps import factor_word_level
from repro.pbp.measure import values_where
from repro.quantum import QuantumSimulator, expected_runs_to_see_all

from harness import experiment_qvp, experiment_qvp_endtoend, format_table


def test_qvp_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_qvp, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[QVP] destructive vs non-destructive measurement")
        print(format_table(rows))
    for row in rows:
        # PBP reads everything once; quantum needs several runs and can
        # never guarantee completeness (the expected count is the mean).
        assert row["pbp_readouts"] == 1
        assert row["quantum_expected_runs"] > 1
        assert abs(row["quantum_measured_runs"] - row["quantum_expected_runs"]) < 1.5
        # and the state-vector needs far more memory than one pbit's AoB
        assert row["statevector_bytes"] > row["aob_bytes_per_pbit"]


def test_qvp2_endtoend_rows(benchmark, capsys):
    rows = benchmark.pedantic(
        experiment_qvp_endtoend, kwargs={"trials": 15}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n[QVP2] end-to-end factoring: quantum circuit vs Qat")
        print(format_table(rows))
    quantum, pbp = rows
    # the quantum path needs many runs and more gates for the same predicate
    assert quantum["runs_measured"] > 5
    assert pbp["runs_measured"] == 1
    assert quantum["gates"] > pbp["gates"]


def test_bench_quantum_endtoend_single_run(benchmark):
    """One complete quantum factoring run (prepare + compute + measure)."""
    from repro.quantum import build_quantum_factor_circuit, run_factoring

    fc = build_quantum_factor_circuit(6, 2, 2)
    rng = np.random.default_rng(3)
    b, c, flag = benchmark(run_factoring, fc, rng)
    assert 0 <= b < 4 and 0 <= c < 4


def test_bench_pbp_full_readout(benchmark):
    """One non-destructive PBP readout of all factor pairs of 15."""
    result = factor_word_level(15, 4, 4)

    def readout():
        return values_where(result.b, result.e)

    assert benchmark(readout) == [1, 3, 5, 15]


def test_bench_quantum_single_run(benchmark):
    """One quantum run: prepare + measure = one sample, state destroyed."""
    rng = np.random.default_rng(0)
    counts = {1: 1, 3: 1, 5: 1, 15: 1}

    def run_once():
        sim = QuantumSimulator(4, rng)
        sim.prepare_distribution(counts)
        return sim.measure_all()

    assert benchmark(run_once) in counts


def test_bench_expected_runs_formula(benchmark):
    value = benchmark(expected_runs_to_see_all, [0.25] * 4)
    assert round(value, 2) == 8.33
