"""TAB2 bench: pseudo-instruction expansion table and assembly speed."""

from repro.asm import assemble

from harness import experiment_table2, format_table

_MACRO_HEAVY = "\n".join(
    f"l{i}:\tloadi $0, {i * 37 & 0xFFFF}\n\tjumpf $0, l{i}" for i in range(100)
) + "\nlex $rv, 0\nsys\n"


def test_table2_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_table2, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[TAB2] pseudo-instruction expansions (Table 2)")
        print(format_table(rows))
    by_macro = {r["macro"]: r for r in rows}
    assert by_macro["br lab"]["instructions"] == 2
    assert by_macro["jump lab"]["instructions"] == 3
    assert by_macro["jumpf $c,lab"]["instructions"] == 4
    assert by_macro["loadi $d,imm8"]["instructions"] == 1
    assert by_macro["loadi $d,imm16"]["instructions"] == 2


def test_bench_assemble_macro_heavy(benchmark):
    program = benchmark(assemble, _MACRO_HEAVY)
    assert len(program.words) > 400
