"""FIG7 bench: Hadamard pattern generation cost, software and hardware."""

from repro.aob import AoB
from repro.hw import build_had_netlist

from harness import experiment_fig7, format_table


def test_fig7_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_fig7, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[FIG7] had generator hardware cost (Figure 7)")
        print(format_table(rows))
    # the generator's OR-input count dwarfs the constant-register bits at
    # full scale: the section-5 recommendation
    full = rows[-1]
    assert full["ways"] == 16
    assert full["or_inputs"] == 16 * (1 << 15)
    assert full["or_inputs"] > 4 * full["constant_reg_bits"]


def test_bench_hadamard_generation_full_scale(benchmark):
    """Software H(k) generation for the 65,536-bit AoB."""
    result = benchmark(AoB.hadamard, 16, 9)
    assert result.popcount() == 1 << 15


def test_bench_hadamard_generation_low_k(benchmark):
    result = benchmark(AoB.hadamard, 16, 0)
    assert result.meas(1) == 1


def test_bench_build_had_netlist(benchmark):
    """Constructing the Figure 7 structure at student scale (8-way)."""
    net = benchmark.pedantic(build_had_netlist, args=(8,), rounds=3, iterations=1)
    assert net.gate_count() > 0
