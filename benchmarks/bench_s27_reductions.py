"""S27 bench: ANY/ALL/POP via next vs meas enumeration (section 2.7)."""

import numpy as np
import pytest

from repro.aob import AoB

from harness import experiment_s27, format_table


def test_s27_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_s27, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[S27] reductions: next-based vs meas enumeration")
        print(format_table(rows))
    # the gap grows with entanglement: O(1)-ish vs O(2^E)
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 10


@pytest.fixture(scope="module")
def sparse_16way(rng=np.random.default_rng(11)):
    return AoB.random(16, rng, p=0.0005)


def test_bench_any_via_next(benchmark, sparse_16way):
    a = sparse_16way

    def any_fast():
        return a.next(0) != 0 or bool(a.meas(0))

    assert benchmark(any_fast) == a.any()


def test_bench_any_via_meas_enumeration(benchmark, sparse_16way):
    a = sparse_16way

    def any_slow():
        for e in range(a.nbits):
            if a.meas(e):
                return True
        return False

    benchmark.pedantic(any_slow, rounds=3, iterations=1)


def test_bench_all_via_double_negation(benchmark, sparse_16way):
    """ALL of @a == NOT(ANY(NOT @a)) -- the section 2.7 recipe."""
    a = sparse_16way

    def all_fast():
        inv = ~a
        return not (inv.next(0) != 0 or bool(inv.meas(0)))

    assert benchmark(all_fast) == a.all()


def test_bench_pop_split(benchmark, sparse_16way):
    a = sparse_16way

    def pop():
        return a.pop_after(0) + a.meas(0)

    assert benchmark(pop) == a.popcount()
