#!/usr/bin/env python
"""Regenerate ``BENCH_batch.json``: batched campaign throughput.

Times the acceptance workload for ``tangled faults --batch N`` -- a
256-run fig10 fault campaign -- three ways:

- ``campaign_serial``: the serial campaign driver (one instrumented
  per-machine drive loop per run, events applied between steps);
- ``campaign_batch256``: the same campaign packed into one 256-lane
  :class:`repro.cpu.batch.BatchFunctionalSimulator`;
- ``fastpath_single``: 256 plain fastpath ``run()`` loops with no
  fault machinery at all -- the best the per-machine engine can do.
- ``batch_plain256``: the 256-lane batch engine on the same plain
  workload, for an apples-to-apples machines*steps/sec comparison.

The campaign reports are asserted byte-identical before any number is
written.  Rates are aggregate machines*steps per second; ``speedups``
records batch-vs-serial for both the campaign and the plain workload.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_batch_campaign.py
"""

from __future__ import annotations

import json
import time

from repro.apps import fig10_program
from repro.cpu import BatchFunctionalSimulator, FunctionalSimulator
from repro.faults.campaign import render_report, run_campaign

RUNS = 256  # acceptance workload: 256 machines
WORKLOAD = dict(program="fig10", runs=RUNS, seed=7)


def _rate(steps: int, seconds: float) -> dict:
    return {
        "seconds": round(seconds, 4),
        "machine_steps": steps,
        "machine_steps_per_second": round(steps / seconds, 1),
    }


def _time_campaign(**kwargs):
    t0 = time.perf_counter()
    report = run_campaign(**WORKLOAD, **kwargs)
    seconds = time.perf_counter() - t0
    # Nominal aggregate work: every run retires the golden step count
    # unless a fault ends it early; identical accounting on both paths.
    steps = report["golden"]["steps"] * RUNS
    return report, _rate(steps, seconds)


def _time_fastpath_single() -> dict:
    program = fig10_program()
    steps = 0
    t0 = time.perf_counter()
    for _ in range(RUNS):
        sim = FunctionalSimulator(ways=8)
        sim.use_fastpath = True
        sim.load(program)
        sim.run(max_steps=100_000)
        steps += sim.machine.instret
    return _rate(steps, time.perf_counter() - t0)


def _time_batch_plain() -> dict:
    program = fig10_program()
    t0 = time.perf_counter()
    batch = BatchFunctionalSimulator(RUNS, ways=8)
    batch.load(program)
    batch.run(max_steps=100_000)
    assert batch.machines.halted.all()
    steps = int(batch.machines.instret.sum())
    return _rate(steps, time.perf_counter() - t0)


def main() -> None:
    serial_report, serial = _time_campaign()
    batch_report, batch = _time_campaign(batch=RUNS)
    assert render_report(serial_report) == render_report(batch_report), \
        "batch campaign report diverged from serial"

    fastpath = _time_fastpath_single()
    batch_plain = _time_batch_plain()

    doc = {
        "workload": {
            "program": "fig10",
            "runs": RUNS,
            "seed": 7,
            "faults_per_run": 1,
            "golden_steps": serial_report["golden"]["steps"],
        },
        "campaign_serial": serial,
        "campaign_batch256": batch,
        "fastpath_single": fastpath,
        "batch_plain256": batch_plain,
        "speedups": {
            "campaign_batch_vs_serial": round(
                batch["machine_steps_per_second"]
                / serial["machine_steps_per_second"], 2),
            "campaign_batch_vs_fastpath_single": round(
                batch["machine_steps_per_second"]
                / fastpath["machine_steps_per_second"], 2),
            "plain_batch_vs_fastpath_single": round(
                batch_plain["machine_steps_per_second"]
                / fastpath["machine_steps_per_second"], 2),
        },
    }
    with open("BENCH_batch.json", "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(doc["speedups"], indent=2))


if __name__ == "__main__":
    main()
