"""LC17 bench: gate-level compiler optimization (the paper's ref [2])."""

from repro.gates import GateCircuit, multiply, optimize

from harness import experiment_lcpc17, format_table


def test_lcpc17_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_lcpc17, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[LC17] gate-level compiler optimization (ref [2])")
        print(format_table(rows))
    for row in rows:
        assert row["optimized_gates"] <= row["raw_gates"]
    # multipliers carry the most redundancy (zero-extended accumulators)
    by = {r["circuit"]: r for r in rows}
    assert by["4x4 multiplier"]["raw_gates"] > 1.5 * by["4x4 multiplier"]["optimized_gates"]


def _build_multiplier(width):
    c = GateCircuit()
    a = [c.had(k) for k in range(width)]
    b = [c.had(width + k) for k in range(width)]
    for i, bit in enumerate(multiply(c, a, b)):
        c.mark_output(f"p{i}", bit)
    return c


def test_bench_optimize_multiplier(benchmark):
    circuit = _build_multiplier(6)
    optimized = benchmark(optimize, circuit)
    assert optimized.gate_count() < circuit.gate_count()


def test_bench_build_multiplier(benchmark):
    circuit = benchmark(_build_multiplier, 8)
    assert circuit.gate_count() > 100
