"""S31 bench: pipeline CPI across stage counts, forwarding, workloads."""

from repro.asm import assemble
from repro.cpu import PipelineConfig, PipelinedSimulator

from harness import experiment_s31, experiment_s31_teams, format_table


def test_s31_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_s31, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[S31] pipeline CPI (section 3.1)")
        print(format_table(rows))
    by_workload = {r["workload"]: r for r in rows}
    # the headline claim: 1 instruction/cycle sustained absent interlocks
    assert by_workload["straight-line alu"]["4-stage fwd"] < 1.02
    # forwarding only matters when there are dependences
    assert (
        by_workload["dependent alu"]["4-stage nofwd"]
        > by_workload["dependent alu"]["4-stage fwd"]
    )
    # two-word Qat instructions halve fetch throughput
    assert 1.9 < by_workload["qat 2-word heavy"]["4-stage fwd"] < 2.1


def test_s31_team_cohort_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_s31_teams, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[S31T] the eight-team cohort (section 3.1)")
        print(format_table(rows))
    # "All eight final team projects were highly functional": every
    # configuration produces the right factors.
    assert all(r["fig10_correct"] == "yes" for r in rows)
    assert sum(1 for r in rows if r["stages"] == 5) == 2  # 6x 4-stage, 2x 5-stage


def _bench_config(benchmark, stages, forwarding):
    body = "\n".join(f"lex ${i % 8}, {i % 100}" for i in range(500))
    program = assemble(body + "\nlex $rv, 0\nsys\n")

    def run():
        sim = PipelinedSimulator(
            ways=8, config=PipelineConfig(stages=stages, forwarding=forwarding)
        )
        sim.load(program)
        return sim.run().cpi

    cpi = benchmark(run)
    assert cpi < 1.02


def test_bench_pipeline_4_stage(benchmark):
    _bench_config(benchmark, 4, True)


def test_bench_pipeline_5_stage(benchmark):
    _bench_config(benchmark, 5, True)


def test_bench_pipeline_cycle_rate(benchmark):
    """Raw simulated cycles per second of the cycle-stepped model."""
    # note: loadi, not lex -- a lex immediate of 200 would sign-extend
    # to -56 and loop through the whole 16-bit range
    program = assemble(
        "loadi $0, 200\nloop: lex $2, -1\nadd $0, $2\nbrt $0, loop\nlex $rv, 0\nsys\n"
    )

    def run():
        sim = PipelinedSimulator(ways=8)
        sim.load(program)
        return sim.run().cycles

    assert benchmark(run) > 500
