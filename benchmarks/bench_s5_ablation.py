"""S5A/S5B bench: the section-5 ISA simplification ablations."""

from repro.apps import compile_factor_program, run_factor_program
from repro.gates import EmitOptions

from harness import experiment_s5, experiment_s5_regfile, format_table


def test_s5a_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_s5, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[S5A] ISA ablation on the factoring circuit (section 5)")
        print(format_table(rows))
    by_variant = {r["variant"]: r for r in rows}
    greedy = by_variant["paper greedy (Fig 10 style)"]
    recycle = by_variant["recycling allocator"]
    reserved = by_variant["+ reserved constants"]
    reversible = by_variant["reversible only"]
    # the paper's Figure 10 regime: ~80 registers greedy, far fewer recycled
    assert greedy["registers"] > 3 * recycle["registers"]
    # reserved constants save the initializer instructions
    assert reserved["qat_instructions"] < recycle["qat_instructions"]
    # forcing quantum-style reversibility more than doubles the program
    assert reversible["qat_instructions"] > 2 * recycle["qat_instructions"]


def test_s5b_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_s5_regfile, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[S5B] Qat register-file port cost (sections 2.5/5)")
        print(format_table(rows))
    assert rows[2]["overhead_vs_2R1W"] > rows[1]["overhead_vs_2R1W"] > 1.0


def _compile_and_run(options):
    def go():
        compiled = compile_factor_program(15, 4, 4, options)
        _, regs = run_factor_program(compiled.program, ways=8)
        assert regs == (5, 3)
        return compiled.qat_instructions

    return go


def test_bench_compile_greedy(benchmark):
    benchmark(_compile_and_run(EmitOptions(allocator="greedy")))


def test_bench_compile_recycle(benchmark):
    benchmark(_compile_and_run(EmitOptions(allocator="recycle")))


def test_bench_compile_reversible(benchmark):
    benchmark(_compile_and_run(EmitOptions(gate_set="reversible", allocator="recycle")))
