"""FIG8 bench: the next operation -- software kernel timing and the
O(WAYS) vs O(WAYS^2) hardware-depth series."""

import numpy as np

from repro.aob import AoB
from repro.hw import build_next_netlist, next_cost

from harness import experiment_fig8, format_table


def test_fig8_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_fig8, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[FIG8] next logic cost, wide vs 2-input OR (Figure 8)")
        print(format_table(rows))
    # linear vs quadratic shape: wide-OR depth increments are constant,
    # narrow-OR increments grow
    wide = [r["depth_wide_or"] for r in rows]
    narrow = [r["depth_2input_or"] for r in rows]
    wide_inc = [b - a for a, b in zip(wide, wide[1:])]
    narrow_inc = [b - a for a, b in zip(narrow, narrow[1:])]
    assert len(set(wide_inc)) == 1
    assert narrow_inc == sorted(narrow_inc) and narrow_inc[-1] > narrow_inc[0]


def test_bench_next_kernel_dense(benchmark):
    rng = np.random.default_rng(5)
    a = AoB.random(16, rng, p=0.5)
    assert benchmark(a.next, 100) > 100


def test_bench_next_kernel_sparse_tail(benchmark):
    bits = np.zeros(1 << 16, dtype=np.uint8)
    bits[-1] = 1
    a = AoB.from_bits(bits)
    assert benchmark(a.next, 0) == (1 << 16) - 1


def test_bench_next_netlist_evaluation(benchmark):
    """Evaluating the built Figure 8 netlist (8-way, 1000 test lanes)."""
    net = build_next_netlist(8, wide=True)
    rng = np.random.default_rng(6)
    lanes = 1000
    inputs = {f"aob[{i}]": rng.random(lanes) < 0.3 for i in range(256)}
    s = rng.integers(0, 256, lanes)
    for b in range(8):
        inputs[f"s[{b}]"] = ((s >> b) & 1).astype(bool)
    out = benchmark(net.evaluate, inputs)
    assert out["r"].shape == (8, lanes)


def test_bench_next_cost_full_scale(benchmark):
    cost = benchmark(next_cost, 16, True)
    assert cost["depth"] < next_cost(16, False)["depth"]
