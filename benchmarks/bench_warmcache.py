#!/usr/bin/env python
"""Regenerate ``BENCH_warmcache.json``: persistent chunk cache payoff.

Times two RE-substrate workloads three ways each:

- ``nocache``: the feature off entirely (the pre-cache baseline);
- ``cold``: ``--chunk-cache`` against a fresh empty cache -- the first
  invocation, paying compute *plus* publication;
- ``warm``: the identical rerun against the now-filled cache -- every
  local gate miss served from the persistent memos.

Workloads:

- ``fig10_re``: repeated ``fig10`` runs on the RE Qat backend -- the
  canonical "same command again" case;
- ``campaign_re``: a repeated RE fault campaign (every run its own
  simulator and fault plan), the fan-out shape the cache was built for.

Each workload asserts its observable results byte-identical across all
three passes before any number is written: the cache changes *when*
chunk products are computed, never *what*.  ``hit_rates`` records the
persistent gate-memo hit rate of the warm passes (hits over the local
gate misses that consulted the cache); the acceptance bar is >= 0.5 on
repeated ``fig10.re``.  ``speedups`` is warm vs cold -- rerunning a
cached command vs its cache-filling first invocation; the ``nocache``
column stays in the artifact so the bookkeeping overhead at this
chunk width (sha-256 content addressing + sqlite lookups vs sub-KiB
numpy gate ops) is never hidden.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_warmcache.py
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time

from repro.apps import fig10_program, run_factor_program
from repro.faults.campaign import render_report, run_campaign
from repro.pattern import persist, reset_default_stores

REPEATS = 20  # fig10 invocations per timed pass
CAMPAIGN_REPEATS = 5
CAMPAIGN = dict(program="fig10", runs=24, seed=7, qat_backend="re")


def _fig10_once() -> int:
    reset_default_stores()
    sim, (r0, r1) = run_factor_program(
        fig10_program(), ways=8, simulator="functional", qat_backend="re"
    )
    assert sorted((r0, r1)) == [3, 5]
    return sim.machine.instret


def _persist_rate() -> float:
    counters = persist.counter_snapshot()
    hits = counters.get("chunkstore.persist.hit", 0)
    misses = counters.get("chunkstore.persist.miss", 0)
    return hits / (hits + misses) if hits + misses else 0.0


def _campaign_once() -> str:
    return render_report(run_campaign(**CAMPAIGN))


def _time_invocations(fn, paths) -> tuple[float, list]:
    """Time ``len(paths)`` self-contained invocations of ``fn``.

    Each repetition opens its cache, runs the workload, and flushes on
    the way out -- exactly what one ``tangled ... --chunk-cache``
    process pays.  ``paths`` picks the cache state per repetition:
    ``None`` (feature off), a fresh path every time (every invocation
    cold), or one shared pre-filled path (every invocation warm).
    """
    results = []
    t0 = time.perf_counter()
    for path in paths:
        with persist.overridden(path):
            results.append(fn())
    return time.perf_counter() - t0, results


def _entry(nocache_s: float, cold_s: float, warm_s: float, rate: float,
           repeats: int) -> dict:
    return {
        "repeats": repeats,
        "nocache_seconds": round(nocache_s, 4),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_hit_rate": round(rate, 4),
    }


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="tangled-bench-warmcache-")
    try:
        # -- fig10_re -----------------------------------------------------
        nocache_s, nocache_results = _time_invocations(
            _fig10_once, [None] * REPEATS)
        cold_s, cold_results = _time_invocations(
            _fig10_once,
            [f"{workdir}/fig10-cold{i}.db" for i in range(REPEATS)])
        _time_invocations(_fig10_once, [f"{workdir}/fig10.db"])  # fill
        persist.reset_counters()
        warm_s, warm_results = _time_invocations(
            _fig10_once, [f"{workdir}/fig10.db"] * REPEATS)
        fig10_rate = _persist_rate()
        assert nocache_results == cold_results == warm_results, \
            "fig10 results diverged across cache states"
        fig10 = _entry(nocache_s, cold_s, warm_s, fig10_rate, REPEATS)

        # -- campaign_re --------------------------------------------------
        camp_nocache_s, nocache_reports = _time_invocations(
            _campaign_once, [None] * CAMPAIGN_REPEATS)
        camp_cold_s, cold_reports = _time_invocations(
            _campaign_once,
            [f"{workdir}/camp-cold{i}.db" for i in range(CAMPAIGN_REPEATS)])
        _time_invocations(_campaign_once, [f"{workdir}/campaign.db"])  # fill
        persist.reset_counters()
        camp_warm_s, warm_reports = _time_invocations(
            _campaign_once, [f"{workdir}/campaign.db"] * CAMPAIGN_REPEATS)
        campaign_rate = _persist_rate()
        assert nocache_reports == cold_reports == warm_reports, \
            "campaign reports diverged across cache states"
        campaign = _entry(camp_nocache_s, camp_cold_s, camp_warm_s,
                          campaign_rate, CAMPAIGN_REPEATS)
    finally:
        persist.reset()
        reset_default_stores()
        shutil.rmtree(workdir, ignore_errors=True)

    assert fig10_rate >= 0.5, f"fig10.re warm hit rate {fig10_rate} < 0.5"
    doc = {
        "workloads": {
            "fig10_re": fig10,
            "campaign_re": {**campaign, "campaign": CAMPAIGN},
        },
        "hit_rates": {
            "fig10_re": fig10["warm_hit_rate"],
            "campaign_re": campaign["warm_hit_rate"],
        },
        "speedups": {
            "fig10_re_warm_vs_cold": round(
                fig10["cold_seconds"] / fig10["warm_seconds"], 2),
            "campaign_re_warm_vs_cold": round(
                campaign["cold_seconds"] / campaign["warm_seconds"], 2),
        },
    }
    with open("BENCH_warmcache.json", "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps({"hit_rates": doc["hit_rates"],
                      "speedups": doc["speedups"]}, indent=2))


if __name__ == "__main__":
    main()
