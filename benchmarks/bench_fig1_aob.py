"""FIG1 bench: AoB substrate semantics and core op throughput.

Regenerates the Figure 1 probability tables and times the fundamental
AoB representation operations that everything else is built on.
"""

import numpy as np
import pytest

from repro.aob import AoB

from harness import experiment_fig1, format_table


def test_fig1_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_fig1, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[FIG1] AoB value semantics (Figure 1)")
        print(format_table(rows))
    # the paper's two worked examples
    assert rows[0]["P(0)"] == rows[0]["P(3)"] == 0.25
    assert rows[1]["P(0)"] == 0.5 and rows[1]["P(1)"] == 0.0


@pytest.fixture(scope="module")
def full_scale_values():
    rng = np.random.default_rng(1)
    return AoB.random(16, rng), AoB.random(16, rng)


def bench_pair(benchmark, fn):
    benchmark(fn)


def test_bench_aob_and(benchmark, full_scale_values):
    a, b = full_scale_values
    benchmark(lambda: a & b)


def test_bench_aob_xor(benchmark, full_scale_values):
    a, b = full_scale_values
    benchmark(lambda: a ^ b)


def test_bench_aob_not(benchmark, full_scale_values):
    a, _ = full_scale_values
    benchmark(lambda: ~a)


def test_bench_aob_from_bits(benchmark):
    bits = (np.arange(1 << 16) % 3 == 0).astype(np.uint8)
    benchmark(AoB.from_bits, bits)


def test_bench_aob_to_bool_array(benchmark, full_scale_values):
    a, _ = full_scale_values
    benchmark(a.to_bool_array)
