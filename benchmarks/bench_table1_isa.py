"""TAB1 bench: base-ISA kernel execution across the simulators."""

import pytest

from repro.asm import assemble
from repro.cpu import FunctionalSimulator, MultiCycleSimulator, PipelinedSimulator

from harness import _TAB1_KERNELS, experiment_table1, format_table


def test_table1_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_table1, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[TAB1] base ISA kernels (Table 1)")
        print(format_table(rows))
    by_kernel = {r["kernel"]: r for r in rows}
    # multi-cycle charges more cycles than the pipeline on every kernel
    for row in rows:
        assert row["multicycle_cycles"] > row["pipeline_cycles"]
    # memory kernels cost extra multi-cycle states
    assert (
        by_kernel["memory (load/store)"]["multicycle_cycles"]
        / by_kernel["memory (load/store)"]["instructions"]
        > by_kernel["alu (add)"]["multicycle_cycles"]
        / by_kernel["alu (add)"]["instructions"]
    )


@pytest.fixture(scope="module", params=sorted(_TAB1_KERNELS))
def kernel_program(request):
    return request.param, assemble(_TAB1_KERNELS[request.param] + "\nlex $rv, 0\nsys\n")


def test_bench_functional(benchmark, kernel_program):
    _, program = kernel_program

    def run():
        sim = FunctionalSimulator(ways=8)
        sim.load(program)
        sim.run()
        return sim.machine.instret

    assert benchmark(run) > 0


def test_bench_pipelined(benchmark, kernel_program):
    _, program = kernel_program

    def run():
        sim = PipelinedSimulator(ways=8)
        sim.load(program)
        sim.run()
        return sim.stats.cycles

    assert benchmark(run) > 0
