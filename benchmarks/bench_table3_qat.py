"""TAB3 bench: Qat coprocessor operations at full 16-way scale."""

import numpy as np
import pytest

from repro.aob import AoB, kernels
from repro.utils.bits import words_for_bits

from harness import experiment_table3, format_table

WAYS = 16
NBITS = 1 << WAYS


def test_table3_rows(benchmark, capsys):
    rows = benchmark.pedantic(experiment_table3, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[TAB3] Qat ALU ops on 65,536-bit AoB values (Table 3)")
        print(format_table(rows))
    by_op = {r["op"]: r for r in rows}
    # measurement ops are not slower than whole-vector gates by orders
    # of magnitude -- meas is effectively O(1)
    assert by_op["meas"]["microseconds"] < by_op["ccnot"]["microseconds"] * 50


@pytest.fixture(scope="module")
def regfile():
    """The CPU's view: rows of a (256, words) uint64 matrix."""
    rng = np.random.default_rng(3)
    nwords = words_for_bits(NBITS)
    qregs = rng.integers(0, 1 << 63, (256, nwords)).astype(np.uint64)
    return qregs


def test_bench_kernel_and(benchmark, regfile):
    benchmark(kernels.k_and, regfile[0], regfile[1], regfile[2])


def test_bench_kernel_ccnot(benchmark, regfile):
    benchmark(kernels.k_ccnot, regfile[3], regfile[4], regfile[5])


def test_bench_kernel_cswap(benchmark, regfile):
    benchmark(kernels.k_cswap, regfile[6], regfile[7], regfile[8])


def test_bench_kernel_had(benchmark, regfile):
    benchmark(kernels.k_had, regfile[9], 7, WAYS)


def test_bench_kernel_meas(benchmark, regfile):
    benchmark(kernels.k_meas, regfile[10], 54321, NBITS)


def test_bench_kernel_next_sparse(benchmark):
    """next over a nearly-empty vector: the worst-case word scan."""
    bits = np.zeros(NBITS, dtype=np.uint8)
    bits[NBITS - 2] = 1
    words = AoB.from_bits(bits).words
    result = benchmark(kernels.k_next, words, 0, NBITS)
    assert result == NBITS - 2


def test_bench_kernel_pop_after(benchmark, regfile):
    benchmark(kernels.k_pop_after, regfile[11], 100, NBITS)
