"""Bit-manipulation primitives shared by the AoB and pattern substrates.

AoB values pack :math:`2^E` bits little-endian into 64-bit words:
entanglement channel ``c`` lives at bit ``c & 63`` of word ``c >> 6``.
The helpers here are the only place that layout knowledge is encoded.
"""

from __future__ import annotations

import numpy as np

#: Number of bits per storage word.
WORD_BITS = 64

_U64_ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def words_for_bits(nbits: int) -> int:
    """Number of 64-bit words needed to hold ``nbits`` bits (at least 1)."""
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    return max(1, (nbits + WORD_BITS - 1) // WORD_BITS)


def top_mask(nbits: int) -> np.uint64:
    """Mask selecting the valid bits of the *last* storage word.

    For ``nbits`` that is a multiple of 64 the whole word is valid and the
    mask is all ones; otherwise only the low ``nbits % 64`` bits are kept.
    """
    rem = nbits % WORD_BITS
    if rem == 0:
        return _U64_ALL_ONES
    return np.uint64((1 << rem) - 1)


def ctz64(word: int) -> int:
    """Count trailing zeros of a non-zero 64-bit word.

    This is the software analogue of the combinatorial
    count-trailing-zeros block in the paper's Figure 8 ``qatnext`` design.
    """
    word = int(word)
    if word == 0:
        raise ValueError("ctz64 of zero is undefined")
    return (word & -word).bit_length() - 1


def hadamard_word(k: int) -> np.uint64:
    """The repeating 64-bit word of the Hadamard pattern ``H(k)`` for k < 6.

    ``H(k)`` sets channel ``e`` to bit ``k`` of the binary value of ``e``
    (paper section 2.3): a repeating run of :math:`2^k` zeros followed by
    :math:`2^k` ones.  For ``k < 6`` the run pattern fits inside a single
    64-bit word, so every storage word of the AoB is this constant.
    """
    if not 0 <= k < 6:
        raise ValueError(f"hadamard_word needs 0 <= k < 6, got {k}")
    value = 0
    for bit in range(WORD_BITS):
        if (bit >> k) & 1:
            value |= 1 << bit
    return np.uint64(value)


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across an array of uint64 words."""
    if words.size == 0:
        return 0
    return int(np.bitwise_count(words).sum())
