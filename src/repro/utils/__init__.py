"""Shared low-level helpers (bit manipulation, formatting)."""

from repro.utils.bits import (
    WORD_BITS,
    ctz64,
    hadamard_word,
    popcount_words,
    top_mask,
    words_for_bits,
)

__all__ = [
    "WORD_BITS",
    "ctz64",
    "hadamard_word",
    "popcount_words",
    "top_mask",
    "words_for_bits",
]
