"""Run-length compressed pattern vectors (the paper's RE representation).

A :class:`PatternVector` of ``ways``-way entanglement holds :math:`2^{ways}`
bits as a run-length list ``[(symbol, count), ...]`` of interned AoB chunk
symbols, each chunk being :math:`2^{chunk\\_ways}` bits.  It exposes the
same operation set as :class:`repro.aob.AoB` so the word-level PBP layer
(:mod:`repro.pbp`) can use either substrate interchangeably.

The exponential win the paper describes (section 1.2) falls out directly:
``H(k)`` for ``k >= chunk_ways`` is two runs regardless of ``ways``, and
gate operations walk runs, touching each *distinct* chunk pair once via the
store's memo table.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.aob import AoB
from repro.aob.bitvector import MAX_DENSE_WAYS
from repro.errors import EntanglementError, MeasurementError
from repro.pattern.chunkstore import ChunkStore
from repro.utils.bits import WORD_BITS

#: Chunk width used by the paper's full-scale design: 65,536-bit symbols.
PAPER_CHUNK_WAYS = 16

_default_stores: dict[int, ChunkStore] = {}


def default_store(chunk_ways: int = PAPER_CHUNK_WAYS) -> ChunkStore:
    """Process-wide shared :class:`ChunkStore` for a given chunk width.

    When a persistent chunk cache is configured
    (:mod:`repro.pattern.persist`: ``--chunk-cache`` /
    ``TANGLED_CHUNK_CACHE``) a freshly created store attaches to it, so
    gate products survive :func:`reset_default_stores` boundaries and
    process exits.
    """
    store = _default_stores.get(chunk_ways)
    if store is None:
        from repro.pattern import persist

        store = ChunkStore(chunk_ways, cache=persist.attached_cache())
        _default_stores[chunk_ways] = store
    return store


def reset_default_stores() -> None:
    """Drop every process-wide shared store.

    The shared stores accumulate interned chunks and memo hit/miss
    counts for the life of the process, which silently couples runs that
    should be independent: a benchmark round warmed by the previous one,
    or a fault-campaign seed whose chunkstore counters depend on the
    seeds run before it.  Callers that promise per-run isolation
    (``tangled bench``'s fresh capture per round, campaign
    byte-reproducibility) call this between runs; vectors built against
    a dropped store keep working -- they hold their own reference -- but
    new ``default_store()`` callers start from a pristine store.
    """
    _default_stores.clear()


Runs = tuple[tuple[int, int], ...]


def _check_ways(ways: int, store: ChunkStore) -> int:
    """Chunks covering a ``ways``-way vector, validating the width."""
    if ways < store.chunk_ways:
        raise EntanglementError(
            f"ways ({ways}) must be >= chunk_ways ({store.chunk_ways}); "
            "use repro.aob.AoB for narrower values"
        )
    return 1 << (ways - store.chunk_ways)


def _coalesce(runs: list[tuple[int, int]]) -> Runs:
    out: list[tuple[int, int]] = []
    for sym, count in runs:
        if count == 0:
            continue
        if out and out[-1][0] == sym:
            out[-1] = (sym, out[-1][1] + count)
        else:
            out.append((sym, count))
    return tuple(out)


class PatternVector:
    """An E-way entangled pbit value in run-length compressed form.

    Parameters
    ----------
    ways:
        Total entanglement degree; must be at least the store's chunk
        width (use plain :class:`AoB` below that).
    runs:
        Run-length encoding ``((symbol, chunk_count), ...)``; counts must
        sum to :math:`2^{ways - chunk\\_ways}`.
    store:
        The :class:`ChunkStore` owning the symbols; defaults to the shared
        per-width store.
    """

    __slots__ = ("ways", "nbits", "store", "runs")

    def __init__(self, ways: int, runs: Runs, store: ChunkStore | None = None):
        store = store or default_store()
        if store.chunk_ways < 6:
            raise EntanglementError(
                "PatternVector requires chunk_ways >= 6 (whole-word chunks)"
            )
        if ways < store.chunk_ways:
            raise EntanglementError(
                f"ways ({ways}) must be >= chunk_ways ({store.chunk_ways}); "
                "use repro.aob.AoB for narrower values"
            )
        self.ways = ways
        self.nbits = 1 << ways
        self.store = store
        self.runs = _coalesce(list(runs))
        total = sum(count for _, count in self.runs)
        if total != self.num_chunks:
            raise EntanglementError(
                f"runs cover {total} chunks, expected {self.num_chunks}"
            )

    # -- construction ---------------------------------------------------------

    @property
    def num_chunks(self) -> int:
        """Number of chunk symbols the dense expansion would need."""
        return 1 << (self.ways - self.store.chunk_ways)

    @classmethod
    def zeros(cls, ways: int, store: ChunkStore | None = None) -> "PatternVector":
        """Constant pbit 0."""
        store = store or default_store()
        nchunks = _check_ways(ways, store)
        return cls(ways, ((store.zero_id, nchunks),), store)

    @classmethod
    def ones(cls, ways: int, store: ChunkStore | None = None) -> "PatternVector":
        """Constant pbit 1."""
        store = store or default_store()
        nchunks = _check_ways(ways, store)
        return cls(ways, ((store.one_id, nchunks),), store)

    @classmethod
    def constant(cls, ways: int, bit: int, store: ChunkStore | None = None) -> "PatternVector":
        """Constant pbit ``bit``."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        return cls.ones(ways, store) if bit else cls.zeros(ways, store)

    @classmethod
    def hadamard(cls, ways: int, k: int, store: ChunkStore | None = None) -> "PatternVector":
        """Standard entangled superposition ``H(k)`` at any entanglement.

        For ``k < chunk_ways`` this is a single run of the in-chunk ``H(k)``
        symbol; for ``k >= chunk_ways`` it alternates zero-chunk and
        one-chunk runs of length :math:`2^{k - chunk\\_ways}` -- storage is
        O(number of runs), independent of :math:`2^{ways}`.
        """
        store = store or default_store()
        cw = store.chunk_ways
        nchunks = _check_ways(ways, store)
        if k >= ways:
            return cls.zeros(ways, store)
        if k < cw:
            return cls(ways, ((store.hadamard(k), nchunks),), store)
        run_len = 1 << (k - cw)
        runs = []
        for i in range(nchunks // run_len):
            runs.append((store.one_id if i & 1 else store.zero_id, run_len))
        return cls(ways, tuple(runs), store)

    @classmethod
    def from_aob(cls, aob: AoB, ways: int | None = None, store: ChunkStore | None = None) -> "PatternVector":
        """Compress a dense AoB (optionally zero-extended to ``ways``)."""
        store = store or default_store()
        cw = store.chunk_ways
        if aob.ways < cw:
            raise EntanglementError(
                f"AoB is {aob.ways}-way but chunks are {cw}-way"
            )
        if ways is None:
            ways = aob.ways
        if ways < aob.ways:
            raise EntanglementError("cannot truncate an AoB into fewer ways")
        words_per_chunk = (1 << cw) // WORD_BITS
        runs: list[tuple[int, int]] = []
        src = aob.words
        for i in range(aob.nbits // (1 << cw)):
            chunk = AoB(cw, src[i * words_per_chunk : (i + 1) * words_per_chunk])
            runs.append((store.intern(chunk), 1))
        pad = (1 << (ways - cw)) - len(runs)
        if pad:
            runs.append((store.zero_id, pad))
        return cls(ways, tuple(runs), store)

    # -- expansion -------------------------------------------------------------

    def to_aob(self) -> AoB:
        """Dense expansion (only for widths the AoB type supports)."""
        if self.ways > MAX_DENSE_WAYS:
            raise EntanglementError(
                f"{self.ways}-way is too wide to expand densely"
            )
        words_per_chunk = self.store.chunk_bits // WORD_BITS
        out = np.empty(self.num_chunks * words_per_chunk, dtype=np.uint64)
        pos = 0
        for sym, count in self.runs:
            chunk_words = self.store.chunk_safe(sym).words
            for _ in range(count):
                out[pos : pos + words_per_chunk] = chunk_words
                pos += words_per_chunk
        return AoB(self.ways, out)

    # -- gate operations --------------------------------------------------------

    def _check_compatible(self, other: "PatternVector") -> None:
        if not isinstance(other, PatternVector):
            raise TypeError(f"expected PatternVector, got {type(other).__name__}")
        if other.store is not self.store:
            raise EntanglementError("operands must share a ChunkStore")
        if other.ways != self.ways:
            raise EntanglementError(
                f"mismatched entanglement: {self.ways}-way vs {other.ways}-way"
            )

    def _merge(self, other: "PatternVector", op: str) -> "PatternVector":
        self._check_compatible(other)
        store = self.store
        out: list[tuple[int, int]] = []
        ia = ib = 0
        sa, na = self.runs[0]
        sb, nb = other.runs[0]
        while True:
            take = na if na < nb else nb
            sym = store.binop(op, sa, sb)
            if out and out[-1][0] == sym:
                out[-1] = (sym, out[-1][1] + take)
            else:
                out.append((sym, take))
            na -= take
            nb -= take
            if na == 0:
                ia += 1
                if ia == len(self.runs):
                    break
                sa, na = self.runs[ia]
            if nb == 0:
                ib += 1
                sb, nb = other.runs[ib]
        return PatternVector(self.ways, tuple(out), store)

    def binop(self, op: str, other: "PatternVector") -> "PatternVector":
        """Apply gate ``op`` in {'and', 'or', 'xor'} (run-merge walk)."""
        if op not in ("and", "or", "xor"):
            raise ValueError(f"unknown pattern binop {op!r}")
        return self._merge(other, op)

    def __and__(self, other: "PatternVector") -> "PatternVector":
        return self._merge(other, "and")

    def __or__(self, other: "PatternVector") -> "PatternVector":
        return self._merge(other, "or")

    def __xor__(self, other: "PatternVector") -> "PatternVector":
        return self._merge(other, "xor")

    def __invert__(self) -> "PatternVector":
        store = self.store
        runs = tuple((store.bnot(sym), count) for sym, count in self.runs)
        return PatternVector(self.ways, runs, store)

    def cnot(self, ctrl: "PatternVector") -> "PatternVector":
        """Controlled NOT (``self ^= ctrl``)."""
        return self ^ ctrl

    def ccnot(self, b: "PatternVector", c: "PatternVector") -> "PatternVector":
        """Toffoli (``self ^= AND(b, c)``)."""
        return self ^ (b & c)

    def cswap(self, other: "PatternVector", ctrl: "PatternVector") -> tuple["PatternVector", "PatternVector"]:
        """Fredkin gate on compressed vectors."""
        diff = (self ^ other) & ctrl
        return self ^ diff, other ^ diff

    # -- measurement -------------------------------------------------------------

    def _locate(self, chunk_index: int) -> tuple[int, int]:
        """Return (run index, first chunk index of that run)."""
        base = 0
        for i, (_, count) in enumerate(self.runs):
            if chunk_index < base + count:
                return i, base
            base += count
        raise MeasurementError(f"chunk index {chunk_index} out of range")

    def meas(self, channel: int) -> int:
        """Bit at entanglement ``channel`` (non-destructive)."""
        if channel < 0:
            raise MeasurementError(f"channel must be non-negative, got {channel}")
        channel &= self.nbits - 1
        cw = self.store.chunk_ways
        run_idx, _ = self._locate(channel >> cw)
        sym = self.runs[run_idx][0]
        return self.store.chunk_safe(sym).meas(channel & ((1 << cw) - 1))

    def next(self, channel: int) -> int:
        """Lowest channel ``> channel`` holding a 1, else 0."""
        if channel < 0:
            raise MeasurementError(f"channel must be non-negative, got {channel}")
        start = channel + 1
        if start >= self.nbits:
            return 0
        store = self.store
        cw = store.chunk_ways
        chunk_bits = 1 << cw
        q, r = start >> cw, start & (chunk_bits - 1)
        run_idx, run_base = self._locate(q)
        # Partial first chunk: bits >= r.
        sym = self.runs[run_idx][0]
        chunk = store.chunk_safe(sym)
        if chunk.meas(r):
            return q * chunk_bits + r
        hit = chunk.next(r)
        if hit:
            return q * chunk_bits + hit
        # Remaining chunks of the containing run share the symbol.
        remaining = run_base + self.runs[run_idx][1] - (q + 1)
        if remaining > 0 and store.first_one(sym) >= 0:
            return (q + 1) * chunk_bits + store.first_one(sym)
        base = run_base + self.runs[run_idx][1]
        for sym2, count in self.runs[run_idx + 1 :]:
            first = store.first_one(sym2)
            if first >= 0:
                return base * chunk_bits + first
            base += count
        return 0

    def pop_after(self, channel: int) -> int:
        """Count of 1s in channels ``> channel``."""
        if channel < 0:
            raise MeasurementError(f"channel must be non-negative, got {channel}")
        start = channel + 1
        if start >= self.nbits:
            return 0
        store = self.store
        cw = store.chunk_ways
        chunk_bits = 1 << cw
        q, r = start >> cw, start & (chunk_bits - 1)
        run_idx, run_base = self._locate(q)
        sym = self.runs[run_idx][0]
        chunk = store.chunk_safe(sym)
        count = chunk.popcount() if r == 0 else chunk.pop_after(r - 1)
        remaining = run_base + self.runs[run_idx][1] - (q + 1)
        count += remaining * store.popcount(sym)
        for sym2, run_count in self.runs[run_idx + 1 :]:
            count += run_count * store.popcount(sym2)
        return count

    def popcount(self) -> int:
        """Total number of 1 channels (O(runs))."""
        return sum(count * self.store.popcount(sym) for sym, count in self.runs)

    # -- single-channel mutation (fault injection) ------------------------------

    def with_flipped_bit(self, channel: int) -> "PatternVector":
        """New vector with entanglement ``channel`` inverted (copy-on-write).

        The containing run is split around the affected chunk and a
        freshly interned flipped chunk takes its place, so the original
        symbol -- possibly shared by other runs, registers or machines --
        is never mutated.  This is how soft errors address the
        compressed substrate without corrupting interned chunks
        (contrast :func:`repro.faults.inject.flip_chunk_bit`, which
        deliberately corrupts chunk memory itself).
        """
        if channel < 0:
            raise MeasurementError(f"channel must be non-negative, got {channel}")
        channel &= self.nbits - 1
        store = self.store
        cw = store.chunk_ways
        ci, off = channel >> cw, channel & ((1 << cw) - 1)
        run_idx, run_base = self._locate(ci)
        sym, count = self.runs[run_idx]
        words = store.chunk_safe(sym).words.copy()
        words[off >> 6] ^= np.uint64(1 << (off & (WORD_BITS - 1)))
        flipped = store.intern(AoB(cw, words))
        before = ci - run_base
        split = [(sym, before), (flipped, 1), (sym, count - before - 1)]
        runs = (
            self.runs[:run_idx]
            + tuple(piece for piece in split if piece[1])
            + self.runs[run_idx + 1 :]
        )
        return PatternVector(self.ways, runs, store)

    def any(self) -> bool:
        """ANY reduction in O(runs)."""
        return any(sym != self.store.zero_id for sym, _ in self.runs)

    def all(self) -> bool:
        """ALL reduction in O(runs)."""
        return all(sym == self.store.one_id for sym, _ in self.runs)

    def probability(self) -> float:
        """Probability this pbit measures 1."""
        return self.popcount() / self.nbits

    def iter_ones(self) -> Iterator[int]:
        """Iterate every 1 channel via the ``meas``/``next`` protocol."""
        if self.meas(0):
            yield 0
        chan = 0
        while True:
            chan = self.next(chan)
            if chan == 0:
                return
            yield chan

    # -- diagnostics ----------------------------------------------------------------

    @property
    def num_runs(self) -> int:
        """Length of the run-length encoding."""
        return len(self.runs)

    def storage_chunks(self) -> int:
        """Distinct chunk symbols this value references."""
        return len({sym for sym, _ in self.runs})

    def compression_ratio(self) -> float:
        """Dense chunk count divided by run count (>= 1; higher = better)."""
        return self.num_chunks / len(self.runs)

    # -- value protocol ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternVector):
            return NotImplemented
        if self.ways != other.ways:
            return False
        if self.store is other.store:
            return self.runs == other.runs
        mine = [(self.store.chunk(sym), count) for sym, count in self.runs]
        theirs = [(other.store.chunk(sym), count) for sym, count in other.runs]
        return mine == theirs

    def __hash__(self) -> int:
        return hash((self.ways, self.runs, id(self.store)))

    def __len__(self) -> int:
        return self.nbits

    def __getitem__(self, channel: int) -> int:
        return self.meas(channel)

    def __repr__(self) -> str:
        body = " ".join(
            f"s{sym}^{count}" if count > 1 else f"s{sym}" for sym, count in self.runs[:8]
        )
        if len(self.runs) > 8:
            body += " ..."
        return f"PatternVector(ways={self.ways}, runs=[{body}])"
