"""Persistent shared chunk cache: a warm RE substrate across processes.

Every :class:`~repro.pattern.chunkstore.ChunkStore` dies with its
process, so ``--jobs`` workers start cold, ``tangled bench`` rounds
reset their stores by design, and repeated campaigns re-derive the same
Hadamard chunks and gate products forever.  This module is the shared
memory those stores can attach to: a content-addressed, on-disk cache
holding

- **chunk payloads** keyed by the SHA-256 digest of their dense words
  (with a crc32 stored alongside for cheap integrity checks), and
- **gate memos** ``(op, digest_a, digest_b) -> digest_result`` -- the
  chunk-level gate algebra itself, which is a pure function of the
  operand *values* and therefore safe to share across runs, rounds,
  workers, seeds, and even unrelated workloads of the same chunk width.

A store attached at construction consults the cache only after a local
memo miss (the in-memory tables stay the fast path) and appends new
results write-behind, so the cache changes *when* a chunk product is
computed -- never *what*.  Concurrent writers are survivable via the
same WAL + busy-timeout + retry-on-locked SQLite discipline as
:mod:`repro.obs.ledger`; payload corruption is caught by crc32 (and the
content digest itself) and degrades through the store's existing
``chunk_safe``/``degraded`` path instead of poisoning the symbolic
layer.

Activation is process-wide: ``tangled ... --chunk-cache PATH`` or the
``TANGLED_CHUNK_CACHE`` environment variable; :func:`attached_cache`
hands the one shared :class:`ChunkCache` instance to every store
constructed afterwards.  Forked workers (the ``--jobs`` pool) inherit
the configuration but never the parent's connection: the cache is
pid-guarded and lazily reopens (dropping inherited pending writes) on
first use in the child.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import zlib
from contextlib import contextmanager

import numpy as np

from repro.errors import ReproError
# Reuse the ledger's hardened-open and retry-on-locked helpers so both
# persistent databases share one concurrency discipline.
from repro.obs.ledger import _connect, _locked_retry

#: Environment variable activating the cache process-wide.
ENV_VAR = "TANGLED_CHUNK_CACHE"

#: Cache schema version (sqlite ``PRAGMA user_version``).
SCHEMA_VERSION = 1

#: Write-behind buffer size: pending chunk/memo appends are flushed to
#: the database once this many accumulate (and at every explicit
#: :func:`flush` point -- end of run, end of bench round, worker task
#: boundary).
FLUSH_THRESHOLD = 256

_SCHEMA = """
CREATE TABLE IF NOT EXISTS chunks (
    digest     TEXT NOT NULL,
    chunk_ways INTEGER NOT NULL,
    crc        INTEGER NOT NULL,
    payload    BLOB NOT NULL,
    PRIMARY KEY (digest, chunk_ways)
);
CREATE TABLE IF NOT EXISTS memos (
    op         TEXT NOT NULL,
    a          TEXT NOT NULL,
    b          TEXT NOT NULL,
    chunk_ways INTEGER NOT NULL,
    result     TEXT NOT NULL,
    PRIMARY KEY (op, a, b, chunk_ways)
);
"""


def chunk_digest(words) -> str:
    """Content address of one chunk payload (SHA-256 of its words)."""
    return hashlib.sha256(np.ascontiguousarray(words).tobytes()).hexdigest()


class ChunkCache:
    """One on-disk chunk/memo cache, shared by every attached store.

    All methods are safe to call after a ``fork()``: the connection and
    any pending write-behind entries belong to the process that created
    them, so a child lazily reopens its own connection and starts with
    empty pending buffers (the parent flushes its own).
    """

    def __init__(self, path: str, flush_threshold: int = FLUSH_THRESHOLD):
        self.path = os.path.abspath(os.path.expanduser(path))
        self.flush_threshold = flush_threshold
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        # digest -> (crc, payload bytes); write-behind, INSERT OR REPLACE
        self._pending_chunks: dict[tuple[str, int], tuple[int, bytes]] = {}
        # (op, a, b, chunk_ways) -> result digest; INSERT OR IGNORE
        self._pending_memos: dict[tuple[str, str, str, int], str] = {}

    # -- connection lifecycle -------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            if self._conn is not None and self._pid != pid:
                # Forked child: the socket-level sqlite handle belongs
                # to the parent; abandon it (never close it from here)
                # along with any inherited pending writes -- the parent
                # flushes its own.
                self._conn = None
                self._pending_chunks.clear()
                self._pending_memos.clear()
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            conn = _connect(self.path)
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                _locked_retry(lambda: self._init_schema(conn))
            elif version != SCHEMA_VERSION:
                conn.close()
                raise ReproError(
                    f"chunk cache {self.path!r} has schema version "
                    f"{version}; this build supports {SCHEMA_VERSION}"
                )
            self._conn = conn
            self._pid = pid
        return self._conn

    @staticmethod
    def _init_schema(conn: sqlite3.Connection) -> None:
        with conn:
            conn.executescript(_SCHEMA)
            conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    def close(self) -> None:
        """Flush pending writes and drop the connection."""
        self.flush()
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = None

    # -- lookups --------------------------------------------------------------

    def lookup_memo(self, op: str, a: str, b: str,
                    chunk_ways: int) -> str | None:
        """Digest of ``op(a, b)``'s result, or None if never recorded."""
        key = (op, a, b, chunk_ways)
        pending = self._pending_memos.get(key)
        if pending is not None:
            return pending
        conn = self._connection()
        row = _locked_retry(lambda: conn.execute(
            "SELECT result FROM memos WHERE op = ? AND a = ? AND b = ? "
            "AND chunk_ways = ?", key).fetchone())
        return row["result"] if row is not None else None

    def load_chunk(self, digest: str,
                   chunk_ways: int) -> tuple[np.ndarray | None, str]:
        """``(words, status)`` for a cached payload.

        Status is ``"ok"`` (words verified against both the stored crc32
        and the content digest), ``"missing"`` (never stored, or lost to
        a partial write), or ``"corrupt"`` (stored bytes no longer match
        their integrity checks -- the caller should degrade and
        recompute, exactly as ``chunk_safe`` does for in-memory rot).
        """
        pending = self._pending_chunks.get((digest, chunk_ways))
        if pending is not None:
            crc, payload = pending
        else:
            conn = self._connection()
            row = _locked_retry(lambda: conn.execute(
                "SELECT crc, payload FROM chunks WHERE digest = ? "
                "AND chunk_ways = ?", (digest, chunk_ways)).fetchone())
            if row is None:
                return None, "missing"
            crc, payload = row["crc"], row["payload"]
        if (zlib.crc32(payload) != crc
                or hashlib.sha256(payload).hexdigest() != digest):
            return None, "corrupt"
        return np.frombuffer(payload, dtype=np.uint64).copy(), "ok"

    def has_chunk(self, digest: str, chunk_ways: int) -> bool:
        """True if a payload for ``digest`` is stored (or pending)."""
        if (digest, chunk_ways) in self._pending_chunks:
            return True
        conn = self._connection()
        row = _locked_retry(lambda: conn.execute(
            "SELECT 1 FROM chunks WHERE digest = ? AND chunk_ways = ?",
            (digest, chunk_ways)).fetchone())
        return row is not None

    # -- write-behind appends -------------------------------------------------

    def store_chunk(self, digest: str, chunk_ways: int, words) -> None:
        payload = np.ascontiguousarray(words).tobytes()
        self._pending_chunks[(digest, chunk_ways)] = (
            zlib.crc32(payload), payload,
        )
        self._maybe_flush()

    def store_memo(self, op: str, a: str, b: str, chunk_ways: int,
                   result: str) -> None:
        self._pending_memos[(op, a, b, chunk_ways)] = result
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if (len(self._pending_chunks) + len(self._pending_memos)
                >= self.flush_threshold):
            self.flush()

    def flush(self) -> None:
        """Commit every pending append in one transaction.

        ``INSERT OR REPLACE`` for chunks (content-addressed, so a
        replace can only heal a corrupted row) and ``INSERT OR IGNORE``
        for memos (every writer derives the same mapping, first one
        wins).  Best-effort concurrency: retried on lock contention.
        """
        if not self._pending_chunks and not self._pending_memos:
            return
        conn = self._connection()
        chunk_rows = [
            (digest, chunk_ways, crc, payload)
            for (digest, chunk_ways), (crc, payload)
            in self._pending_chunks.items()
        ]
        memo_rows = [
            (op, a, b, chunk_ways, result)
            for (op, a, b, chunk_ways), result
            in self._pending_memos.items()
        ]

        def _commit() -> None:
            with conn:
                conn.executemany(
                    "INSERT OR REPLACE INTO chunks "
                    "(digest, chunk_ways, crc, payload) VALUES (?, ?, ?, ?)",
                    chunk_rows,
                )
                conn.executemany(
                    "INSERT OR IGNORE INTO memos "
                    "(op, a, b, chunk_ways, result) VALUES (?, ?, ?, ?, ?)",
                    memo_rows,
                )

        _locked_retry(_commit)
        self._pending_chunks.clear()
        self._pending_memos.clear()

    # -- diagnostics ----------------------------------------------------------

    def stats(self) -> dict:
        """Durable cache contents: row counts and file size."""
        conn = self._connection()
        chunks = _locked_retry(lambda: conn.execute(
            "SELECT COUNT(*) FROM chunks").fetchone())[0]
        memos = _locked_retry(lambda: conn.execute(
            "SELECT COUNT(*) FROM memos").fetchone())[0]
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return {
            "path": self.path,
            "chunks": int(chunks),
            "memos": int(memos),
            "file_bytes": int(size),
            "pending": len(self._pending_chunks) + len(self._pending_memos),
        }


# ---------------------------------------------------------------------------
# Process-wide counters
# ---------------------------------------------------------------------------

#: Aggregate cache surface across every attached store in this process.
#: Telemetry (when active) carries the same events as
#: ``chunkstore.persist.*`` counters; this plain-dict mirror lets the
#: CLI record cache effectiveness in the run ledger even on fast-path
#: runs that never install telemetry.
_counters = {"hit": 0, "miss": 0, "load": 0, "store": 0, "bytes": 0}


def note_counter(kind: str, nbytes: int = 0) -> None:
    """One cache event from an attached store (see ChunkStore)."""
    _counters[kind] += 1
    if nbytes:
        _counters["bytes"] += nbytes


def counter_snapshot() -> dict[str, int]:
    """``chunkstore.persist.*``-keyed totals; empty when nothing fired."""
    if not any(_counters.values()):
        return {}
    return {
        f"chunkstore.persist.{kind}": value
        for kind, value in sorted(_counters.items())
    }


def reset_counters() -> None:
    """Zero the process-wide totals (one CLI command, one window)."""
    for kind in _counters:
        _counters[kind] = 0


# ---------------------------------------------------------------------------
# Process-wide activation
# ---------------------------------------------------------------------------

_UNSET = object()
#: Explicit override set by :func:`configure`; ``_UNSET`` falls back to
#: the environment variable.
_override: object = _UNSET
_cache: ChunkCache | None = None


def configure(path: str | None) -> None:
    """Activate (or with ``None`` deactivate) the cache process-wide.

    Overrides :data:`ENV_VAR`.  Any previously attached cache is flushed
    first; stores already constructed keep their attachment (a cache is
    wired in at store construction only).
    """
    global _override, _cache
    if _cache is not None:
        _cache.flush()
    _override = path
    _cache = None


def configured_path() -> str | None:
    """The path the next :func:`attached_cache` call resolves, or None."""
    if _override is not _UNSET:
        return _override  # type: ignore[return-value]
    return os.environ.get(ENV_VAR) or None


def active() -> bool:
    """True when a cache path is configured for this process."""
    return configured_path() is not None


def attached_cache() -> ChunkCache | None:
    """The process-wide :class:`ChunkCache`, or None when unconfigured."""
    global _cache
    path = configured_path()
    if path is None:
        return None
    resolved = os.path.abspath(os.path.expanduser(path))
    if _cache is None or _cache.path != resolved:
        if _cache is not None:
            _cache.flush()
        _cache = ChunkCache(path)
    return _cache


def flush() -> None:
    """Flush the attached cache's write-behind buffers, if any."""
    if _cache is not None:
        _cache.flush()


@contextmanager
def overridden(path: str | None):
    """Temporarily force the configured cache path (``None`` disables).

    Restores the previous configuration -- including an already-attached
    cache instance -- on exit; pending writes are flushed at both
    boundaries.  ``tangled bench`` wraps each cold-by-design round in
    ``overridden(None)`` so ambient activation can never skew round
    counters, and the warm specs wrap their timed region in
    ``overridden(tmp_cache)``.
    """
    global _override, _cache
    previous_override, previous_cache = _override, _cache
    flush()
    _override, _cache = path, None
    try:
        yield
    finally:
        flush()
        _override, _cache = previous_override, previous_cache


def reset() -> None:
    """Drop the attached instance and any explicit override.

    Worker initializers call this after ``fork()`` so the child builds
    its own connection from the inherited environment; tests call it to
    restore pristine module state.  Pending parent-side writes are
    intentionally *not* flushed from the child (they are the parent's).
    """
    global _override, _cache
    _override = _UNSET
    _cache = None


def worker_reset() -> None:
    """Post-fork reset that keeps an explicit :func:`configure` override.

    The ``--jobs`` supervisor forks workers after the CLI resolved
    ``--chunk-cache``; dropping only the cache *instance* (connection +
    pending buffers) keeps the worker attached to the same path without
    sharing the parent's sqlite handle.
    """
    global _cache
    _cache = None
    reset_counters()
