"""Interned chunk symbols with memoized gate operations.

Each symbol is an :class:`~repro.aob.AoB` of ``chunk_ways`` entanglement
(65,536 bits for the paper's full-scale Qat).  Because AoB values are
immutable and hashable, identical chunks intern to the same symbol id, and
the result of any gate applied to a given symbol pair is computed exactly
once.  This is what turns the run-length representation into *symbolic*
computation: a gate over two pattern vectors costs O(distinct symbol
pairs), not O(total bits).
"""

from __future__ import annotations

import hashlib
import zlib

import numpy as np

from repro.aob import AoB
from repro.errors import EntanglementError
from repro.obs import runtime as _obs

#: Default bound on each gate memo table (entries).  Long RE-backend
#: runs keep streaming fresh symbol pairs; an unbounded memo would grow
#: with them forever.  2^16 entries is far above the working set of any
#: suite workload, so eviction never fires there and the memo counters
#: stay byte-deterministic.
MEMO_LIMIT = 1 << 16


class ChunkStore:
    """Hash-consing store for AoB chunk symbols of a fixed width.

    Symbol ids are small ints; id 0 is always the all-zeros chunk and id 1
    the all-ones chunk (mirroring the paper's suggestion of reserving
    constant registers ``@0`` = 0 and ``@1`` = 1).
    """

    def __init__(self, chunk_ways: int, memo_limit: int = MEMO_LIMIT,
                 cache=None):
        if chunk_ways < 0:
            raise EntanglementError(f"chunk_ways must be >= 0, got {chunk_ways}")
        if memo_limit <= 0:
            raise EntanglementError(
                f"memo_limit must be positive, got {memo_limit}"
            )
        self.chunk_ways = chunk_ways
        #: LRU bound on every memo table (binop / not / measurement)
        self.memo_limit = memo_limit
        #: memo entries dropped to stay under :attr:`memo_limit`
        self.memo_evicted = 0
        #: eviction breakdown per memo table
        self.memo_evicted_by = {"binop": 0, "not": 0, "measure": 0}
        self.chunk_bits = 1 << chunk_ways
        #: optional :class:`repro.pattern.persist.ChunkCache` the store
        #: consults after a local memo miss and appends new gate results
        #: to.  The cache changes *when* a chunk product is computed,
        #: never *what*: a persistent hit interns the exact value a
        #: local computation would have produced, at the same point in
        #: the instruction stream, so symbol ids, gate hit/miss counts,
        #: and results are byte-identical warm vs cold.
        self.cache = cache
        self._binop_cache: dict[tuple[str, int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        # Per-symbol measurement summaries, memoized lazily (LRU-bounded
        # under memo_limit like the gate tables).
        self._popcount: dict[int, int] = {}
        self._first_one: dict[int, int] = {}
        # Memo-table effectiveness (the RE compression win): always kept
        # as plain ints, published to telemetry only when it is active.
        self.gate_hits = 0
        self.gate_misses = 0
        #: Times chunk_safe had to degrade (bad symbol or digest mismatch).
        self.degraded = 0
        # Persistent-cache effectiveness (zero and unused without a
        # cache): hit = a gate product served from the shared cache,
        # load = its payload actually read from disk (vs already interned
        # here), store = a locally computed product appended.
        self.persist_hits = 0
        self.persist_misses = 0
        self.persist_loads = 0
        self.persist_stores = 0
        self.persist_bytes = 0
        self._reset_chunks()
        self.zero_id = self.intern(AoB.zeros(chunk_ways))
        self.one_id = self.intern(AoB.ones(chunk_ways))

    def _reset_chunks(self) -> None:
        self._chunks: list[AoB] = []
        self._ids: dict[AoB, int] = {}
        # crc32 of each interned chunk's payload, checked by chunk_safe so
        # a chunk corrupted after interning degrades instead of poisoning
        # the symbolic layer.
        self._crcs: list[int] = []
        # Content addresses, maintained only when a persistent cache is
        # attached: sha256 digest per symbol plus the reverse index that
        # lets a persistent memo hit resolve to an already-interned
        # symbol without touching the disk payload.
        self._digests: list[str] = []
        self._by_digest: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._chunks)

    # -- interning ----------------------------------------------------------

    def intern(self, chunk: AoB) -> int:
        """Return the symbol id for ``chunk``, adding it if new."""
        if chunk.ways != self.chunk_ways:
            raise EntanglementError(
                f"chunk must be {self.chunk_ways}-way, got {chunk.ways}-way"
            )
        sym = self._ids.get(chunk)
        if sym is None:
            sym = len(self._chunks)
            self._chunks.append(chunk)
            self._ids[chunk] = sym
            self._crcs.append(zlib.crc32(chunk.words.tobytes()))
            if self.cache is not None:
                digest = hashlib.sha256(chunk.words.tobytes()).hexdigest()
                self._digests.append(digest)
                self._by_digest.setdefault(digest, sym)
            if _obs.active:
                _obs.current().metrics.gauge("chunkstore.symbols").set(
                    len(self._chunks)
                )
        return sym

    def chunk(self, sym: int) -> AoB:
        """The AoB value of symbol ``sym``."""
        return self._chunks[sym]

    def chunk_safe(self, sym: int) -> AoB:
        """Fault-tolerant :meth:`chunk`: degrade on corruption, never crash.

        An out-of-range symbol (e.g. a bit flip in a run-length encoding)
        resolves to the all-zeros chunk; a chunk whose payload no longer
        matches its interning-time crc32 (a soft error in chunk memory) is
        accepted as dense ground truth again -- its digest is refreshed and
        every memoized result involving the symbol is purged, so the
        symbolic layer recomputes from the surviving bits instead of
        serving stale gate results.  Both paths bump :attr:`degraded` and
        the ``chunkstore.degraded`` telemetry counter.
        """
        if not 0 <= sym < len(self._chunks):
            self._degrade(f"symbol {sym} out of range")
            return self._chunks[self.zero_id]
        chunk = self._chunks[sym]
        crc = zlib.crc32(chunk.words.tobytes())
        if crc != self._crcs[sym]:
            self._degrade(f"symbol {sym} failed its integrity digest")
            self._reintern(sym, crc)
        return self._chunks[sym]

    def _degrade(self, detail: str) -> None:
        self.degraded += 1
        if _obs.active:
            _obs.current().metrics.counter("chunkstore.degraded").inc()

    def _reintern(self, sym: int, crc: int) -> None:
        """Adopt a mutated chunk's dense bits as the symbol's new value."""
        self._crcs[sym] = crc
        self._binop_cache = {
            key: result
            for key, result in self._binop_cache.items()
            if sym not in (key[1], key[2], result)
        }
        self._not_cache = {
            a: b for a, b in self._not_cache.items() if sym not in (a, b)
        }
        self._popcount.pop(sym, None)
        self._first_one.pop(sym, None)
        # The hash-consing index keys chunks by content; rebuild it so the
        # mutated value resolves to this symbol (first occurrence wins).
        self._ids = {}
        for i, chunk in enumerate(self._chunks):
            self._ids.setdefault(chunk, i)
        if self.cache is not None:
            # The symbol's content address changed with its bits; the
            # mutated value is local truth only and is never written
            # back to the shared cache.
            self._digests[sym] = hashlib.sha256(
                self._chunks[sym].words.tobytes()
            ).hexdigest()
            self._by_digest = {}
            for i, digest in enumerate(self._digests):
                self._by_digest.setdefault(digest, i)

    # -- checkpoint support ---------------------------------------------------

    def chunks(self) -> list[AoB]:
        """Every interned chunk, in symbol-id order (for checkpointing)."""
        return list(self._chunks)

    def restore_chunks(self, chunk_words) -> None:
        """Rebuild the store from dense chunk payloads, id order preserved.

        ``chunk_words`` is a sequence of uint64 word arrays as captured by
        :meth:`chunks` (one per symbol).  All memo tables are dropped --
        they may reference symbols whose values changed.
        """
        chunks = [
            AoB(self.chunk_ways, np.array(words, dtype=np.uint64, copy=True))
            for words in chunk_words
        ]
        if len(chunks) < 2:
            raise EntanglementError(
                "restore_chunks needs at least the two constant chunks"
            )
        self._chunks = chunks
        self._ids = {}
        for i, chunk in enumerate(chunks):
            self._ids.setdefault(chunk, i)
        self._crcs = [zlib.crc32(c.words.tobytes()) for c in chunks]
        self._digests = []
        self._by_digest = {}
        if self.cache is not None:
            for i, chunk in enumerate(chunks):
                digest = hashlib.sha256(chunk.words.tobytes()).hexdigest()
                self._digests.append(digest)
                self._by_digest.setdefault(digest, i)
        self._binop_cache.clear()
        self._not_cache.clear()
        self._popcount.clear()
        self._first_one.clear()

    def hadamard(self, k: int) -> int:
        """Symbol id of the ``H(k)`` pattern restricted to one chunk."""
        return self.intern(AoB.hadamard(self.chunk_ways, k))

    # -- memoized gate operations --------------------------------------------

    def binop(self, op: str, a: int, b: int) -> int:
        """Apply gate ``op`` in {'and','or','xor'} to symbols ``a``, ``b``."""
        if op in ("and", "or", "xor") and a > b:
            a, b = b, a  # all three gates are commutative: halve the cache
        key = (op, a, b)
        cache = self._binop_cache
        sym = cache.pop(key, None)
        if sym is not None:
            cache[key] = sym  # re-append: most recently used
            self._count_gate(hit=True)
            return sym
        self._count_gate(hit=False)
        if self.cache is not None:
            sym = self._persist_lookup(op, a, b)
            if sym is not None:
                self._memo_insert(cache, key, sym, "binop")
                return sym
        ca, cb = self._chunks[a], self._chunks[b]
        if op == "and":
            result = ca & cb
        elif op == "or":
            result = ca | cb
        elif op == "xor":
            result = ca ^ cb
        else:
            raise ValueError(f"unknown chunk binop {op!r}")
        sym = self.intern(result)
        self._memo_insert(cache, key, sym, "binop")
        if self.cache is not None:
            self._persist_record(op, a, b, sym)
        return sym

    def bnot(self, a: int) -> int:
        """Apply NOT to symbol ``a``."""
        cache = self._not_cache
        sym = cache.pop(a, None)
        if sym is not None:
            cache[a] = sym  # re-append: most recently used
            self._count_gate(hit=True)
            return sym
        self._count_gate(hit=False)
        if self.cache is not None:
            sym = self._persist_lookup("not", a, None)
            if sym is not None:
                self._memo_insert(cache, a, sym, "not")
                self._memo_insert(cache, sym, a, "not")  # involution
                return sym
        sym = self.intern(~self._chunks[a])
        self._memo_insert(cache, a, sym, "not")
        self._memo_insert(cache, sym, a, "not")  # involution
        if self.cache is not None:
            self._persist_record("not", a, None, sym)
        return sym

    # -- persistent shared cache ----------------------------------------------

    def _persist_lookup(self, op: str, a: int, b: int | None) -> int | None:
        """Resolve ``op(a, b)`` from the shared cache, or None on miss.

        Runs only after a local memo miss was already counted, so the
        gate hit/miss counters -- and everything downstream of the
        returned symbol -- are identical whether the product came from
        the cache or a local recomputation.  A payload that fails its
        integrity checks degrades through :meth:`_degrade` (the same
        counter ``chunk_safe`` uses) and falls back to local compute.
        """
        da = self._digests[a]
        db = self._digests[b] if b is not None else ""
        result = self.cache.lookup_memo(op, da, db, self.chunk_ways)
        if result is None:
            self._count_persist("miss")
            return None
        sym = self._by_digest.get(result)
        if sym is not None:
            self._count_persist("hit")
            return sym
        words, status = self.cache.load_chunk(result, self.chunk_ways)
        if words is None or len(words) != (
                max(self.chunk_bits, 64) >> 6):
            if status == "corrupt" or words is not None:
                self._degrade(
                    f"cached payload for {result[:12]} failed integrity"
                )
            self._count_persist("miss")
            return None
        self._count_persist("hit")
        self._count_persist("load", nbytes=words.nbytes)
        return self.intern(AoB(self.chunk_ways, words))

    def _persist_record(self, op: str, a: int, b: int | None,
                        sym: int) -> None:
        """Append a locally computed gate product to the shared cache."""
        chunk = self._chunks[sym]
        self.cache.store_chunk(self._digests[sym], self.chunk_ways,
                               chunk.words)
        self.cache.store_memo(op, self._digests[a],
                              self._digests[b] if b is not None else "",
                              self.chunk_ways, self._digests[sym])
        self._count_persist("store")

    def _count_persist(self, kind: str, nbytes: int = 0) -> None:
        from repro.pattern import persist

        persist.note_counter(kind, nbytes)
        if kind == "hit":
            self.persist_hits += 1
        elif kind == "miss":
            self.persist_misses += 1
        elif kind == "load":
            self.persist_loads += 1
            self.persist_bytes += nbytes
        else:
            self.persist_stores += 1
        if _obs.active:
            metrics = _obs.current().metrics
            metrics.counter(f"chunkstore.persist.{kind}").inc()
            if nbytes:
                metrics.counter("chunkstore.persist.bytes").add(nbytes)

    def _memo_insert(self, cache: dict, key, value, table: str) -> None:
        """Insert one memo entry, evicting the least recently used past
        :attr:`memo_limit` (dict order = recency: hits re-append)."""
        cache[key] = value
        if len(cache) > self.memo_limit:
            cache.pop(next(iter(cache)))
            self.memo_evicted += 1
            self.memo_evicted_by[table] += 1
            if _obs.active:
                _obs.current().metrics.counter("chunkstore.memo.evicted").inc()

    def _count_gate(self, hit: bool) -> None:
        """One memoized-gate lookup: hit = a whole chunk op avoided."""
        if hit:
            self.gate_hits += 1
            if _obs.active:
                metrics = _obs.current().metrics
                metrics.counter("chunkstore.binop.hit").inc()
                # Each hit skips recomputing (and re-storing) one chunk.
                metrics.counter("chunkstore.bytes_saved").add(
                    self.chunk_bits >> 3
                )
        else:
            self.gate_misses += 1
            if _obs.active:
                _obs.current().metrics.counter("chunkstore.binop.miss").inc()

    # -- memoized measurement summaries ---------------------------------------

    def popcount(self, sym: int) -> int:
        """Number of 1 bits in symbol ``sym``."""
        count = self._popcount.pop(sym, None)
        if count is not None:
            self._popcount[sym] = count  # re-append: most recently used
            return count
        count = self.chunk_safe(sym).popcount()
        self._memo_insert(self._popcount, sym, count, "measure")
        return count

    def first_one(self, sym: int) -> int:
        """Lowest channel holding a 1 within the chunk, or -1 if none."""
        first = self._first_one.pop(sym, None)
        if first is not None:
            self._first_one[sym] = first  # re-append: most recently used
            return first
        chunk = self.chunk_safe(sym)
        if chunk.meas(0):
            first = 0
        else:
            nxt = chunk.next(0)
            first = nxt if nxt else -1
        self._memo_insert(self._first_one, sym, first, "measure")
        return first

    def stats(self) -> dict:
        """Diagnostics: store size, cache hit surface, and memo hit rate.

        With a persistent cache attached, a nested ``cache`` section
        reports the shared-cache surface (path, hit/miss/load/store
        counts, and payload bytes read); without one the key is absent
        so cold-run stats stay byte-identical to older builds.
        """
        out = {
            "symbols": len(self._chunks),
            "binop_cache": len(self._binop_cache),
            "not_cache": len(self._not_cache),
            "gate_hits": self.gate_hits,
            "gate_misses": self.gate_misses,
            "memo_limit": self.memo_limit,
            "memo_evicted": self.memo_evicted,
            "memo_evicted_binop": self.memo_evicted_by["binop"],
            "memo_evicted_not": self.memo_evicted_by["not"],
            "memo_evicted_measure": self.memo_evicted_by["measure"],
            "degraded": self.degraded,
        }
        if self.cache is not None:
            out["cache"] = {
                "path": self.cache.path,
                "hit": self.persist_hits,
                "miss": self.persist_misses,
                "load": self.persist_loads,
                "store": self.persist_stores,
                "bytes": self.persist_bytes,
            }
        return out
