"""Interned chunk symbols with memoized gate operations.

Each symbol is an :class:`~repro.aob.AoB` of ``chunk_ways`` entanglement
(65,536 bits for the paper's full-scale Qat).  Because AoB values are
immutable and hashable, identical chunks intern to the same symbol id, and
the result of any gate applied to a given symbol pair is computed exactly
once.  This is what turns the run-length representation into *symbolic*
computation: a gate over two pattern vectors costs O(distinct symbol
pairs), not O(total bits).
"""

from __future__ import annotations

from repro.aob import AoB
from repro.errors import EntanglementError
from repro.obs import runtime as _obs


class ChunkStore:
    """Hash-consing store for AoB chunk symbols of a fixed width.

    Symbol ids are small ints; id 0 is always the all-zeros chunk and id 1
    the all-ones chunk (mirroring the paper's suggestion of reserving
    constant registers ``@0`` = 0 and ``@1`` = 1).
    """

    def __init__(self, chunk_ways: int):
        if chunk_ways < 0:
            raise EntanglementError(f"chunk_ways must be >= 0, got {chunk_ways}")
        self.chunk_ways = chunk_ways
        self.chunk_bits = 1 << chunk_ways
        self._chunks: list[AoB] = []
        self._ids: dict[AoB, int] = {}
        self._binop_cache: dict[tuple[str, int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        # Per-symbol measurement summaries, memoized lazily.
        self._popcount: dict[int, int] = {}
        self._first_one: dict[int, int] = {}
        # Memo-table effectiveness (the RE compression win): always kept
        # as plain ints, published to telemetry only when it is active.
        self.gate_hits = 0
        self.gate_misses = 0
        self.zero_id = self.intern(AoB.zeros(chunk_ways))
        self.one_id = self.intern(AoB.ones(chunk_ways))

    def __len__(self) -> int:
        return len(self._chunks)

    # -- interning ----------------------------------------------------------

    def intern(self, chunk: AoB) -> int:
        """Return the symbol id for ``chunk``, adding it if new."""
        if chunk.ways != self.chunk_ways:
            raise EntanglementError(
                f"chunk must be {self.chunk_ways}-way, got {chunk.ways}-way"
            )
        sym = self._ids.get(chunk)
        if sym is None:
            sym = len(self._chunks)
            self._chunks.append(chunk)
            self._ids[chunk] = sym
            if _obs.active:
                _obs.current().metrics.gauge("chunkstore.symbols").set(
                    len(self._chunks)
                )
        return sym

    def chunk(self, sym: int) -> AoB:
        """The AoB value of symbol ``sym``."""
        return self._chunks[sym]

    def hadamard(self, k: int) -> int:
        """Symbol id of the ``H(k)`` pattern restricted to one chunk."""
        return self.intern(AoB.hadamard(self.chunk_ways, k))

    # -- memoized gate operations --------------------------------------------

    def binop(self, op: str, a: int, b: int) -> int:
        """Apply gate ``op`` in {'and','or','xor'} to symbols ``a``, ``b``."""
        if op in ("and", "or", "xor") and a > b:
            a, b = b, a  # all three gates are commutative: halve the cache
        key = (op, a, b)
        sym = self._binop_cache.get(key)
        if sym is not None:
            self._count_gate(hit=True)
            return sym
        self._count_gate(hit=False)
        ca, cb = self._chunks[a], self._chunks[b]
        if op == "and":
            result = ca & cb
        elif op == "or":
            result = ca | cb
        elif op == "xor":
            result = ca ^ cb
        else:
            raise ValueError(f"unknown chunk binop {op!r}")
        sym = self.intern(result)
        self._binop_cache[key] = sym
        return sym

    def bnot(self, a: int) -> int:
        """Apply NOT to symbol ``a``."""
        sym = self._not_cache.get(a)
        if sym is not None:
            self._count_gate(hit=True)
            return sym
        self._count_gate(hit=False)
        sym = self.intern(~self._chunks[a])
        self._not_cache[a] = sym
        self._not_cache[sym] = a  # involution
        return sym

    def _count_gate(self, hit: bool) -> None:
        """One memoized-gate lookup: hit = a whole chunk op avoided."""
        if hit:
            self.gate_hits += 1
            if _obs.active:
                metrics = _obs.current().metrics
                metrics.counter("chunkstore.binop.hit").inc()
                # Each hit skips recomputing (and re-storing) one chunk.
                metrics.counter("chunkstore.bytes_saved").add(
                    self.chunk_bits >> 3
                )
        else:
            self.gate_misses += 1
            if _obs.active:
                _obs.current().metrics.counter("chunkstore.binop.miss").inc()

    # -- memoized measurement summaries ---------------------------------------

    def popcount(self, sym: int) -> int:
        """Number of 1 bits in symbol ``sym``."""
        count = self._popcount.get(sym)
        if count is None:
            count = self._chunks[sym].popcount()
            self._popcount[sym] = count
        return count

    def first_one(self, sym: int) -> int:
        """Lowest channel holding a 1 within the chunk, or -1 if none."""
        first = self._first_one.get(sym)
        if first is None:
            chunk = self._chunks[sym]
            if chunk.meas(0):
                first = 0
            else:
                nxt = chunk.next(0)
                first = nxt if nxt else -1
            self._first_one[sym] = first
        return first

    def stats(self) -> dict[str, int]:
        """Diagnostics: store size, cache hit surface, and memo hit rate."""
        return {
            "symbols": len(self._chunks),
            "binop_cache": len(self._binop_cache),
            "not_cache": len(self._not_cache),
            "gate_hits": self.gate_hits,
            "gate_misses": self.gate_misses,
        }
