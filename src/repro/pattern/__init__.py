"""Regular-expression (run-length) compressed pattern vectors.

Paper section 1.2: the complete PBP model does not operate on raw AoB
vectors but on *regular expressions* compressing repeating patterns, where
each RE symbol is a fixed-size AoB chunk.  "The hardware implementation
described here directly implements 65,536-bit AoB for up to 16-way
entanglement, and it is assumed that higher degrees of entanglement would
be implemented in software using 65,536-bit chunks as RE symbols."

This package is that software layer:

- :class:`ChunkStore` interns chunk symbols and memoizes chunk-level gate
  operations, so each distinct chunk combination is computed once, and
- :class:`PatternVector` is a run-length list of chunk symbols exposing
  the same operation set as :class:`repro.aob.AoB`, usable at any
  entanglement degree.
"""

from repro.pattern.chunkstore import ChunkStore
from repro.pattern.vector import PatternVector, default_store, reset_default_stores

__all__ = ["ChunkStore", "PatternVector", "default_store", "reset_default_stores"]
