"""Architectural profiler: per-PC cycle attribution with stall blame.

The timing simulators report *aggregate* counters through the telemetry
registry (``pipeline.stall.data`` and friends); this module answers the
question those aggregates cannot: **which instruction** burns the
cycles, and **who** it was waiting on.  A :class:`Profiler` attached to
a :class:`~repro.cpu.pipeline.PipelinedSimulator` or
:class:`~repro.cpu.multicycle.MultiCycleSimulator` receives exactly one
attribution per simulated cycle -- a ``(pc, reason)`` pair, optionally
with a *blame* edge naming the older instruction an interlock waited
on -- so the per-PC totals sum to the run's cycle count by
construction (the property the test suite checks on every example
program).

Attribution reasons:

``issue``
    The cycle an instruction entered EX and executed (the useful work).
``raw``
    A RAW interlock held the consumer in ID; blamed on the producer.
``load_use``
    The 5-stage load-use bubble (memory result not yet available).
``structural``
    Extra EX occupancy -- the single-Qat-write-port ``swap``/``cswap``
    penalty of the section-5 ablation, or (multicycle) extra execute
    states such as the multiplier's.
``flush``
    A bubble created by a taken branch or a delivered trap, charged to
    the branching/trapping instruction.
``fetch``
    Frontend supply: two-word Qat fetch cycles, pipeline fill after
    reset, and any other cycle the backend spent waiting for fetch.
``memory``
    Extra memory-access state cycles (multicycle model only; the
    pipelined model's memory cost shows up as ``load_use``).

On top of the per-PC ledger the profiler keeps per-opcode totals and
Qat AoB bit volume per PC (routed from the SIMD kernels via
:meth:`repro.obs.telemetry.Telemetry.qat_kernel` while a telemetry
instance carries the profiler).  :func:`render_annotate` turns it all
into a ``perf annotate``-style listing; :func:`flamegraph_trace`
exports a Chrome ``trace_event`` flamegraph (reason -> PC) through the
same writer the telemetry sinks use.
"""

from __future__ import annotations

import json

from repro.asm.disasm import disassemble
from repro.errors import ReproError
from repro.obs.spans import PID_PROFILE

#: Attribution reasons in canonical (report) order.
REASONS = ("issue", "raw", "load_use", "structural", "flush", "fetch", "memory")

#: Reasons that represent lost cycles (everything but useful issue).
STALL_REASONS = tuple(r for r in REASONS if r != "issue")


class Profiler:
    """Per-PC / per-opcode cycle ledger filled by a timing simulator.

    The simulators call :meth:`attribute` exactly once per cycle; the
    Qat kernels add AoB bit volume through :meth:`note_qat_bits` while
    :attr:`current_pc` names the instruction in EX.
    """

    def __init__(self) -> None:
        #: pc -> reason -> cycles
        self.cycles_by_pc: dict[int, dict[str, int]] = {}
        #: (consumer pc, producer pc) -> interlock cycles
        self.blame: dict[tuple[int, int], int] = {}
        #: pc -> mnemonic (first time decoded)
        self.mnemonic_by_pc: dict[int, str] = {}
        #: pc -> rendered instruction text (first time seen)
        self.label_by_pc: dict[int, str] = {}
        #: pc -> times issued (loop iterations)
        self.issues_by_pc: dict[int, int] = {}
        #: pc -> AoB bits its Qat ops touched
        self.qat_bits_by_pc: dict[int, int] = {}
        #: PC of the instruction currently executing (for bit attribution)
        self.current_pc: int | None = None

    # -- simulator-facing hooks ----------------------------------------------

    def attribute(self, pc: int, reason: str, cycles: int = 1,
                  instr=None, blame_pc: int | None = None) -> None:
        """Charge ``cycles`` at ``pc`` under ``reason`` (one call per cycle)."""
        per_pc = self.cycles_by_pc.setdefault(pc, {})
        per_pc[reason] = per_pc.get(reason, 0) + cycles
        if instr is not None and pc not in self.mnemonic_by_pc:
            self.mnemonic_by_pc[pc] = instr.mnemonic
            self.label_by_pc[pc] = instr.render()
        if reason == "issue":
            self.issues_by_pc[pc] = self.issues_by_pc.get(pc, 0) + cycles
        if blame_pc is not None:
            edge = (pc, blame_pc)
            self.blame[edge] = self.blame.get(edge, 0) + cycles

    def note_qat_bits(self, bits: int) -> None:
        """AoB bit volume touched by the instruction at :attr:`current_pc`."""
        pc = self.current_pc
        if pc is None:
            return
        self.qat_bits_by_pc[pc] = self.qat_bits_by_pc.get(pc, 0) + bits

    # -- read-side views ------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        """Sum of every attributed cycle (== the run's cycle count)."""
        return sum(sum(r.values()) for r in self.cycles_by_pc.values())

    def pc_cycles(self, pc: int) -> int:
        """All cycles attributed at ``pc``, any reason."""
        return sum(self.cycles_by_pc.get(pc, {}).values())

    def reason_totals(self) -> dict[str, int]:
        """Cycles per reason across every PC, canonical order."""
        totals = {reason: 0 for reason in REASONS}
        for per_pc in self.cycles_by_pc.values():
            for reason, cycles in per_pc.items():
                totals[reason] = totals.get(reason, 0) + cycles
        return {r: c for r, c in totals.items() if c}

    def cycles_by_opcode(self) -> dict[str, dict[str, int]]:
        """mnemonic -> reason -> cycles, resolved from the final PC
        labels (a fetch bubble charged before its instruction decoded
        still lands under the right opcode)."""
        out: dict[str, dict[str, int]] = {}
        for pc, per_pc in self.cycles_by_pc.items():
            mnemonic = self.mnemonic_by_pc.get(pc, "?")
            per_op = out.setdefault(mnemonic, {})
            for reason, cycles in per_pc.items():
                per_op[reason] = per_op.get(reason, 0) + cycles
        return out

    def blame_for(self, pc: int) -> list[tuple[int, int]]:
        """``[(producer pc, cycles), ...]`` this PC stalled on, worst first."""
        edges = [(prod, cyc) for (cons, prod), cyc in self.blame.items()
                 if cons == pc]
        return sorted(edges, key=lambda e: (-e[1], e[0]))

    def as_dict(self) -> dict:
        """JSON-ready view (stable key order; hex-string PCs)."""
        return {
            "total_cycles": self.total_cycles,
            "reasons": self.reason_totals(),
            "pcs": {
                f"{pc:#06x}": {
                    "label": self.label_by_pc.get(pc, "?"),
                    "cycles": dict(sorted(per_pc.items())),
                    "issues": self.issues_by_pc.get(pc, 0),
                    "qat_bits": self.qat_bits_by_pc.get(pc, 0),
                    "blame": {
                        f"{prod:#06x}": cyc
                        for prod, cyc in self.blame_for(pc)
                    },
                }
                for pc, per_pc in sorted(self.cycles_by_pc.items())
            },
            "opcodes": {
                op: dict(sorted(per_op.items()))
                for op, per_op in sorted(self.cycles_by_opcode().items())
            },
        }

    def to_json(self) -> str:
        """Canonical JSON rendering of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# Driving a profiled run
# ---------------------------------------------------------------------------

def profile_program(program, ways: int = 8, simulator: str = "pipelined",
                    config=None, max_cycles: int = 10_000_000,
                    qat_backend: str = "dense"):
    """Run ``program`` with a fresh :class:`Profiler` attached.

    Returns ``(sim, profiler)``.  Telemetry is captured for the run
    (metrics only) so Qat AoB bit volume flows into the per-PC ledger;
    any previously installed telemetry instance is restored afterwards.
    ``qat_backend`` selects the Qat substrate (the RE backend attributes
    run volume through counters rather than per-PC bit volume).
    """
    from repro import obs
    from repro.cpu import MultiCycleSimulator, PipelineConfig, PipelinedSimulator

    if simulator == "pipelined":
        sim = PipelinedSimulator(ways=ways, config=config,
                                 qat_backend=qat_backend)
    elif simulator == "multicycle":
        if config is not None:
            raise ReproError("config applies to the pipelined simulator only")
        sim = MultiCycleSimulator(ways=ways, qat_backend=qat_backend)
    else:
        raise ReproError(
            f"cannot profile simulator {simulator!r} (try pipelined, multicycle)"
        )
    profiler = Profiler()
    sim.profiler = profiler
    sim.load(program)
    previous = obs.current()
    telemetry = obs.enable(tracing=False)
    telemetry.profiler = profiler
    try:
        sim.run(max_cycles)
    finally:
        telemetry.profiler = None
        obs.install(previous)
    return sim, profiler


# ---------------------------------------------------------------------------
# perf-annotate-style rendering
# ---------------------------------------------------------------------------

def _breakdown(per_pc: dict[str, int]) -> str:
    """``raw 4, fetch 2`` -- non-issue reasons in canonical order."""
    parts = [f"{reason} {per_pc[reason]}"
             for reason in STALL_REASONS if per_pc.get(reason)]
    return ", ".join(parts)


def render_annotate(profiler: Profiler, words=None, title: str = "") -> str:
    """The ``tangled profile`` listing: disassembly annotated per PC.

    ``words`` is the program image (any int sequence); when omitted the
    listing covers only the PCs the profiler saw, labelled from its own
    records.  Columns: cycles, share of total, issue count, stall
    breakdown, interlock blame, Qat AoB bit volume.
    """
    total = profiler.total_cycles or 1
    lines: list[str] = []
    if title:
        lines.append(f"== tangled profile: {title} ==")
    reasons = profiler.reason_totals()
    summary = ", ".join(f"{r} {c} ({c / total:.1%})" for r, c in reasons.items())
    lines.append(f"total cycles {profiler.total_cycles}: {summary}")
    lines.append("")
    lines.append(f"{'cycles':>7} {'%':>6} {'issues':>6}  "
                 f"{'pc':<7} {'instruction':<24} stalls / blame / qat bits")
    if words is not None:
        listing = disassemble(words)
    else:
        listing = [(pc, profiler.label_by_pc.get(pc, "?"))
                   for pc in sorted(profiler.cycles_by_pc)]
    covered = set()
    for addr, text in listing:
        covered.add(addr)
        per_pc = profiler.cycles_by_pc.get(addr, {})
        cycles = sum(per_pc.values())
        if not cycles and words is not None and text.startswith(".word"):
            continue  # data words with no activity: keep the listing tight
        lines.append(_annotate_line(profiler, addr, text, per_pc, cycles, total))
    # PCs executed outside the static listing (wrong path, handlers).
    for addr in sorted(set(profiler.cycles_by_pc) - covered):
        per_pc = profiler.cycles_by_pc[addr]
        cycles = sum(per_pc.values())
        text = profiler.label_by_pc.get(addr, "?")
        lines.append(_annotate_line(profiler, addr, text, per_pc, cycles, total))
    lines.append("")
    lines.append(render_opcode_table(profiler))
    return "\n".join(lines)


def _annotate_line(profiler: Profiler, addr: int, text: str,
                   per_pc: dict[str, int], cycles: int, total: int) -> str:
    text = text.replace("\t", " ")
    notes = []
    breakdown = _breakdown(per_pc)
    if breakdown:
        notes.append(breakdown)
    blame = profiler.blame_for(addr)
    if blame:
        notes.append("<- " + ", ".join(
            f"{prod:#06x} ({cyc})" for prod, cyc in blame[:3]))
    bits = profiler.qat_bits_by_pc.get(addr)
    if bits:
        notes.append(f"{bits} aob bits")
    pct = f"{cycles / total:6.1%}" if cycles else f"{'':>6}"
    cyc = f"{cycles:7d}" if cycles else f"{'':>7}"
    issues = profiler.issues_by_pc.get(addr, 0)
    iss = f"{issues:6d}" if issues else f"{'':>6}"
    note = ("  " + " | ".join(notes)) if notes else ""
    return f"{cyc} {pct} {iss}  {addr:04x}:  {text:<24}{note}"


def render_opcode_table(profiler: Profiler) -> str:
    """Per-opcode cycle histogram, heaviest first."""
    total = profiler.total_cycles or 1
    rows = sorted(
        profiler.cycles_by_opcode().items(),
        key=lambda kv: (-sum(kv[1].values()), kv[0]),
    )
    lines = ["opcode histogram:",
             f"  {'opcode':<10} {'cycles':>7} {'%':>6}  breakdown"]
    for mnemonic, per_op in rows:
        cycles = sum(per_op.values())
        parts = ", ".join(f"{r} {per_op[r]}" for r in REASONS if per_op.get(r))
        lines.append(
            f"  {mnemonic:<10} {cycles:>7} {cycles / total:6.1%}  {parts}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome-trace flamegraph export
# ---------------------------------------------------------------------------

def flamegraph_trace(profiler: Profiler) -> dict:
    """The profile as a Chrome ``trace_event`` flamegraph object.

    Three nested levels on one synthetic timeline (1 attributed cycle =
    1 us): the whole run, one span per reason, and one span per PC
    inside its reason, ordered heaviest-first so the widest frames read
    left to right in Perfetto.  Written with the same shared writer as
    every other trace (:func:`repro.obs.sinks.write_trace`).
    """
    events: list[dict] = []
    total = profiler.total_cycles
    events.append({
        "name": "profile", "cat": "profile", "ph": "X",
        "ts": 0, "dur": max(total, 1), "pid": PID_PROFILE, "tid": 1,
        "args": {"total_cycles": total},
    })
    cursor = 0
    by_reason: dict[str, list[tuple[int, int]]] = {}
    for pc, per_pc in profiler.cycles_by_pc.items():
        for reason, cycles in per_pc.items():
            by_reason.setdefault(reason, []).append((pc, cycles))
    for reason in REASONS:
        pcs = by_reason.get(reason)
        if not pcs:
            continue
        reason_total = sum(c for _, c in pcs)
        events.append({
            "name": reason, "cat": "reason", "ph": "X",
            "ts": cursor, "dur": reason_total, "pid": PID_PROFILE, "tid": 1,
            "args": {"cycles": reason_total},
        })
        inner = cursor
        for pc, cycles in sorted(pcs, key=lambda e: (-e[1], e[0])):
            events.append({
                "name": f"{pc:#06x} {profiler.label_by_pc.get(pc, '?')}",
                "cat": "pc", "ph": "X",
                "ts": inner, "dur": cycles, "pid": PID_PROFILE, "tid": 1,
                "args": {
                    "cycles": cycles,
                    "qat_bits": profiler.qat_bits_by_pc.get(pc, 0),
                },
            })
            inner += cycles
        cursor += reason_total
    events.append({
        "name": "process_name", "ph": "M", "pid": PID_PROFILE, "tid": 0,
        "args": {"name": "profile flamegraph (1 cycle = 1 us)"},
    })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "profile": profiler.as_dict(),
            "truncated": False,
            "events_dropped": 0,
        },
    }


def write_flamegraph(path: str, profiler: Profiler) -> None:
    """Serialize :func:`flamegraph_trace` through the shared trace writer."""
    from repro.obs.sinks import write_trace

    write_trace(path, flamegraph_trace(profiler))
