"""Persistent run ledger: every ``tangled`` invocation, queryable forever.

The evaluation story so far was one-shot: a run's telemetry evaporated
at process exit, and the only durable artifacts were loose
``BENCH_*.json`` files.  This module gives the reproduction a memory --
a small SQLite database (default ``~/.tangled/ledger.db``, overridable
with the ``TANGLED_LEDGER`` environment variable) into which the CLI
records one row per ``tangled run|fig10|faults|bench|profile``
invocation:

- a unique run id and timestamp;
- the full resolved configuration (simulator, ``--qat-backend``, ways,
  seed, fault plan, jobs, ...) and the package version;
- wall seconds and the command's exit status;
- a trap summary (when the run trapped) and the **deterministic scalar
  counter snapshot** from :mod:`repro.obs` -- histograms and the
  volatile ``progress.*`` gauges are excluded, so two identical runs
  store identical snapshots;
- per-worker fan-out gauges (from :mod:`repro.obs.progress`) and the
  paths of emitted artifacts (trace / profile / bench JSON).

``tangled bench`` additionally records one row per bench entry, labeled
with the bench name (``fig10.re``, ...), carrying that bench's counter
section and steps/sec rate -- which is what makes cross-version
trajectories (`tangled report --label fig10.re`) possible without
keeping the loose JSON files around.

On top of the table, three read-side views power ``tangled report``:

- :func:`runs_view` -- the recent-run listing;
- :func:`trajectory_view` -- counter/rate series and first->last deltas
  across the last N recorded runs of one label;
- :func:`compare_view` -- a side-by-side of two runs (ids or labels)
  classified improved/regressed/neutral with the same logic as
  ``tangled bench --compare``.

Every view is a plain dict; :func:`export_json` serializes it with
sorted keys so repeated exports of the same ledger are byte-identical.
The ledger is strictly parent-process, append-mostly, and best-effort:
CLI recording failures warn on stderr but never fail the run.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from dataclasses import dataclass, field

from repro._version import __version__
from repro.errors import ReproError

#: Ledger schema version (sqlite ``PRAGMA user_version``).  Version 2
#: added the ``shards`` journal table; version-1 databases migrate in
#: place on open (the table is simply created).
SCHEMA_VERSION = 2

#: Environment variable overriding the database location.
ENV_VAR = "TANGLED_LEDGER"

#: Default database location (created on first record).
DEFAULT_PATH = "~/.tangled/ledger.db"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id           TEXT PRIMARY KEY,
    ts           REAL NOT NULL,
    command      TEXT NOT NULL,
    label        TEXT NOT NULL,
    version      TEXT NOT NULL,
    config       TEXT NOT NULL,
    wall_seconds REAL,
    status       INTEGER NOT NULL,
    traps        TEXT,
    counters     TEXT NOT NULL,
    rate         TEXT,
    workers      TEXT,
    artifacts    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_label_ts ON runs (label, ts);
CREATE INDEX IF NOT EXISTS runs_ts ON runs (ts);
CREATE TABLE IF NOT EXISTS shards (
    run_id   TEXT NOT NULL,
    shard    INTEGER NOT NULL,
    status   TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    payload  TEXT NOT NULL,
    PRIMARY KEY (run_id, shard)
);
"""

#: ``shards.status`` values.  ``meta`` rows (shard ``-1``) carry the
#: campaign fingerprint a resume must match; ``done`` rows hold the
#: shard's merged-report payload; ``toxic`` rows mark quarantined
#: shards that a resume re-executes.
SHARD_META, SHARD_DONE, SHARD_TOXIC = "meta", "done", "toxic"


def _connect(path: str) -> sqlite3.Connection:
    """Open ``path`` hardened for concurrent writers.

    WAL mode lets resumable shard journaling and future service-layer
    writers commit while readers hold the database open; the busy
    timeout makes SQLite itself wait out short write locks instead of
    failing with ``database is locked``.  WAL can be refused on some
    filesystems (network mounts) -- that is survivable, the busy
    timeout still applies.
    """
    conn = sqlite3.connect(path)
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA busy_timeout = 5000")
    try:
        conn.execute("PRAGMA journal_mode = WAL")
    except sqlite3.OperationalError:
        pass
    return conn


def _locked_retry(fn, attempts: int = 5, delay: float = 0.05):
    """Run ``fn`` retrying on ``database is locked``/``busy`` errors.

    The busy timeout handles locks held *within* a query; this covers
    the gap where a concurrent writer wins the race between our
    statements.  Backoff doubles per attempt; the final attempt
    propagates whatever SQLite raises.
    """
    for attempt in range(attempts):
        try:
            return fn()
        except sqlite3.OperationalError as exc:
            message = str(exc).lower()
            if "locked" not in message and "busy" not in message:
                raise
            time.sleep(delay * (2 ** attempt))
    return fn()


def ledger_path(path: str | None = None) -> str:
    """Resolve the database path: explicit > ``TANGLED_LEDGER`` > default."""
    if path:
        return path
    env = os.environ.get(ENV_VAR)
    if env:
        return env
    return os.path.expanduser(DEFAULT_PATH)


class AmbiguousRunId(ReproError):
    """A run-id prefix matches more than one recorded run.

    Must surface to the user with the candidate ids (``candidates``,
    capped at 5) -- silently picking one, or degrading to the generic
    "matches nothing" message on the label-fallback path, resolves the
    reference to the *wrong run*.  :meth:`Ledger.resolve` re-raises it
    for exactly that reason, so ``tangled report --compare`` and
    ``tangled blackbox`` list the candidates instead of guessing.
    """

    def __init__(self, ref: str, candidates: list[str]):
        self.ref = ref
        self.candidates = candidates
        super().__init__(
            f"run id {ref!r} is ambiguous ({', '.join(candidates)})"
        )


@dataclass
class RunRecord:
    """One recorded invocation (or one bench entry of one invocation)."""

    id: str
    ts: float
    command: str
    label: str
    version: str
    config: dict
    wall_seconds: float | None
    status: int
    traps: dict | None
    counters: dict
    rate: dict | None
    workers: dict | None
    artifacts: list = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready rendering (stable for byte-stable exports)."""
        return {
            "id": self.id,
            "ts": self.ts,
            "command": self.command,
            "label": self.label,
            "version": self.version,
            "config": self.config,
            "wall_seconds": self.wall_seconds,
            "status": self.status,
            "traps": self.traps,
            "counters": self.counters,
            "rate": self.rate,
            "workers": self.workers,
            "artifacts": self.artifacts,
        }

    def metrics(self) -> dict[str, float]:
        """Counters plus the rate, flattened for trajectory/compare views.

        ``rate.steps_per_second`` is wall-clock derived; the views keep
        it but classify it with the (looser) timing threshold.
        """
        out = dict(self.counters)
        if self.rate:
            for key, value in self.rate.items():
                out[f"rate.{key}"] = value
        return out


def _row_to_record(row: sqlite3.Row) -> RunRecord:
    return RunRecord(
        id=row["id"],
        ts=row["ts"],
        command=row["command"],
        label=row["label"],
        version=row["version"],
        config=json.loads(row["config"]),
        wall_seconds=row["wall_seconds"],
        status=row["status"],
        traps=json.loads(row["traps"]) if row["traps"] else None,
        counters=json.loads(row["counters"]),
        rate=json.loads(row["rate"]) if row["rate"] else None,
        workers=json.loads(row["workers"]) if row["workers"] else None,
        artifacts=json.loads(row["artifacts"]),
    )


class Ledger:
    """SQLite-backed run ledger.  One connection, parent process only."""

    def __init__(self, path: str | None = None):
        self.path = ledger_path(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._conn = _connect(self.path)
        _locked_retry(lambda: self._conn.executescript(_SCHEMA))
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version in (0, 1):
            # 0 = fresh database; 1 = pre-journal schema, whose tables
            # are a strict subset -- the executescript above already
            # created the ``shards`` table, so stamping the version is
            # the whole migration.
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        elif version != SCHEMA_VERSION:
            raise ReproError(
                f"{self.path}: unsupported ledger schema {version} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        self._conn.commit()

    # -- write side ----------------------------------------------------------

    def record(
        self,
        command: str,
        label: str,
        config: dict,
        counters: dict,
        status: int = 0,
        wall_seconds: float | None = None,
        traps: dict | None = None,
        rate: dict | None = None,
        workers: dict | None = None,
        artifacts: list | None = None,
        ts: float | None = None,
        run_id: str | None = None,
    ) -> str:
        """Insert one run row; returns the run id.

        Retries on ``database is locked`` so the best-effort CLI write
        path survives concurrent writers (resumable shard journaling,
        parallel invocations, the future service layer).
        """
        run_id = run_id or uuid.uuid4().hex[:12]
        row = (
            run_id,
            time.time() if ts is None else ts,
            command,
            label,
            __version__,
            json.dumps(config, sort_keys=True),
            wall_seconds,
            status,
            json.dumps(traps, sort_keys=True) if traps else None,
            json.dumps(counters, sort_keys=True),
            json.dumps(rate, sort_keys=True) if rate else None,
            json.dumps(workers, sort_keys=True) if workers else None,
            json.dumps(list(artifacts or [])),
        )

        def _insert():
            self._conn.execute(
                "INSERT INTO runs (id, ts, command, label, version, config, "
                "wall_seconds, status, traps, counters, rate, workers, "
                "artifacts) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                row,
            )
            self._conn.commit()

        _locked_retry(_insert)
        return run_id

    # -- read side -----------------------------------------------------------

    def runs(self, label: str | None = None, command: str | None = None,
             last: int | None = None) -> list[RunRecord]:
        """Recorded runs, oldest first; ``last`` keeps the newest N."""
        clauses, params = [], []
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        # ``id`` breaks ties so same-second runs still order stably.
        sql += " ORDER BY ts DESC, id DESC"
        if last is not None:
            sql += " LIMIT ?"
            params.append(last)
        rows = self._conn.execute(sql, params).fetchall()
        return [_row_to_record(row) for row in reversed(rows)]

    def get(self, ref: str) -> RunRecord:
        """The run with id ``ref`` (full or unique prefix)."""
        rows = self._conn.execute(
            "SELECT * FROM runs WHERE id = ? OR id LIKE ? ORDER BY ts",
            (ref, ref + "%"),
        ).fetchall()
        if not rows:
            raise ReproError(f"no recorded run with id {ref!r}")
        if len(rows) > 1:
            raise AmbiguousRunId(ref, [row["id"] for row in rows[:5]])
        return _row_to_record(rows[0])

    def resolve(self, ref: str) -> RunRecord:
        """``ref`` as a run id (prefix), else the latest run of that label.

        An *ambiguous* id prefix is an error, not a fall-through: the
        user named runs, so the label fallback (or the generic
        "matches nothing" message) would silently answer a different
        question.  :class:`AmbiguousRunId` carries the candidates for
        the CLI to show.
        """
        try:
            return self.get(ref)
        except AmbiguousRunId:
            raise
        except ReproError:
            runs = self.runs(label=ref, last=1)
            if runs:
                return runs[-1]
            raise ReproError(
                f"{ref!r} matches no recorded run id or label "
                f"(see `tangled report` for what the ledger holds)"
            ) from None

    def labels(self) -> list[tuple[str, int]]:
        """Every distinct label with its recorded-run count."""
        rows = self._conn.execute(
            "SELECT label, COUNT(*) AS n FROM runs GROUP BY label "
            "ORDER BY label"
        ).fetchall()
        return [(row["label"], row["n"]) for row in rows]

    def shard_summary(self, run_id: str) -> dict | None:
        """Schema-v2 shard journal rollup for one run, or None.

        Counts the journaled shards of a supervised fan-out (the meta
        fingerprint row at shard ``-1`` is excluded): how many landed,
        how many needed more than one attempt, and how many were
        quarantined as toxic.  Runs without journal rows (serial runs,
        ``run``/``profile`` commands) report None, not zeros.
        """
        rows = self._conn.execute(
            "SELECT status, attempts FROM shards "
            "WHERE run_id = ? AND shard >= 0",
            (run_id,),
        ).fetchall()
        if not rows:
            return None
        return {
            "recorded": len(rows),
            "done": sum(1 for r in rows if r["status"] == SHARD_DONE),
            "toxic": sum(1 for r in rows if r["status"] == SHARD_TOXIC),
            "retried": sum(1 for r in rows if r["attempts"] > 1),
        }

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def open_ledger(path: str | None = None) -> Ledger:
    """Open (creating if needed) the ledger at ``path`` (resolved)."""
    return Ledger(path)


# ---------------------------------------------------------------------------
# Shard journal (resumable campaigns and sweeps)
# ---------------------------------------------------------------------------

class ShardJournal:
    """Per-shard result journal for one resumable fan-out.

    The supervised campaign/bench runners record every shard's terminal
    state here as it completes, keyed by ``(run_id, shard)``: ``done``
    rows carry the exact payload that enters the merged report, so
    ``tangled faults|bench --resume <run-id>`` can re-execute only the
    missing and ``toxic`` shards and still emit byte-identical output.
    A ``meta`` row (shard ``-1``) pins the run's semantic fingerprint --
    a resume with different campaign arguments is refused rather than
    silently merged into nonsense.

    Writes are best-effort in the same sense as the run ledger: one
    short-lived WAL connection per write, retried on lock contention; a
    journaling failure disables the journal for the rest of the run
    and warns once on stderr, never failing the campaign itself.
    """

    def __init__(self, run_id: str, path: str | None = None,
                 resume: bool = False):
        from repro.errors import SupervisorError

        self.run_id = run_id
        self.path = ledger_path(path)
        self.resume = resume
        self.enabled = True
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # The journal may open before the CLI's Ledger (which owns the
        # schema on the record path) ever touches this database --
        # create the tables here so the first shard write cannot fail.
        conn = _connect(self.path)
        try:
            _locked_retry(lambda: conn.executescript(_SCHEMA))
            conn.commit()
            if resume:
                # Resume target must exist before any work is scheduled.
                row = conn.execute(
                    "SELECT COUNT(*) FROM shards WHERE run_id = ?",
                    (run_id,),
                ).fetchone()
        finally:
            conn.close()
        if resume:
            if not row[0]:
                raise SupervisorError(
                    f"no journaled shards for run id {run_id!r} "
                    f"(nothing to resume)"
                )

    def _write(self, fn) -> None:
        if not self.enabled:
            return
        try:
            conn = _connect(self.path)
            try:
                def _commit():
                    fn(conn)
                    conn.commit()

                _locked_retry(_commit)
            finally:
                conn.close()
        except Exception as exc:  # journaling must never fail the run
            self.enabled = False
            import sys

            print(f"tangled: shard journal: {exc} (resume disabled for "
                  f"this run)", file=sys.stderr)

    def begin(self, kind: str, fingerprint: dict) -> dict[int, dict]:
        """Open the journal; returns already-completed shard payloads.

        On a fresh run the ``meta`` row is written and ``{}`` returned.
        On resume the stored fingerprint must equal ``fingerprint``
        (same kind, same semantic arguments) or a
        :class:`~repro.errors.SupervisorError` is raised; the returned
        mapping holds every ``done`` shard's payload.
        """
        from repro.errors import SupervisorError

        record = {"kind": kind, "fingerprint": fingerprint}
        if not self.resume:
            self._write(lambda conn: conn.execute(
                "INSERT OR REPLACE INTO shards "
                "(run_id, shard, status, attempts, payload) "
                "VALUES (?, -1, ?, 0, ?)",
                (self.run_id, SHARD_META,
                 json.dumps(record, sort_keys=True)),
            ))
            return {}
        conn = _connect(self.path)
        try:
            _locked_retry(lambda: conn.executescript(_SCHEMA))
            meta = conn.execute(
                "SELECT payload FROM shards WHERE run_id = ? AND shard = -1",
                (self.run_id,),
            ).fetchone()
            if meta is None:
                raise SupervisorError(
                    f"run {self.run_id!r} has journaled shards but no "
                    f"fingerprint; cannot verify a resume against it"
                )
            stored = json.loads(meta["payload"])
            if stored != record:
                drift = sorted(
                    key for key in set(stored.get("fingerprint", {}))
                    | set(fingerprint)
                    if stored.get("fingerprint", {}).get(key)
                    != fingerprint.get(key)
                ) or ["kind"]
                raise SupervisorError(
                    f"cannot resume run {self.run_id!r}: arguments differ "
                    f"from the journaled campaign ({', '.join(drift)})"
                )
            rows = conn.execute(
                "SELECT shard, payload FROM shards "
                "WHERE run_id = ? AND shard >= 0 AND status = ?",
                (self.run_id, SHARD_DONE),
            ).fetchall()
        finally:
            conn.close()
        return {row["shard"]: json.loads(row["payload"]) for row in rows}

    def record(self, shard: int, status: str, attempts: int,
               payload: dict) -> None:
        """Journal one shard's terminal state (replacing any prior row)."""
        self._write(lambda conn: conn.execute(
            "INSERT OR REPLACE INTO shards "
            "(run_id, shard, status, attempts, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            (self.run_id, shard, status, attempts,
             json.dumps(payload, sort_keys=True)),
        ))


def journal_fingerprint(run_id: str, path: str | None = None) -> dict:
    """The journaled ``{"kind", "fingerprint"}`` meta record for a run.

    This is how ``--resume <run-id>`` restores the original campaign
    shape (program, seed, rounds ...) without the caller repeating it
    on the command line.  Raises :class:`~repro.errors.SupervisorError`
    when the run journaled shards but never a ``meta`` row.
    """
    from repro.errors import SupervisorError

    conn = _connect(ledger_path(path))
    try:
        row = conn.execute(
            "SELECT payload FROM shards WHERE run_id = ? AND shard = -1",
            (run_id,),
        ).fetchone()
    finally:
        conn.close()
    if row is None:
        raise SupervisorError(
            f"run {run_id!r} has journaled shards but no fingerprint; "
            f"cannot restore its arguments for a resume"
        )
    return json.loads(row["payload"])


def resolve_journal_run(ref: str, path: str | None = None) -> str:
    """Resolve ``ref`` (a run id or unique prefix) against the journal."""
    resolved = ledger_path(path)
    if not os.path.exists(resolved):
        raise ReproError(
            f"no run ledger at {resolved}; nothing to resume"
        )
    conn = _connect(resolved)
    try:
        _locked_retry(lambda: conn.executescript(_SCHEMA))
        rows = conn.execute(
            "SELECT DISTINCT run_id FROM shards "
            "WHERE run_id = ? OR run_id LIKE ? ORDER BY run_id",
            (ref, ref + "%"),
        ).fetchall()
    finally:
        conn.close()
    ids = [row["run_id"] for row in rows]
    if not ids:
        raise ReproError(
            f"no journaled run matches {ref!r} (resume needs a run id "
            f"from an interrupted or toxic campaign)"
        )
    if ref in ids:
        return ref
    if len(ids) > 1:
        raise AmbiguousRunId(ref, ids[:5])
    return ids[0]


# ---------------------------------------------------------------------------
# Telemetry snapshot split
# ---------------------------------------------------------------------------

def scalar_snapshot(telemetry) -> tuple[dict, dict]:
    """Split a telemetry instance into ``(counters, progress)``.

    ``counters`` holds every scalar (non-histogram) metric *except* the
    ``progress.`` namespace -- the deterministic part, safe to diff
    across identical runs.  ``progress`` holds the per-worker fan-out
    gauges, which are wall-clock shaped and stored beside the snapshot.
    """
    from repro.obs.metrics import Histogram

    counters: dict = {}
    progress: dict = {}
    if telemetry is None:
        return counters, progress
    for name, metric in telemetry.metrics.items():
        if isinstance(metric, Histogram):
            continue
        if name.startswith("progress."):
            progress[name] = metric.value
        else:
            counters[name] = metric.value
    return counters, progress


# ---------------------------------------------------------------------------
# Views (the read side behind ``tangled report``)
# ---------------------------------------------------------------------------

def runs_view(ledger: Ledger, last: int = 20) -> dict:
    """The recent-run listing (with per-run shard journal rollups)."""
    entries = []
    for run in ledger.runs(last=last):
        entry = run.as_dict()
        entry["shards"] = ledger.shard_summary(run.id)
        entries.append(entry)
    return {
        "view": "runs",
        "ledger": ledger.path,
        "runs": entries,
        "labels": [
            {"label": label, "runs": count}
            for label, count in ledger.labels()
        ],
    }


def trajectory_view(ledger: Ledger, label: str, last: int = 10) -> dict:
    """Counter/rate series across the last N recorded runs of ``label``.

    ``series`` maps each metric name to one value per run (None where a
    run lacks it); ``deltas`` carries first/last/pct for every metric
    present at both ends of the window.
    """
    runs = ledger.runs(label=label, last=last)
    if not runs:
        known = ", ".join(name for name, _ in ledger.labels()) or "(empty)"
        raise ReproError(
            f"no recorded runs for label {label!r} (ledger has: {known})"
        )
    metrics_per_run = [run.metrics() for run in runs]
    names = sorted(set().union(*metrics_per_run))
    series = {
        name: [metrics.get(name) for metrics in metrics_per_run]
        for name in names
    }
    deltas = {}
    for name, values in series.items():
        first, final = values[0], values[-1]
        if first is None or final is None:
            continue
        pct = None if first == 0 else round((final - first) / abs(first), 6)
        deltas[name] = {"first": first, "last": final, "pct": pct}
    return {
        "view": "trajectory",
        "ledger": ledger.path,
        "label": label,
        "runs": [
            {
                "id": run.id,
                "ts": run.ts,
                "version": run.version,
                "status": run.status,
                "wall_seconds": run.wall_seconds,
            }
            for run in runs
        ],
        "series": series,
        "deltas": deltas,
    }


def compare_view(ledger: Ledger, ref_a: str, ref_b: str,
                 counter_threshold: float = 0.05,
                 time_threshold: float = 0.25) -> dict:
    """Side-by-side of two recorded runs (ids or labels, A = baseline).

    Classification reuses the bench ``--compare`` logic: every shared
    metric becomes improved/regressed/neutral, with the wall-clock
    ``rate.*`` entries judged against the looser timing threshold.
    """
    from repro.obs.bench import _classify

    a, b = ledger.resolve(ref_a), ledger.resolve(ref_b)
    metrics_a, metrics_b = a.metrics(), b.metrics()
    rows = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        in_a, in_b = name in metrics_a, name in metrics_b
        if not (in_a and in_b):
            rows.append({
                "metric": name, "kind": "missing",
                "baseline": metrics_a.get(name),
                "current": metrics_b.get(name),
                "verdict": "neutral",
            })
            continue
        timing = name.startswith("rate.")
        threshold = time_threshold if timing else counter_threshold
        # _classify treats unknown metrics as costs; steps/sec is a
        # throughput, so its non-neutral verdicts flip.
        verdict = _classify(name, metrics_a[name], metrics_b[name], threshold)
        if name == "rate.steps_per_second" and verdict != "neutral":
            verdict = "improved" if verdict == "regressed" else "regressed"
        rows.append({
            "metric": name, "kind": "timing" if timing else "counter",
            "baseline": metrics_a[name], "current": metrics_b[name],
            "verdict": verdict,
        })
    def _meta(run: RunRecord) -> dict:
        return {
            "id": run.id,
            "ts": run.ts,
            "command": run.command,
            "label": run.label,
            "version": run.version,
            "status": run.status,
            "config": run.config,
            "shards": ledger.shard_summary(run.id),
        }
    return {
        "view": "compare",
        "ledger": ledger.path,
        "a": _meta(a),
        "b": _meta(b),
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def export_json(view: dict) -> str:
    """Canonical serialization: same ledger content, same bytes."""
    return json.dumps(view, sort_keys=True, indent=2) + "\n"


def _when(ts: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(ts))


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def _shard_note(shards: dict | None) -> str:
    """Suffix annotating a run's journaled fan-out recovery, if any."""
    if not shards:
        return ""
    parts = []
    if shards.get("retried"):
        parts.append(f"{shards['retried']} retried")
    if shards.get("toxic"):
        parts.append(f"{shards['toxic']} toxic")
    if not parts:
        return ""
    return f"  [shards: {', '.join(parts)}]"


def _render_runs(view: dict) -> str:
    lines = [f"== run ledger ({view['ledger']}) =="]
    if not view["runs"]:
        lines.append("  (empty -- run any tangled command to record)")
        return "\n".join(lines)
    lines.append(f"  {'id':<12} {'when (UTC)':<19} {'command':<8} "
                 f"{'status':<6} {'wall':>8}  label")
    for run in view["runs"]:
        wall = "-" if run["wall_seconds"] is None else \
            f"{run['wall_seconds']:.2f}s"
        line = (
            f"  {run['id']:<12} {_when(run['ts']):<19} "
            f"{run['command']:<8} {run['status']:<6} {wall:>8}  "
            f"{run['label']}"
        )
        line += _shard_note(run.get("shards"))
        lines.append(line)
    lines.append("labels:")
    for entry in view["labels"]:
        lines.append(f"  {entry['label']:<40} {entry['runs']} run(s)")
    return "\n".join(lines)


def _render_trajectory(view: dict) -> str:
    runs = view["runs"]
    lines = [
        f"== trajectory: {view['label']} "
        f"({len(runs)} run(s), oldest first) =="
    ]
    for run in runs:
        wall = "-" if run["wall_seconds"] is None else \
            f"{run['wall_seconds']:.2f}s"
        lines.append(
            f"  {run['id']:<12} {_when(run['ts'])}  v{run['version']}  "
            f"status {run['status']}  wall {wall}"
        )
    moved, flat = [], []
    for name, values in sorted(view["series"].items()):
        delta = view["deltas"].get(name)
        path = " -> ".join(_fmt(v) for v in values)
        if delta and delta["first"] != delta["last"]:
            pct = "" if delta["pct"] is None else f"  ({delta['pct']:+.2%})"
            moved.append(f"  {name}: {path}{pct}")
        else:
            flat.append(f"  {name}: {_fmt(values[-1])}")
    if moved:
        lines += ["changed:"] + moved
    if flat:
        lines += [f"unchanged across the window ({len(flat)}):"] + flat
    return "\n".join(lines)


def _render_compare(view: dict) -> str:
    a, b = view["a"], view["b"]

    def _quarantine_suffix(meta: dict) -> str:
        shards = meta.get("shards") or {}
        if not shards.get("toxic"):
            return ""
        return f"  [quarantined: {shards['toxic']} toxic shard(s)]"

    lines = [
        "== ledger comparison ==",
        f"  A (baseline): {a['id']}  {a['label']}  "
        f"{_when(a['ts'])}  v{a['version']}" + _quarantine_suffix(a),
        f"  B (current) : {b['id']}  {b['label']}  "
        f"{_when(b['ts'])}  v{b['version']}" + _quarantine_suffix(b),
    ]
    shown = [r for r in view["rows"] if r["verdict"] != "neutral"]
    if not shown:
        lines.append("  all shared metrics neutral")
    for row in shown:
        lines.append(
            f"  [{row['verdict']:<9}] {row['metric']}: "
            f"{_fmt(row['baseline'])} -> {_fmt(row['current'])}"
        )
    counts: dict[str, int] = {}
    for row in view["rows"]:
        counts[row["verdict"]] = counts.get(row["verdict"], 0) + 1
    lines.append(
        f"  {counts.get('improved', 0)} improved, "
        f"{counts.get('regressed', 0)} regressed, "
        f"{counts.get('neutral', 0)} neutral"
    )
    return "\n".join(lines)


def render_view(view: dict) -> str:
    """Human-readable rendering of any report view."""
    renderers = {
        "runs": _render_runs,
        "trajectory": _render_trajectory,
        "compare": _render_compare,
    }
    kind = view.get("view")
    if kind not in renderers:
        raise ReproError(f"unknown report view {kind!r}")
    return renderers[kind](view)
