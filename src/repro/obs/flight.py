"""Architectural flight recorder: an always-on black box for post-mortems.

Telemetry (:mod:`repro.obs`) answers "how did the run perform?" and is
opt-in because capture disables the fast path.  This module answers a
different question -- "what was the machine *doing* when it died?" --
and therefore has the opposite cost contract: it is **on by default**,
bounded, and cheap enough that the stripped fast loops keep their
eligibility with it enabled.

The process-global :data:`RECORDER` keeps the last
:data:`DEFAULT_CAPACITY` architectural events in a trimmed list of
fixed-size tuples (one small tuple per event, no dicts or objects on
the hot path):

- retired PC + raw instruction word(s) (from the executor tail and the
  fast run loops);
- taken traps with cause/cycle/detail (:func:`repro.faults.traps.deliver`);
- syscalls with their service number;
- checkpoint save/restore/capture/load operations;
- injected fault events (:func:`repro.faults.inject.apply_event`);
- supervisor lifecycle marks (retries, kills, quarantines) and campaign
  run boundaries.

On an abnormal end -- a trap-halt, a :class:`~repro.errors.SimulatorError`,
a shard deadline, Ctrl-C -- the ring is spilled as a byte-stable
``blackbox-<run-id>[-shard<N>].json`` (sorted keys, no timestamps) that
``tangled blackbox`` renders back as a disassembled listing.  Supervised
workers spill to a *spool* directory (:data:`SPOOL_ENV`) from inside the
worker -- armed via ``SIGALRM`` ahead of the shard deadline, and on any
worker-side error -- because the parent's deadline kill is a SIGKILL the
worker can never catch.  The supervisor collects the spool files of
quarantined shards into the campaign report and the run ledger's
``artifacts`` column.

Batched campaigns (``tangled faults --batch N``,
:mod:`repro.cpu.batch`) run in a *downgraded* recording mode: campaign
marks, fault notes, trap notes, and syscall notes still land in the
ring, but the per-instruction retire stream is dropped -- recording one
event per lane per step would serialize the vectorized dispatch.  A
blackbox spilled from a batch campaign therefore carries breadcrumbs
and trap context, not an instruction listing.

Like :mod:`repro.obs.runtime`, this module imports nothing from the rest
of ``repro`` at module level so every layer can record into it without
import cycles.  ``TANGLED_FLIGHT=0`` disables recording process-wide;
``TANGLED_FLIGHT=<n>`` resizes the ring.
"""

from __future__ import annotations

import json
import os

#: Ring capacity (events kept) unless ``TANGLED_FLIGHT`` overrides it.
DEFAULT_CAPACITY = 4096

#: Blackbox file format version (the ``"blackbox"`` key of every spill).
FORMAT_VERSION = 1

#: Environment variable: ``0``/``off`` disables the recorder, an integer
#: resizes the ring.
ENV_VAR = "TANGLED_FLIGHT"

#: Spool directory workers spill into before the parent can SIGKILL them.
SPOOL_ENV = "TANGLED_BLACKBOX_SPOOL"

#: Run id used for spool file names (set beside :data:`SPOOL_ENV`).
SPOOL_RUN_ENV = "TANGLED_BLACKBOX_RUN"

#: Directory override for parent-side blackbox spills (default: a
#: ``blackbox/`` directory beside the run ledger database).
DIR_ENV = "TANGLED_BLACKBOX_DIR"

#: Event kind tags (the first element of every ring tuple).
RETIRE, TRAP, SYSCALL, CHECKPOINT, FAULT, MARK = range(6)

_KIND_NAMES = ("retire", "trap", "syscall", "checkpoint", "fault", "mark")


class FlightRecorder:
    """Bounded ring of architectural events as fixed-size tuples.

    The hot path is an inlined ``events.append((RETIRE, pc, raw))`` in
    the fast run loops (no method call, no per-retire object beyond the
    event tuple itself); everything else goes through the ``note_*``
    helpers.  The list is trimmed back to ``capacity`` whenever it
    reaches ``2 * capacity``, so appends stay O(1) amortized and memory
    stays bounded at a few hundred KiB.
    """

    __slots__ = ("capacity", "limit", "events", "trimmed", "enabled")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = True):
        self.capacity = max(1, int(capacity))
        #: trim threshold checked by the inlined hot-path append.
        self.limit = 2 * self.capacity
        #: the ring: ``(kind, pc, payload)`` tuples, oldest first.
        self.events: list[tuple] = []
        #: events dropped by trims (``trimmed + len(events)`` = total).
        self.trimmed = 0
        self.enabled = enabled

    # -- recording -----------------------------------------------------------

    def _trim(self) -> None:
        events = self.events
        if len(events) >= self.limit:
            drop = len(events) - self.capacity
            self.trimmed += drop
            del events[:drop]

    def note_retire(self, pc: int, raw: tuple) -> None:
        """One retired instruction (slow path; fast loops inline this)."""
        self.events.append((RETIRE, pc, raw))
        self._trim()

    def note_trap(self, pc: int, cause: str, cycle, instret: int,
                  detail: str) -> None:
        self.events.append((TRAP, pc, (cause, cycle, instret, detail)))
        self._trim()

    def note_syscall(self, pc: int, service: int) -> None:
        self.events.append((SYSCALL, pc, service))
        self._trim()

    def note_checkpoint(self, op: str, detail: str = "") -> None:
        self.events.append((CHECKPOINT, 0, (op, detail)))
        self._trim()

    def note_fault(self, target: str, detail: str = "") -> None:
        self.events.append((FAULT, 0, (target, detail)))
        self._trim()

    def mark(self, label: str, detail: str = "") -> None:
        self.events.append((MARK, 0, (label, detail)))
        self._trim()

    # -- reading -------------------------------------------------------------

    def total(self) -> int:
        """Events recorded since the last :meth:`reset` (incl. trimmed)."""
        return self.trimmed + len(self.events)

    def reset(self) -> None:
        self.events.clear()
        self.trimmed = 0

    def snapshot(self, reason: str = "", run_id: str | None = None,
                 shard: int | None = None, context: dict | None = None,
                 last: int | None = None) -> dict:
        """JSON-ready, deterministic rendering of the ring's tail.

        ``context`` carries run facts the events alone cannot (ways for
        the Qat bit-volume summary, command, program, backend).  No
        wall-clock fields: two snapshots of identical rings serialize to
        identical bytes.
        """
        keep = self.capacity if last is None else max(0, int(last))
        tail = self.events[-keep:] if keep else []
        context = dict(sorted((context or {}).items()))
        ways = context.get("ways")
        events = []
        qat_ops = 0
        qat_bits = 0
        for kind, pc, payload in tail:
            if kind == RETIRE:
                entry = {"kind": "retire", "pc": pc,
                         "raw": [int(w) for w in payload]}
                qat = _qat_annotation(payload, ways)
                if qat is not None:
                    entry["qat"] = qat
                    qat_ops += 1
                    qat_bits += qat.get("bits") or 0
            elif kind == TRAP:
                cause, cycle, instret, detail = payload
                entry = {"kind": "trap", "pc": pc, "cause": cause,
                         "cycle": cycle, "instret": instret,
                         "detail": detail}
            elif kind == SYSCALL:
                entry = {"kind": "syscall", "pc": pc, "service": payload}
            elif kind == CHECKPOINT:
                entry = {"kind": "checkpoint", "op": payload[0],
                         "detail": payload[1]}
            elif kind == FAULT:
                entry = {"kind": "fault", "target": payload[0],
                         "detail": payload[1]}
            else:
                entry = {"kind": "mark", "label": payload[0],
                         "detail": payload[1]}
            events.append(entry)
        dropped = self.total() - len(tail)
        return {
            "blackbox": FORMAT_VERSION,
            "run_id": run_id,
            "shard": shard,
            "reason": reason,
            "capacity": self.capacity,
            "events_total": self.total(),
            "events_dropped": dropped,
            "context": context,
            "qat_summary": {"ops": qat_ops, "bits": qat_bits},
            "events": events,
        }


def _qat_annotation(raw, ways) -> dict | None:
    """``{"op", "ways", "bits"}`` when ``raw`` decodes to a Qat op.

    Derived at snapshot time (never on the hot path): the bit volume of
    a Qat op is the register size ``2**ways``, a pure function of the
    recorded word(s) and the run's ways.
    """
    if (raw[0] >> 12) not in (0x8, 0x9):
        return None
    from repro.errors import EncodingError
    from repro.isa.encoding import decode

    try:
        instr, _ = decode(list(raw), 0)
    except EncodingError:
        return None
    if not instr.mnemonic.startswith("q"):
        return None
    return {
        "op": instr.mnemonic,
        "ways": ways,
        "bits": (1 << ways) if isinstance(ways, int) else None,
    }


#: The process-global recorder every instrumented layer appends into.
def _from_env() -> FlightRecorder:
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in ("0", "off", "false"):
        return FlightRecorder(enabled=False)
    try:
        capacity = int(value) if value else DEFAULT_CAPACITY
    except ValueError:
        capacity = DEFAULT_CAPACITY
    return FlightRecorder(capacity=max(1, capacity))


RECORDER = _from_env()


# ---------------------------------------------------------------------------
# Spill files
# ---------------------------------------------------------------------------

def export_json(payload) -> str:
    """Canonical serialization: same content, same bytes."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def blackbox_dir() -> str:
    """Where parent-side spills land: ``$TANGLED_BLACKBOX_DIR``, else a
    ``blackbox/`` directory beside the run ledger database."""
    override = os.environ.get(DIR_ENV)
    if override:
        return override
    ledger = os.environ.get("TANGLED_LEDGER")
    base = os.path.dirname(ledger) if ledger else os.path.expanduser("~/.tangled")
    return os.path.join(base or ".", "blackbox")


def spill_path(run_id: str, shard: int | None = None,
               directory: str | None = None) -> str:
    name = f"blackbox-{run_id}.json" if shard is None \
        else f"blackbox-{run_id}-shard{shard}.json"
    return os.path.join(directory or blackbox_dir(), name)


def spill(path: str, reason: str, run_id: str | None = None,
          shard: int | None = None, context: dict | None = None,
          recorder: FlightRecorder | None = None) -> str:
    """Write the recorder's snapshot to ``path`` (creating directories)."""
    recorder = recorder if recorder is not None else RECORDER
    snap = recorder.snapshot(reason=reason, run_id=run_id, shard=shard,
                             context=context)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(export_json(snap))
    return path


def load_blackbox(path: str) -> dict:
    """Read a spilled blackbox file back, validating the format tag."""
    from repro.errors import ReproError

    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read blackbox {path!r}: {exc}") from None
    if not isinstance(doc, dict) or "blackbox" not in doc:
        raise ReproError(f"{path!r} is not a blackbox spill file")
    return doc


# ---------------------------------------------------------------------------
# Worker spool (survives the supervisor's SIGKILL)
# ---------------------------------------------------------------------------

def configure_spool(run_id: str, directory: str | None = None) -> str:
    """Arm worker self-dumps for one fan-out (parent, before spawning).

    Sets the spool environment so forked workers know where to spill;
    returns the directory.  Call :func:`clear_spool` when the fan-out
    is done so later in-process runs do not inherit it.
    """
    directory = directory or blackbox_dir()
    os.makedirs(directory, exist_ok=True)
    os.environ[SPOOL_ENV] = directory
    os.environ[SPOOL_RUN_ENV] = run_id
    return directory


def clear_spool() -> None:
    os.environ.pop(SPOOL_ENV, None)
    os.environ.pop(SPOOL_RUN_ENV, None)


def spool_file(shard: int) -> str | None:
    """This process's spool path for ``shard`` (None when unconfigured)."""
    directory = os.environ.get(SPOOL_ENV)
    run_id = os.environ.get(SPOOL_RUN_ENV)
    if not directory or not run_id:
        return None
    return spill_path(run_id, shard=shard, directory=directory)


#: Context dict merged into worker-side spool spills.  The campaign
#: layer refreshes it per task (program, sim, ways, backend, run,
#: attempt) so a spilled ring carries enough to interpret its events --
#: ``ways`` in particular drives the Qat bit-volume annotation.
WORKER_CONTEXT: dict = {}


def spool_spill(shard: int, reason: str,
                context: dict | None = None) -> str | None:
    """Worker-side spill for ``shard``; first spill wins, never raises.

    First-spill-wins because the first failing attempt ran in a worker
    with real history in its ring; retries land on freshly spawned
    replacements whose rings are nearly empty.
    """
    path = spool_file(shard)
    if path is None or os.path.exists(path):
        return path
    run_id = os.environ.get(SPOOL_RUN_ENV)
    try:
        return spill(path, reason, run_id=run_id, shard=shard,
                     context=context if context is not None
                     else dict(WORKER_CONTEXT))
    except Exception:
        return None


def spool_collect(shard: int) -> str | None:
    """Parent-side: the spool file a worker left for ``shard``, if any."""
    path = spool_file(shard)
    return path if path is not None and os.path.exists(path) else None


def spool_discard(shard: int) -> None:
    """Drop the spool file of a shard that ultimately succeeded."""
    path = spool_file(shard)
    if path is not None:
        try:
            os.unlink(path)
        except OSError:
            pass


def arm_deadline_dump(shard: int, timeout: float | None):
    """Arm a ``SIGALRM`` self-dump shortly *before* the shard deadline.

    The supervisor's deadline enforcement is a SIGKILL -- uncatchable --
    so the worker must dump ahead of it.  The timer fires at 80% of the
    budget, spills the ring, and returns (PEP 475 resumes whatever the
    worker was doing, so a shard finishing under the wire is unharmed).
    Returns a disarm callable (a no-op when timers are unavailable).
    """
    import signal

    if (timeout is None or timeout <= 0
            or not hasattr(signal, "setitimer")
            or spool_file(shard) is None):
        return lambda: None

    def _dump(signum, frame):
        spool_spill(shard, "deadline")

    try:
        previous = signal.signal(signal.SIGALRM, _dump)
        signal.setitimer(signal.ITIMER_REAL, max(0.05, timeout * 0.8))
    except (ValueError, OSError):
        return lambda: None

    def _disarm():
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        except (ValueError, OSError):
            pass

    return _disarm


# ---------------------------------------------------------------------------
# Rendering (``tangled blackbox``)
# ---------------------------------------------------------------------------

def render_blackbox(doc: dict, last: int | None = None) -> str:
    """Disassembled listing of a blackbox's final events.

    Retired instructions render through
    :func:`repro.asm.disasm.render_listing` (address patched to the
    recorded PC) and carry their Qat ways/bit-volume annotation; traps,
    syscalls, faults, checkpoints and marks render as indented
    annotation lines between them.
    """
    from repro.asm.disasm import render_listing

    events = doc.get("events", [])
    if last is not None:
        events = events[-max(0, int(last)):]
    head = f"== blackbox {doc.get('run_id') or '(unlabeled)'}"
    if doc.get("shard") is not None:
        head += f" shard {doc['shard']}"
    head += f" == reason: {doc.get('reason') or 'unknown'}"
    lines = [head]
    total = doc.get("events_total", len(events))
    lines.append(
        f"  {len(events)} of {total} recorded event(s) "
        f"(ring capacity {doc.get('capacity')})"
    )
    qat = doc.get("qat_summary") or {}
    if qat.get("ops"):
        lines.append(
            f"  qat: {qat['ops']} op(s), {qat.get('bits', 0)} bits touched"
        )
    for event in events:
        kind = event.get("kind")
        if kind == "retire":
            listing = render_listing(event["raw"])
            text = f"{event['pc']:04x}" + listing[4:]
            ann = event.get("qat")
            if ann:
                extra = f"  ; qat {ann['op']}"
                if ann.get("ways") is not None:
                    extra += f" ways={ann['ways']} bits={ann['bits']}"
                text += extra
            lines.append("  " + text)
        elif kind == "trap":
            cycle = "" if event.get("cycle") is None \
                else f" cycle={event['cycle']}"
            lines.append(
                f"  ** trap {event['cause']} @ pc={event['pc']:04x}"
                f"{cycle} instret={event.get('instret')}"
                + (f": {event['detail']}" if event.get("detail") else "")
            )
        elif kind == "syscall":
            lines.append(
                f"  -- syscall service={event['service']} "
                f"@ pc={event['pc']:04x}"
            )
        elif kind == "checkpoint":
            lines.append(
                f"  -- checkpoint {event['op']}"
                + (f": {event['detail']}" if event.get("detail") else "")
            )
        elif kind == "fault":
            lines.append(
                f"  !! fault injected: {event['target']}"
                + (f" ({event['detail']})" if event.get("detail") else "")
            )
        else:
            lines.append(
                f"  .. {event.get('label', 'mark')}"
                + (f": {event['detail']}" if event.get("detail") else "")
            )
    return "\n".join(lines)
