"""Nested span tracing with a near-zero-cost path when disabled.

Spans come in two time domains:

- **wall-clock spans** (``Tracer.span`` / ``begin`` / ``end``) timestamped
  with :func:`time.perf_counter_ns`, for real elapsed time (gate
  optimizer passes, bench timings, whole simulator runs);
- **synthetic spans** (``Tracer.complete``) whose timestamps the caller
  supplies in any unit it likes -- the pipelined simulator emits its
  per-stage occupancy on a *cycle* timebase, one simulated cycle per
  trace microsecond, which is what makes the pipeline diagram legible in
  Perfetto.

The two domains are kept apart in the Chrome export by process id (see
:mod:`repro.obs.sinks`).  When tracing is off, the telemetry facade never
reaches this module: disabled ``span()`` calls return a shared no-op
context manager (:data:`NULL_SPAN`), so the hot-path cost is one branch.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Process-id namespaces for the Chrome export.
PID_WALL = 1       # real-time spans (perf_counter_ns domain)
PID_PIPELINE = 2   # synthetic cycle-domain spans from the pipeline
PID_PROFILE = 3    # profiler flamegraph (attributed-cycle domain)
PID_WORKERS = 4    # --jobs fan-out worker heartbeats (wall-clock domain)


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


@dataclass
class SpanRecord:
    """One completed span."""

    name: str
    cat: str
    ts_ns: int          # start timestamp (ns in its domain)
    dur_ns: int         # duration (ns in its domain)
    pid: int = PID_WALL
    tid: str = "main"
    depth: int = 0
    args: dict = field(default_factory=dict)


@dataclass
class InstantRecord:
    """A zero-duration marker event."""

    name: str
    ts_ns: int
    pid: int = PID_WALL
    tid: str = "main"
    args: dict = field(default_factory=dict)


@dataclass
class CounterRecord:
    """A sampled counter value (renders as a graph track in Perfetto)."""

    name: str
    ts_ns: int
    value: float
    pid: int = PID_WALL


class Tracer:
    """Collects span/instant/counter events, bounded by ``max_events``.

    Events past the cap are counted in ``dropped`` rather than silently
    vanishing -- the same honesty rule as
    :class:`repro.cpu.trace.ExecutionTrace`.
    """

    def __init__(self, max_events: int = 1_000_000):
        self.max_events = max_events
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.counters: list[CounterRecord] = []
        self.dropped = 0
        self._stack: list[tuple[str, str, int, dict]] = []

    # -- wall-clock spans ----------------------------------------------------

    def begin(self, name: str, cat: str = "", **args) -> None:
        """Open a nested span; close with :meth:`end`."""
        self._stack.append((name, cat, time.perf_counter_ns(), args))

    def end(self) -> SpanRecord | None:
        """Close the innermost open span and record it."""
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        name, cat, ts, args = self._stack.pop()
        record = SpanRecord(
            name=name,
            cat=cat,
            ts_ns=ts,
            dur_ns=time.perf_counter_ns() - ts,
            depth=len(self._stack),
            args=args,
        )
        self._push(self.spans, record)
        return record

    @contextmanager
    def span(self, name: str, cat: str = "", **args):
        """Context manager form of :meth:`begin`/:meth:`end`."""
        self.begin(name, cat, **args)
        try:
            yield self
        finally:
            self.end()

    # -- synthetic / preformed events ----------------------------------------

    def complete(self, name: str, ts_ns: int, dur_ns: int, *,
                 cat: str = "", pid: int = PID_WALL, tid: str = "main",
                 **args) -> None:
        """Record a span whose timestamps the caller already knows."""
        self._push(self.spans, SpanRecord(
            name=name, cat=cat, ts_ns=ts_ns, dur_ns=dur_ns,
            pid=pid, tid=tid, args=args,
        ))

    def instant(self, name: str, ts_ns: int | None = None, *,
                pid: int = PID_WALL, tid: str = "main", **args) -> None:
        """Record a point-in-time marker."""
        if ts_ns is None:
            ts_ns = time.perf_counter_ns()
        self._push(self.instants, InstantRecord(
            name=name, ts_ns=ts_ns, pid=pid, tid=tid, args=args,
        ))

    def sample(self, name: str, value: float, ts_ns: int | None = None, *,
               pid: int = PID_WALL) -> None:
        """Record one point of a counter time series."""
        if ts_ns is None:
            ts_ns = time.perf_counter_ns()
        self._push(self.counters, CounterRecord(
            name=name, ts_ns=ts_ns, value=value, pid=pid,
        ))

    # -- internals ------------------------------------------------------------

    def _push(self, bucket: list, record) -> None:
        if len(self.spans) + len(self.instants) + len(self.counters) \
                >= self.max_events:
            self.dropped += 1
            return
        bucket.append(record)

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)
