"""Statistics-aware benchmark runner behind ``tangled bench``.

The experiment harness (``benchmarks/harness.py``) prints tables; this
module turns a curated subset of those workloads into a *regression
instrument*: every bench runs ``warmup + rounds`` times, each round
under a fresh telemetry capture, and the report records

- **counters** -- every scalar metric the round produced (CPI, cycles,
  stalls, Qat op/bit volume, chunkstore hits).  These are deterministic
  functions of the workload, so two runs of the same tree produce
  byte-identical counter sections -- the property CI leans on; and
- **timing** -- median / IQR / min / mean wall-clock seconds across
  rounds.  Timing varies run to run and is therefore *recorded but not
  gated* unless explicitly requested.

:func:`write_report` serializes with sorted keys and a fixed layout, so
``BENCH_<label>.json`` files diff cleanly and append naturally to a
trajectory (compare any two with ``tangled bench --compare``).
:func:`compare_reports` classifies each shared metric as improved /
regressed / neutral against configurable relative thresholds, knowing
which metrics are better high (hit counts, bytes saved) and which are
better low (everything else).
"""

from __future__ import annotations

import json
import statistics
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError

#: Report format version.
SCHEMA = 1

#: Metrics where *larger* is the improvement; every other metric is
#: treated as a cost (cycles, stalls, seconds, bit volume).
HIGHER_IS_BETTER = (
    "chunkstore.binop.hit",
    "chunkstore.bytes_saved",
    "pipeline.retired",
    "faults.masked",
)


@dataclass(frozen=True)
class BenchSpec:
    """One named workload: a zero-argument callable run per round."""

    name: str
    fn: Callable[[], object]
    description: str = ""
    #: False runs the round with telemetry *uninstalled* (so simulators
    #: take the fast path) and records an empty counter section.
    capture: bool = True
    #: optional untimed per-round preparation; its return value is
    #: passed to ``fn`` so e.g. assembly stays out of the timed region
    setup: Callable[[], object] | None = None
    #: optional ``fn(result) -> steps`` so the report can derive a
    #: steps/sec rate from the timed region
    rate_steps: Callable[[object], int] | None = None
    #: False (the default) runs every round with the persistent chunk
    #: cache force-disabled -- cold by design, so ambient
    #: ``TANGLED_CHUNK_CACHE`` activation can never skew round
    #: counters.  True lets the spec manage its own cache (the
    #: ``*_warm`` specs build and warm a fresh one per round).
    warm_cache: bool = False


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------

def _fig10(simulator: str, ways: int = 8, qat_backend: str = "dense",
           **config_kwargs):
    def run():
        from repro.apps import fig10_program, run_factor_program
        from repro.cpu import PipelineConfig

        config = PipelineConfig(**config_kwargs) if config_kwargs else None
        sim, regs = run_factor_program(
            fig10_program(), ways=ways, simulator=simulator, config=config,
            qat_backend=qat_backend,
        )
        if regs != (5, 3):
            raise ReproError(f"fig10 produced {regs}, expected (5, 3)")
        return sim

    return run


def _fig10_fast_setup():
    from repro.apps import fig10_program

    return fig10_program()


def _fig10_fast(simulator: str, qat_backend: str = "dense"):
    """Timed region = simulator run only: assembly happens in setup and
    telemetry stays uninstalled, so this measures the fast-path loop."""
    def run(program):
        from repro.apps import run_factor_program

        sim, regs = run_factor_program(
            program, ways=8, simulator=simulator, qat_backend=qat_backend,
        )
        if regs != (5, 3):
            raise ReproError(f"fig10 produced {regs}, expected (5, 3)")
        return sim

    return run


def _fig10_instret(sim) -> int:
    return sim.machine.instret


def _fig10_batch(lanes: int, qat_backend: str = "dense"):
    """Timed region = one batched run of ``lanes`` fig10 machines.

    The rate metric is aggregate machines x steps per second: the batch
    simulator retires one instruction on every active lane per step, so
    the summed per-lane ``instret`` is the work actually done."""
    def run(program):
        from repro.cpu.batch import BatchFunctionalSimulator

        sim = BatchFunctionalSimulator(lanes, ways=8,
                                       qat_backend=qat_backend)
        sim.load(program)
        sim.run(max_steps=100_000)
        machines = sim.machines
        if not bool(machines.halted.all()):
            raise ReproError("batched fig10 left lanes running")
        if not (bool((machines.regs[:, 0] == 5).all())
                and bool((machines.regs[:, 1] == 3).all())):
            raise ReproError("batched fig10 produced wrong factors")
        return sim

    return run


def _batch_instret(sim) -> int:
    return int(sim.machines.instret.sum())


def _factor_n221():
    from repro.apps import factor_pairs

    pairs = factor_pairs(221, 5, 5)
    if (13, 17) not in pairs:
        raise ReproError(f"factor(221) produced {pairs}")
    return pairs


def _chunkstore_xor(ways: int = 18):
    from repro.pattern import ChunkStore, PatternVector

    store = ChunkStore(16)
    h = PatternVector.hadamard(ways, ways - 1, store)
    g = PatternVector.hadamard(ways, 0, store)
    first = h ^ g
    second = h ^ g  # memoized replay: pure chunkstore hits
    (first & second)
    return first.num_runs


def _compiled_factor15():
    from repro.apps import compile_factor_program, run_factor_program
    from repro.gates import EmitOptions

    compiled = compile_factor_program(15, 4, 4, EmitOptions(allocator="recycle"))
    sim, regs = run_factor_program(compiled.program, ways=8)
    if regs != (5, 3):
        raise ReproError(f"compiled factor-15 produced {regs}")
    return sim


def _fig10_re_warm(ways: int = 8):
    """``(fn, setup)`` for a warm-cache fig10 RE round.

    Each round's ``setup`` builds a *fresh* temporary persistent chunk
    cache and runs one untimed, uncaptured warming pass of fig10.re
    against it; the timed ``fn`` then reruns the workload warm.  A fresh
    cache per round keeps the captured counters byte-identical across
    rounds (and across serial vs ``--jobs``) no matter what ambient
    cache the environment configures: every round sees exactly one cold
    pass it never measures and one fully-warm pass it does.
    """
    state: dict = {}

    def setup():
        import atexit
        import os
        import shutil
        import tempfile

        from repro.obs import runtime as _rt
        from repro.pattern import persist

        previous = state.pop("dir", None)
        if previous:
            shutil.rmtree(previous, ignore_errors=True)
        if not state.get("cleanup_registered"):
            state["cleanup_registered"] = True
            atexit.register(
                lambda: shutil.rmtree(state.get("dir", ""),
                                      ignore_errors=True)
                if state.get("dir") else None
            )
        state["dir"] = tempfile.mkdtemp(prefix="tangled-warmcache-")
        path = os.path.join(state["dir"], "warm.db")
        warmer = _fig10("functional", ways=ways, qat_backend="re")
        captured = _rt.current()
        _rt.install(None)  # the warming pass is preparation, not measurement
        try:
            with persist.overridden(path):
                warmer()
        finally:
            _rt.install(captured)
        return path

    def fn(path):
        from repro.pattern import persist

        timed = _fig10("functional", ways=ways, qat_backend="re")
        with persist.overridden(path):
            return timed()

    return fn, setup


def warm_specs() -> list[BenchSpec]:
    """Opt-in warm-cache workloads (``--only fig10.re_warm,...``).

    Never part of the default suite: the standard specs are cold by
    design, these measure the persistent chunk cache's steady state.
    """
    warm_fn, warm_setup = _fig10_re_warm()
    wide_fn, wide_setup = _fig10_re_warm(ways=24)
    return [
        BenchSpec("fig10.re_warm", warm_fn,
                  "Figure 10 RE against a warmed persistent chunk cache "
                  "(per-round cold warming pass untimed)",
                  setup=warm_setup, rate_steps=_fig10_instret,
                  warm_cache=True),
        BenchSpec("fig10.re_ways24_warm", wide_fn,
                  "Figure 10 at 24-way entanglement against a warmed "
                  "persistent chunk cache",
                  setup=wide_setup, rate_steps=_fig10_instret,
                  warm_cache=True),
    ]


def _qat_kernels(ways: int = 14):
    import numpy as np

    from repro.aob import AoB

    rng = np.random.default_rng(42)
    a = AoB.random(ways, rng)
    b = AoB.random(ways, rng)
    (a & b) ^ (a | ~b)
    a.next(123)
    return a.meas(123)


def default_specs(qat_backend: str = "dense") -> list[BenchSpec]:
    """The standard ``tangled bench`` suite, stable order.

    ``qat_backend`` retargets the fig10 workloads onto that Qat
    substrate; the ``fig10.re*`` entries always run the RE-compressed
    backend -- ``fig10.re_ways24`` is the wide-ways workload that the
    dense backend cannot even allocate under the CI memory ceiling.
    """
    return [
        BenchSpec("fig10.functional", _fig10("functional",
                                             qat_backend=qat_backend),
                  "Figure 10 on the functional simulator"),
        BenchSpec("fig10.multicycle", _fig10("multicycle",
                                             qat_backend=qat_backend),
                  "Figure 10 on the multi-cycle timing model"),
        BenchSpec("fig10.pipelined", _fig10("pipelined",
                                            qat_backend=qat_backend),
                  "Figure 10 on the 4-stage forwarding pipeline (key CPI)"),
        BenchSpec("fig10.pipelined_nofwd",
                  _fig10("pipelined", qat_backend=qat_backend,
                         stages=4, forwarding=False),
                  "Figure 10 without forwarding (stall-heavy variant)"),
        BenchSpec("fig10.re", _fig10("functional", qat_backend="re"),
                  "Figure 10 on the RE-compressed Qat backend (parity)"),
        BenchSpec("fig10.re_ways24",
                  _fig10("functional", ways=24, qat_backend="re"),
                  "Figure 10 at 24-way entanglement (RE only: a dense "
                  "register file would need 512 MiB)"),
        BenchSpec("fig10.functional_fast",
                  _fig10_fast("functional", qat_backend=qat_backend),
                  "Figure 10 run-loop only, fast path, capture off "
                  "(steps/sec)",
                  capture=False, setup=_fig10_fast_setup,
                  rate_steps=_fig10_instret),
        BenchSpec("fig10.multicycle_fast",
                  _fig10_fast("multicycle", qat_backend=qat_backend),
                  "Figure 10 multi-cycle run-loop only, fast path "
                  "(steps/sec)",
                  capture=False, setup=_fig10_fast_setup,
                  rate_steps=_fig10_instret),
        BenchSpec("fig10.pipelined_fast",
                  _fig10_fast("pipelined", qat_backend=qat_backend),
                  "Figure 10 pipelined run-loop only, predecoded fetch "
                  "(steps/sec)",
                  capture=False, setup=_fig10_fast_setup,
                  rate_steps=_fig10_instret),
        BenchSpec("fig10.batch64",
                  _fig10_batch(64, qat_backend=qat_backend),
                  "Figure 10 on 64 NumPy-batched machines "
                  "(aggregate machines x steps /sec)",
                  capture=False, setup=_fig10_fast_setup,
                  rate_steps=_batch_instret),
        BenchSpec("fig10.batch512",
                  _fig10_batch(512, qat_backend=qat_backend),
                  "Figure 10 on 512 NumPy-batched machines "
                  "(aggregate machines x steps /sec)",
                  capture=False, setup=_fig10_fast_setup,
                  rate_steps=_batch_instret),
        BenchSpec("factor.n221", _factor_n221,
                  "word-level factoring of 221 (AoB kernel volume)"),
        BenchSpec("chunkstore.s12", _chunkstore_xor,
                  "RE-compressed XOR at 18-way (chunkstore hit rate)"),
        BenchSpec("compiler.factor15", _compiled_factor15,
                  "compile + run the recycling-allocator factor-15 program"),
        BenchSpec("qat.kernels", _qat_kernels,
                  "raw AoB SIMD kernels at 14-way"),
    ]


def spec_by_name(name: str, qat_backend: str = "dense") -> BenchSpec:
    specs = default_specs(qat_backend) + warm_specs()
    for spec in specs:
        if spec.name == name:
            return spec
    raise ReproError(f"unknown bench {name!r} "
                     f"(try: {', '.join(s.name for s in specs)})")


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def run_spec_once(spec: BenchSpec) -> dict:
    """One round of ``spec`` under a fresh capture.

    Returns ``{"seconds": float, "counters": {name: value}}`` where the
    counters are every scalar (non-histogram) metric the round touched.
    Histograms are excluded: their contents are wall-clock durations and
    would break counter determinism.

    ``spec.capture=False`` rounds run with telemetry *uninstalled*
    instead (the simulators select their fast path) and record an empty
    counter section; ``spec.setup`` runs before the clock starts and its
    return value is passed to ``spec.fn``.  When ``spec.rate_steps`` is
    set the result gains a ``"steps"`` entry derived from ``fn``'s
    return value.
    """
    from repro import obs
    from repro.obs.metrics import Histogram
    from repro.pattern import persist, reset_default_stores

    # Fresh chunk stores every round: interning/memo state carried over
    # from a previous round (or unrelated earlier work in this process)
    # would skew chunkstore hit counters and break round-to-round
    # counter determinism.  For the same reason the standard specs run
    # with the persistent chunk cache force-disabled (cold by design);
    # the opt-in ``warm_cache`` specs manage their own per-round cache.
    reset_default_stores()
    cache_guard = nullcontext() if spec.warm_cache \
        else persist.overridden(None)
    previous = obs.current()
    if spec.capture:
        telemetry = obs.enable(tracing=False)
    else:
        telemetry = None
        obs.install(None)
    try:
        with cache_guard:
            prepared = spec.setup() if spec.setup is not None else None
            t0 = time.perf_counter()
            result = spec.fn(prepared) if spec.setup is not None \
                else spec.fn()
            seconds = time.perf_counter() - t0
    finally:
        obs.install(previous)
    counters = {} if telemetry is None else {
        name: metric.value
        for name, metric in telemetry.metrics.items()
        if not isinstance(metric, Histogram)
    }
    out = {"seconds": seconds, "counters": counters}
    if spec.rate_steps is not None:
        out["steps"] = int(spec.rate_steps(result))
    return out


def _timing_stats(samples: list[float]) -> dict:
    """median / IQR / min / mean over the round timings."""
    ordered = sorted(samples)
    if len(ordered) >= 2:
        quartiles = statistics.quantiles(ordered, n=4, method="inclusive")
        iqr = quartiles[2] - quartiles[0]
    else:
        iqr = 0.0
    return {
        "iqr": iqr,
        "max": ordered[-1],
        "mean": statistics.fmean(ordered),
        "median": statistics.median(ordered),
        "min": ordered[0],
        "rounds": len(ordered),
    }


#: Specs already warmed up in *this worker process* (each pool worker
#: pays its own warmup rounds before its first timed round of a spec).
_WARMED: set[tuple[str, str]] = set()


def _bench_worker_init() -> None:
    """Detach inherited telemetry and reset stores in a pool worker.

    The persistent chunk cache keeps its configured path but drops the
    inherited instance (connection + pending writes belong to the
    parent)."""
    from repro.obs import runtime as _rt
    from repro.pattern import persist, reset_default_stores

    _rt.install(None)
    persist.worker_reset()
    reset_default_stores()
    _WARMED.clear()


def _bench_task(task: tuple, attempt: int = 0) -> tuple[int, str, int, dict, int]:
    """One timed round of a named suite spec, in a worker process.

    ``attempt`` is the supervisor's retry ordinal for this shard (0 on
    the first try); it exists so the chaos hook can model faults that
    heal on retry.  The trailing worker id feeds the parent's progress
    tracker and never enters the report."""
    from repro.obs.progress import worker_ident
    from repro.runtime.supervisor import chaos_hook

    shard, name, qat_backend, warmup, round_idx = task
    chaos_hook(shard, attempt)
    spec = spec_by_name(name, qat_backend)
    key = (name, qat_backend)
    if key not in _WARMED:
        for _ in range(warmup):
            run_spec_once(spec)
        _WARMED.add(key)
    return shard, name, round_idx, run_spec_once(spec), worker_ident()


def _merge_rounds(name: str, results: list[dict]) -> dict:
    """Fold per-round results into one bench entry (round order)."""
    timings: list[float] = []
    counters: dict | None = None
    steps: int | None = None
    for result in results:
        timings.append(result["seconds"])
        if counters is not None and counters != result["counters"]:
            raise ReproError(
                f"bench {name!r} is nondeterministic: counters "
                f"changed between rounds"
            )
        counters = result["counters"]
        if "steps" in result:
            if steps is not None and steps != result["steps"]:
                raise ReproError(
                    f"bench {name!r} is nondeterministic: step count "
                    f"changed between rounds"
                )
            steps = result["steps"]
    entry = {
        "counters": dict(sorted((counters or {}).items())),
        "timing": _timing_stats(timings),
    }
    if steps is not None:
        median = entry["timing"]["median"]
        entry["rate"] = {
            "steps": steps,
            "steps_per_second": round(steps / median) if median > 0 else 0,
        }
    return entry


class BenchInterrupted(ReproError):
    """A bench fan-out was interrupted (Ctrl-C) mid-flight.

    Carries the partial ``report`` (fully-merged benches only, marked
    with ``"interrupted": true``) so the CLI can still flush it and
    record a ledger row with the ``interrupted`` exit status.  Completed
    rounds were journaled, so ``tangled bench --resume <run-id>``
    finishes the suite.
    """

    def __init__(self, report: dict, done: int, total: int):
        self.report = report
        self.done = done
        self.total = total
        super().__init__(f"bench suite interrupted after {done}/{total} "
                         f"rounds")


def run_suite(
    specs: list[BenchSpec] | None = None,
    label: str = "local",
    rounds: int = 5,
    warmup: int = 1,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    qat_backend: str = "dense",
    tracker=None,
    supervise=None,
    journal=None,
) -> dict:
    """Run every spec ``warmup + rounds`` times; return the report dict.

    Counters are taken from the final round (every round must agree --
    a divergence means the workload is nondeterministic and is reported
    as an error rather than silently averaged away).

    ``jobs > 1`` shards the timed rounds across a *supervised* worker
    pool (:class:`repro.runtime.supervisor.Supervisor`): crashed or
    timed-out workers are replaced and their round retried with backoff;
    a round that exhausts its retry budget quarantines the whole bench
    as a ``{"toxic": true, ...}`` entry instead of aborting the suite.
    Each round already runs under fresh stores and its own capture, so
    the merged counter (and steps) sections are byte-identical to the
    serial suite; only the wall-clock timing statistics differ.
    Parallel runs are restricted to suite specs resolvable by
    :func:`spec_by_name` with the given ``qat_backend`` (bench closures
    do not pickle), and every worker pays its own warmup before its
    first round of a spec.  ``supervise`` (a
    :class:`~repro.runtime.supervisor.SupervisorConfig`) tunes timeouts,
    retry budget, and the per-worker memory ceiling.

    ``journal`` (a :class:`repro.obs.ledger.ShardJournal`) records every
    completed round as it lands; a journal opened with ``resume=True``
    replays completed rounds from the ledger and re-executes only the
    missing and toxic ones.  A ``KeyboardInterrupt`` during the fan-out
    terminates the workers and raises :class:`BenchInterrupted` carrying
    the partial report.

    ``tracker`` (a :class:`repro.obs.progress.ProgressTracker`) receives
    one heartbeat per completed round, off the report path.
    """
    if rounds <= 0:
        raise ReproError(f"rounds must be positive, got {rounds}")
    if warmup < 0:
        raise ReproError(f"warmup must be non-negative, got {warmup}")
    if jobs <= 0:
        raise ReproError(f"jobs must be positive, got {jobs}")
    from repro.obs import runtime as _obs
    from repro.obs.ledger import SHARD_DONE, SHARD_TOXIC

    spec_list = specs if specs is not None else default_specs(qat_backend)
    if jobs > 1:
        for spec in spec_list:
            spec_by_name(spec.name, qat_backend)  # reject unknown customs
    # Shard id = flat round index in suite order, stable across resumes.
    tasks = [
        (pos * rounds + round_idx, spec.name, qat_backend, warmup, round_idx)
        for pos, spec in enumerate(spec_list)
        for round_idx in range(rounds)
    ]
    fingerprint = {
        "label": label, "benches": [s.name for s in spec_list],
        "rounds": rounds, "warmup": warmup, "qat_backend": qat_backend,
    }
    done: dict[int, dict] = {}
    if journal is not None:
        done = journal.begin("bench", fingerprint)
    per_spec: dict[str, list] = {s.name: [None] * rounds for s in spec_list}
    toxic: dict[str, dict] = {}
    for payload in done.values():
        per_spec[payload["name"]][payload["round"]] = payload["result"]
    pending = [task for task in tasks if task[0] not in done]
    if tracker is not None and done:
        # Replayed rounds never heartbeat; track only what will run.
        tracker.total = len(pending)

    def _settle(shard: int, name: str, round_idx: int, result: dict,
                attempts: int, worker: int) -> None:
        per_spec[name][round_idx] = result
        if journal is not None:
            journal.record(shard, SHARD_DONE, attempts,
                           {"shard": shard, "name": name,
                            "round": round_idx, "result": result})
        if tracker is not None:
            tracker.note(worker, result["seconds"],
                         steps=result.get("steps", 0))

    def _settle_toxic(shard: int, name: str, round_idx: int,
                      outcome) -> None:
        entry = {"toxic": True, "error": outcome.quarantine_message(),
                 "failures": outcome.failure_kinds}
        toxic[name] = entry
        if journal is not None:
            journal.record(shard, SHARD_TOXIC, outcome.attempts,
                           {"shard": shard, "name": name,
                            "round": round_idx, **entry})
        if tracker is not None:
            tracker.note(0, 0.0)

    interrupted = False
    if pending and jobs > 1:
        from repro.runtime.supervisor import (
            Supervisor,
            SupervisorConfig,
            SupervisorInterrupted,
        )

        config = supervise if supervise is not None \
            else SupervisorConfig(jobs=jobs)
        if progress is not None:
            progress(f"bench fan-out: {len(spec_list)} benches x {rounds} "
                     f"rounds across {config.jobs} workers")
        by_shard = {task[0]: task for task in pending}

        def _on_result(outcome) -> None:
            if outcome.ok:
                shard, name, round_idx, result, worker = outcome.result
                _settle(shard, name, round_idx, result,
                        outcome.attempts, worker)
            else:
                task = by_shard[outcome.shard]
                _settle_toxic(outcome.shard, task[1], task[4], outcome)

        supervisor = Supervisor(
            _bench_task, config, initializer=_bench_worker_init,
            on_event=(tracker.note_supervisor
                      if tracker is not None else None),
        )
        try:
            supervisor.run(by_shard, on_result=_on_result)
        except SupervisorInterrupted:
            interrupted = True
        if _obs.active:
            _obs.current().supervisor_run(supervisor.stats.as_dict())
    elif pending:
        pending_shards = {task[0] for task in pending}
        for pos, spec in enumerate(spec_list):
            todo = [round_idx for round_idx in range(rounds)
                    if pos * rounds + round_idx in pending_shards]
            if not todo:
                continue
            if progress is not None:
                progress(
                    f"bench {spec.name}: {warmup} warmup + {len(todo)} rounds"
                )
            for _ in range(warmup):
                run_spec_once(spec)
            for round_idx in todo:
                result = run_spec_once(spec)
                _settle(pos * rounds + round_idx, spec.name, round_idx,
                        result, 1, 0)
    if tracker is not None:
        tracker.finish()

    benches: dict[str, dict] = {}
    merged = 0
    for spec in spec_list:
        if spec.name in toxic:
            benches[spec.name] = toxic[spec.name]
            continue
        round_results = per_spec[spec.name]
        if any(result is None for result in round_results):
            # Only reachable on an interrupted fan-out: the partial
            # report carries fully-merged benches, nothing half-done.
            continue
        benches[spec.name] = _merge_rounds(spec.name, round_results)
        merged += 1
    report = {
        "schema": SCHEMA,
        "label": label,
        "rounds": rounds,
        "warmup": warmup,
        "benches": benches,
    }
    if interrupted:
        report["interrupted"] = True
        raise BenchInterrupted(report, done=merged, total=len(spec_list))
    return report


def render_json(report: dict) -> str:
    """Canonical serialization: identical trees yield identical bytes
    outside the ``timing`` sub-objects."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def write_report(path: str, report: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_json(report))


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ReproError(
            f"{path}: unsupported bench schema {report.get('schema')!r}"
        )
    return report


# ---------------------------------------------------------------------------
# Comparison / regression gate
# ---------------------------------------------------------------------------

#: One classified metric delta.
IMPROVED, REGRESSED, NEUTRAL = "improved", "regressed", "neutral"


def _classify(metric: str, base: float, current: float,
              threshold: float) -> str:
    if base == current:
        return NEUTRAL
    if base == 0:
        delta = 1.0 if current > 0 else -1.0
    else:
        delta = (current - base) / abs(base)
    if abs(delta) <= threshold:
        return NEUTRAL
    worse = delta > 0
    if metric in HIGHER_IS_BETTER:
        worse = not worse
    return REGRESSED if worse else IMPROVED


def compare_reports(current: dict, baseline: dict,
                    counter_threshold: float = 0.05,
                    time_threshold: float = 0.25) -> list[dict]:
    """Classify every metric both reports share.

    Returns one row per (bench, metric): ``{"bench", "metric", "kind",
    "baseline", "current", "verdict"}``, counters first, stable order.
    Benches present on only one side are reported with kind ``missing``
    so a silently dropped workload cannot masquerade as progress.
    """
    rows: list[dict] = []
    cur_benches = current.get("benches", {})
    base_benches = baseline.get("benches", {})
    for name in sorted(set(cur_benches) | set(base_benches)):
        cur = cur_benches.get(name)
        base = base_benches.get(name)
        if cur is None or base is None:
            rows.append({
                "bench": name, "metric": "-", "kind": "missing",
                "baseline": None if base is None else "present",
                "current": None if cur is None else "present",
                "verdict": REGRESSED if cur is None else NEUTRAL,
            })
            continue
        if cur.get("toxic") or base.get("toxic"):
            # A quarantined bench has no counters or timing to compare.
            # Toxic *now* fails the gate like a missing bench would; a
            # toxic baseline only makes the current (healthy) run
            # incomparable, not wrong.
            rows.append({
                "bench": name, "metric": "-", "kind": "toxic",
                "baseline": "toxic" if base.get("toxic") else "present",
                "current": "toxic" if cur.get("toxic") else "present",
                "verdict": REGRESSED if cur.get("toxic") else NEUTRAL,
            })
            continue
        for metric in sorted(set(cur["counters"]) & set(base["counters"])):
            b, c = base["counters"][metric], cur["counters"][metric]
            rows.append({
                "bench": name, "metric": metric, "kind": "counter",
                "baseline": b, "current": c,
                "verdict": _classify(metric, b, c, counter_threshold),
            })
        b, c = base["timing"]["median"], cur["timing"]["median"]
        rows.append({
            "bench": name, "metric": "median_seconds", "kind": "timing",
            "baseline": b, "current": c,
            "verdict": _classify("median_seconds", b, c, time_threshold),
        })
    return rows


def regressions(rows: list[dict], include_timing: bool = False) -> list[dict]:
    """The rows that should fail a gate: regressed counters (and missing
    benches); regressed timings only when ``include_timing``."""
    bad = []
    for row in rows:
        if row["verdict"] != REGRESSED:
            continue
        if row["kind"] == "timing" and not include_timing:
            continue
        bad.append(row)
    return bad


def render_regressions(rows: list[dict]) -> str:
    """Per-counter failure detail: old/new values and percent delta.

    One line per regressed row (what the gate prints to stderr before
    failing), so a CI log names every offending counter instead of just
    the classification totals."""
    lines = []
    for row in rows:
        base, cur = row["baseline"], row["current"]
        if row["kind"] == "missing":
            lines.append(f"  {row['bench']}: bench missing from current run")
            continue
        if row["kind"] == "toxic":
            lines.append(f"  {row['bench']}: bench quarantined as toxic")
            continue
        if isinstance(base, (int, float)) and base != 0:
            delta = f" ({(cur - base) / abs(base):+.1%})"
        else:
            delta = ""
        lines.append(
            f"  {row['bench']}: {row['metric']} {base:g} -> {cur:g}{delta}"
        )
    return "\n".join(lines)


def render_compare(rows: list[dict], verbose: bool = False) -> str:
    """Human-readable comparison table (regressions always shown)."""
    shown = rows if verbose else [r for r in rows if r["verdict"] != NEUTRAL]
    lines = ["== bench comparison =="]
    if not shown:
        lines.append("  all metrics neutral")
    for row in shown:
        base, cur = row["baseline"], row["current"]
        if isinstance(base, float) or isinstance(cur, float):
            base = f"{base:.6g}" if isinstance(base, (int, float)) else base
            cur = f"{cur:.6g}" if isinstance(cur, (int, float)) else cur
        lines.append(
            f"  [{row['verdict']:<9}] {row['bench']}: {row['metric']} "
            f"{base} -> {cur}"
        )
    counts = {IMPROVED: 0, REGRESSED: 0, NEUTRAL: 0}
    for row in rows:
        counts[row["verdict"]] = counts.get(row["verdict"], 0) + 1
    lines.append(
        f"  {counts[IMPROVED]} improved, {counts[REGRESSED]} regressed, "
        f"{counts[NEUTRAL]} neutral"
    )
    return "\n".join(lines)
