"""Telemetry sinks: human-readable report, JSON-lines, Chrome trace_event.

Three views over one :class:`~repro.obs.metrics.MetricRegistry` +
:class:`~repro.obs.spans.Tracer` pair:

- :func:`render_report` -- the ``tangled run --stats`` text block, with a
  headline section for the quantities the paper argues about (CPI,
  stalls, Qat op volume, RE compression) followed by the full catalog;
- :func:`events_jsonl` -- one JSON object per line, machine-tailable;
- :func:`chrome_trace` -- the Chrome ``trace_event`` JSON object format
  (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
  loadable in ``chrome://tracing`` and https://ui.perfetto.dev.  Wall-
  clock spans land in process 1, the pipeline's cycle-domain spans in
  process 2 (1 simulated cycle rendered as 1 us), named via ``M``
  metadata events.
"""

from __future__ import annotations

import json

from repro.obs.metrics import Histogram, MetricRegistry
from repro.obs.spans import (
    PID_PIPELINE,
    PID_PROFILE,
    PID_WALL,
    PID_WORKERS,
    Tracer,
)


# ---------------------------------------------------------------------------
# Human-readable report
# ---------------------------------------------------------------------------

def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


def _headline(metrics: MetricRegistry) -> list[str]:
    """The paper-facing summary: always printed, even when zero."""
    stalls = sum(
        metrics.value(f"pipeline.stall.{kind}")
        for kind in ("data", "load_use", "structural")
    )
    hits = metrics.value("chunkstore.binop.hit")
    misses = metrics.value("chunkstore.binop.miss")
    lookups = hits + misses
    ratio = f"{hits / lookups:.2%}" if lookups else "n/a (no RE activity)"
    # Persistent-cache line only when a cache was attached and consulted
    # (hit + miss covers every local gate miss that reached the cache).
    p_hits = metrics.value("chunkstore.persist.hit")
    p_lookups = p_hits + metrics.value("chunkstore.persist.miss")
    persist_lines = []
    if p_lookups:
        persist_lines = [
            f"  persistent cache hits   : {p_hits / p_lookups:.2%} "
            f"({_fmt(p_hits)}/{_fmt(p_lookups)} gate misses warmed, "
            f"{_fmt(metrics.value('chunkstore.persist.bytes'))} bytes "
            "loaded)"
        ]
    return [
        f"  pipeline CPI            : {metrics.value('pipeline.cpi'):.4f}",
        f"  pipeline cycles         : {_fmt(metrics.value('pipeline.cycles'))}",
        f"  pipeline stalls         : {_fmt(stalls)} "
        f"(data {_fmt(metrics.value('pipeline.stall.data'))}, "
        f"load-use {_fmt(metrics.value('pipeline.stall.load_use'))}, "
        f"structural {_fmt(metrics.value('pipeline.stall.structural'))})",
        f"  branch flushes          : "
        f"{_fmt(metrics.value('pipeline.flush.branch'))}",
        f"  instructions retired    : {_fmt(metrics.value('cpu.instructions'))}",
        f"  Qat coprocessor ops     : {_fmt(metrics.value('qat.ops'))}",
        f"  Qat AoB bit volume      : {_fmt(metrics.value('qat.aob_bits'))}",
        f"  chunkstore memo hit rate: {ratio}",
        *persist_lines,
        f"  chunkstore bytes saved  : "
        f"{_fmt(metrics.value('chunkstore.bytes_saved'))}",
    ]


def render_report(metrics: MetricRegistry, tracer: Tracer | None = None) -> str:
    """Full text report: headline block, then every registered metric."""
    lines = ["== telemetry report ==", "headline:"]
    lines += _headline(metrics)
    counters = []
    gauges = []
    histograms = []
    for name, metric in metrics.items():
        if isinstance(metric, Histogram):
            s = metric.summary()
            pct = metric.percentiles((50, 95, 99))
            histograms.append(
                f"  {name}: n={s['count']} mean={s['mean']:.4g} "
                f"p50={pct['p50']:.4g} p95={pct['p95']:.4g} "
                f"p99={pct['p99']:.4g} max={s['max']:.4g}"
            )
        elif type(metric).__name__ == "Gauge":
            gauges.append(f"  {name} = {_fmt(metric.value)}")
        else:
            counters.append(f"  {name} = {_fmt(metric.value)}")
    if counters:
        lines += ["counters:"] + counters
    if gauges:
        lines += ["gauges:"] + gauges
    if histograms:
        lines += ["histograms:"] + histograms
    if tracer is not None and len(tracer):
        lines.append(
            f"trace: {len(tracer.spans)} spans, {len(tracer.instants)} "
            f"instants, {len(tracer.counters)} counter samples"
            + (f" ({tracer.dropped} dropped)" if tracer.truncated else "")
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSON-lines
# ---------------------------------------------------------------------------

def events_jsonl(metrics: MetricRegistry, tracer: Tracer) -> str:
    """Every metric and trace event as one JSON object per line."""
    lines = []
    for name, value in metrics.snapshot().items():
        lines.append(json.dumps(
            {"kind": "metric", "name": name, "value": value},
            sort_keys=True,
        ))
    for span in tracer.spans:
        lines.append(json.dumps({
            "kind": "span", "name": span.name, "cat": span.cat,
            "ts_ns": span.ts_ns, "dur_ns": span.dur_ns,
            "pid": span.pid, "tid": span.tid, "args": span.args,
        }, sort_keys=True))
    for inst in tracer.instants:
        lines.append(json.dumps({
            "kind": "instant", "name": inst.name, "ts_ns": inst.ts_ns,
            "pid": inst.pid, "tid": inst.tid, "args": inst.args,
        }, sort_keys=True))
    for sample in tracer.counters:
        lines.append(json.dumps({
            "kind": "counter", "name": sample.name, "ts_ns": sample.ts_ns,
            "value": sample.value, "pid": sample.pid,
        }, sort_keys=True))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

_PROCESS_NAMES = {
    PID_WALL: "tangled (wall clock)",
    PID_PIPELINE: "pipeline (1 cycle = 1 us)",
    PID_PROFILE: "profile flamegraph (1 cycle = 1 us)",
    PID_WORKERS: "--jobs workers (wall clock)",
}

#: Default labels for threads whose emitter did not name them.
_THREAD_NAMES = {
    (PID_PROFILE, 1): "attributed cycles",
}


def _tid_index(order: dict[tuple[int, str], int], pid: int, tid: str) -> int:
    """Stable small-int thread ids per (pid, tid label)."""
    key = (pid, tid)
    idx = order.get(key)
    if idx is None:
        idx = len([k for k in order if k[0] == pid]) + 1
        order[key] = idx
    return idx


def chrome_trace(metrics: MetricRegistry, tracer: Tracer) -> dict:
    """The trace as a Chrome ``trace_event`` JSON object.

    Timestamps are microseconds (``ts``/``dur``); wall-clock spans divide
    their ns values by 1000, synthetic pipeline spans carry cycle counts
    already scaled by the emitter.  Counter samples become ``C`` events
    (graph tracks); the final metric snapshot rides along in
    ``otherData``.
    """
    events: list[dict] = []
    order: dict[tuple[int, str], int] = {}

    def tid_for(pid: int, label: str) -> int:
        tid = _tid_index(order, pid, label)
        return tid

    for span in tracer.spans:
        events.append({
            "name": span.name,
            "cat": span.cat or "span",
            "ph": "X",
            "ts": span.ts_ns / 1000,
            "dur": max(span.dur_ns / 1000, 0.001),
            "pid": span.pid,
            "tid": tid_for(span.pid, span.tid),
            "args": span.args,
        })
    for inst in tracer.instants:
        events.append({
            "name": inst.name,
            "cat": "instant",
            "ph": "i",
            "s": "t",
            "ts": inst.ts_ns / 1000,
            "pid": inst.pid,
            "tid": tid_for(inst.pid, inst.tid),
            "args": inst.args,
        })
    for sample in tracer.counters:
        events.append({
            "name": sample.name,
            "cat": "counter",
            "ph": "C",
            "ts": sample.ts_ns / 1000,
            "pid": sample.pid,
            "tid": 0,
            "args": {"value": sample.value},
        })

    # Name the processes and threads so Perfetto's tracks read well.
    pids = {e["pid"] for e in events}
    for pid in sorted(pids):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": _PROCESS_NAMES.get(pid, f"process {pid}")},
        })
    for (pid, label), tid in sorted(order.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "metrics": metrics.snapshot(),
            # Truncation is surfaced in the artifact itself, not just the
            # text report: a capped tracer yields a *partial* trace and
            # downstream tooling must be able to tell.
            "truncated": tracer.truncated,
            "events_dropped": tracer.dropped,
        },
    }


def _metadata_events(events: list[dict]) -> list[dict]:
    """``process_name``/``thread_name`` M events for anything unnamed.

    Trace emitters name what they know about; this fills the gaps so
    no pid/tid ever renders as a bare number in the trace viewer --
    the profiler's PID 3 flamegraph and the ``--jobs`` worker
    heartbeat tracks (PID 4) get labels even when the emitter skipped
    its own metadata.
    """
    named_processes = set()
    named_threads = set()
    pids = set()
    tids = set()
    for event in events:
        pid = event.get("pid")
        if pid is None:
            continue
        if event.get("ph") == "M":
            if event.get("name") == "process_name":
                named_processes.add(pid)
            elif event.get("name") == "thread_name":
                named_threads.add((pid, event.get("tid")))
            continue
        pids.add(pid)
        tid = event.get("tid")
        if tid:
            tids.add((pid, tid))
    extra: list[dict] = []
    for pid in sorted(pids - named_processes):
        extra.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": _PROCESS_NAMES.get(pid, f"process {pid}")},
        })
    for pid, tid in sorted(tids - named_threads, key=lambda k: (k[0], str(k[1]))):
        extra.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {
                "name": _THREAD_NAMES.get(
                    (pid, tid),
                    f"worker {tid}" if pid == PID_WORKERS else f"thread {tid}",
                ),
            },
        })
    return extra


def write_trace(path: str, trace: dict) -> None:
    """The one Chrome ``trace_event`` file writer.

    Every trace artifact -- ``--trace-out`` telemetry traces and the
    profiler's flamegraph export alike -- goes through here, so the
    on-disk format (single JSON object, UTF-8) cannot fork.  Missing
    ``process_name``/``thread_name`` metadata is filled in on the way
    out (see :func:`_metadata_events`).
    """
    events = trace.get("traceEvents", [])
    extra = _metadata_events(events)
    if extra:
        trace = dict(trace)
        trace["traceEvents"] = list(events) + extra
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)


def write_chrome_trace(path: str, metrics: MetricRegistry,
                       tracer: Tracer) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    write_trace(path, chrome_trace(metrics, tracer))
