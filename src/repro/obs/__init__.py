"""Unified observability for the Tangled/Qat reproduction.

One subsystem for every quantity the paper argues about numerically:

- **typed metrics** -- :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` (with percentile summaries) in a
  :class:`MetricRegistry`;
- **nested span tracing** -- wall-clock spans plus the pipeline's
  synthetic cycle-domain stage spans, with a near-zero-cost no-op path
  when disabled;
- **pluggable sinks** -- human-readable report, JSON-lines event log,
  and Chrome ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.

Typical use, mirroring ``tangled run --stats``::

    from repro import obs

    with obs.capture() as telemetry:
        sim = PipelinedSimulator(ways=8)
        sim.load(program)
        sim.run()
    print(telemetry.report())
    telemetry.write_chrome_trace("trace.json")

Observability is **off by default**: instrumented hot paths guard every
hook behind :data:`repro.obs.runtime.active` (a single branch), so the
simulators run at full speed unless a telemetry instance is installed.
See ``docs/OBSERVABILITY.md`` for the metric catalog and sink formats.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs import runtime
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.sinks import (
    chrome_trace,
    events_jsonl,
    render_report,
    write_chrome_trace,
    write_trace,
)
from repro.obs.spans import NULL_SPAN, Tracer
from repro.obs.telemetry import Telemetry, TimerHandle

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Ledger",
    "MetricRegistry",
    "NULL_SPAN",
    "Profiler",
    "ProgressTracker",
    "flight",
    "Telemetry",
    "TimerHandle",
    "Tracer",
    "capture",
    "chrome_trace",
    "current",
    "disable",
    "enable",
    "events_jsonl",
    "install",
    "open_ledger",
    "profile_program",
    "render_report",
    "runtime",
    "write_chrome_trace",
    "write_trace",
]


def __getattr__(name: str):
    # Lazy: repro.obs.profile imports the disassembler/simulators, which
    # import repro.obs -- resolving on first use keeps the core import
    # cycle-free and cheap.  The ledger (sqlite3) and progress layers
    # resolve the same way so plain telemetry users never pay for them.
    if name in ("Profiler", "profile_program"):
        from repro.obs import profile

        return getattr(profile, name)
    if name in ("Ledger", "open_ledger"):
        from repro.obs import ledger

        return getattr(ledger, name)
    if name == "ProgressTracker":
        from repro.obs.progress import ProgressTracker

        return ProgressTracker
    if name in ("FlightRecorder", "flight"):
        # import_module, not ``from repro.obs import flight``: the
        # fromlist lookup would re-enter this __getattr__ for "flight"
        # and recurse before the submodule lands in sys.modules.
        import importlib

        flight = importlib.import_module("repro.obs.flight")
        return flight if name == "flight" else flight.FlightRecorder
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def enable(tracing: bool = True, max_events: int = 1_000_000) -> Telemetry:
    """Create a fresh enabled :class:`Telemetry` and install it globally."""
    telemetry = Telemetry(enabled=True, tracing=tracing, max_events=max_events)
    runtime.install(telemetry)
    return telemetry


def install(telemetry: Telemetry | None) -> None:
    """Install an existing telemetry instance (None to uninstall)."""
    runtime.install(telemetry)


def disable() -> None:
    """Uninstall the global telemetry; hot paths go back to no-op."""
    runtime.uninstall()


def current() -> Telemetry | None:
    """The globally installed telemetry, or None."""
    return runtime.current()


@contextmanager
def capture(tracing: bool = True, max_events: int = 1_000_000):
    """Scoped :func:`enable`/:func:`disable`; yields the telemetry."""
    telemetry = enable(tracing=tracing, max_events=max_events)
    try:
        yield telemetry
    finally:
        runtime.uninstall()
