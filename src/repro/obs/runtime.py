"""Process-global telemetry handle with a one-branch hot-path guard.

Instrumented modules (the pipeline, the instruction executor, the Qat
kernels, the chunk store) must cost ~nothing when observability is off.
They therefore guard every hook with the module-level :data:`active`
flag::

    from repro.obs import runtime as _obs
    ...
    if _obs.active:                       # one attribute read + branch
        _obs.current().metrics.counter("...").inc()

``active`` is True exactly while a telemetry instance with
``enabled=True`` is installed.  This module imports nothing from the
rest of ``repro`` so any layer may instrument itself without cycles.
"""

from __future__ import annotations

#: Fast guard: is an enabled telemetry instance installed?
active: bool = False

_current = None


def current():
    """The installed telemetry instance, or None."""
    return _current


def install(telemetry) -> None:
    """Route instrumented code into ``telemetry`` (None to uninstall)."""
    global _current, active
    _current = telemetry
    active = telemetry is not None and getattr(telemetry, "enabled", False)


def uninstall() -> None:
    """Detach the current telemetry instance; hooks go quiet again."""
    install(None)
