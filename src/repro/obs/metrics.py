"""Typed metrics: counters, gauges, and histograms with percentile summaries.

The instruments are deliberately tiny -- a :class:`Counter` is one int
behind two methods -- because the simulators touch them on hot paths.
Anything clever (percentiles, merging, formatting) happens at read time,
never at observation time.

Naming convention: dotted lowercase paths, most-general component first
(``pipeline.stall.data``, ``qat.ops.qand``, ``chunkstore.binop.hit``),
so the report renderer can group by prefix.
"""

from __future__ import annotations

import math
from typing import Iterable


class Counter:
    """A monotonically increasing count (events, cycles, bytes)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    # ``add`` reads better at call sites that accumulate a precomputed
    # total (e.g. publishing a whole PipelineStats after a run).
    add = inc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value that can move both ways (CPI, resident chunks)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A distribution of observations with exact percentile summaries.

    Stores raw samples up to ``max_samples``; past that it keeps every
    k-th observation (systematic sampling) so long benches cannot grow
    memory without bound, while ``count``/``total``/``min``/``max`` stay
    exact.  Percentiles use linear interpolation between closest ranks.
    """

    __slots__ = ("name", "help", "max_samples", "count", "total",
                 "min", "max", "_samples", "_stride")

    def __init__(self, name: str, help: str = "", max_samples: int = 8192):
        if max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples} "
                f"(histogram {name!r})"
            )
        self.name = name
        self.help = help
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.count % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self.max_samples:
                # Halve the resolution: keep every other retained sample.
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the retained samples."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = (p / 100) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def percentiles(
        self, ps: tuple[float, ...] = (50, 95, 99)
    ) -> dict[str, float]:
        """Named percentiles in one call: ``{"p50": ..., "p95": ...}``.

        The convenience wrapper the sinks use; tolerates the same edge
        cases as :meth:`percentile` (empty and single-sample histograms,
        reservoir-truncated sample sets).
        """
        out = {}
        for p in ps:
            key = f"p{int(p)}" if float(p).is_integer() else f"p{p}"
            out[key] = self.percentile(p)
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._samples.extend(other._samples)
        self._stride = max(self._stride, other._stride)
        while len(self._samples) > self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def summary(self) -> dict[str, float]:
        """count / mean / min / p50 / p90 / p99 / max in one dict."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            **self.percentiles((50, 90, 99)),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricRegistry:
    """Get-or-create home for every metric, keyed by dotted name.

    A name is permanently bound to its first instrument type; asking for
    the same name as a different type raises, so a typo cannot silently
    fork a metric.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  max_samples: int = 8192) -> Histogram:
        return self._get(Histogram, name, help, max_samples=max_samples)

    def get(self, name: str):
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge, or ``default`` if absent."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def items(self) -> Iterable[tuple[str, Counter | Gauge | Histogram]]:
        return sorted(self._metrics.items())

    def snapshot(self) -> dict[str, object]:
        """Every metric as plain data (counters/gauges scalar, histograms
        their summary dict) -- the JSON-facing view."""
        out: dict[str, object] = {}
        for name, metric in self.items():
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
