"""The telemetry facade: one object owning metrics + tracer + sinks.

A :class:`Telemetry` bundles a :class:`~repro.obs.metrics.MetricRegistry`
and a :class:`~repro.obs.spans.Tracer` and knows how to render both
through every sink.  It also carries the domain-specific hook methods the
instrumented layers call (``qat_executed``, ``publish_pipeline`` ...), so
metric naming lives in exactly one file.

Two flags control cost:

- ``enabled=False`` -- everything is inert; ``span()`` returns the shared
  no-op context manager and the instrumented modules never call in,
  because :mod:`repro.obs.runtime` only sets its ``active`` guard for
  enabled instances.
- ``tracing=False`` -- metrics still accumulate but no span/instant/
  counter events are recorded; use this when you want the report without
  the per-instruction event volume.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.sinks import (
    chrome_trace,
    events_jsonl,
    render_report,
    write_trace,
)
from repro.obs.spans import NULL_SPAN, Tracer


class TimerHandle:
    """Yielded by :meth:`Telemetry.timer`; carries the elapsed seconds."""

    __slots__ = ("elapsed",)

    def __init__(self) -> None:
        self.elapsed = 0.0


class Telemetry:
    """Metrics + spans + sinks behind one handle."""

    def __init__(self, enabled: bool = True, tracing: bool = True,
                 max_events: int = 1_000_000):
        self.enabled = enabled
        self.tracing = tracing and enabled
        self.metrics = MetricRegistry()
        self.tracer = Tracer(max_events=max_events)
        #: optional :class:`repro.obs.profile.Profiler`; while attached,
        #: Qat kernel bit volume is also credited to the instruction the
        #: profiler currently has in EX (per-PC attribution).
        self.profiler = None

    # -- instrument passthrough ----------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self.metrics.histogram(name, help)

    # -- spans and timers -----------------------------------------------------

    def span(self, name: str, cat: str = "", **args):
        """Nested wall-clock span; no-op context manager when disabled."""
        if not self.tracing:
            return NULL_SPAN
        return self.tracer.span(name, cat, **args)

    @contextmanager
    def timer(self, name: str, cat: str = "timing"):
        """Time a block; the handle's ``.elapsed`` is seconds.

        The duration lands in histogram ``name`` (and, when tracing, as a
        span), so repeated timings of the same quantity accumulate into a
        percentile summary instead of being thrown away -- this is the
        single timing pathway the benchmarks use.
        """
        handle = TimerHandle()
        start = time.perf_counter_ns()
        try:
            yield handle
        finally:
            dur = time.perf_counter_ns() - start
            handle.elapsed = dur / 1e9
            if self.enabled:
                self.metrics.histogram(name).observe(handle.elapsed)
                if self.tracing:
                    self.tracer.complete(name, ts_ns=start, dur_ns=dur,
                                         cat=cat, tid="bench")

    # -- domain hooks (called by instrumented layers when runtime.active) -----

    def qat_executed(self, mnemonic: str, t0_ns: int) -> None:
        """One Qat coprocessor instruction finished executing."""
        dur = time.perf_counter_ns() - t0_ns
        self.metrics.counter("qat.ops").inc()
        self.metrics.counter(f"qat.ops.{mnemonic}").inc()
        self.metrics.histogram("qat.op_seconds").observe(dur / 1e9)
        if self.tracing:
            self.tracer.complete(f"qat.{mnemonic}", ts_ns=t0_ns, dur_ns=dur,
                                 cat="qat", tid="qat")

    def qat_kernel(self, op: str, words: int) -> None:
        """One SIMD kernel touched ``words`` packed uint64 words."""
        bits = words << 6
        self.metrics.counter("qat.aob_bits").add(bits)
        self.metrics.counter(f"qat.bits.{op}").add(bits)
        if self.profiler is not None:
            self.profiler.note_qat_bits(bits)

    def checkpoint_op(self, op: str, t0_ns: int, ok: bool = True) -> None:
        """One checkpoint operation (``capture``/``save``/``load``/
        ``verify``/``restore``) finished after ``t0_ns``."""
        dur = time.perf_counter_ns() - t0_ns
        self.metrics.counter(f"checkpoint.{op}").inc()
        self.metrics.histogram(f"checkpoint.{op}_seconds").observe(dur / 1e9)
        if not ok:
            self.metrics.counter(f"checkpoint.{op}_failures").inc()
        if self.tracing:
            self.tracer.complete(f"checkpoint.{op}", ts_ns=t0_ns, dur_ns=dur,
                                 cat="faults", tid="faults")

    def fault_run(self, outcome: str, seconds: float) -> None:
        """One fault-campaign run classified as ``outcome``."""
        self.metrics.counter(f"faults.{outcome}").inc()
        self.metrics.counter("faults.runs").inc()
        self.metrics.histogram("faults.run_seconds").observe(seconds)

    def supervisor_run(self, stats: dict) -> None:
        """One supervised fan-out finished; ``stats`` is
        :meth:`repro.runtime.supervisor.SupervisorStats.as_dict` --
        ``{"retries", "timeouts", "crashes", "errors",
        "workers.replaced", "shards.toxic"}``.  Recorded even when all
        zero so a clean run snapshots an explicit all-clear."""
        for key, value in stats.items():
            self.metrics.counter(f"supervisor.{key}").add(value)

    def publish_pipeline(self, stats) -> None:
        """Fold one pipelined run's :class:`PipelineStats` into the registry."""
        m = self.metrics
        m.counter("pipeline.cycles").add(stats.cycles)
        m.counter("pipeline.retired").add(stats.retired)
        m.counter("cpu.instructions").add(stats.retired)
        m.counter("pipeline.stall.data").add(stats.stall_data)
        m.counter("pipeline.stall.load_use").add(stats.stall_load_use)
        m.counter("pipeline.stall.structural").add(stats.stall_structural)
        m.counter("pipeline.fetch.extra_cycles").add(stats.fetch_extra)
        m.counter("pipeline.flush.branch").add(stats.branch_flushes)
        m.counter("pipeline.squashed").add(stats.squashed)
        m.counter("pipeline.traps").add(stats.traps)
        m.gauge("pipeline.cpi").set(stats.cpi)

    # -- sinks ----------------------------------------------------------------

    def report(self) -> str:
        """Human-readable text report (the ``--stats`` output)."""
        return render_report(self.metrics, self.tracer)

    def chrome_trace(self) -> dict:
        """The trace as a Chrome ``trace_event`` object."""
        return chrome_trace(self.metrics, self.tracer)

    def write_chrome_trace(self, path: str) -> None:
        write_trace(path, self.chrome_trace())

    def events_jsonl(self) -> str:
        return events_jsonl(self.metrics, self.tracer)

    def write_events_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.events_jsonl())
