"""Live progress for the ``--jobs`` fan-out: per-worker heartbeats.

The fault-campaign and bench runners shard their work across a
``multiprocessing.Pool`` and merge the results back into byte-identical
reports.  That determinism guarantee means the *reports* can never say
how the fan-out is going -- so this module watches it from the side.

A :class:`ProgressTracker` lives in the **parent** process.  Every time
a sharded item (one faulted run, one bench round) completes, the runner
calls :meth:`ProgressTracker.note` with the worker that produced it and
the item's wall seconds; the tracker treats each completion as that
worker's heartbeat and maintains

- overall completion (``done/total``), throughput, and an ETA;
- per-worker tallies: items completed, busy seconds, steps executed,
  steps/sec;
- **straggler flagging**: a worker whose completed-item count has
  fallen more than :data:`STRAGGLER_FACTOR` x behind the median worker
  is named in the status line (a wedged or oversubscribed worker shows
  up long before the pool drains).

Rendering is a single periodic stderr status line (throttled to one
line per ``interval`` seconds), and :meth:`publish` turns the final
per-worker state into ``progress.worker.<id>.*`` gauges on a telemetry
instance -- the run ledger records those gauges with the invocation,
which is how a recorded campaign remembers how its fan-out behaved.

None of this touches the merged report dicts: two identical campaigns,
one with progress enabled and one without, still serialize to the same
bytes.  When telemetry is tracing, each heartbeat also lands as an
instant event under :data:`repro.obs.spans.PID_WORKERS` so worker
shards show up as labeled tracks in the Chrome trace.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable

from repro.obs import runtime as _obs
from repro.obs.spans import PID_WORKERS

#: A worker this many times behind the median completed-item count is
#: flagged as a straggler.
STRAGGLER_FACTOR = 2.0


def worker_ident() -> int:
    """Small-int id of this pool worker (0 in the parent / serial path).

    Pool workers are named ``ForkPoolWorker-<n>``; the trailing integer
    is stable for the worker's lifetime, which is all a heartbeat needs.
    """
    import multiprocessing

    name = multiprocessing.current_process().name
    if "-" in name:
        try:
            return int(name.rsplit("-", 1)[1])
        except ValueError:
            pass
    return 0


class ProgressTracker:
    """Parent-side aggregation of one fan-out's worker heartbeats.

    ``total`` is the number of sharded items expected; ``what`` names
    them in the status line (``"runs"``, ``"rounds"``).  ``emit`` is the
    line sink (typically printing to stderr) -- when None the tracker
    still aggregates, it just never renders.  ``clock`` is injectable
    for tests.
    """

    def __init__(self, total: int, what: str = "runs",
                 emit: Callable[[str], None] | None = None,
                 interval: float = 0.5,
                 clock: Callable[[], float] = time.monotonic):
        self.total = total
        self.what = what
        self.emit = emit
        self.interval = interval
        self.clock = clock
        self.t0 = clock()
        self.done = 0
        self.steps = 0
        #: worker id -> {"items", "busy_seconds", "steps"}
        self.workers: dict[int, dict] = {}
        #: supervisor event kind -> count (retries, timeouts, crashes,
        #: errors, workers.replaced, shards.toxic)
        self.supervisor: dict[str, int] = {}
        self._last_emit = self.t0
        self._wall = 0.0

    # -- heartbeats ----------------------------------------------------------

    def note(self, worker: int, seconds: float, steps: int = 0) -> None:
        """One completed item from ``worker`` (its heartbeat)."""
        w = self.workers.setdefault(
            worker, {"items": 0, "busy_seconds": 0.0, "steps": 0}
        )
        w["items"] += 1
        w["busy_seconds"] += seconds
        w["steps"] += steps
        self.done += 1
        self.steps += steps
        now = self.clock()
        self._wall = now - self.t0
        if _obs.active:
            telemetry = _obs.current()
            if telemetry.tracing:
                telemetry.tracer.instant(
                    f"progress.{self.what}", pid=PID_WORKERS,
                    tid=f"worker {worker}",
                    done=w["items"], total=self.total,
                )
        if self.emit is not None and (
            now - self._last_emit >= self.interval or self.done >= self.total
        ):
            self._last_emit = now
            self.emit(self.render_line())

    def note_supervisor(self, kind: str) -> None:
        """One supervision event (``"retries"``, ``"timeouts"``,
        ``"crashes"``, ``"errors"``, ``"workers.replaced"``,
        ``"shards.toxic"``) from the supervised pool.  Tallied beside
        the heartbeats so recovery activity reaches the status line,
        :meth:`summary`, and the published gauges without touching the
        report bytes."""
        self.supervisor[kind] = self.supervisor.get(kind, 0) + 1

    # -- derived state -------------------------------------------------------

    def stragglers(self) -> list[int]:
        """Workers more than :data:`STRAGGLER_FACTOR` x behind the median
        completed-item count (needs >= 2 workers to be meaningful)."""
        if len(self.workers) < 2:
            return []
        median = statistics.median(w["items"] for w in self.workers.values())
        return sorted(
            wid for wid, w in self.workers.items()
            if w["items"] * STRAGGLER_FACTOR < median
        )

    def render_line(self) -> str:
        """The one-line stderr status: completion, throughput, ETA."""
        wall = max(self._wall, 1e-9)
        rate = self.done / wall
        parts = [
            f"progress: {self.done}/{self.total} {self.what}",
            f"{len(self.workers)} worker(s)",
            f"{rate:.1f} {self.what}/s",
        ]
        if self.steps:
            parts.append(f"{self.steps / wall:,.0f} steps/s")
        if rate > 0 and self.done < self.total:
            parts.append(f"eta {(self.total - self.done) / rate:.1f}s")
        flagged = self.stragglers()
        if flagged:
            parts.append(
                "straggler: " + ",".join(f"w{wid}" for wid in flagged)
            )
        if self.supervisor:
            parts.append("recovery: " + ",".join(
                f"{kind}={count}"
                for kind, count in sorted(self.supervisor.items())
            ))
        return " | ".join(parts)

    def summary(self) -> dict:
        """JSON-ready per-worker gauges (what the ledger records)."""
        flagged = set(self.stragglers())
        workers = {}
        for wid, w in sorted(self.workers.items()):
            busy = w["busy_seconds"]
            workers[str(wid)] = {
                "items": w["items"],
                "busy_seconds": round(busy, 6),
                "steps": w["steps"],
                "steps_per_second": round(w["steps"] / busy) if busy > 0 else 0,
                "straggler": wid in flagged,
            }
        return {
            "what": self.what,
            "done": self.done,
            "total": self.total,
            "wall_seconds": round(self._wall, 6),
            "workers": workers,
            "supervisor": dict(sorted(self.supervisor.items())),
        }

    # -- sinks ---------------------------------------------------------------

    def publish(self, telemetry) -> None:
        """Set ``progress.worker.<id>.*`` gauges on ``telemetry``.

        Gauges live in the volatile ``progress.`` namespace: the ledger
        stores them beside (never inside) the deterministic counter
        snapshot, so identical campaigns keep identical snapshots.
        """
        summary = self.summary()
        telemetry.gauge("progress.workers").set(len(summary["workers"]))
        telemetry.gauge(f"progress.{self.what}.done").set(self.done)
        for wid, w in summary["workers"].items():
            prefix = f"progress.worker.{wid}"
            telemetry.gauge(f"{prefix}.{self.what}").set(w["items"])
            telemetry.gauge(f"{prefix}.steps_per_sec").set(
                w["steps_per_second"]
            )
            telemetry.gauge(f"{prefix}.straggler").set(
                1.0 if w["straggler"] else 0.0
            )
        for kind, count in sorted(self.supervisor.items()):
            telemetry.gauge(f"progress.supervisor.{kind}").set(count)

    def finish(self) -> dict:
        """Emit the final line, publish gauges to any active telemetry,
        and return :meth:`summary`.

        When the sink is a status line (it has ``clear``/``println``,
        like the CLI's in-place stderr line), the throttled line is
        cleared first and the final line is printed durably -- summaries
        that follow ``finish()`` never interleave with a stale progress
        line.  A plain callable sink behaves as before.
        """
        self._wall = self.clock() - self.t0
        if self.emit is not None:
            clear = getattr(self.emit, "clear", None)
            if clear is not None:
                clear()
            if self.done:
                println = getattr(self.emit, "println", self.emit)
                println(self.render_line())
        if _obs.active:
            self.publish(_obs.current())
        return self.summary()
