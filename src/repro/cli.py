"""Command-line tools for the Tangled/Qat reproduction.

Installed as the ``tangled`` console script::

    tangled asm  program.s [-o program.hex]     assemble to hex words
    tangled dis  program.hex                    disassemble
    tangled run  program.s [--sim pipelined]    assemble + execute
    tangled run  program.s --qat-backend re     ... on the RE-compressed Qat file
    tangled run  program.s --stats              ... plus a telemetry report
    tangled run  program.s --trace-out t.json   ... plus a Chrome trace
    tangled factor 221 --bits 5                 PBP prime factoring
    tangled verilog qatnext --ways 8            emit the Figure 7/8 Verilog
    tangled fig10 [--stats]                     run the paper's listing
    tangled faults --seed 7 --runs 20           seeded soft-error campaign
    tangled faults --jobs 8 --shard-timeout 60  supervised fan-out
    tangled faults --resume 3f2a...             finish an interrupted campaign
    tangled profile program.s                   per-PC cycle attribution
    tangled profile fig10 --trace-out f.json    ... plus a flamegraph
    tangled bench --label nightly               statistics-aware bench run
    tangled bench --compare baseline.json       classify perf deltas
    tangled report                              the recorded-run ledger
    tangled report --label fig10.re             a label's trajectory
    tangled report --compare A B --export json  byte-stable comparison
    tangled blackbox <run-id>                   post-mortem flight recorder
    tangled blackbox box.json --export json     ... as byte-stable JSON

Every subcommand prints to stdout and exits non-zero on error, so the
tools compose in shell pipelines.  ``--stats``/``--trace-out`` route the
whole execution through :mod:`repro.obs`: the report covers pipeline
CPI/stalls, Qat op and AoB-bit volume, and chunkstore compression; the
trace file loads in ``chrome://tracing`` or https://ui.perfetto.dev.
``profile`` goes further -- a ``perf annotate``-style listing saying
*which instruction* the cycles went to and who it stalled on -- and
``bench`` writes/gates the canonical ``BENCH_<label>.json`` trajectory
(see docs/OBSERVABILITY.md).

Every ``run|fig10|faults|profile|bench`` invocation is additionally
recorded in the persistent run ledger (``~/.tangled/ledger.db``,
overridable with ``TANGLED_LEDGER``, opt out per command with
``--no-ledger``): run id, resolved config, wall time, exit status, trap
summary, the deterministic counter snapshot, per-worker ``--jobs``
progress gauges, and emitted artifact paths.  ``tangled report`` reads
it back as trajectories and side-by-side comparisons.

Exit codes: 0 success, 1 error (I/O, bad arguments, simulator fault),
2 ``bench --compare`` regression gate failure, 3 every quarantined
shard of a ``--jobs`` fan-out died to timeouts alone, 4 shards were
quarantined as toxic for any other mix of failures, 130 interrupted
(Ctrl-C; the partial report is still flushed and the run recorded, and
``--resume <run-id>`` finishes it).  The taxonomy lives in
:mod:`repro.errors` (``EXIT_OK`` .. ``EXIT_INTERRUPTED``) -- this
module only imports it.

Every execution command keeps the architectural flight recorder
(:mod:`repro.obs.flight`) armed: on an abnormal end -- a trap-halted
run, a simulator error, Ctrl-C, or a worker killed at its
``--shard-timeout`` deadline -- the final ring contents spill to a
``blackbox-<run-id>[-shardN].json`` beside the ledger, linked in the
run's artifacts.  ``tangled blackbox <run-id|path>`` renders it as a
disassembled listing (``--export json`` is byte-stable).
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import time
import uuid
from contextlib import contextmanager

from repro.errors import (
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_TIMEOUT,
    EXIT_TOXIC_SHARDS,
    ReproError,
)


def _quarantine_status(failure_lists: list) -> int:
    """Exit status from the failure kinds of every quarantined shard:
    :data:`EXIT_TIMEOUT` when timeouts are the *only* kind observed,
    :data:`EXIT_TOXIC_SHARDS` for anything else, :data:`EXIT_OK` for no
    quarantine."""
    if not failure_lists:
        return EXIT_OK
    kinds = {kind for failures in failure_lists for kind in failures}
    return EXIT_TIMEOUT if kinds == {"timeout"} else EXIT_TOXIC_SHARDS


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


class _TelemetryScope:
    """Enable telemetry for one command when ``--stats``/``--trace-out``
    were given; print the report and write the trace on exit."""

    def __init__(self, args: argparse.Namespace):
        self.stats = getattr(args, "stats", False)
        self.trace_out = getattr(args, "trace_out", None)
        self.telemetry = None

    def __enter__(self):
        if self.stats or self.trace_out:
            from repro import obs

            self.telemetry = obs.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.telemetry is None:
            return False
        from repro import obs

        obs.disable()
        if exc_type is None:
            if self.stats:
                print(self.telemetry.report())
            if self.trace_out:
                self.telemetry.write_chrome_trace(self.trace_out)
                print(f"chrome trace -> {self.trace_out}")
        return False


def _sim_counters(sim, kind: str) -> dict:
    """Deterministic counters straight off the simulator.

    The ledger's fallback when no telemetry was captured for the run
    (no ``--stats``/``--trace-out``): enough to draw instruction/CPI
    trajectories without slowing the fast path down with a capture.
    """
    counters = {"cpu.instructions": sim.machine.instret}
    if kind == "multicycle":
        counters["pipeline.cycles"] = sim.cycles
        counters["pipeline.cpi"] = round(sim.cpi, 6)
    elif kind == "pipelined":
        for key, value in sim.stats.as_dict().items():
            counters[f"pipeline.{key}"] = value
    return counters


def _trap_summary(machine) -> dict | None:
    """Cause-keyed trap counts for the ledger row (None when clean)."""
    if not machine.traps:
        return None
    causes: dict[str, int] = {}
    for record in machine.traps:
        causes[record.cause.value] = causes.get(record.cause.value, 0) + 1
    return {"count": len(machine.traps), "causes": dict(sorted(causes.items()))}


class _LedgerScope:
    """Record one CLI invocation into the persistent run ledger.

    Commands attach what they learn (telemetry handle, fallback
    counters, rate steps, trap summary, worker gauges, artifact paths);
    :meth:`finish` turns it into one ledger row -- plus one row per
    bench entry via :meth:`add_row` -- carrying the resolved config and
    exit status.  Recording is best-effort: a ledger failure warns on
    stderr and never changes the command's outcome.  ``--no-ledger``
    (or a falsy ``TANGLED_LEDGER``-resolved path failure) disables it.
    """

    def __init__(self, args: argparse.Namespace, command: str, label: str):
        self.enabled = not getattr(args, "no_ledger", False)
        self.command = command
        self.label = label
        # Pre-generated so sharded commands can journal shard results
        # under this id while the run is still in flight; the final
        # row is recorded under the same id at :meth:`finish`.
        self.run_id = uuid.uuid4().hex[:12]
        self.config = {
            key: value
            for key, value in sorted(vars(args).items())
            if key not in ("func", "command", "no_ledger")
            and not callable(value)
        }
        self.telemetry = None
        self.counters: dict = {}
        self.rate: dict | None = None
        self.rate_steps: int | None = None
        self.traps: dict | None = None
        self.workers: dict | None = None
        self.artifacts: list[str] = []
        self.extra_rows: list[dict] = []
        self.status = 0
        self._t0 = time.perf_counter()

    def add_artifact(self, path) -> None:
        if path and path != "-":
            self.artifacts.append(str(path))

    def spill_blackbox(self, reason: str) -> str | None:
        """Dump the flight recorder to a blackbox file and link it.

        Called on abnormal ends (trap-halt, error, Ctrl-C).  Best-effort
        like the rest of the ledger: an empty ring or an unwritable
        directory never changes the command's outcome.
        """
        try:
            from repro.obs import flight

            if not flight.RECORDER.enabled or not flight.RECORDER.events:
                return None
            path = flight.spill_path(self.run_id)
            flight.spill(path, reason, run_id=self.run_id,
                         context={"command": self.command,
                                  "label": self.label})
            self.add_artifact(path)
            print(f"tangled: blackbox -> {path}", file=sys.stderr)
            return path
        except Exception as exc:  # forensics must never mask the error
            print(f"tangled: blackbox: {exc} (not written)",
                  file=sys.stderr)
            return None

    def add_row(self, label: str, counters: dict, rate: dict | None = None,
                config: dict | None = None) -> None:
        """Queue a secondary row (one recorded bench entry)."""
        self.extra_rows.append({
            "label": label,
            "counters": counters,
            "rate": rate,
            "config": config if config is not None else self.config,
        })

    def finish(self, status: int) -> None:
        if not self.enabled:
            return
        wall = time.perf_counter() - self._t0
        try:
            from repro.obs import ledger as ledger_mod

            counters, progress = ledger_mod.scalar_snapshot(self.telemetry)
            if not counters:
                counters = dict(self.counters)
            # Cache provenance: persistent-chunk-cache totals reach the
            # row even on fast-path runs that never install telemetry
            # (with --stats the telemetry snapshot already has them).
            from repro.pattern import persist as persist_mod

            for key, value in persist_mod.counter_snapshot().items():
                counters.setdefault(key, value)
            workers = self.workers if self.workers is not None else \
                (progress or None)
            rate = self.rate
            if rate is None and self.rate_steps and wall > 0:
                rate = {
                    "steps": self.rate_steps,
                    "steps_per_second": round(self.rate_steps / wall),
                }
            with ledger_mod.open_ledger() as ledger:
                ledger.record(
                    command=self.command,
                    label=self.label,
                    run_id=self.run_id,
                    config=self.config,
                    counters=counters,
                    status=status,
                    wall_seconds=round(wall, 6),
                    traps=self.traps,
                    rate=rate,
                    workers=workers,
                    artifacts=self.artifacts,
                )
                for row in self.extra_rows:
                    ledger.record(
                        command=self.command,
                        label=row["label"],
                        config=row["config"],
                        counters=row["counters"],
                        status=status,
                        rate=row["rate"],
                    )
        except Exception as exc:  # never fail the run over bookkeeping
            print(f"tangled: ledger: {exc} (run not recorded)",
                  file=sys.stderr)


@contextmanager
def _ledger_scope(args: argparse.Namespace, command: str, label: str):
    """Context manager recording the command on both success and error.

    Also owns the flight recorder for the invocation: the ring is reset
    at entry (one command, one recording), marked with the command name,
    and spilled to a linked blackbox artifact when the command ends in
    an error or a Ctrl-C.  Any worker spool configured by
    :func:`_shard_setup` is cleared on the way out.

    The persistent chunk cache is activated here too: ``--chunk-cache``
    (or ``TANGLED_CHUNK_CACHE``) is resolved once, written back onto
    ``args`` so the ledger row's config carries the cache provenance,
    and the cache's pending write-behind buffers are flushed on every
    exit path before module state is restored.
    """
    from repro.obs import flight
    from repro.pattern import persist

    path = getattr(args, "chunk_cache", None) or persist.configured_path()
    if hasattr(args, "chunk_cache"):
        args.chunk_cache = path
    persist.configure(path)
    persist.reset_counters()

    scope = _LedgerScope(args, command, label)
    flight.RECORDER.reset()
    flight.RECORDER.mark(f"cli.{command}", label)
    try:
        yield scope
    except KeyboardInterrupt:
        # Ctrl-C still leaves a queryable row: the run happened, it was
        # interrupted, and its journaled shards are the resume target.
        scope.spill_blackbox("interrupt")
        scope.finish(EXIT_INTERRUPTED)
        raise
    except BaseException:
        scope.spill_blackbox("error")
        scope.finish(EXIT_FAILURE)
        raise
    else:
        scope.finish(scope.status)
    finally:
        try:
            persist.flush()
        finally:
            persist.reset()
        flight.clear_spool()


def _source_stem(source: str) -> str:
    if source == "-":
        return "stdin"
    return os.path.splitext(os.path.basename(source))[0] or "stdin"


def _stderr_line(line: str) -> None:
    print(line, file=sys.stderr)


class _StatusLine:
    """Throttled stderr progress sink for ``ProgressTracker``.

    On a TTY the line rewrites in place (``\\r`` + pad-erase, clamped
    to the terminal width so a narrow window never wraps the rewrite
    into a torn stack of lines) -- a long fan-out shows one live gauge
    instead of scrolling hundreds of lines.  :meth:`clear` erases it
    and :meth:`println` prints durably; ``ProgressTracker.finish``
    calls both so the final summaries never interleave with a stale
    status line.  On a non-TTY (CI logs, pipes) the throttled rewrite
    is suppressed entirely -- repeating a growing gauge line would just
    accumulate noise in the log -- while :meth:`println` still lands
    the durable final line and :meth:`clear` is a no-op.
    """

    def __init__(self, stream=None, width: int | None = None):
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", None)
        self.tty = bool(isatty()) if callable(isatty) else False
        self._width = 0
        if width is not None:
            self.columns = width
        elif self.tty:
            self.columns = shutil.get_terminal_size().columns
        else:
            self.columns = 0

    def __call__(self, line: str) -> None:
        if not self.tty:
            return
        # Leave the last column free: writing into it makes most
        # terminals wrap, which breaks the \r-rewrite invariant.
        if self.columns > 1 and len(line) > self.columns - 1:
            line = line[: self.columns - 1]
        pad = max(self._width - len(line), 0)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._width = len(line)

    def clear(self) -> None:
        if self.tty and self._width:
            self.stream.write("\r" + " " * self._width + "\r")
            self.stream.flush()
            self._width = 0

    def println(self, line: str) -> None:
        self.clear()
        print(line, file=self.stream)


#: ``--resume`` restores these fingerprint keys onto the argparse
#: namespace so the bare ``tangled faults --resume <id>`` finishes the
#: original campaign.  List-valued keys (``targets``, ``benches``) are
#: handled separately in :func:`_adopt_resume_args`.
_RESUME_ARGS = {
    "faults": ("program", "runs", "seed", "sim", "ways",
               "faults_per_run", "qat_backend"),
    "bench": ("label", "rounds", "warmup", "qat_backend"),
}


def _adopt_resume_args(args: argparse.Namespace, command: str) -> None:
    """Restore the journaled campaign shape for ``--resume``.

    The journal's fingerprint row defines *what* ran -- program, seed,
    runs, bench set, rounds -- so a resume adopts those values instead
    of requiring the caller to repeat them; only the execution knobs
    (``--jobs``, ``--shard-timeout``, ``--retries``,
    ``--worker-mem-mib``) come from the new command line.  The runner
    re-verifies the fingerprint when it opens the journal, so a drifted
    journal between this read and that open is still refused.
    """
    if getattr(args, "resume", None) is None:
        return
    if args.no_ledger:
        raise ReproError(
            "--resume reads the shard journal in the run ledger; "
            "drop --no-ledger"
        )
    from repro.obs import ledger as ledger_mod

    args.resume = ledger_mod.resolve_journal_run(args.resume)
    record = ledger_mod.journal_fingerprint(args.resume)
    if record.get("kind") != command:
        raise ReproError(
            f"run {args.resume!r} journaled a {record.get('kind')!r} "
            f"run; resume it with: tangled {record.get('kind')} "
            f"--resume {args.resume}"
        )
    fingerprint = record.get("fingerprint", {})
    for key in _RESUME_ARGS[command]:
        if key in fingerprint:
            setattr(args, key, fingerprint[key])
    if command == "faults" and "targets" in fingerprint:
        args.targets = ",".join(fingerprint["targets"])
    if command == "bench":
        if "benches" in fingerprint:
            args.only = ",".join(fingerprint["benches"])
        args.quick = False  # rounds were restored explicitly above


def _shard_setup(args: argparse.Namespace, led: _LedgerScope):
    """``(supervise, journal)`` for a sharded command's CLI arguments.

    The supervision config exists only for ``--jobs > 1`` (the serial
    path needs no worker pool); the shard journal exists whenever the
    ledger does -- serial campaigns journal too, so even a Ctrl-C that
    never reached the fan-out machinery leaves a resumable trail.  With
    ``--resume`` the journal reopens the *original* run's id (resolved
    like ledger run ids, prefixes allowed), so repeated resumes keep
    accumulating under one journal.
    """
    from repro.obs import ledger as ledger_mod

    supervise = None
    if args.jobs > 1:
        from repro.runtime.supervisor import SupervisorConfig

        supervise = SupervisorConfig(
            jobs=args.jobs,
            shard_timeout=args.shard_timeout,
            max_attempts=1 + max(args.retries, 0),
            worker_mem_mib=args.worker_mem_mib,
        )
    journal = None
    if args.resume is not None:
        if not led.enabled:
            raise ReproError(
                "--resume reads the shard journal in the run ledger; "
                "drop --no-ledger"
            )
        run_id = ledger_mod.resolve_journal_run(args.resume)
        journal = ledger_mod.ShardJournal(run_id, resume=True)
    elif led.enabled:
        journal = ledger_mod.ShardJournal(led.run_id)
    if led.enabled:
        # Arm the worker-side blackbox spool: forked workers inherit the
        # spool env and self-dump their rings on crash / deadline; the
        # supervisor collects the files for toxic shards only.
        from repro.obs import flight

        flight.configure_spool(led.run_id)
    return supervise, journal


def _interrupt_note(command: str, done: int, total: int, what: str,
                    journal) -> None:
    hint = ""
    if journal is not None and journal.enabled:
        hint = (f"; resume with: tangled {command} --resume "
                f"{journal.run_id}")
    print(f"tangled: {command}: interrupted after {done}/{total} {what}"
          f"{hint}", file=sys.stderr)


def _quarantine_note(command: str, count: int, status: int,
                     journal) -> None:
    kind = "timeout" if status == EXIT_TIMEOUT else "toxic"
    hint = ""
    if journal is not None and journal.enabled:
        hint = (f"; retry them with: tangled {command} --resume "
                f"{journal.run_id}")
    print(f"tangled: {command}: {count} shard(s) quarantined "
          f"({kind}; exit {status}){hint}", file=sys.stderr)


def cmd_asm(args: argparse.Namespace) -> int:
    from repro.asm import assemble

    program = assemble(_read_source(args.source))
    lines = [f"{word:04x}" for word in program.words]
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{len(program.words)} words -> {args.output}")
    else:
        sys.stdout.write(text)
    return EXIT_OK


def cmd_dis(args: argparse.Namespace) -> int:
    from repro.asm.disasm import render_listing

    words = [int(tok, 16) for tok in _read_source(args.image).split()]
    print(render_listing(words))
    return EXIT_OK


def cmd_run(args: argparse.Namespace) -> int:
    from repro.asm import assemble
    from repro.cpu import (
        FunctionalSimulator,
        MultiCycleSimulator,
        PipelineConfig,
        PipelinedSimulator,
    )

    label = f"run.{_source_stem(args.source)}.{args.sim}.{args.qat_backend}"
    with _ledger_scope(args, "run", label) as led:
        program = assemble(_read_source(args.source))
        if args.sim == "functional":
            sim = FunctionalSimulator(ways=args.ways,
                                      qat_backend=args.qat_backend)
        elif args.sim == "multicycle":
            sim = MultiCycleSimulator(ways=args.ways,
                                      qat_backend=args.qat_backend)
        else:
            sim = PipelinedSimulator(
                ways=args.ways,
                config=PipelineConfig(stages=args.stages,
                                      forwarding=not args.no_forwarding),
                qat_backend=args.qat_backend,
            )
        sim.load(program)
        machine = sim.machine
        try:
            with _TelemetryScope(args) as tel:
                led.telemetry = tel.telemetry
                sim.run(args.limit)
                for chunk in machine.output:
                    sys.stdout.write(chunk)
                if machine.output:
                    print()
                print("registers:",
                      " ".join(f"${i}={machine.read_reg(i)}"
                               for i in range(8)))
                if args.sim == "multicycle":
                    print(f"cycles: {sim.cycles}  cpi: {sim.cpi:.3f}")
                elif args.sim == "pipelined":
                    stats = sim.stats.as_dict()
                    print(
                        f"cycles: {stats['cycles']}  cpi: {stats['cpi']}  "
                        f"stalls: {stats['stall_data']} data, "
                        f"{stats['fetch_extra']} fetch, "
                        f"{stats['branch_flushes']} flushes"
                    )
                else:
                    print(f"instructions: {machine.instret}")
        finally:
            # Even a run that dies mid-flight (trap escalated to an
            # error) leaves its trap summary and counters in the ledger.
            led.counters = _sim_counters(sim, args.sim)
            led.rate_steps = machine.instret
            led.traps = _trap_summary(machine)
        led.add_artifact(getattr(args, "trace_out", None))
        if machine.traps:
            # A trap-halted run ended abnormally even though the
            # simulator returned: keep the forensic trail.
            led.spill_blackbox("trap-halt")
            led.status = EXIT_FAILURE
            return EXIT_FAILURE
    return EXIT_OK


def cmd_factor(args: argparse.Namespace) -> int:
    from repro.apps import factor_word_level

    # Default width fits n itself, so the trivial (n, 1) pair -- and hence
    # any factor -- is representable (Figure 9 uses 4 bits for n = 15).
    bits = args.bits or max(2, args.n.bit_length())
    result = factor_word_level(
        args.n,
        bits,
        bits,
        backend="pattern" if args.pattern else "auto",
        chunk_ways=args.chunk_ways,
    )
    print(f"n = {args.n}  ({2 * bits}-way entanglement)")
    print("factor pairs:", result.pairs)
    if result.nontrivial:
        print("nontrivial factors:", result.nontrivial)
    else:
        print("no nontrivial factors (prime or out of range)")
    return EXIT_OK


def cmd_verilog(args: argparse.Namespace) -> int:
    from repro.hw.verilog import emit_design_bundle, emit_qat_alu, emit_qathad, emit_qatnext

    emitters = {
        "qathad": emit_qathad,
        "qatnext": emit_qatnext,
        "qatalu": emit_qat_alu,
        "all": emit_design_bundle,
    }
    sys.stdout.write(emitters[args.module](args.ways))
    return EXIT_OK


def cmd_fig10(args: argparse.Namespace) -> int:
    from repro.apps import fig10_program, run_factor_program

    label = f"fig10.{args.sim}.{args.qat_backend}"
    with _ledger_scope(args, "fig10", label) as led:
        with _TelemetryScope(args) as tel:
            led.telemetry = tel.telemetry
            sim, (r0, r1) = run_factor_program(
                fig10_program(), ways=args.ways, simulator=args.sim,
                qat_backend=args.qat_backend,
            )
            print(f"Figure 10 on the {args.sim} simulator "
                  f"({sim.machine.qat.describe()} Qat):")
            print(f"  $0 = {r0}   $1 = {r1}")
            if args.sim == "pipelined":
                print(f"  {sim.stats.as_dict()}")
        led.counters = _sim_counters(sim, args.sim)
        led.rate_steps = sim.machine.instret
        led.traps = _trap_summary(sim.machine)
        led.add_artifact(getattr(args, "trace_out", None))
    return EXIT_OK


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.campaign import (
        CampaignInterrupted,
        render_report,
        run_campaign,
    )
    from repro.obs.progress import ProgressTracker

    _adopt_resume_args(args, "faults")
    label = f"faults.{args.program}.{args.sim}.{args.qat_backend}"
    with _ledger_scope(args, "faults", label) as led:
        with _TelemetryScope(args) as tel:
            led.telemetry = tel.telemetry
            supervise, journal = _shard_setup(args, led)
            tracker = ProgressTracker(
                total=args.runs, what="runs",
                emit=_StatusLine() if args.jobs > 1 or args.batch > 1
                else None,
            )
            status = 0
            try:
                report = run_campaign(
                    program=args.program,
                    runs=args.runs,
                    seed=args.seed,
                    sim=args.sim,
                    ways=args.ways,
                    faults_per_run=args.faults_per_run,
                    targets=tuple(args.targets.split(",")),
                    qat_backend=args.qat_backend,
                    jobs=args.jobs,
                    batch=args.batch,
                    tracker=tracker,
                    supervise=supervise,
                    journal=journal,
                )
            except CampaignInterrupted as stop:
                report = stop.report
                status = EXIT_INTERRUPTED
                _interrupt_note("faults", stop.done, stop.total, "runs",
                                journal)
            led.workers = tracker.summary()
            # Worker blackboxes collected from toxic shards' spools:
            # link each one so ``tangled blackbox <run-id>`` finds them.
            for box in report.get("blackbox", ()):
                led.add_artifact(box)
            led.counters = {
                f"faults.{key}": value
                for key, value in report["summary"].items()
            }
            for kind, count in sorted(tracker.supervisor.items()):
                led.counters[f"supervisor.{kind}"] = count
            led.traps = {
                "trapped_runs": sum(
                    1 for run in report["runs_detail"] if run["traps"]
                ),
            }
            toxic = [run["failures"] for run in report["runs_detail"]
                     if run["outcome"] == "toxic"]
            if status == 0:
                status = _quarantine_status(toxic)
                if status:
                    _quarantine_note("faults", len(toxic), status, journal)
            led.status = status
            if args.summary_only:
                report.pop("runs_detail")
            sys.stdout.write(render_report(report))
    return status


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.cpu import PipelineConfig
    from repro.obs.profile import (
        profile_program,
        render_annotate,
        write_flamegraph,
    )

    stem = "fig10" if args.source == "fig10" else _source_stem(args.source)
    label = f"profile.{stem}.{args.sim}.{args.qat_backend}"
    with _ledger_scope(args, "profile", label) as led:
        if args.source == "fig10":
            from repro.apps import fig10_program

            program = fig10_program()
            title = "fig10 (the paper's listing)"
        else:
            from repro.asm import assemble

            program = assemble(_read_source(args.source))
            title = args.source
        config = None
        if args.sim == "pipelined":
            config = PipelineConfig(
                stages=args.stages, forwarding=not args.no_forwarding
            )
        sim, profiler = profile_program(
            program, ways=args.ways, simulator=args.sim, config=config,
            max_cycles=args.limit, qat_backend=args.qat_backend,
        )
        if args.json == "-":
            sys.stdout.write(profiler.to_json())
        else:
            print(render_annotate(profiler, words=program.words,
                                  title=f"{title} [{args.sim}]"))
            if args.json:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(profiler.to_json())
                print(f"profile json -> {args.json}")
                led.add_artifact(args.json)
        if args.trace_out:
            write_flamegraph(args.trace_out, profiler)
            if args.json != "-":
                print(f"flamegraph trace -> {args.trace_out}")
            led.add_artifact(args.trace_out)
        led.counters = {
            "profile.total_cycles": profiler.total_cycles,
            "cpu.instructions": sim.machine.instret,
        }
        led.rate_steps = sim.machine.instret
        led.traps = _trap_summary(sim.machine)
    return EXIT_OK


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench
    from repro.obs.progress import ProgressTracker

    if args.list:
        for spec in bench.default_specs(args.qat_backend) + bench.warm_specs():
            print(f"{spec.name:<24} {spec.description}")
        return EXIT_OK
    _adopt_resume_args(args, "bench")
    rounds = 2 if args.quick else args.rounds
    specs = None
    if args.only:
        wanted = args.only.split(",")
        specs = [bench.spec_by_name(name, args.qat_backend) for name in wanted]
    elif args.qat_backend != "dense":
        specs = bench.default_specs(args.qat_backend)
    with _ledger_scope(args, "bench", f"bench.{args.label}") as led:
        if args.input:
            # Pure comparison of an existing report: nothing ran, so
            # nothing lands in the ledger.
            led.enabled = False
            report = bench.load_report(args.input)
        else:
            spec_list = specs if specs is not None \
                else bench.default_specs(args.qat_backend)
            supervise, journal = _shard_setup(args, led)
            tracker = ProgressTracker(
                total=len(spec_list) * rounds, what="rounds",
                emit=_StatusLine() if args.jobs > 1 else None,
            )
            try:
                report = bench.run_suite(
                    specs=specs, label=args.label, rounds=rounds,
                    warmup=args.warmup,
                    progress=_stderr_line,
                    jobs=args.jobs, qat_backend=args.qat_backend,
                    tracker=tracker,
                    supervise=supervise, journal=journal,
                )
            except bench.BenchInterrupted as stop:
                report = stop.report
                led.status = EXIT_INTERRUPTED
                _interrupt_note("bench", stop.done, stop.total, "benches",
                                journal)
            out = args.out or f"BENCH_{args.label}.json"
            bench.write_report(out, report)
            print(f"bench report ({len(report['benches'])} benches, "
                  f"{rounds} rounds) -> {out}")
            led.workers = tracker.summary()
            led.add_artifact(out)
            for kind, count in sorted(tracker.supervisor.items()):
                led.counters[f"supervisor.{kind}"] = count
            entry_config = {
                "qat_backend": args.qat_backend, "rounds": rounds,
                "warmup": args.warmup, "jobs": args.jobs,
            }
            for name, entry in sorted(report["benches"].items()):
                if entry.get("toxic"):
                    continue  # quarantined: no counters to record
                led.add_row(name, entry["counters"],
                            rate=entry.get("rate"), config=entry_config)
            toxic = [entry["failures"]
                     for entry in report["benches"].values()
                     if entry.get("toxic")]
            if led.status == 0:
                led.status = _quarantine_status(toxic)
                if led.status:
                    _quarantine_note("bench", len(toxic), led.status,
                                     journal)
            if led.status:
                return led.status
        if args.compare:
            baseline = bench.load_report(args.compare)
            rows = bench.compare_reports(
                report, baseline,
                counter_threshold=args.counter_threshold,
                time_threshold=args.time_threshold,
            )
            print(bench.render_compare(rows, verbose=args.verbose))
            bad = bench.regressions(rows, include_timing=args.gate_timing)
            if bad:
                print(f"tangled bench: {len(bad)} regression(s) vs "
                      f"{args.compare}", file=sys.stderr)
                print(bench.render_regressions(bad), file=sys.stderr)
                led.status = EXIT_REGRESSION
                return EXIT_REGRESSION
    return EXIT_OK


def cmd_blackbox(args: argparse.Namespace) -> int:
    from repro.obs import flight

    if os.path.exists(args.target):
        paths = [args.target]
    else:
        from repro.obs import ledger as ledger_mod

        with ledger_mod.open_ledger(args.ledger) as ledger:
            run = ledger.resolve(args.target)
        paths = [
            path for path in run.artifacts
            if os.path.basename(path).startswith("blackbox-")
        ]
        if not paths:
            raise ReproError(
                f"run {run.id} has no blackbox artifacts (it ended "
                f"cleanly, or the spill predates this ledger)"
            )
    docs = [flight.load_blackbox(path) for path in paths]
    if args.export == "json":
        # Deterministic: single spill exports bare, several export as a
        # sorted collection keyed by their spill file names.
        if len(docs) == 1:
            sys.stdout.write(flight.export_json(docs[0]))
        else:
            bundle = {
                "blackboxes": {
                    os.path.basename(path): doc
                    for path, doc in sorted(zip(paths, docs))
                }
            }
            sys.stdout.write(flight.export_json(bundle))
    else:
        for index, doc in enumerate(docs):
            if index:
                print()
            print(flight.render_blackbox(doc, last=args.last))
    return EXIT_OK


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import ledger as ledger_mod

    with ledger_mod.open_ledger(args.ledger) as ledger:
        if args.compare:
            view = ledger_mod.compare_view(
                ledger, args.compare[0], args.compare[1],
                counter_threshold=args.counter_threshold,
                time_threshold=args.time_threshold,
            )
        elif args.label:
            view = ledger_mod.trajectory_view(ledger, args.label,
                                              last=args.last)
        else:
            view = ledger_mod.runs_view(ledger, last=args.last)
    if args.export == "json":
        sys.stdout.write(ledger_mod.export_json(view))
    else:
        print(ledger_mod.render_view(view))
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tangled", description="Tangled/Qat reproduction tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_qat_backend(p):
        p.add_argument("--qat-backend", choices=("dense", "re"),
                       default="dense",
                       help="Qat register substrate: dense AoB matrix "
                            "(hardware-faithful, ways <= 26) or 're' "
                            "run-length compression (bounded memory at "
                            "wide ways)")

    def add_ledger_opt(p):
        p.add_argument("--no-ledger", action="store_true",
                       help="do not record this invocation in the run "
                            "ledger (~/.tangled/ledger.db, or "
                            "$TANGLED_LEDGER)")

    def add_chunk_cache(p):
        p.add_argument("--chunk-cache", metavar="PATH",
                       help="persistent shared chunk cache warming the "
                            "RE Qat substrate across runs and workers "
                            "(default: $TANGLED_CHUNK_CACHE; unset = "
                            "cold). Results stay byte-identical warm "
                            "vs cold")

    def add_supervise_opts(p, what):
        p.add_argument("--shard-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help=f"kill and retry a {what} whose worker runs "
                            "longer than this (only with --jobs > 1)")
        p.add_argument("--retries", type=int, default=2, metavar="N",
                       help=f"retries per {what} (with backoff) before "
                            "it is quarantined as toxic (default: 2)")
        p.add_argument("--worker-mem-mib", type=int, default=None,
                       metavar="MIB",
                       help="address-space ceiling per worker process "
                            "(RLIMIT_AS; exceeding it fails the shard, "
                            "not the campaign)")
        p.add_argument("--resume", metavar="RUN_ID",
                       help="finish the journaled run RUN_ID (id or "
                            "unique prefix): re-execute only its "
                            "missing and toxic shards, byte-identical "
                            "to a one-shot run")

    p = sub.add_parser("asm", help="assemble Tangled/Qat source to hex")
    p.add_argument("source", help="assembly file ('-' for stdin)")
    p.add_argument("-o", "--output", help="write hex words here")
    p.set_defaults(func=cmd_asm)

    p = sub.add_parser("dis", help="disassemble a hex word image")
    p.add_argument("image", help="hex file ('-' for stdin)")
    p.set_defaults(func=cmd_dis)

    p = sub.add_parser("run", help="assemble and execute a program")
    p.add_argument("source", help="assembly file ('-' for stdin)")
    p.add_argument("--sim", choices=("functional", "multicycle", "pipelined"),
                   default="pipelined")
    p.add_argument("--ways", type=int, default=8)
    add_qat_backend(p)
    p.add_argument("--stages", type=int, choices=(4, 5), default=4)
    p.add_argument("--no-forwarding", action="store_true")
    p.add_argument("--limit", type=int, default=1_000_000,
                   help="step/cycle budget")
    p.add_argument("--stats", action="store_true",
                   help="print a telemetry report (CPI, stalls, Qat ops, ...)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event JSON file "
                        "(chrome://tracing / Perfetto)")
    add_chunk_cache(p)
    add_ledger_opt(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("factor", help="PBP prime factoring")
    p.add_argument("n", type=int)
    p.add_argument("--bits", type=int, help="bits per factor (default: fitted)")
    p.add_argument("--pattern", action="store_true",
                   help="force the RE-compressed substrate")
    p.add_argument("--chunk-ways", type=int, default=None)
    p.set_defaults(func=cmd_factor)

    p = sub.add_parser("verilog", help="emit the Figure 7/8 Verilog modules")
    p.add_argument("module", choices=("qathad", "qatnext", "qatalu", "all"))
    p.add_argument("--ways", type=int, default=16)
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser("fig10", help="run the paper's Figure 10 program")
    p.add_argument("--sim", choices=("functional", "multicycle", "pipelined"),
                   default="pipelined")
    p.add_argument("--ways", type=int, default=8)
    add_qat_backend(p)
    p.add_argument("--stats", action="store_true",
                   help="print a telemetry report (CPI, stalls, Qat ops, ...)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event JSON file")
    add_chunk_cache(p)
    add_ledger_opt(p)
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser(
        "faults",
        help="run a seeded soft-error campaign and classify the outcomes",
    )
    p.add_argument("--seed", type=int, default=7, help="master campaign seed")
    p.add_argument("--runs", type=int, default=20, help="faulted runs")
    p.add_argument("--program", choices=("fig10", "factor"), default="fig10")
    p.add_argument("--sim", choices=("functional", "multicycle", "pipelined"),
                   default="functional")
    p.add_argument("--ways", type=int, default=8)
    add_qat_backend(p)
    p.add_argument("--faults-per-run", type=int, default=1,
                   help="bit flips injected per run")
    p.add_argument("--targets", default="gpr,mem,qreg",
                   help="comma-separated fault targets "
                        "(gpr,qreg,mem,pc,latch)")
    p.add_argument("--summary-only", action="store_true",
                   help="omit the per-run detail from the report")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard the runs across N supervised worker "
                        "processes (report stays byte-identical to "
                        "serial)")
    p.add_argument("--batch", type=int, default=1, metavar="N",
                   help="pack runs into N-lane batches on the NumPy-"
                        "batched functional simulator (one process, "
                        "vectorized across machines; report stays "
                        "byte-identical to serial)")
    add_supervise_opts(p, "run")
    p.add_argument("--stats", action="store_true",
                   help="print a telemetry report (fault counters, traps, ...)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event JSON file")
    add_chunk_cache(p)
    add_ledger_opt(p)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "profile",
        help="attribute every simulated cycle to a PC (perf annotate style)",
    )
    p.add_argument("source",
                   help="assembly file ('-' for stdin), or 'fig10' for the "
                        "paper's listing")
    p.add_argument("--sim", choices=("pipelined", "multicycle"),
                   default="pipelined")
    p.add_argument("--ways", type=int, default=8)
    add_qat_backend(p)
    p.add_argument("--stages", type=int, choices=(4, 5), default=4)
    p.add_argument("--no-forwarding", action="store_true")
    p.add_argument("--limit", type=int, default=10_000_000,
                   help="cycle/step budget")
    p.add_argument("--json", metavar="PATH",
                   help="also write the profile as JSON ('-' for stdout "
                        "instead of the listing)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event flamegraph "
                        "(chrome://tracing / Perfetto)")
    add_chunk_cache(p)
    add_ledger_opt(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "bench",
        help="run the benchmark suite; write/compare BENCH_<label>.json",
    )
    p.add_argument("--label", default="local",
                   help="report label (default: local)")
    add_qat_backend(p)
    p.add_argument("--out", metavar="PATH",
                   help="report path (default: BENCH_<label>.json)")
    p.add_argument("--rounds", type=int, default=5,
                   help="measured rounds per bench (default: 5)")
    p.add_argument("--warmup", type=int, default=1,
                   help="unmeasured warmup rounds per bench (default: 1)")
    p.add_argument("--quick", action="store_true",
                   help="2 measured rounds (CI smoke mode)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard bench rounds across N supervised worker "
                        "processes (counter sections stay "
                        "byte-identical to serial)")
    add_supervise_opts(p, "round")
    p.add_argument("--only", metavar="NAMES",
                   help="comma-separated bench names to run")
    p.add_argument("--list", action="store_true",
                   help="list bench names and exit")
    p.add_argument("--input", metavar="PATH",
                   help="compare an existing report instead of running")
    p.add_argument("--compare", metavar="PATH",
                   help="baseline BENCH json; exit 2 on counter regressions")
    p.add_argument("--counter-threshold", type=float, default=0.05,
                   help="relative counter change treated as neutral "
                        "(default: 0.05)")
    p.add_argument("--time-threshold", type=float, default=0.25,
                   help="relative median-time change treated as neutral "
                        "(default: 0.25)")
    p.add_argument("--gate-timing", action="store_true",
                   help="also fail on timing regressions (off by default: "
                        "wall clock is machine-dependent)")
    p.add_argument("--verbose", action="store_true",
                   help="show neutral metrics in the comparison too")
    add_chunk_cache(p)
    add_ledger_opt(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "blackbox",
        help="render a run's flight-recorder blackbox as a disassembled "
             "post-mortem listing",
    )
    p.add_argument("target",
                   help="run id (or unique prefix / label) whose linked "
                        "blackbox artifacts to render, or a path to a "
                        "blackbox-*.json spill file")
    p.add_argument("--last", type=int, default=None, metavar="K",
                   help="only the final K events (default: all spilled)")
    p.add_argument("--ledger", metavar="PATH",
                   help="ledger database (default: $TANGLED_LEDGER or "
                        "~/.tangled/ledger.db)")
    p.add_argument("--export", choices=("json",),
                   help="byte-stable JSON instead of the text listing")
    p.set_defaults(func=cmd_blackbox)

    p = sub.add_parser("report",
                       help="trajectory and comparison views over the "
                            "run ledger")
    p.add_argument("--ledger", metavar="PATH",
                   help="ledger database (default: $TANGLED_LEDGER or "
                        "~/.tangled/ledger.db)")
    p.add_argument("--label", metavar="LABEL",
                   help="render this label's trajectory across its runs")
    p.add_argument("--last", type=int, default=10, metavar="N",
                   help="how many recent runs to include (default: 10)")
    p.add_argument("--compare", nargs=2, metavar=("A", "B"),
                   help="side-by-side comparison: run ids (or unique "
                        "prefixes), or labels (their latest run)")
    p.add_argument("--counter-threshold", type=float, default=0.05,
                   help="relative counter change treated as neutral "
                        "(default: 0.05)")
    p.add_argument("--time-threshold", type=float, default=0.25,
                   help="relative timing change treated as neutral "
                        "(default: 0.25)")
    p.add_argument("--export", choices=("json",),
                   help="byte-stable JSON instead of the text view")
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("tangled: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except (ReproError, OSError, ValueError) as exc:
        print(f"tangled: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":
    raise SystemExit(main())
