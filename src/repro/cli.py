"""Command-line tools for the Tangled/Qat reproduction.

Installed as the ``tangled`` console script::

    tangled asm  program.s [-o program.hex]     assemble to hex words
    tangled dis  program.hex                    disassemble
    tangled run  program.s [--sim pipelined]    assemble + execute
    tangled run  program.s --qat-backend re     ... on the RE-compressed Qat file
    tangled run  program.s --stats              ... plus a telemetry report
    tangled run  program.s --trace-out t.json   ... plus a Chrome trace
    tangled factor 221 --bits 5                 PBP prime factoring
    tangled verilog qatnext --ways 8            emit the Figure 7/8 Verilog
    tangled fig10 [--stats]                     run the paper's listing
    tangled faults --seed 7 --runs 20           seeded soft-error campaign
    tangled profile program.s                   per-PC cycle attribution
    tangled profile fig10 --trace-out f.json    ... plus a flamegraph
    tangled bench --label nightly               statistics-aware bench run
    tangled bench --compare baseline.json       classify perf deltas

Every subcommand prints to stdout and exits non-zero on error, so the
tools compose in shell pipelines.  ``--stats``/``--trace-out`` route the
whole execution through :mod:`repro.obs`: the report covers pipeline
CPI/stalls, Qat op and AoB-bit volume, and chunkstore compression; the
trace file loads in ``chrome://tracing`` or https://ui.perfetto.dev.
``profile`` goes further -- a ``perf annotate``-style listing saying
*which instruction* the cycles went to and who it stalled on -- and
``bench`` writes/gates the canonical ``BENCH_<label>.json`` trajectory
(see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


class _TelemetryScope:
    """Enable telemetry for one command when ``--stats``/``--trace-out``
    were given; print the report and write the trace on exit."""

    def __init__(self, args: argparse.Namespace):
        self.stats = getattr(args, "stats", False)
        self.trace_out = getattr(args, "trace_out", None)
        self.telemetry = None

    def __enter__(self):
        if self.stats or self.trace_out:
            from repro import obs

            self.telemetry = obs.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.telemetry is None:
            return False
        from repro import obs

        obs.disable()
        if exc_type is None:
            if self.stats:
                print(self.telemetry.report())
            if self.trace_out:
                self.telemetry.write_chrome_trace(self.trace_out)
                print(f"chrome trace -> {self.trace_out}")
        return False


def cmd_asm(args: argparse.Namespace) -> int:
    from repro.asm import assemble

    program = assemble(_read_source(args.source))
    lines = [f"{word:04x}" for word in program.words]
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{len(program.words)} words -> {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_dis(args: argparse.Namespace) -> int:
    from repro.asm.disasm import render_listing

    words = [int(tok, 16) for tok in _read_source(args.image).split()]
    print(render_listing(words))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.asm import assemble
    from repro.cpu import (
        FunctionalSimulator,
        MultiCycleSimulator,
        PipelineConfig,
        PipelinedSimulator,
    )

    program = assemble(_read_source(args.source))
    if args.sim == "functional":
        sim = FunctionalSimulator(ways=args.ways, qat_backend=args.qat_backend)
    elif args.sim == "multicycle":
        sim = MultiCycleSimulator(ways=args.ways, qat_backend=args.qat_backend)
    else:
        sim = PipelinedSimulator(
            ways=args.ways,
            config=PipelineConfig(stages=args.stages, forwarding=not args.no_forwarding),
            qat_backend=args.qat_backend,
        )
    sim.load(program)
    with _TelemetryScope(args):
        sim.run(args.limit)
        machine = sim.machine
        for chunk in machine.output:
            sys.stdout.write(chunk)
        if machine.output:
            print()
        print("registers:", " ".join(f"${i}={machine.read_reg(i)}" for i in range(8)))
        if args.sim == "multicycle":
            print(f"cycles: {sim.cycles}  cpi: {sim.cpi:.3f}")
        elif args.sim == "pipelined":
            stats = sim.stats.as_dict()
            print(
                f"cycles: {stats['cycles']}  cpi: {stats['cpi']}  "
                f"stalls: {stats['stall_data']} data, {stats['fetch_extra']} fetch, "
                f"{stats['branch_flushes']} flushes"
            )
        else:
            print(f"instructions: {machine.instret}")
    return 0


def cmd_factor(args: argparse.Namespace) -> int:
    from repro.apps import factor_word_level

    # Default width fits n itself, so the trivial (n, 1) pair -- and hence
    # any factor -- is representable (Figure 9 uses 4 bits for n = 15).
    bits = args.bits or max(2, args.n.bit_length())
    result = factor_word_level(
        args.n,
        bits,
        bits,
        backend="pattern" if args.pattern else "auto",
        chunk_ways=args.chunk_ways,
    )
    print(f"n = {args.n}  ({2 * bits}-way entanglement)")
    print("factor pairs:", result.pairs)
    if result.nontrivial:
        print("nontrivial factors:", result.nontrivial)
    else:
        print("no nontrivial factors (prime or out of range)")
    return 0


def cmd_verilog(args: argparse.Namespace) -> int:
    from repro.hw.verilog import emit_design_bundle, emit_qat_alu, emit_qathad, emit_qatnext

    emitters = {
        "qathad": emit_qathad,
        "qatnext": emit_qatnext,
        "qatalu": emit_qat_alu,
        "all": emit_design_bundle,
    }
    sys.stdout.write(emitters[args.module](args.ways))
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    from repro.apps import fig10_program, run_factor_program

    with _TelemetryScope(args):
        sim, (r0, r1) = run_factor_program(
            fig10_program(), ways=args.ways, simulator=args.sim,
            qat_backend=args.qat_backend,
        )
        print(f"Figure 10 on the {args.sim} simulator "
              f"({sim.machine.qat.describe()} Qat):")
        print(f"  $0 = {r0}   $1 = {r1}")
        if args.sim == "pipelined":
            print(f"  {sim.stats.as_dict()}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.campaign import render_report, run_campaign

    with _TelemetryScope(args):
        report = run_campaign(
            program=args.program,
            runs=args.runs,
            seed=args.seed,
            sim=args.sim,
            ways=args.ways,
            faults_per_run=args.faults_per_run,
            targets=tuple(args.targets.split(",")),
            qat_backend=args.qat_backend,
            jobs=args.jobs,
        )
        if args.summary_only:
            report.pop("runs_detail")
        sys.stdout.write(render_report(report))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.cpu import PipelineConfig
    from repro.obs.profile import (
        profile_program,
        render_annotate,
        write_flamegraph,
    )

    if args.source == "fig10":
        from repro.apps import fig10_program

        program = fig10_program()
        title = "fig10 (the paper's listing)"
    else:
        from repro.asm import assemble

        program = assemble(_read_source(args.source))
        title = args.source
    config = None
    if args.sim == "pipelined":
        config = PipelineConfig(
            stages=args.stages, forwarding=not args.no_forwarding
        )
    sim, profiler = profile_program(
        program, ways=args.ways, simulator=args.sim, config=config,
        max_cycles=args.limit, qat_backend=args.qat_backend,
    )
    if args.json == "-":
        sys.stdout.write(profiler.to_json())
    else:
        print(render_annotate(profiler, words=program.words,
                              title=f"{title} [{args.sim}]"))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(profiler.to_json())
            print(f"profile json -> {args.json}")
    if args.trace_out:
        write_flamegraph(args.trace_out, profiler)
        if args.json != "-":
            print(f"flamegraph trace -> {args.trace_out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench

    if args.list:
        for spec in bench.default_specs(args.qat_backend):
            print(f"{spec.name:<24} {spec.description}")
        return 0
    rounds = 2 if args.quick else args.rounds
    specs = None
    if args.only:
        wanted = args.only.split(",")
        specs = [bench.spec_by_name(name, args.qat_backend) for name in wanted]
    elif args.qat_backend != "dense":
        specs = bench.default_specs(args.qat_backend)
    if args.input:
        report = bench.load_report(args.input)
    else:
        report = bench.run_suite(
            specs=specs, label=args.label, rounds=rounds,
            warmup=args.warmup,
            progress=lambda line: print(line, file=sys.stderr),
            jobs=args.jobs, qat_backend=args.qat_backend,
        )
        out = args.out or f"BENCH_{args.label}.json"
        bench.write_report(out, report)
        print(f"bench report ({len(report['benches'])} benches, "
              f"{rounds} rounds) -> {out}")
    if args.compare:
        baseline = bench.load_report(args.compare)
        rows = bench.compare_reports(
            report, baseline,
            counter_threshold=args.counter_threshold,
            time_threshold=args.time_threshold,
        )
        print(bench.render_compare(rows, verbose=args.verbose))
        bad = bench.regressions(rows, include_timing=args.gate_timing)
        if bad:
            print(f"tangled bench: {len(bad)} regression(s) vs "
                  f"{args.compare}", file=sys.stderr)
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tangled", description="Tangled/Qat reproduction tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_qat_backend(p):
        p.add_argument("--qat-backend", choices=("dense", "re"),
                       default="dense",
                       help="Qat register substrate: dense AoB matrix "
                            "(hardware-faithful, ways <= 26) or 're' "
                            "run-length compression (bounded memory at "
                            "wide ways)")

    p = sub.add_parser("asm", help="assemble Tangled/Qat source to hex")
    p.add_argument("source", help="assembly file ('-' for stdin)")
    p.add_argument("-o", "--output", help="write hex words here")
    p.set_defaults(func=cmd_asm)

    p = sub.add_parser("dis", help="disassemble a hex word image")
    p.add_argument("image", help="hex file ('-' for stdin)")
    p.set_defaults(func=cmd_dis)

    p = sub.add_parser("run", help="assemble and execute a program")
    p.add_argument("source", help="assembly file ('-' for stdin)")
    p.add_argument("--sim", choices=("functional", "multicycle", "pipelined"),
                   default="pipelined")
    p.add_argument("--ways", type=int, default=8)
    add_qat_backend(p)
    p.add_argument("--stages", type=int, choices=(4, 5), default=4)
    p.add_argument("--no-forwarding", action="store_true")
    p.add_argument("--limit", type=int, default=1_000_000,
                   help="step/cycle budget")
    p.add_argument("--stats", action="store_true",
                   help="print a telemetry report (CPI, stalls, Qat ops, ...)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event JSON file "
                        "(chrome://tracing / Perfetto)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("factor", help="PBP prime factoring")
    p.add_argument("n", type=int)
    p.add_argument("--bits", type=int, help="bits per factor (default: fitted)")
    p.add_argument("--pattern", action="store_true",
                   help="force the RE-compressed substrate")
    p.add_argument("--chunk-ways", type=int, default=None)
    p.set_defaults(func=cmd_factor)

    p = sub.add_parser("verilog", help="emit the Figure 7/8 Verilog modules")
    p.add_argument("module", choices=("qathad", "qatnext", "qatalu", "all"))
    p.add_argument("--ways", type=int, default=16)
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser("fig10", help="run the paper's Figure 10 program")
    p.add_argument("--sim", choices=("functional", "multicycle", "pipelined"),
                   default="pipelined")
    p.add_argument("--ways", type=int, default=8)
    add_qat_backend(p)
    p.add_argument("--stats", action="store_true",
                   help="print a telemetry report (CPI, stalls, Qat ops, ...)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event JSON file")
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser(
        "faults",
        help="run a seeded soft-error campaign and classify the outcomes",
    )
    p.add_argument("--seed", type=int, default=7, help="master campaign seed")
    p.add_argument("--runs", type=int, default=20, help="faulted runs")
    p.add_argument("--program", choices=("fig10", "factor"), default="fig10")
    p.add_argument("--sim", choices=("functional", "multicycle", "pipelined"),
                   default="functional")
    p.add_argument("--ways", type=int, default=8)
    add_qat_backend(p)
    p.add_argument("--faults-per-run", type=int, default=1,
                   help="bit flips injected per run")
    p.add_argument("--targets", default="gpr,mem,qreg",
                   help="comma-separated fault targets "
                        "(gpr,qreg,mem,pc,latch)")
    p.add_argument("--summary-only", action="store_true",
                   help="omit the per-run detail from the report")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard the runs across N worker processes "
                        "(report stays byte-identical to serial)")
    p.add_argument("--stats", action="store_true",
                   help="print a telemetry report (fault counters, traps, ...)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event JSON file")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "profile",
        help="attribute every simulated cycle to a PC (perf annotate style)",
    )
    p.add_argument("source",
                   help="assembly file ('-' for stdin), or 'fig10' for the "
                        "paper's listing")
    p.add_argument("--sim", choices=("pipelined", "multicycle"),
                   default="pipelined")
    p.add_argument("--ways", type=int, default=8)
    add_qat_backend(p)
    p.add_argument("--stages", type=int, choices=(4, 5), default=4)
    p.add_argument("--no-forwarding", action="store_true")
    p.add_argument("--limit", type=int, default=10_000_000,
                   help="cycle/step budget")
    p.add_argument("--json", metavar="PATH",
                   help="also write the profile as JSON ('-' for stdout "
                        "instead of the listing)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace_event flamegraph "
                        "(chrome://tracing / Perfetto)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "bench",
        help="run the benchmark suite; write/compare BENCH_<label>.json",
    )
    p.add_argument("--label", default="local",
                   help="report label (default: local)")
    add_qat_backend(p)
    p.add_argument("--out", metavar="PATH",
                   help="report path (default: BENCH_<label>.json)")
    p.add_argument("--rounds", type=int, default=5,
                   help="measured rounds per bench (default: 5)")
    p.add_argument("--warmup", type=int, default=1,
                   help="unmeasured warmup rounds per bench (default: 1)")
    p.add_argument("--quick", action="store_true",
                   help="2 measured rounds (CI smoke mode)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard bench rounds across N worker processes "
                        "(counter sections stay byte-identical to serial)")
    p.add_argument("--only", metavar="NAMES",
                   help="comma-separated bench names to run")
    p.add_argument("--list", action="store_true",
                   help="list bench names and exit")
    p.add_argument("--input", metavar="PATH",
                   help="compare an existing report instead of running")
    p.add_argument("--compare", metavar="PATH",
                   help="baseline BENCH json; exit 1 on counter regressions")
    p.add_argument("--counter-threshold", type=float, default=0.05,
                   help="relative counter change treated as neutral "
                        "(default: 0.05)")
    p.add_argument("--time-threshold", type=float, default=0.25,
                   help="relative median-time change treated as neutral "
                        "(default: 0.25)")
    p.add_argument("--gate-timing", action="store_true",
                   help="also fail on timing regressions (off by default: "
                        "wall clock is machine-dependent)")
    p.add_argument("--verbose", action="store_true",
                   help="show neutral metrics in the comparison too")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"tangled: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
