"""Table 2 pseudo-instructions (assembler macros).

The paper reserves register ``$at`` (11) "for use as an assembler
temporary in implementing assembler macros -- such as those listed in
Table 2".  Expansions used here:

``br lab``
    ``brf $0,lab`` + ``brt $0,lab`` -- whichever way ``$0`` tests, one of
    the pair takes the branch (2 words; keeps ``br`` a PC-relative branch
    without burning an opcode).
``jump lab``
    ``lex $at,low(lab)`` + ``lhi $at,high(lab)`` + ``jumpr $at``.
``jumpf $c,lab`` / ``jumpt $c,lab``
    A ``brt``/``brf`` over the 3-word ``jump`` expansion, then the jump.
``loadi $d,imm16``
    ``lex`` alone when the value fits its sign-extended 8-bit immediate,
    else ``lex`` + ``lhi`` (``lhi`` overwrites the sign-extension, so the
    pair reproduces any 16-bit pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError


@dataclass(frozen=True)
class LabelRef:
    """Symbolic operand resolved at layout time.

    ``kind``: ``offset`` (branch, relative to the following instruction),
    ``low`` / ``high`` (address byte halves for ``lex``/``lhi``), or
    ``abs`` (whole address, for ``.word``).
    """

    name: str
    kind: str = "offset"


@dataclass(frozen=True)
class HereRef:
    """PC-relative operand: resolves to byte-half of (this instruction's
    address + ``delta``).  Used by ``call`` to materialize the return
    address without a link instruction."""

    delta: int
    kind: str  # "low" | "high"


@dataclass(frozen=True)
class PendingInstr:
    """An instruction whose operands may still contain label references."""

    mnemonic: str
    ops: tuple  # ints and/or LabelRef/HereRef
    line: int | None = None


MACRO_NAMES = ("br", "jump", "jumpf", "jumpt", "loadi", "call", "ret", "push", "pop")


def _jump_seq(target, line: int | None) -> list[PendingInstr]:
    from repro.isa.registers import AT

    if isinstance(target, LabelRef):
        low = LabelRef(target.name, "low")
        high = LabelRef(target.name, "high")
    else:
        low = target & 0xFF
        high = (target >> 8) & 0xFF
    return [
        PendingInstr("lex", (AT, low), line),
        PendingInstr("lhi", (AT, high), line),
        PendingInstr("jumpr", (AT,), line),
    ]


def expand_macro(name: str, ops: tuple, line: int | None = None) -> list[PendingInstr]:
    """Expand one Table 2 pseudo-instruction into real instructions.

    ``ops`` uses the same convention as :class:`PendingInstr`: register
    numbers and immediates as ints, symbolic targets as :class:`LabelRef`
    with kind ``offset`` (re-keyed here as the expansion requires).
    """
    if name == "br":
        if len(ops) != 1:
            raise AssemblerError("br expects one target", line)
        target = ops[0]
        return [
            PendingInstr("brf", (0, target), line),
            PendingInstr("brt", (0, target), line),
        ]
    if name == "jump":
        if len(ops) != 1:
            raise AssemblerError("jump expects one target", line)
        return _jump_seq(ops[0], line)
    if name in ("jumpf", "jumpt"):
        if len(ops) != 2:
            raise AssemblerError(f"{name} expects a register and a target", line)
        cond, target = ops
        guard = "brt" if name == "jumpf" else "brf"
        # Skip the 3-word jump sequence when the guard condition holds.
        return [PendingInstr(guard, (cond, 3), line)] + _jump_seq(target, line)
    if name == "loadi":
        if len(ops) != 2:
            raise AssemblerError("loadi expects a register and a 16-bit value", line)
        reg, value = ops
        if isinstance(value, LabelRef):
            return [
                PendingInstr("lex", (reg, LabelRef(value.name, "low")), line),
                PendingInstr("lhi", (reg, LabelRef(value.name, "high")), line),
            ]
        if not -0x8000 <= value <= 0xFFFF:
            raise AssemblerError(f"loadi value out of 16-bit range: {value}", line)
        pattern = value & 0xFFFF
        signed8 = pattern & 0xFF
        if signed8 >= 128:
            signed8 -= 256
        if (signed8 & 0xFFFF) == pattern:
            return [PendingInstr("lex", (reg, signed8), line)]
        return [
            PendingInstr("lex", (reg, pattern & 0xFF), line),
            PendingInstr("lhi", (reg, pattern >> 8), line),
        ]
    if name == "call":
        # Table 1 has no jump-and-link: build the return address in $ra
        # from the expansion's own PC (5 words), then jump via $at.
        from repro.isa.registers import RA

        if len(ops) != 1:
            raise AssemblerError("call expects one target", line)
        target = ops[0]
        return [
            PendingInstr("lex", (RA, HereRef(5, "low")), line),
            PendingInstr("lhi", (RA, HereRef(4, "high")), line),
        ] + _jump_seq(target, line)
    if name == "ret":
        from repro.isa.registers import RA

        if ops:
            raise AssemblerError("ret takes no operands", line)
        return [PendingInstr("jumpr", (RA,), line)]
    if name == "push":
        from repro.isa.registers import AT, SP

        if len(ops) != 1 or not isinstance(ops[0], int):
            raise AssemblerError("push expects one register", line)
        if ops[0] == AT:
            raise AssemblerError("push cannot spill $at (the macro uses it)", line)
        return [
            PendingInstr("lex", (AT, -1), line),
            PendingInstr("add", (SP, AT), line),
            PendingInstr("store", (ops[0], SP), line),
        ]
    if name == "pop":
        from repro.isa.registers import AT, SP

        if len(ops) != 1 or not isinstance(ops[0], int):
            raise AssemblerError("pop expects one register", line)
        if ops[0] == AT:
            raise AssemblerError("pop cannot restore into $at (the macro uses it)", line)
        return [
            PendingInstr("load", (ops[0], SP), line),
            PendingInstr("lex", (AT, 1), line),
            PendingInstr("add", (SP, AT), line),
        ]
    raise AssemblerError(f"unknown macro {name!r}", line)
