"""Assembler and disassembler for Tangled/Qat.

Plays the role AIK (the Assembler Interpreter from Kentucky) played for
the paper's students: turns assembly source using the Table 1/3 mnemonics
and the Table 2 pseudo-instructions into a 16-bit word memory image.

Source syntax::

    ; comment (also # and //)
    label:  lex   $0, 42
            next  $0, @80
            brt   $1, label
            .word 0x1234, 7      ; raw data
            .origin 0x100        ; set location counter

Qat and Tangled share several mnemonics (``and``, ``or``, ``xor``,
``not``); the operand sigil (``$`` vs ``@``) disambiguates, exactly as in
the paper's listings.
"""

from repro.asm.assembler import Program, assemble
from repro.asm.disasm import disassemble, disassemble_one
from repro.asm.macros import MACRO_NAMES, expand_macro

__all__ = [
    "MACRO_NAMES",
    "Program",
    "assemble",
    "disassemble",
    "disassemble_one",
    "expand_macro",
]
