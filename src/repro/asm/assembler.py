"""Two-pass assembler for Tangled/Qat source."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.isa.encoding import encode
from repro.isa.instructions import ASM_NAMES, INSTRUCTIONS, Instr
from repro.isa.registers import parse_gpr, parse_qreg
from repro.asm.macros import HereRef, MACRO_NAMES, LabelRef, PendingInstr, expand_macro

_COMMENT_MARKERS = (";", "#", "//")


@dataclass
class Program:
    """An assembled memory image.

    Attributes
    ----------
    words:
        The 16-bit instruction/data words, index = address.
    labels:
        Symbol table (label -> word address).
    source_map:
        Word address of each emitted instruction -> source line number.
    entry:
        Start address (0 unless ``.origin`` moved the first code).
    """

    words: list[int] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    source_map: dict[int, int] = field(default_factory=dict)
    entry: int = 0

    def __len__(self) -> int:
        return len(self.words)


def _strip_comment(line: str) -> str:
    cut = len(line)
    for marker in _COMMENT_MARKERS:
        pos = line.find(marker)
        if pos >= 0:
            cut = min(cut, pos)
    return line[:cut]


def _parse_int(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad numeric literal {token!r}", line) from None


def _is_identifier(token: str) -> bool:
    return token.replace("_", "a").replace(".", "a").isalnum() and not token[0].isdigit()


def _parse_operand(token: str, kind: str, line: int):
    """Parse one operand token against its spec kind code."""
    if kind in "dsca":
        return parse_gpr(token) if token.startswith("$") else _bad_kind(token, "$-register", line)
    if kind in "ABC":
        return parse_qreg(token) if token.startswith("@") else _bad_kind(token, "@-register", line)
    if kind == "o":  # branch target: label or numeric offset
        if token.startswith("$") or token.startswith("@"):
            _bad_kind(token, "label or offset", line)
        if _is_identifier(token):
            return LabelRef(token, "offset")
        return _parse_int(token, line)
    if kind in ("i", "k"):
        if _is_identifier(token):
            return LabelRef(token, "low")  # bare label in lex: low byte
        return _parse_int(token, line)
    raise AssemblerError(f"unknown operand kind {kind!r}", line)  # pragma: no cover


def _bad_kind(token: str, expected: str, line: int):
    raise AssemblerError(f"expected {expected}, got {token!r}", line)


def _resolve_mnemonic(name: str, operand_tokens: list[str], line: int) -> str:
    """Map an assembly-source name to the internal mnemonic, using the
    first operand's sigil to split Tangled/Qat homonyms."""
    candidates = ASM_NAMES.get(name)
    if not candidates:
        raise AssemblerError(f"unknown instruction {name!r}", line)
    if len(candidates) == 1:
        return candidates[0]
    wants_qat = bool(operand_tokens) and operand_tokens[0].startswith("@")
    for mnemonic in candidates:
        if INSTRUCTIONS[mnemonic].is_qat == wants_qat:
            return mnemonic
    raise AssemblerError(f"cannot disambiguate {name!r}", line)  # pragma: no cover


def _parse_macro_operand(token: str, line: int):
    if token.startswith("$"):
        return parse_gpr(token)
    if token.startswith("@"):
        raise AssemblerError("macros take $-registers, not @-registers", line)
    if _is_identifier(token):
        return LabelRef(token, "offset")
    return _parse_int(token, line)


def assemble(source: str, origin: int = 0) -> Program:
    """Assemble Tangled/Qat source text into a :class:`Program`."""
    # ---- pass 0: parse into items -----------------------------------------
    items: list[tuple] = []  # ('instr', PendingInstr) | ('label', name, line)
    #                        | ('word', [values], line) | ('origin', addr)
    for line_no, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw).strip()
        while text:
            # Peel leading labels (several may stack on one line).
            head = text.split(None, 1)[0]
            if head.endswith(":"):
                name = head[:-1]
                if not _is_identifier(name):
                    raise AssemblerError(f"bad label name {name!r}", line_no)
                items.append(("label", name, line_no))
                text = text[len(head):].strip()
                continue
            break
        if not text:
            continue
        parts = text.split(None, 1)
        op = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = [t.strip() for t in operand_text.split(",")] if operand_text.strip() else []
        if op == ".origin":
            if len(tokens) != 1:
                raise AssemblerError(".origin expects one address", line_no)
            items.append(("origin", _parse_int(tokens[0], line_no), line_no))
            continue
        if op == ".word":
            values = []
            for t in tokens:
                values.append(LabelRef(t, "abs") if _is_identifier(t) else _parse_int(t, line_no))
            items.append(("word", values, line_no))
            continue
        if op == ".string":
            # One 16-bit word per character plus a 0 terminator (the
            # layout the sys print-string service walks).
            text_arg = operand_text.strip()
            if len(text_arg) < 2 or text_arg[0] != '"' or text_arg[-1] != '"':
                raise AssemblerError('.string expects a "quoted" literal', line_no)
            body = text_arg[1:-1].replace("\\n", "\n").replace("\\t", "\t")
            values = [ord(ch) & 0xFFFF for ch in body] + [0]
            items.append(("word", values, line_no))
            continue
        # `pop` is both the Qat population-count instruction (pop $d,@a)
        # and the stack macro (pop $r); the @-operand disambiguates.
        is_qat_pop = (
            op == "pop" and len(tokens) == 2 and tokens[1].startswith("@")
        )
        if op in MACRO_NAMES and not is_qat_pop:
            ops = tuple(_parse_macro_operand(t, line_no) for t in tokens)
            for pending in expand_macro(op, ops, line_no):
                items.append(("instr", pending))
            continue
        mnemonic = _resolve_mnemonic(op, tokens, line_no)
        spec = INSTRUCTIONS[mnemonic]
        if len(tokens) != len(spec.operands):
            raise AssemblerError(
                f"{op} expects {len(spec.operands)} operands, got {len(tokens)}",
                line_no,
            )
        ops = tuple(
            _parse_operand(t, kind, line_no)
            for t, kind in zip(tokens, spec.operands)
        )
        items.append(("instr", PendingInstr(mnemonic, ops, line_no)))

    # ---- pass 1: layout -----------------------------------------------------
    labels: dict[str, int] = {}
    address = origin
    addresses: list[int] = []
    for item in items:
        if item[0] == "label":
            _, name, line_no = item
            if name in labels:
                raise AssemblerError(f"duplicate label {name!r}", line_no)
            labels[name] = address
            addresses.append(address)
        elif item[0] == "origin":
            if item[1] < address:
                raise AssemblerError(".origin cannot move backwards", item[2])
            addresses.append(address)
            address = item[1]
        elif item[0] == "word":
            addresses.append(address)
            address += len(item[1])
        else:
            addresses.append(address)
            address += INSTRUCTIONS[item[1].mnemonic].words

    # ---- pass 2: resolve and encode ------------------------------------------
    program = Program(entry=origin)
    image: dict[int, int] = {}
    source_map: dict[int, int] = {}

    def resolve(ref, addr: int, width_words: int, line: int | None) -> int:
        if isinstance(ref, HereRef):
            target = addr + ref.delta
            return target & 0xFF if ref.kind == "low" else (target >> 8) & 0xFF
        if not isinstance(ref, LabelRef):
            return ref
        target = labels.get(ref.name)
        if target is None:
            raise AssemblerError(f"undefined label {ref.name!r}", line)
        if ref.kind == "offset":
            return target - (addr + width_words)
        if ref.kind == "low":
            return target & 0xFF
        if ref.kind == "high":
            return (target >> 8) & 0xFF
        return target  # abs

    for item, addr in zip(items, addresses):
        if item[0] in ("label", "origin"):
            continue
        if item[0] == "word":
            _, values, line_no = item
            for i, value in enumerate(values):
                resolved = resolve(value, addr + i, 0, line_no)
                image[addr + i] = resolved & 0xFFFF
            continue
        pending = item[1]
        spec = INSTRUCTIONS[pending.mnemonic]
        ops = tuple(
            resolve(op, addr, spec.words, pending.line) for op in pending.ops
        )
        try:
            words = encode(Instr(pending.mnemonic, ops))
        except Exception as exc:
            raise AssemblerError(str(exc), pending.line) from exc
        for i, word in enumerate(words):
            image[addr + i] = word
        if pending.line is not None:
            source_map[addr] = pending.line

    size = max(image) + 1 if image else origin
    program.words = [image.get(i, 0) for i in range(size)]
    program.labels = labels
    program.source_map = source_map
    return program
