"""Disassembler: memory words back to Table 1/3 assembly text."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import EncodingError
from repro.isa.encoding import decode
from repro.isa.instructions import Instr


def disassemble_one(words: Sequence[int], index: int = 0) -> tuple[str, int]:
    """Disassemble the instruction at ``words[index]``; returns (text, size)."""
    instr, size = decode(words, index)
    return instr.render(), size


def disassemble(
    words: Sequence[int], start: int = 0, end: int | None = None
) -> list[tuple[int, str]]:
    """Disassemble a word range into ``[(address, text), ...]``.

    Words that do not decode (data, unassigned opcodes) render as
    ``.word 0x....`` so the listing always covers the whole range.
    """
    end = len(words) if end is None else min(end, len(words))
    out: list[tuple[int, str]] = []
    index = start
    while index < end:
        try:
            instr, size = decode(words, index)
            if index + size > end:
                raise EncodingError("instruction spans past range")
            text = instr.render()
        except EncodingError:
            text = f".word\t{int(words[index]) & 0xFFFF:#06x}"
            size = 1
        out.append((index, text))
        index += size
    return out


def render_listing(words: Sequence[int], start: int = 0, end: int | None = None) -> str:
    """Human-readable listing with addresses and encodings."""
    lines = []
    for addr, text in disassemble(words, start, end):
        try:
            _, size = decode(words, addr)
            raw = " ".join(f"{int(words[addr + i]) & 0xFFFF:04x}" for i in range(size))
        except EncodingError:
            raw = f"{int(words[addr]) & 0xFFFF:04x}"
        lines.append(f"{addr:04x}:  {raw:<10} {text}")
    return "\n".join(lines)


__all__ = ["disassemble", "disassemble_one", "render_listing", "Instr"]
