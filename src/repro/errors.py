"""Exception hierarchy for the Tangled/Qat reproduction.

Every error raised by the package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause.

Simulator-side errors carry machine context (``pc``, ``cycle`` and the
disassembled instruction) so a fault report reads like a processor trap
frame, not a bare Python message.  The precise trap model built on top of
these lives in :mod:`repro.faults.traps`.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Process exit-status taxonomy
# ---------------------------------------------------------------------------
#
# One documented home for every exit code the ``tangled`` CLI (and the
# subsystems behind it) can produce, so scripts and CI jobs gate on
# names, not magic numbers.  ``cli.py`` imports these -- a test asserts
# no literal exit codes remain there.

#: Success.
EXIT_OK = 0
#: Generic failure: a :class:`ReproError`, OS error, or bad arguments.
EXIT_FAILURE = 1
#: ``tangled bench --compare``: the regression gate tripped (counter or
#: opted-in timing regressions found).  Distinct from :data:`EXIT_FAILURE`
#: so CI can tell "the benchmark got worse" from "the benchmark broke".
EXIT_REGRESSION = 2
#: Supervised fan-out: the whole run was dominated by shard deadline
#: kills (every failure was a timeout).
EXIT_TIMEOUT = 3
#: Supervised fan-out: at least one shard exhausted its retry budget
#: and was quarantined as toxic (its blackbox, when collected, is
#: linked in the run ledger's artifacts).
EXIT_TOXIC_SHARDS = 4
#: Interrupted by Ctrl-C (the conventional ``128 + SIGINT``).
EXIT_INTERRUPTED = 130


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class EntanglementError(ReproError):
    """Mismatched or out-of-range entanglement ways / channels."""


class ChannelExhaustedError(EntanglementError):
    """A PBP context ran out of free entanglement-channel sets."""


class AssemblerError(ReproError):
    """Syntax or semantic error while assembling Tangled/Qat source."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Instruction cannot be encoded or decoded (bad operand / opcode)."""


class SimulatorError(ReproError):
    """Runtime fault inside one of the CPU simulators.

    Carries the architectural context of the fault when the raiser knows
    it: ``pc`` (address of the faulting instruction), ``cycle`` (timing
    model's clock, None on the untimed functional simulator) and
    ``instruction`` (disassembled text).  The context is appended to the
    message so it survives plain ``str()`` rendering.
    """

    def __init__(
        self,
        message: str,
        *,
        pc: int | None = None,
        cycle: int | None = None,
        instruction: str | None = None,
    ):
        self.pc = pc
        self.cycle = cycle
        self.instruction = instruction
        context = []
        if pc is not None:
            context.append(f"pc={pc:#06x}")
        if cycle is not None:
            context.append(f"cycle={cycle}")
        if instruction is not None:
            context.append(f"instr={instruction!r}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class HaltedError(SimulatorError):
    """Execution was requested on a machine that has already halted."""


class TrapError(SimulatorError):
    """An architectural trap fired under the ``raise`` policy.

    ``record`` is the :class:`repro.faults.traps.TrapRecord` describing
    the cause, faulting PC, instruction and cycle.
    """

    def __init__(self, message: str, record=None, **context):
        self.record = record
        super().__init__(message, **context)


class SyscallError(TrapError):
    """A ``sys`` instruction named an unknown service number."""

    def __init__(self, message: str, service: int, record=None, **context):
        self.service = service
        super().__init__(message, record=record, **context)


class SupervisorError(ReproError):
    """The supervised worker pool cannot proceed.

    Raised for invalid supervision config (non-positive jobs, timeout,
    or memory ceiling), a resume request whose journaled fingerprint
    does not match the current arguments, and a pool whose workers die
    faster than shards complete (e.g. an initializer that cannot
    allocate under the ``RLIMIT_AS`` ceiling).  Per-shard failures are
    *not* errors: they are retried and, at worst, quarantined as toxic
    shards in the report.
    """


class CheckpointError(ReproError):
    """A machine checkpoint failed integrity verification or is unusable."""


class MeasurementError(ReproError):
    """Invalid measurement request (e.g. channel out of range)."""


class CircuitError(ReproError):
    """Malformed gate circuit (dangling node, wrong arity, ...)."""
