"""Exception hierarchy for the Tangled/Qat reproduction.

Every error raised by the package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class EntanglementError(ReproError):
    """Mismatched or out-of-range entanglement ways / channels."""


class ChannelExhaustedError(EntanglementError):
    """A PBP context ran out of free entanglement-channel sets."""


class AssemblerError(ReproError):
    """Syntax or semantic error while assembling Tangled/Qat source."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Instruction cannot be encoded or decoded (bad operand / opcode)."""


class SimulatorError(ReproError):
    """Runtime fault inside one of the CPU simulators."""


class HaltedError(SimulatorError):
    """Execution was requested on a machine that has already halted."""


class MeasurementError(ReproError):
    """Invalid measurement request (e.g. channel out of range)."""


class CircuitError(ReproError):
    """Malformed gate circuit (dangling node, wrong arity, ...)."""
