"""Verilog emission: regenerate the paper's hardware artifacts as text.

The paper's published artifacts are Verilog listings -- Figure 7
(``qathad``) and Figure 8 (``qatnext``) -- plus the students' full
designs.  This module emits synthesizable-style Verilog for the Qat
datapath so the reproduction produces the same *kind* of artifact:

- :func:`emit_qathad` -- the Figure 7 module, parametric in WAYS,
  textually faithful to the paper's listing;
- :func:`emit_qatnext` -- the Figure 8 module (barrel-shift masking +
  recursive count-trailing-zeros), likewise;
- :func:`emit_qat_alu` -- a combinational ALU covering every Table 3
  gate operation, the shape students wrapped in their pipelines.

We have no Verilog simulator here (the paper used Icarus), so fidelity
is established differently: the Python netlists of
:mod:`repro.hw.qathad` / :mod:`repro.hw.qatnext` implement the same
structure these listings describe and are verified against the ISA
semantics; the emitted text is golden-tested for structure.
"""

from __future__ import annotations

FIGURE7_TEMPLATE = """\
module qathad(aob, h);
parameter WAYS={ways};
input [WAYS-1:0] h;
output [(1<<WAYS)-1:0] aob;
genvar i;
generate
  for (i=0; i<(1<<WAYS); i=i+1) begin
      assign aob[i] = (i >> h);
    end
endgenerate
endmodule
"""

FIGURE8_TEMPLATE = """\
module qatnext(r, aob, s);
parameter WAYS={ways};
input [(1<<WAYS)-1:0] aob;
input [WAYS-1:0] s;
output [WAYS-1:0] r;
genvar pow2;
generate
  wire [WAYS-1:0] tr;
  for (pow2=WAYS-1; pow2>=0; pow2=pow2-1) begin:t
    // wires named as t[pow2].v
    wire [(2<<pow2)-1:0] v;
  end
  assign t[WAYS-1].v =
    {{((aob[(1<<WAYS)-1:1] >> s) << s), 1'b0}};
  for (pow2=WAYS-1; pow2>0; pow2=pow2-1) begin
    assign {{tr[pow2], t[pow2-1].v}} =
      ((|t[pow2].v[(1<<pow2)-1:0]) ?
       {{1'b0, t[pow2].v[(1<<pow2)-1:0]}} :
       {{1'b1, t[pow2].v[(2<<pow2)-1:(1<<pow2)]}});
  end
  assign tr[0] = ~t[0].v[0];
  assign r = ((t[0].v) ? tr : 0);
endgenerate
endmodule
"""


def emit_qathad(ways: int = 16) -> str:
    """The paper's Figure 7 ``qathad`` module for the given WAYS."""
    if ways < 1:
        raise ValueError(f"ways must be positive, got {ways}")
    return FIGURE7_TEMPLATE.format(ways=ways)


def emit_qatnext(ways: int = 16) -> str:
    """The paper's Figure 8 ``qatnext`` module for the given WAYS."""
    if ways < 1:
        raise ValueError(f"ways must be positive, got {ways}")
    return FIGURE8_TEMPLATE.format(ways=ways)


_ALU_OPS = """\
      4'h0: out = b & c;                  // and
      4'h1: out = b | c;                  // or
      4'h2: out = b ^ c;                  // xor
      4'h3: out = a ^ (b & c);            // ccnot
      4'h4: out = a ^ b;                  // cnot
      4'h5: out = ~a;                     // not
      4'h6: out = {N{1'b0}};              // zero
      4'h7: out = {N{1'b1}};              // one
      4'h8: out = hadpat;                 // had
      4'h9: out = (c & b) | (~c & a);     // cswap (primary result)
      4'hA: out = (c & a) | (~c & b);     // cswap (second write port)
      4'hB: out = b;                      // swap (pass-through pair)
"""


def emit_qat_alu(ways: int = 16) -> str:
    """A combinational Qat ALU covering the Table 3 gate operations.

    ``a`` is the destination's old value (read for the reversible ops --
    the third read port of section 2.5), ``b``/``c`` the sources, ``op``
    the function select, and ``hadpat`` the Hadamard pattern input (from
    the Figure 7 generator or the section-5 constant registers).
    """
    if ways < 1:
        raise ValueError(f"ways must be positive, got {ways}")
    return (
        f"module qatalu(out, a, b, c, hadpat, op);\n"
        f"parameter WAYS={ways};\n"
        f"localparam N = (1<<WAYS);\n"
        f"input [N-1:0] a, b, c, hadpat;\n"
        f"input [3:0] op;\n"
        f"output reg [N-1:0] out;\n"
        f"always @* begin\n"
        f"  case (op)\n"
        f"{_ALU_OPS}"
        f"      default: out = a;\n"
        f"  endcase\n"
        f"end\n"
        f"endmodule\n"
    )


def emit_design_bundle(ways: int = 16) -> str:
    """All three modules in one compilation unit."""
    return "\n".join(
        [emit_qathad(ways), emit_qatnext(ways), emit_qat_alu(ways)]
    )
