"""Structural hardware models for the Qat datapath.

The paper's hardware evaluation (sections 3.2/3.3) argues about *gate
count and gate delay* of the two hard operations -- the ``had`` pattern
generator of Figure 7 and the ``next`` priority logic of Figure 8 -- plus
the register-file port cost of the reversible gates (sections 2.5 and 5).
We have no synthesis toolchain here, so this package builds the actual
gate netlists and measures those quantities directly:

- :mod:`repro.hw.netlist` -- a tiny structural netlist (2-input gates,
  arbitrary-fan-in reduction gates) with batch evaluation and
  count/depth analysis;
- :mod:`repro.hw.qathad` -- the Figure 7 ``had`` generator as decoder +
  per-bit OR network, with closed-form costs for large WAYS;
- :mod:`repro.hw.qatnext` -- the Figure 8 ``next`` design (barrel-shift
  masking + recursive count-trailing-zeros) in both the narrow
  (2-input OR tree) and wide OR-reduction variants that drive the
  paper's O(WAYS) vs O(WAYS^2) delay discussion;
- :mod:`repro.hw.regfile` -- register-file area/port model quantifying
  the 3-read/2-write cost of ``ccnot``/``cswap``/``swap``.
"""

from repro.hw.netlist import Netlist
from repro.hw.qathad import build_had_netlist, had_cost
from repro.hw.qatnext import build_next_netlist, next_cost
from repro.hw.regfile import regfile_cost

__all__ = [
    "Netlist",
    "build_had_netlist",
    "build_next_netlist",
    "had_cost",
    "next_cost",
    "regfile_cost",
]
