"""Structural model of the Figure 8 ``qatnext`` priority logic.

The paper's design has two steps (section 3.3):

1. **Masking** -- "a barrel shifter to right-shift-out the original bits
   in these positions and then left-shift back in 0s": channels ``<= s``
   are cleared, bit 0 is forced to ``1'b0``.
2. **Count trailing zeros** -- "a recursive decomposition in which each
   bit of the next 1's entanglement channel number is computed in one
   step examining :math:`2^k` bit positions": each level tests whether
   the low half contains any 1 (the ``|t[pow2].v[...]`` OR-reduction),
   selects that half if so, and emits one result bit.

The OR-reductions dominate the delay: with arbitrary-fan-in ("wide") OR
gates the whole operation is O(WAYS) levels, but "could approach
O(WAYS^2) gate delays if the hardware implements the OR-reductions of
step 2 using a tree of very narrow (e.g., 2-input) OR gates".  Pass
``wide=False`` to get the narrow variant; the FIG8 bench sweeps both.

:func:`build_next_netlist` constructs the actual gate network (verified
against the ISA-level ``next`` by the test suite); :func:`next_cost`
computes gate count and depth by mirroring the construction arithmetic
without allocating gates, so it scales to the full 16-way design.
"""

from __future__ import annotations

from repro.hw.netlist import Netlist


def build_next_netlist(ways: int, wide: bool = True) -> Netlist:
    """Build the full ``next`` netlist for a :math:`2^{ways}`-bit AoB.

    Inputs: ``aob[0..N-1]`` and the start channel ``s[0..ways-1]``.
    Output bus ``r``: the channel of the next 1 after ``s`` (0 if none).
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    n = 1 << ways
    net = Netlist()
    s = net.input_bus("s", ways)
    aob = net.input_bus("aob", n)

    # ---- step 1: barrel-shift masking over aob[1..N-1] ----------------------
    vec = aob[1:]
    length = len(vec)
    for direction in ("right", "left"):
        for j in range(ways):
            sel = s[j]
            nsel = net.g_not(sel)
            offset = 1 << j
            new = []
            for i in range(length):
                src_idx = i + offset if direction == "right" else i - offset
                keep = net.g_and(nsel, vec[i])
                if 0 <= src_idx < length:
                    new.append(net.g_or(net.g_and(sel, vec[src_idx]), keep))
                else:
                    new.append(keep)  # shifted-in zero when selected
            vec = new
    v = [net.const(False)] + vec  # Figure 8's trailing 1'b0 at channel 0

    # ---- step 2: recursive count-trailing-zeros -------------------------------
    tr: list[int | None] = [None] * ways
    for pow2 in range(ways - 1, 0, -1):
        half = 1 << pow2
        low, high = v[:half], v[half : 2 * half]
        any_low = net.reduce_or(low, wide)
        not_any = net.g_not(any_low)
        tr[pow2] = not_any
        v = [
            net.g_or(net.g_and(any_low, lo), net.g_and(not_any, hi))
            for lo, hi in zip(low, high)
        ]
    tr[0] = net.g_not(v[0])
    any_v = net.reduce_or(v, wide)
    r = [net.g_and(any_v, tr[k]) for k in range(ways)]
    net.mark_output("r", r)
    return net


def _reduce_depth(depths, wide: bool) -> tuple[int, int]:
    """Depth and gate count of OR-reducing bits with the given depths,
    mirroring :meth:`Netlist._reduce` (including its pairing order)."""
    import numpy as np

    depths = np.asarray(depths)
    if depths.size == 1:
        return int(depths[0]), 0
    if wide:
        return int(depths.max()) + 1, 1
    gates = 0
    level = depths
    while level.size > 1:
        pairs = level.size // 2
        gates += pairs
        merged = np.maximum(level[0 : 2 * pairs : 2], level[1 : 2 * pairs : 2]) + 1
        if level.size % 2:
            merged = np.concatenate([merged, level[-1:]])
        level = merged
    return int(level[0]), gates


def next_cost(ways: int, wide: bool = True) -> dict[str, int]:
    """Gate count and logic depth of the Figure 8 design.

    Mirrors :func:`build_next_netlist` exactly -- per-bit depths are
    simulated with vectorized arrays instead of allocating gates -- so it
    agrees gate-for-gate with built netlists (the test suite asserts
    this) yet evaluates instantly at the full-scale ``ways=16``.
    """
    import numpy as np

    if ways < 1:
        raise ValueError(f"next_cost needs ways >= 1, got {ways}")
    n = 1 << ways
    length = n - 1
    gates = 0
    # ---- masking barrel shifter (2 * ways stages) ------------------------------
    d = np.zeros(length, dtype=np.int64)  # depth of each vec bit
    for direction in ("right", "left"):
        for j in range(ways):
            offset = 1 << j
            gates += 1  # shared inverter on the stage select
            keep = np.maximum(1, d) + 1  # AND(nsel, vec)
            src = np.full(length, -1, dtype=np.int64)
            if direction == "right":
                if offset < length:
                    src[: length - offset] = d[offset:]
                in_range = np.arange(length) + offset < length
            else:
                if offset < length:
                    src[offset:] = d[: length - offset]
                in_range = np.arange(length) - offset >= 0
            full = np.maximum(src + 1, keep) + 1  # OR(AND(sel,src), keep)
            d = np.where(in_range, full, keep)
            n_full = int(in_range.sum())
            gates += 3 * n_full + (length - n_full)
    # ---- recursive CTZ -----------------------------------------------------------
    v = np.concatenate([[0], d])  # channel 0 is the constant 1'b0
    tr_depths: list[int] = []
    for pow2 in range(ways - 1, 0, -1):
        half = 1 << pow2
        low, high = v[:half], v[half : 2 * half]
        any_depth, reduce_gates = _reduce_depth(low, wide)
        gates += reduce_gates
        gates += 1  # the not_any inverter
        not_depth = any_depth + 1
        tr_depths.append(not_depth)
        gates += 3 * half  # the half-select mux row
        v = np.maximum(np.maximum(low, any_depth), np.maximum(high, not_depth)) + 2
    # tr[0] inverter + final any-reduce + ways output ANDs.
    gates += 1
    tr0_depth = int(v[0]) + 1
    tr_depths.append(tr0_depth)
    any_v_depth, reduce_gates = _reduce_depth(v, wide)
    gates += reduce_gates
    gates += ways
    out_depth = max([any_v_depth] + tr_depths) + 1
    return {
        "ways": ways,
        "aob_bits": n,
        "gates": gates,
        "depth": out_depth,
        "wide_or": wide,
    }
