"""Structural model of the Figure 7 ``qathad`` generator.

Figure 7's parametric Verilog assigns ``aob[i] = (i >> h)`` (bit 0 of the
shift): output bit ``i`` equals bit ``h`` of the constant ``i``.  As a
circuit this is a 4-bit decoder shared by all outputs plus, per output
bit, an OR over the decoder lines ``k`` for which bit ``k`` of ``i`` is
set -- the "lookup table expressed as a combinatorial case statement
(multiplexor)" the students built.

Section 5 concludes this hardware is not worth it: "the gate-level
hardware needed to generate a standard entangled superposition ... is
greater than that required to simply reserve constant-initialized
registers".  :func:`had_cost` provides the closed-form gate count/depth
that the FIG7 bench sweeps to quantify that claim.
"""

from __future__ import annotations

import math

from repro.hw.netlist import Netlist


def build_had_netlist(ways: int, wide: bool = True) -> Netlist:
    """Build the ``had`` generator for :math:`2^{ways}` output bits.

    Inputs: ``h[0..hbits-1]`` (the Hadamard index, ``hbits = max(4,
    ceil(log2 ways))`` to match the 4-bit instruction immediate for the
    full-scale design).  Output bus: ``aob``.
    """
    if ways <= 0:
        raise ValueError(f"ways must be positive, got {ways}")
    net = Netlist()
    hbits = max(4, math.ceil(math.log2(ways))) if ways > 1 else 4
    h = net.input_bus("h", hbits)
    h_not = [net.g_not(bit) for bit in h]
    # Decoder: one line per possible k in 0..ways-1.
    lines = []
    for k in range(ways):
        terms = [h[b] if (k >> b) & 1 else h_not[b] for b in range(hbits)]
        lines.append(net.reduce_and(terms, wide))
    zero = net.const(False)
    outputs = []
    for i in range(1 << ways):
        selected = [lines[k] for k in range(ways) if (i >> k) & 1]
        outputs.append(net.reduce_or(selected, wide) if selected else zero)
    net.mark_output("aob", outputs)
    return net


def had_cost(ways: int, wide: bool = True) -> dict[str, int]:
    """Closed-form gate count and depth of the Figure 7 generator.

    Per output bit ``i`` the OR network spans ``popcount(i)`` decoder
    lines; summed over all :math:`2^{ways}` outputs that is
    ``ways * 2^{ways-1}`` OR inputs -- the dominant term that makes the
    section-5 "reserve constant registers instead" recommendation obvious.
    """
    if ways <= 0:
        raise ValueError(f"ways must be positive, got {ways}")
    hbits = max(4, math.ceil(math.log2(ways))) if ways > 1 else 4
    decoder_gates = hbits + ways * (1 if wide else hbits - 1)
    or_inputs = ways * (1 << (ways - 1))
    if wide:
        or_gates = sum(1 for i in range(1 << ways) if (i).bit_count() > 1)
        depth = 2 + 1  # inverter + wide AND + wide OR
    else:
        or_gates = sum(max(0, i.bit_count() - 1) for i in range(1 << ways))
        depth = (
            1  # inverter
            + math.ceil(math.log2(hbits))  # decoder AND tree
            + max(
                (math.ceil(math.log2(i.bit_count())) for i in range(1 << ways) if i.bit_count() > 0),
                default=0,
            )
        )
    return {
        "ways": ways,
        "gates": decoder_gates + or_gates,
        "or_inputs": or_inputs,
        "depth": depth,
        "constant_register_bits": 1 << ways,  # the section-5 alternative
    }
