"""A small structural netlist with batch evaluation.

Nodes are created in topological order (construction requires operands to
exist), so evaluation is a single forward pass.  Values during evaluation
are NumPy bool arrays -- one lane per test vector -- so a whole random
test batch flows through the netlist at once.

Gate inventory: ``const``, ``input``, 2-input ``and``/``or``/``xor``,
``not``, and arbitrary-fan-in ``orN``/``andN`` reduction gates.  The
reduction gates model "wide" logic (single-level fan-in); pass
``wide=False`` helpers to expand them into 2-input trees instead, which
is exactly the narrow-vs-wide distinction behind the paper's O(WAYS) vs
O(WAYS^2) delay analysis for ``next``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CircuitError


@dataclass(frozen=True)
class _Gate:
    op: str
    args: tuple[int, ...]
    value: bool | None = None  # const only
    name: str | None = None  # input only


class Netlist:
    """Append-only gate graph with named inputs and outputs."""

    def __init__(self) -> None:
        self._gates: list[_Gate] = []
        self._inputs: dict[str, int] = {}
        self.outputs: dict[str, list[int]] = {}
        self._depth: list[int] = []

    def __len__(self) -> int:
        return len(self._gates)

    # -- construction -----------------------------------------------------------

    def _add(self, gate: _Gate, depth: int) -> int:
        self._gates.append(gate)
        self._depth.append(depth)
        return len(self._gates) - 1

    def const(self, value: bool) -> int:
        """Constant driver (free: no gate cost, depth 0)."""
        return self._add(_Gate("const", (), value=bool(value)), 0)

    def input(self, name: str) -> int:
        """Primary input bit."""
        if name in self._inputs:
            raise CircuitError(f"duplicate input {name!r}")
        node = self._add(_Gate("input", (), name=name), 0)
        self._inputs[name] = node
        return node

    def input_bus(self, name: str, width: int) -> list[int]:
        """``width`` input bits named ``name[i]``, LSB first."""
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def _gate2(self, op: str, a: int, b: int) -> int:
        depth = 1 + max(self._depth[a], self._depth[b])
        return self._add(_Gate(op, (a, b)), depth)

    def g_and(self, a: int, b: int) -> int:
        return self._gate2("and", a, b)

    def g_or(self, a: int, b: int) -> int:
        return self._gate2("or", a, b)

    def g_xor(self, a: int, b: int) -> int:
        return self._gate2("xor", a, b)

    def g_not(self, a: int) -> int:
        return self._add(_Gate("not", (a,)), 1 + self._depth[a])

    def g_mux(self, sel: int, when_true: int, when_false: int) -> int:
        """2:1 mux from 2-input gates (3 gates + shared inverter)."""
        nsel = self.g_not(sel)
        return self.g_or(self.g_and(sel, when_true), self.g_and(nsel, when_false))

    def reduce_or(self, nodes: list[int], wide: bool) -> int:
        """OR-reduce: one arbitrary-fan-in gate (``wide``) or a 2-input tree."""
        return self._reduce("or", nodes, wide)

    def reduce_and(self, nodes: list[int], wide: bool) -> int:
        """AND-reduce (wide gate or 2-input tree)."""
        return self._reduce("and", nodes, wide)

    def _reduce(self, op: str, nodes: list[int], wide: bool) -> int:
        if not nodes:
            raise CircuitError("cannot reduce zero nodes")
        if len(nodes) == 1:
            return nodes[0]
        if wide:
            depth = 1 + max(self._depth[n] for n in nodes)
            return self._add(_Gate(op + "N", tuple(nodes)), depth)
        level = list(nodes)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self._gate2(op, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def mark_output(self, name: str, nodes: list[int]) -> None:
        """Expose a bus (LSB first) as a named output."""
        self.outputs[name] = list(nodes)

    # -- analysis ------------------------------------------------------------------

    def gate_count(self) -> int:
        """Number of logic gates (consts and inputs are free)."""
        return sum(1 for g in self._gates if g.op not in ("const", "input"))

    def gate_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for g in self._gates:
            if g.op in ("const", "input"):
                continue
            hist[g.op] = hist.get(g.op, 0) + 1
        return hist

    def depth(self) -> int:
        """Logic levels on the deepest output path."""
        if not self.outputs:
            return max(self._depth, default=0)
        return max(
            (self._depth[n] for bus in self.outputs.values() for n in bus),
            default=0,
        )

    def logic_nodes(self) -> list[int]:
        """Node ids of all logic gates -- the stuck-at faultable sites.

        Constants and primary inputs are excluded: forcing those models a
        bad stimulus, not a manufacturing or soft fault in the logic.
        """
        return [
            i for i, g in enumerate(self._gates) if g.op not in ("const", "input")
        ]

    # -- evaluation -------------------------------------------------------------------

    def evaluate(
        self,
        inputs: dict[str, np.ndarray],
        stuck_at: dict[int, bool] | None = None,
    ) -> dict[str, np.ndarray]:
        """Batch-evaluate: each input bit is a bool array (lane = test case).

        Returns each output bus as a 2D bool array ``(width, lanes)``.

        ``stuck_at`` maps node ids to forced values -- the classic
        single-stuck-at fault model.  A faulted node's computed value is
        overridden after its gate evaluates, so downstream logic sees the
        fault; compare against a fault-free evaluation to decide whether a
        test batch detects it.
        """
        lanes = None
        for arr in inputs.values():
            lanes = np.asarray(arr).shape[0]
            break
        if lanes is None:
            lanes = 1
        values: list[np.ndarray] = [None] * len(self._gates)  # type: ignore[list-item]
        for i, g in enumerate(self._gates):
            if g.op == "const":
                values[i] = np.full(lanes, g.value, dtype=bool)
            elif g.op == "input":
                try:
                    values[i] = np.asarray(inputs[g.name], dtype=bool)
                except KeyError:
                    raise CircuitError(f"missing input {g.name!r}") from None
            elif g.op == "and":
                values[i] = values[g.args[0]] & values[g.args[1]]
            elif g.op == "or":
                values[i] = values[g.args[0]] | values[g.args[1]]
            elif g.op == "xor":
                values[i] = values[g.args[0]] ^ values[g.args[1]]
            elif g.op == "not":
                values[i] = ~values[g.args[0]]
            elif g.op == "orN":
                acc = values[g.args[0]].copy()
                for a in g.args[1:]:
                    acc |= values[a]
                values[i] = acc
            elif g.op == "andN":
                acc = values[g.args[0]].copy()
                for a in g.args[1:]:
                    acc &= values[a]
                values[i] = acc
            else:  # pragma: no cover
                raise CircuitError(f"unknown gate op {g.op!r}")
            if stuck_at is not None and i in stuck_at:
                values[i] = np.full(lanes, stuck_at[i], dtype=bool)
        return {
            name: np.stack([values[n] for n in bus])
            for name, bus in self.outputs.items()
        }
