"""Register-file port cost model.

Paper section 2.5: ``cswap`` "also needs input from three registers ...
the register file should be capable of three reads and two writes per
cycle.  While this is feasible, it is not clear that the performance
gained by adding this hardware is sufficient to justify its use in Qat."
Section 5 then recommends dropping to two reads / one write.

This model quantifies the claim with standard multiplexed-SRAM-array
estimates for a ``regs x bits`` register file:

- each **read port** costs a ``regs``-to-1 mux tree per bit
  (``regs - 1`` 2:1 muxes, ~4 gates each) plus an address decoder;
- each **write port** costs a decoder plus a per-bit, per-register input
  mux to select among write ports (ports > 1) and write-enable gating.

Absolute numbers are rough; the *ratios* between port configurations are
the quantity of interest, and they are toolchain-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

_GATES_PER_MUX2 = 4  # 2 AND + OR + inverter
_GATES_PER_DECODER_LINE = 1  # one wide AND per decoded line
_GATES_PER_CELL_WRITE = 1  # write-enable gating per bit per port


@dataclass(frozen=True)
class RegfileCost:
    """Estimated cost of one register-file configuration."""

    regs: int
    bits: int
    read_ports: int
    write_ports: int
    gates: int
    mux_depth: int

    def as_dict(self) -> dict[str, int]:
        return {
            "regs": self.regs,
            "bits": self.bits,
            "read_ports": self.read_ports,
            "write_ports": self.write_ports,
            "gates": self.gates,
            "mux_depth": self.mux_depth,
        }


def regfile_cost(
    regs: int = 256, bits: int = 1 << 16, read_ports: int = 2, write_ports: int = 1
) -> RegfileCost:
    """Gate estimate for a ``regs x bits`` file with the given ports.

    Defaults describe the baseline Qat register file (256 AoB registers
    of 65,536 bits, 2R1W -- enough for the irreversible gate set).
    ``ccnot``/``cswap`` need ``read_ports=3``; ``swap``/``cswap`` need
    ``write_ports=2``.
    """
    if regs < 2 or bits < 1 or read_ports < 1 or write_ports < 1:
        raise ValueError("invalid register file configuration")
    read_mux = read_ports * bits * (regs - 1) * _GATES_PER_MUX2
    decoders = (read_ports + write_ports) * regs * _GATES_PER_DECODER_LINE
    write_gating = write_ports * regs * bits * _GATES_PER_CELL_WRITE
    # With multiple write ports each cell needs a write-data select mux.
    write_select = (write_ports - 1) * regs * bits * _GATES_PER_MUX2
    gates = read_mux + decoders + write_gating + write_select
    mux_depth = (regs - 1).bit_length() * 2  # 2:1 mux tree levels x 2 gates
    return RegfileCost(regs, bits, read_ports, write_ports, gates, mux_depth)


def port_ablation_table(regs: int = 256, bits: int = 1 << 16) -> list[dict[str, int | float]]:
    """The section 2.5 / section 5 comparison table.

    Rows: the baseline 2R1W file (irreversible gates only), 3R1W (adds
    ``ccnot``), and 3R2W (adds ``swap``/``cswap``), each with its gate
    overhead relative to baseline.
    """
    base = regfile_cost(regs, bits, 2, 1)
    rows: list[dict[str, int | float]] = []
    for label, (r, w) in (
        ("2R1W (and/or/xor/not only)", (2, 1)),
        ("3R1W (+ ccnot)", (3, 1)),
        ("3R2W (+ swap/cswap)", (3, 2)),
    ):
        cost = regfile_cost(regs, bits, r, w)
        rows.append(
            {
                "config": label,
                "gates": cost.gates,
                "overhead_vs_2R1W": round(cost.gates / base.gates, 3),
            }
        )
    return rows
