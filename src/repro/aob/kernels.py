"""Vectorized kernels on packed uint64 word arrays.

These are the bit-level SIMD "ALU functions" of the Qat coprocessor
(paper Table 3), expressed as NumPy operations over the packed AoB word
layout (channel ``c`` = bit ``c & 63`` of word ``c >> 6``).

Two invariants hold for every kernel:

1. the word array represents exactly ``nbits`` channels; bits at or above
   ``nbits`` in the last word are zero on input, and
2. every kernel preserves that invariant on output (``k_not`` and
   ``k_one`` mask the top word explicitly).

The CPU simulators keep the whole 256-register Qat register file as one
``(256, nwords)`` uint64 matrix and call these kernels on its rows, which
is the closest Python analogue of the paper's bit-serial massively
parallel SIMD datapath.
"""

from __future__ import annotations

import numpy as np

from repro.aob.hadamard import hadamard_words
from repro.obs import runtime as _obs
from repro.utils.bits import WORD_BITS, ctz64, top_mask

__all__ = [
    "k_all",
    "k_and",
    "k_any",
    "k_ccnot",
    "k_cnot",
    "k_cswap",
    "k_had",
    "k_meas",
    "k_next",
    "k_not",
    "k_one",
    "k_or",
    "k_pop_after",
    "k_popcount",
    "k_swap",
    "k_xor",
    "k_zero",
]


def _volume(op: str, words: int) -> None:
    """AoB-bit-volume accounting; call only when ``_obs.active``."""
    _obs.current().qat_kernel(op, words)


# ---------------------------------------------------------------------------
# Logic gates (irreversible: and / or / xor / not)
# ---------------------------------------------------------------------------

def k_and(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    """``out = AND(a, b)`` -- Table 3 ``and @a,@b,@c``."""
    if _obs.active:
        _volume("and", out.size)
    np.bitwise_and(a, b, out=out)


def k_or(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    """``out = OR(a, b)`` -- Table 3 ``or @a,@b,@c``."""
    if _obs.active:
        _volume("or", out.size)
    np.bitwise_or(a, b, out=out)


def k_xor(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    """``out = XOR(a, b)`` -- Table 3 ``xor @a,@b,@c``."""
    if _obs.active:
        _volume("xor", out.size)
    np.bitwise_xor(a, b, out=out)


def k_not(a: np.ndarray, out: np.ndarray, nbits: int) -> None:
    """``out = NOT(a)`` (Pauli-X analogue) -- Table 3 ``not @a``."""
    if _obs.active:
        _volume("not", out.size)
    np.bitwise_not(a, out=out)
    out[-1] &= top_mask(nbits)


# ---------------------------------------------------------------------------
# Reversible not-based gates (section 2.4)
# ---------------------------------------------------------------------------

def k_cnot(dest: np.ndarray, ctrl: np.ndarray) -> None:
    """Controlled NOT: ``dest ^= ctrl`` (its own inverse)."""
    if _obs.active:
        _volume("cnot", dest.size)
    np.bitwise_xor(dest, ctrl, out=dest)


def k_ccnot(dest: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Toffoli gate: ``dest ^= AND(b, c)``."""
    if _obs.active:
        _volume("ccnot", dest.size)
    np.bitwise_xor(dest, b & c, out=dest)


# ---------------------------------------------------------------------------
# Reversible swap-based gates (section 2.5)
# ---------------------------------------------------------------------------

def k_swap(a: np.ndarray, b: np.ndarray) -> None:
    """Exchange two AoB values in place."""
    if _obs.active:
        _volume("swap", a.size)
    tmp = a.copy()
    a[:] = b
    b[:] = tmp


def k_cswap(a: np.ndarray, b: np.ndarray, ctrl: np.ndarray) -> None:
    """Fredkin gate: swap ``a``/``b`` only in channels where ``ctrl`` is 1.

    The masked-XOR formulation (``diff = (a ^ b) & ctrl``) preserves the
    "billiard-ball conservancy" the paper notes: the multiset of bits
    crossing the gate is unchanged.
    """
    if _obs.active:
        _volume("cswap", a.size)
    diff = (a ^ b) & ctrl
    np.bitwise_xor(a, diff, out=a)
    np.bitwise_xor(b, diff, out=b)


# ---------------------------------------------------------------------------
# Initializers (section 2.3)
# ---------------------------------------------------------------------------

def k_zero(out: np.ndarray) -> None:
    """Constant pbit 0: every entanglement channel holds 0."""
    if _obs.active:
        _volume("zero", out.size)
    out.fill(0)


def k_one(out: np.ndarray, nbits: int) -> None:
    """Constant pbit 1: every entanglement channel holds 1."""
    if _obs.active:
        _volume("one", out.size)
    out.fill(np.uint64(0xFFFF_FFFF_FFFF_FFFF))
    out[-1] &= top_mask(nbits)


def k_had(out: np.ndarray, k: int, ways: int) -> None:
    """Standard entangled superposition ``H(k)`` (section 2.3, Figure 7)."""
    if _obs.active:
        _volume("had", out.size)
    out[:] = hadamard_words(ways, k)


# ---------------------------------------------------------------------------
# Measurement (section 2.7) -- all non-destructive
# ---------------------------------------------------------------------------

def k_meas(words: np.ndarray, d: int, nbits: int) -> int:
    """Bit value at entanglement channel ``d`` (``meas $d,@a``).

    Channel numbers are taken modulo the AoB length, matching a hardware
    implementation that simply ignores address bits above the top
    (a 16-bit ``$d`` exactly indexes a 16-way AoB).
    """
    if _obs.active:
        _volume("meas", 1)  # a single-word bit probe, not a full sweep
    d &= nbits - 1
    return int((words[d >> 6] >> np.uint64(d & (WORD_BITS - 1))) & np.uint64(1))


def k_next(words: np.ndarray, d: int, nbits: int) -> int:
    """Lowest channel ``> d`` holding a 1, else 0 (``next $d,@a``).

    Mirrors the two-step Figure 8 design: mask off channels ``<= d``, then
    count trailing zeros.  Here the masking touches only the first
    candidate word and the scan for a non-zero word is a vectorized
    ``argmax`` over the remainder.
    """
    if _obs.active:
        _volume("next", words.size)
    start = d + 1
    if start >= nbits:
        return 0
    w0 = start >> 6
    offset = start & (WORD_BITS - 1)
    first = int(words[w0]) & (-1 << offset) & 0xFFFF_FFFF_FFFF_FFFF
    if first:
        return w0 * WORD_BITS + ctz64(first)
    tail = words[w0 + 1 :]
    if tail.size:
        nz = tail != 0
        if nz.any():
            idx = int(np.argmax(nz))
            return (w0 + 1 + idx) * WORD_BITS + ctz64(int(tail[idx]))
    return 0


def k_pop_after(words: np.ndarray, d: int, nbits: int) -> int:
    """Count of 1 bits in channels ``> d`` (the paper's ``pop`` extension).

    Section 2.7: the full population count of a 16-way AoB ranges 0..65,536
    which overflows a 16-bit register, so the specified-but-unbuilt ``pop``
    instruction counts only channels *after* ``d``; POP = ``pop`` after 0
    plus ``meas`` of channel 0.
    """
    if _obs.active:
        _volume("pop", words.size)
    start = d + 1
    if start >= nbits:
        return 0
    w0 = start >> 6
    offset = start & (WORD_BITS - 1)
    first = int(words[w0]) & (-1 << offset) & 0xFFFF_FFFF_FFFF_FFFF
    count = first.bit_count()
    tail = words[w0 + 1 :]
    if tail.size:
        count += int(np.bitwise_count(tail).sum())
    return count


def k_popcount(words: np.ndarray) -> int:
    """Total number of 1 bits (the LCPC'20 POP reduction)."""
    if _obs.active:
        _volume("popcount", words.size)
    if words.size == 0:
        return 0
    return int(np.bitwise_count(words).sum())


def k_any(words: np.ndarray) -> bool:
    """ANY reduction: true iff some channel holds 1 (LCPC'20 semantics)."""
    if _obs.active:
        _volume("any", words.size)
    return bool(words.any())


def k_all(words: np.ndarray, nbits: int) -> bool:
    """ALL reduction: true iff every channel holds 1."""
    if _obs.active:
        _volume("all", words.size)
    full = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    if words.size == 1:
        return bool(words[0] == top_mask(nbits))
    if not bool((words[:-1] == full).all()):
        return False
    return bool(words[-1] == top_mask(nbits))
