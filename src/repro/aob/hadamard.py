"""Hadamard-pattern generators: the ``had`` initializer of section 2.3.

``had @a,k`` loads register ``@a`` with the *standard entangled
superposition* ``H(k)``: entanglement channel ``e`` receives bit ``k`` of
the binary value of ``e``, i.e. a repeating run of :math:`2^k` zeros
followed by :math:`2^k` ones.  The paper's Figure 7 gives the parametric
Verilog (``aob[i] = (i >> h)`` -- the low bit of the shift); this module is
its vectorized software rendering.
"""

from __future__ import annotations

import numpy as np

from repro.obs import runtime as _obs
from repro.utils.bits import WORD_BITS, hadamard_word, top_mask, words_for_bits


def hadamard_bit(e: int, k: int) -> int:
    """Bit value of channel ``e`` in the ``H(k)`` pattern (Figure 7 semantics)."""
    if e < 0 or k < 0:
        raise ValueError("channel and k must be non-negative")
    return (e >> k) & 1


def hadamard_words(ways: int, k: int) -> np.ndarray:
    """Packed uint64 words of the ``H(k)`` pattern for a ``2**ways``-bit AoB.

    For ``k < 6`` every word is the same 64-bit constant; for ``k >= 6``
    whole words alternate between all-zeros and all-ones in runs of
    :math:`2^{k-6}` words.  Both cases are O(number of words), matching the
    paper's observation that ``had`` could be replaced by pre-computed
    constant registers.

    ``k`` may be any value ``0 <= k < 16`` (the Tangled immediate is 4
    bits); channels whose index has bit ``k`` beyond the AoB width simply
    produce an all-zeros pattern, mirroring the Figure 7 Verilog where
    ``i >> h`` is zero for ``h`` past the top of ``i``.
    """
    if ways < 0:
        raise ValueError(f"ways must be non-negative, got {ways}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if _obs.active:
        telemetry = _obs.current()
        telemetry.metrics.counter("qat.had_patterns").inc()
        telemetry.metrics.counter("qat.aob_bits").add(1 << ways)
    nbits = 1 << ways
    nwords = words_for_bits(nbits)
    if k >= ways:
        # Every channel index e < 2**ways has bit k clear.
        return np.zeros(nwords, dtype=np.uint64)
    if nbits < WORD_BITS:
        # Single partial word: build it directly.
        value = 0
        for e in range(nbits):
            if (e >> k) & 1:
                value |= 1 << e
        return np.array([value], dtype=np.uint64)
    if k < 6:
        out = np.empty(nwords, dtype=np.uint64)
        out.fill(hadamard_word(k))
    else:
        word_bit = np.arange(nwords, dtype=np.uint64) >> np.uint64(k - 6)
        out = np.where(word_bit & np.uint64(1), np.uint64(0xFFFF_FFFF_FFFF_FFFF), np.uint64(0))
    out[-1] &= top_mask(nbits)
    return out
