"""The :class:`AoB` value type: an E-way entangled pbit as an array of bits.

Paper section 1.1: "an *E*-way entangled pbit value is represented as an
array of :math:`2^E` bits (AoB) ... each position within an AoB vector is
an *entanglement channel*".

:class:`AoB` is immutable by convention -- every operation returns a new
value -- which makes instances safe to share, hash and intern (the pattern
substrate relies on this).  The mutable, in-place path used by the CPU
simulators lives in :mod:`repro.aob.kernels`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.aob import kernels
from repro.aob.hadamard import hadamard_words
from repro.errors import EntanglementError, MeasurementError
from repro.utils.bits import WORD_BITS, top_mask, words_for_bits

#: Entanglement supported by the full (author) Qat hardware: 65,536-bit AoB.
QAT_WAYS = 16

#: Entanglement the student implementations were permitted to restrict to.
STUDENT_WAYS = 8

#: Widest AoB this software implementation will build densely (beyond this,
#: use :class:`repro.pattern.PatternVector`).
MAX_DENSE_WAYS = 26


def _check_ways(ways: int) -> None:
    if not 0 <= ways <= MAX_DENSE_WAYS:
        raise EntanglementError(
            f"ways must be in [0, {MAX_DENSE_WAYS}], got {ways}; use "
            "repro.pattern.PatternVector for higher entanglement"
        )


class AoB:
    """A :math:`2^{ways}`-bit Array-of-Bits value (one pbit's superposition).

    Parameters
    ----------
    ways:
        Degree of entanglement ``E``; the vector holds :math:`2^E` bits.
    words:
        Optional packed uint64 backing array (little-endian channel
        layout).  Taken by reference and must not be mutated afterwards;
        omit it for an all-zeros value.

    Examples
    --------
    The paper's Figure 1 pair of two-way entangled pbits:

    >>> lo = AoB.hadamard(2, 0)   # {0,1,0,1}
    >>> hi = AoB.hadamard(2, 1)   # {0,0,1,1}
    >>> [(lo.meas(e), hi.meas(e)) for e in range(4)]
    [(0, 0), (1, 0), (0, 1), (1, 1)]
    """

    __slots__ = ("ways", "nbits", "_words")

    def __init__(self, ways: int, words: np.ndarray | None = None):
        _check_ways(ways)
        self.ways = ways
        self.nbits = 1 << ways
        nwords = words_for_bits(self.nbits)
        if words is None:
            words = np.zeros(nwords, dtype=np.uint64)
        else:
            words = np.ascontiguousarray(words, dtype=np.uint64)
            if words.shape != (nwords,):
                raise EntanglementError(
                    f"expected {nwords} words for {ways}-way AoB, got shape {words.shape}"
                )
            if self.nbits < WORD_BITS and (words[-1] & ~top_mask(self.nbits)):
                raise EntanglementError("bits set above the AoB width")
        self._words = words
        self._words.flags.writeable = False

    # -- construction -------------------------------------------------------

    @classmethod
    def zeros(cls, ways: int) -> "AoB":
        """Constant pbit 0 (every channel 0) -- Table 3 ``zero @a``."""
        return cls(ways)

    @classmethod
    def ones(cls, ways: int) -> "AoB":
        """Constant pbit 1 (every channel 1) -- Table 3 ``one @a``."""
        _check_ways(ways)
        out = np.empty(words_for_bits(1 << ways), dtype=np.uint64)
        kernels.k_one(out, 1 << ways)
        return cls(ways, out)

    @classmethod
    def constant(cls, ways: int, bit: int) -> "AoB":
        """Constant pbit ``bit`` (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        return cls.ones(ways) if bit else cls.zeros(ways)

    @classmethod
    def hadamard(cls, ways: int, k: int) -> "AoB":
        """Standard entangled superposition ``H(k)`` -- Table 3 ``had @a,k``."""
        _check_ways(ways)
        return cls(ways, hadamard_words(ways, k))

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "AoB":
        """Build from an explicit channel-ordered bit sequence.

        The length must be a power of two (it determines ``ways``).
        """
        arr = np.asarray(list(bits), dtype=np.uint8)
        n = arr.size
        if n == 0 or n & (n - 1):
            raise EntanglementError(f"bit count must be a power of two, got {n}")
        if ((arr != 0) & (arr != 1)).any():
            raise ValueError("bits must be 0 or 1")
        ways = n.bit_length() - 1
        packed = np.packbits(arr, bitorder="little")
        nwords = words_for_bits(n)
        buf = np.zeros(nwords * 8, dtype=np.uint8)
        buf[: packed.size] = packed
        return cls(ways, buf.view(np.uint64))

    @classmethod
    def from_int(cls, ways: int, value: int) -> "AoB":
        """Build from an integer whose bit ``e`` is channel ``e``'s value."""
        _check_ways(ways)
        nbits = 1 << ways
        if value < 0 or value >> nbits:
            raise ValueError(f"value does not fit in {nbits} bits")
        nwords = words_for_bits(nbits)
        # One bulk byte conversion instead of a Python loop per word.
        raw = value.to_bytes(nwords * (WORD_BITS // 8), "little")
        return cls(ways, np.frombuffer(raw, dtype="<u8"))

    @classmethod
    def random(cls, ways: int, rng: np.random.Generator, p: float = 0.5) -> "AoB":
        """Random AoB with independent channel probability ``p`` of 1."""
        _check_ways(ways)
        bits = (rng.random(1 << ways) < p).astype(np.uint8)
        return cls.from_bits(bits)

    # -- raw access ---------------------------------------------------------

    @property
    def words(self) -> np.ndarray:
        """Read-only packed uint64 backing array."""
        return self._words

    def to_bool_array(self) -> np.ndarray:
        """Expand to a dense bool array of length :math:`2^{ways}`."""
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self.nbits].astype(bool)

    def to_int(self) -> int:
        """The whole AoB as one integer (channel ``e`` = bit ``e``)."""
        return int.from_bytes(
            np.ascontiguousarray(self._words, dtype="<u8").tobytes(), "little"
        )

    # -- Table 3 gate operations (pure; return new values) -------------------

    def _binary(self, other: "AoB", kernel) -> "AoB":
        if not isinstance(other, AoB):
            return NotImplemented
        if other.ways != self.ways:
            raise EntanglementError(
                f"mismatched entanglement: {self.ways}-way vs {other.ways}-way"
            )
        out = np.empty_like(self._words)
        kernel(self._words, other._words, out)
        return AoB(self.ways, out)

    def __and__(self, other: "AoB") -> "AoB":
        return self._binary(other, kernels.k_and)

    def __or__(self, other: "AoB") -> "AoB":
        return self._binary(other, kernels.k_or)

    def __xor__(self, other: "AoB") -> "AoB":
        return self._binary(other, kernels.k_xor)

    def __invert__(self) -> "AoB":
        out = np.empty_like(self._words)
        kernels.k_not(self._words, out, self.nbits)
        return AoB(self.ways, out)

    def cnot(self, ctrl: "AoB") -> "AoB":
        """Controlled NOT: new value of ``self`` with ``self ^= ctrl``."""
        return self ^ ctrl

    def ccnot(self, b: "AoB", c: "AoB") -> "AoB":
        """Toffoli: new value of ``self`` with ``self ^= AND(b, c)``."""
        return self ^ (b & c)

    def cswap(self, other: "AoB", ctrl: "AoB") -> tuple["AoB", "AoB"]:
        """Fredkin gate: returns the pair ``(self', other')`` swapped where ``ctrl``."""
        if other.ways != self.ways or ctrl.ways != self.ways:
            raise EntanglementError("cswap operands must share entanglement ways")
        a = self._words.copy()
        b = other._words.copy()
        kernels.k_cswap(a, b, ctrl._words)
        return AoB(self.ways, a), AoB(self.ways, b)

    # -- measurement (section 2.7; all non-destructive) -----------------------

    def meas(self, channel: int) -> int:
        """Bit at entanglement ``channel`` -- Table 3 ``meas $d,@a``."""
        if channel < 0:
            raise MeasurementError(f"channel must be non-negative, got {channel}")
        return kernels.k_meas(self._words, channel, self.nbits)

    def next(self, channel: int) -> int:
        """Lowest channel ``> channel`` holding 1, else 0 -- ``next $d,@a``."""
        if channel < 0:
            raise MeasurementError(f"channel must be non-negative, got {channel}")
        return kernels.k_next(self._words, channel, self.nbits)

    def pop_after(self, channel: int) -> int:
        """Count of 1s in channels ``> channel`` (the ``pop`` extension)."""
        if channel < 0:
            raise MeasurementError(f"channel must be non-negative, got {channel}")
        return kernels.k_pop_after(self._words, channel, self.nbits)

    def popcount(self) -> int:
        """Number of 1 channels: probability of 1 in parts per :math:`2^E`."""
        return kernels.k_popcount(self._words)

    def any(self) -> bool:
        """ANY reduction: non-zero probability of being 1."""
        return kernels.k_any(self._words)

    def all(self) -> bool:
        """ALL reduction: zero probability of being 0."""
        return kernels.k_all(self._words, self.nbits)

    def probability(self) -> float:
        """Probability this pbit measures 1 (popcount / :math:`2^E`)."""
        return self.popcount() / self.nbits

    def ones_channels(self) -> np.ndarray:
        """Sorted array of every channel holding a 1 (full LCPC'20 readout)."""
        return np.flatnonzero(self.to_bool_array())

    def iter_ones(self) -> Iterator[int]:
        """Iterate 1-channels using only ``meas``/``next``, as Tangled would.

        This is exactly the read-out loop of the paper's section 2.7: test
        channel 0 with ``meas``, then repeatedly ``next``.
        """
        if self.meas(0):
            yield 0
        chan = 0
        while True:
            chan = self.next(chan)
            if chan == 0:
                return
            yield chan

    # -- value protocol -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AoB):
            return NotImplemented
        return self.ways == other.ways and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        return hash((self.ways, self._words.tobytes()))

    def __len__(self) -> int:
        return self.nbits

    def __getitem__(self, channel: int) -> int:
        return self.meas(channel)

    def __repr__(self) -> str:
        return f"AoB(ways={self.ways}, {self.to_rle_string()})"

    def to_rle_string(self, max_runs: int = 8) -> str:
        """Run-length string in the paper's section 1.2 RE notation.

        ``{0,0,1,1}`` renders as ``0^2 1^2``; long values are abbreviated.
        """
        bits = self.to_bool_array()
        # Vectorized run extraction: a run starts wherever the value
        # changes (plus channel 0).
        boundaries = np.flatnonzero(bits[1:] != bits[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [bits.size]))
        total = starts.size
        runs = [
            (int(bits[s]), int(e - s))
            for s, e in zip(starts[:max_runs], ends[:max_runs])
        ]
        parts = [f"{bit}^{count}" if count > 1 else str(bit) for bit, count in runs]
        if total > max_runs:
            parts.append("...")
        return " ".join(parts)
