"""Array-of-Bits (AoB) substrate: the paper's section 1.1 representation.

An ``E``-way entangled pbit value is an array of :math:`2^E` bits; the
position of a bit within the array is its *entanglement channel*.  Qat, the
paper's coprocessor, operates on 65,536-bit AoB values (16-way
entanglement) held in 256 coprocessor registers.

This package provides:

- :class:`AoB` -- an immutable-by-convention packed bit-vector value type
  with every Table-3 coprocessor operation as a method,
- :mod:`repro.aob.kernels` -- raw vectorized kernels on uint64 word arrays
  (used both by :class:`AoB` and by the CPU simulators' SIMD register
  file), and
- :mod:`repro.aob.hadamard` -- the ``H(k)`` standard entangled
  superposition generators of section 2.3 / Figure 7.
"""

from repro.aob.bitvector import AoB, QAT_WAYS, STUDENT_WAYS
from repro.aob.hadamard import hadamard_bit, hadamard_words

__all__ = [
    "AoB",
    "QAT_WAYS",
    "STUDENT_WAYS",
    "hadamard_bit",
    "hadamard_words",
]
