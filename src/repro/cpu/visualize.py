"""Pipeline occupancy visualization.

Wraps a :class:`~repro.cpu.pipeline.PipelinedSimulator` to record which
instruction occupied each stage on every clock, then renders the classic
pipeline diagram -- stages across, cycles down -- with stalls shown as
held rows and flushes as vanished entries.  Used by the pipeline example
and handy when debugging interlock behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.pipeline import PipelinedSimulator

_STAGE_NAMES = {4: ("IF", "ID", "EX", "WB"), 5: ("IF", "ID", "EX", "MEM", "WB")}


@dataclass
class PipelineRecording:
    """Stage occupancy per cycle: each row maps stage name -> text."""

    stages: tuple[str, ...]
    rows: list[dict[str, str]] = field(default_factory=list)

    def render(self, first: int = 0, count: int | None = None) -> str:
        """ASCII table of the recorded cycles."""
        rows = self.rows[first : None if count is None else first + count]
        width = {s: max(len(s), *(len(r[s]) for r in rows)) if rows else len(s) for s in self.stages}
        lines = [
            "cycle  " + "  ".join(s.ljust(width[s]) for s in self.stages)
        ]
        for i, row in enumerate(rows, start=first + 1):
            lines.append(
                f"{i:5d}  " + "  ".join(row[s].ljust(width[s]) for s in self.stages)
            )
        return "\n".join(lines)


def record_pipeline(simulator: PipelinedSimulator, max_cycles: int = 10_000) -> PipelineRecording:
    """Run ``simulator`` to halt, recording stage occupancy every cycle.

    The IF column shows the in-flight fetch; bubbles render as ``-``.
    """
    stages = _STAGE_NAMES[simulator.config.stages]
    recording = PipelineRecording(stages=stages)

    def snapshot() -> dict[str, str]:
        row: dict[str, str] = {}
        fetch = simulator._fetch_current
        row["IF"] = (
            "-" if fetch is None
            else (fetch.instr.mnemonic if fetch.instr else "??") + (
                "*" if fetch.fetch_left > 0 else ""
            )
        )
        for name, rec in zip(stages[1:], simulator._pipe[1:]):
            if rec is None or rec.instr is None:
                row[name] = "-"
            else:
                row[name] = rec.instr.mnemonic
        return row

    while not simulator.machine.halted and simulator.stats.cycles < max_cycles:
        simulator.cycle()
        recording.rows.append(snapshot())
    return recording
