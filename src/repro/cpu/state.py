"""Shared architectural state of the Tangled/Qat machine.

Tangled: 16 general 16-bit registers, a 16-bit PC, and 64Ki 16-bit words
of memory.  Qat: 256 AoB coprocessor registers of :math:`2^{ways}` bits
each, *no* memory access (paper section 2.2).  The Qat register file is
a pluggable substrate (:mod:`repro.cpu.qat_backend`): the ``dense``
backend keeps one ``(256, words_per_reg)`` uint64 matrix so coprocessor
gates are whole-row NumPy operations (the software rendering of a
bit-serial massively parallel SIMD datapath); the ``re`` backend keeps
run-length compressed :class:`~repro.pattern.PatternVector` registers so
entanglement beyond :data:`~repro.aob.bitvector.MAX_DENSE_WAYS` runs in
bounded memory (paper section 1.2).
"""

from __future__ import annotations

import numpy as np

from repro.aob import AoB
from repro.aob.bitvector import QAT_WAYS
from repro.cpu.qat_backend import make_qat_backend
from repro.errors import SimulatorError
from repro.faults.traps import TrapCause, TrapPolicy, TrapRecord, deliver
from repro.isa.registers import NUM_GPRS

MEM_WORDS = 1 << 16


class MachineState:
    """Registers, memory, PC, and the Qat coprocessor register file."""

    def __init__(self, ways: int = QAT_WAYS, trap_policy: TrapPolicy | None = None,
                 qat_backend="dense"):
        #: the pluggable Qat register substrate (validates ``ways``)
        self.qat = make_qat_backend(qat_backend, ways)
        self.ways = ways
        self.nbits = 1 << ways
        self.regs = np.zeros(NUM_GPRS, dtype=np.uint16)
        self.mem = np.zeros(MEM_WORDS, dtype=np.uint16)
        self.pc = 0
        self.halted = False
        self.output: list[str] = []
        #: dynamic instruction count
        self.instret = 0
        #: trap handling configuration (see :mod:`repro.faults.traps`)
        self.trap_policy = trap_policy if trap_policy is not None else TrapPolicy()
        #: every trap that fired, in order
        self.traps: list[TrapRecord] = []
        #: set by timing simulators so trap records carry the clock
        self.cycle_provider = None
        #: per-machine predecoded-instruction cache, created lazily by
        #: :mod:`repro.cpu.fastpath`; ``None`` until a simulator runs
        self._predecode = None
        #: set False to force per-step ``decode`` (differential testing)
        self.predecode_enabled = True

    def trap(self, cause: TrapCause, detail: str = "",
             instruction: str | None = None, resume_pc: int | None = None,
             service: int | None = None) -> None:
        """Fire an architectural trap (never returns normally)."""
        deliver(self, cause, detail=detail, instruction=instruction,
                resume_pc=resume_pc, service=service)

    # -- GPR access (values are canonical 0..0xFFFF ints) ---------------------

    def read_reg(self, reg: int) -> int:
        """Read a GPR as an unsigned 16-bit pattern."""
        return int(self.regs[reg])

    def read_reg_signed(self, reg: int) -> int:
        """Read a GPR as a signed 16-bit value."""
        value = int(self.regs[reg])
        return value - 0x10000 if value >= 0x8000 else value

    def write_reg(self, reg: int, value: int) -> None:
        """Write a GPR (value truncated to 16 bits)."""
        self.regs[reg] = value & 0xFFFF

    # -- memory ------------------------------------------------------------------

    def read_mem(self, addr: int) -> int:
        """Read one 16-bit memory word."""
        return int(self.mem[addr & 0xFFFF])

    def write_mem(self, addr: int, value: int) -> None:
        """Write one 16-bit memory word.

        Any store may overwrite program text (self-modifying code), so
        the predecoded-instruction cache is precisely invalidated here.
        """
        self.mem[addr & 0xFFFF] = value & 0xFFFF
        if self._predecode is not None:
            self._predecode.invalidate(addr & 0xFFFF)

    def invalidate_predecode(self, addr: int | None = None) -> None:
        """Drop predecoded instructions after a direct ``mem`` mutation.

        Code that bypasses :meth:`write_mem` (fault injection, checkpoint
        restore, tests poking ``machine.mem`` arrays) must call this with
        the touched address, or with no argument to flush everything.
        """
        if self._predecode is not None:
            if addr is None:
                self._predecode.invalidate_all()
            else:
                self._predecode.invalidate(addr & 0xFFFF)

    def load_program(self, words, origin: int = 0) -> None:
        """Copy a program image into memory and point the PC at it."""
        words = np.asarray(
            [int(w) & 0xFFFF for w in words], dtype=np.uint16
        )
        if origin + words.size > MEM_WORDS:
            raise SimulatorError("program image exceeds memory")
        self.mem[origin : origin + words.size] = words
        self.pc = origin
        if self._predecode is not None:
            self._predecode.invalidate_all()

    # -- Qat register access --------------------------------------------------------

    @property
    def qregs(self) -> np.ndarray:
        """The dense ``(256, words)`` uint64 matrix (dense backend only)."""
        if self.qat.name != "dense":
            raise SimulatorError(
                f"the {self.qat.name!r} Qat backend has no dense register "
                "matrix; use machine.qat (read/write/vector) instead"
            )
        return self.qat.qregs

    def qreg(self, reg: int) -> np.ndarray:
        """Raw word row of Qat register ``reg`` (dense backend only)."""
        return self.qregs[reg]

    def read_qreg(self, reg: int) -> AoB:
        """Snapshot Qat register ``reg`` as an immutable AoB value."""
        return self.qat.read(reg)

    def write_qreg(self, reg: int, value) -> None:
        """Store an AoB (or PatternVector) value into Qat register ``reg``."""
        if value.ways != self.ways:
            raise SimulatorError(
                f"value is {value.ways}-way but machine is {self.ways}-way"
            )
        self.qat.write(reg, value)

    def flip_qreg_bit(self, reg: int, word: int, bit: int) -> None:
        """Invert one stored bit of Qat register ``reg`` (fault injection).

        ``word``/``bit`` address the packed uint64 layout (channel
        ``word * 64 + bit``); the RE backend translates this into a
        copy-on-write run split so interned chunks are never corrupted.
        """
        self.qat.flip_bit(reg, word, bit)

    def snapshot(self) -> dict:
        """Copy of the architectural state (for equivalence testing)."""
        return {
            "regs": self.regs.copy(),
            "pc": self.pc,
            "mem": self.mem.copy(),
            "qregs": self.qat.snapshot(),
            "qat_backend": self.qat.name,
            "halted": self.halted,
            "output": list(self.output),
            "traps": list(self.traps),
        }
