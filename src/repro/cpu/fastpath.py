"""Fast-path execution engine: predecode cache + stripped hot loops.

The slow path re-decodes every instruction word at every step and pays
telemetry/trace/checkpoint dispatch on every loop iteration even when no
observer is attached.  This module removes that overhead without
changing a single architectural outcome:

- **Predecode cache** (:class:`PredecodeCache`): each program word is
  decoded once into a :class:`Predecoded` entry carrying the
  instruction, its fast handler (:data:`repro.cpu.exec_core.FAST_HANDLERS`),
  and its :class:`~repro.cpu.exec_core.StaticEffects`.  Decoded entries
  are pure functions of their bit patterns, so they are interned
  process-wide and shared by all three simulators.  Stores invalidate
  precisely (``MachineState.write_mem`` drops the entry at the written
  address plus a two-word entry starting one word earlier), so
  self-modifying code simply re-decodes the rewritten words.
- **Stripped run loops** (:func:`run_functional`, :func:`run_multicycle`):
  no span enter/exit, no per-step ``Effects`` allocation, locals-bound
  state, and handler dispatch through the predecoded table instead of
  per-step mnemonic branching.
- **Selection** (:func:`eligible`): the fast loop is only taken when
  telemetry capture, tracing, auto-checkpointing, and profiling are all
  inactive; any observer keeps the byte-identical slow path.  Set
  ``REPRO_FASTPATH=0`` in the environment (or ``sim.use_fastpath =
  False``) to force the slow path; ``sim.use_fastpath = True`` forces
  the fast loop even when an observer is attached (testing only -- the
  observer is then bypassed).  The flight recorder
  (:mod:`repro.obs.flight`) is *not* an observer in this sense: its
  retire append is cheap enough to stay inside the fast loop, so it
  never costs eligibility.

Trap behaviour is identical to the slow path by construction: handlers
raise through the same :func:`repro.faults.traps.deliver` machinery with
the same causes and detail strings, and the differential suite
(``tests/test_fastpath.py``) checks final state digests and trap records
against the slow path on random programs.
"""

from __future__ import annotations

import os

from repro.cpu.exec_core import FAST_HANDLERS, static_effects
from repro.errors import EncodingError
from repro.faults.traps import TrapCause, TrapDelivered
from repro.isa.encoding import decode
from repro.obs import flight as _flight
from repro.obs import runtime as _obs

#: Master switch: ``REPRO_FASTPATH=0`` disables fast-loop selection
#: process-wide (the predecode cache stays behaviour-neutral and on).
ENABLED = os.environ.get("REPRO_FASTPATH", "1") != "0"

#: Major opcodes of two-word (Qat multi-register) instructions.
_TWO_WORD_MAJORS = (0x8, 0x9)

_MEM_WORDS = 1 << 16


class Predecoded:
    """One decoded program word (or decode error), ready to dispatch."""

    __slots__ = ("instr", "ops", "mnemonic", "words", "handler", "static",
                 "raw", "error")

    def __init__(self, instr, words, handler, static, raw=(), error=None):
        self.instr = instr
        self.ops = instr.ops if instr is not None else ()
        self.mnemonic = instr.mnemonic if instr is not None else None
        self.words = words
        self.handler = handler
        self.static = static
        #: the raw instruction word(s) as a tuple -- interned alongside
        #: the entry so the flight recorder's retire events never fetch
        #: or allocate on the hot path
        self.raw = raw
        #: the EncodingError text when the word(s) do not decode
        self.error = error


#: Process-wide intern table: word (or ``(word1, word2)``) -> entry.
#: Decode -- including every EncodingError message -- is a pure function
#: of the fetched bit patterns, so entries are safely shared across
#: machines, simulators, and repeated loads of the same program.
_INTERN: dict = {}


def _predecode(mem, pc: int) -> Predecoded:
    """Decode (or fetch from the intern table) the word(s) at ``pc``."""
    word = int(mem[pc])
    if (word >> 12) in _TWO_WORD_MAJORS and pc + 1 < _MEM_WORDS:
        key = (word, int(mem[pc + 1]))
    else:
        key = word
    entry = _INTERN.get(key)
    if entry is None:
        raw = key if isinstance(key, tuple) else (key,)
        try:
            instr, words = decode(mem, pc)
        except EncodingError as exc:
            entry = Predecoded(None, 1, None, None, raw=raw[:1],
                               error=str(exc))
        else:
            entry = Predecoded(instr, words, FAST_HANDLERS[instr.mnemonic],
                               static_effects(instr), raw=raw[:words])
        _INTERN[key] = entry
    return entry


class PredecodeCache:
    """Per-machine ``pc -> Predecoded`` map with precise invalidation."""

    __slots__ = ("entries",)

    def __init__(self):
        self.entries: dict[int, Predecoded] = {}

    def lookup(self, mem, pc: int) -> Predecoded:
        entry = self.entries.get(pc)
        if entry is None:
            entry = self.entries[pc] = _predecode(mem, pc)
        return entry

    def invalidate(self, addr: int) -> None:
        """Drop entries covering ``addr`` after a store there.

        An instruction is at most two words long, so only the entry at
        ``addr`` itself and a two-word entry starting at ``addr - 1``
        can have consumed the written word.  A store at address 0 has no
        predecessor: probing ``addr - 1`` must not wrap to the top of
        memory (a two-word entry at ``_MEM_WORDS - 1`` cannot exist --
        its second word would be off the end -- but the wrapped probe
        used to evict whatever entry lived there).
        """
        entries = self.entries
        entries.pop(addr, None)
        if addr == 0:
            return
        prev = addr - 1
        before = entries.get(prev)
        if before is not None and before.words == 2:
            del entries[prev]

    def invalidate_all(self) -> None:
        self.entries.clear()


def cache_for(machine) -> PredecodeCache | None:
    """The machine's predecode cache (``None`` when disabled on it)."""
    if not machine.predecode_enabled:
        return None
    cache = machine._predecode
    if cache is None:
        cache = machine._predecode = PredecodeCache()
    return cache


def eligible(sim) -> bool:
    """Should ``sim.run()`` take the stripped fast loop right now?

    ``sim.use_fastpath`` (True/False) overrides everything; otherwise
    the fast loop requires the module switch on and *no* observer --
    telemetry capture, an execution trace, an auto-checkpointer, or a
    profiler -- attached to the simulator (or, for the multi-cycle
    model, its inner functional simulator).
    """
    forced = getattr(sim, "use_fastpath", None)
    if forced is not None:
        return bool(forced)
    if not ENABLED or _obs.active:
        return False
    inner = getattr(sim, "_inner", None)
    for owner in (sim,) if inner is None else (sim, inner):
        if getattr(owner, "trace", None) is not None:
            return False
        if getattr(owner, "checkpointer", None) is not None:
            return False
        if getattr(owner, "profiler", None) is not None:
            return False
    return True


def run_functional(sim, max_steps: int) -> int:
    """Stripped equivalent of ``FunctionalSimulator.run``.

    Same contract: runs to halt, fires the ``watchdog`` trap when the
    step budget is exhausted, returns the number of steps (trapped
    instructions included).
    """
    machine = sim.machine
    syscalls = sim.syscalls
    mem = machine.mem
    cache = cache_for(machine)
    entries = cache.entries if cache is not None else None
    # Flight-recorder hot-path state: a bound ``list.append`` and a
    # countdown to the next trim, so a retire costs one branch, one
    # tuple, one append, and one integer compare -- no ``len()`` global
    # lookup, no method resolution.
    recorder = _flight.RECORDER
    fr_append = recorder.events.append if recorder.enabled else None
    fr_room = recorder.limit - len(recorder.events)
    steps = 0
    while not machine.halted:
        if steps >= max_steps:
            try:
                machine.trap(
                    TrapCause.WATCHDOG,
                    detail=f"exceeded {max_steps} steps without halting",
                )
            except TrapDelivered:
                break
        pc = machine.pc
        if entries is not None:
            entry = entries.get(pc)
            if entry is None:
                entry = entries[pc] = _predecode(mem, pc)
        else:
            entry = _predecode(mem, pc)
        handler = entry.handler
        if handler is None:
            try:
                machine.trap(TrapCause.ILLEGAL_OPCODE, detail=entry.error)
            except TrapDelivered:
                steps += 1
                continue
        try:
            machine.pc = handler(machine, entry.instr, entry.ops,
                                 (pc + entry.words) & 0xFFFF, syscalls)
            machine.instret += 1
            if fr_append is not None:
                fr_append((0, pc, entry.raw))
                fr_room -= 1
                if fr_room <= 0:
                    recorder._trim()
                    fr_room = recorder.limit - len(recorder.events)
        except TrapDelivered:
            pass  # deliver() already redirected/halted the machine
        steps += 1
    return steps


def run_multicycle(sim, max_steps: int) -> int:
    """Stripped equivalent of ``MultiCycleSimulator.run``.

    Returns total cycles.  ``sim.cycles`` is brought up to date after
    every step (not batched) because trap records read it through
    ``machine.cycle_provider`` at delivery time, and the slow path
    charges the trapping instruction only *after* delivery.
    """
    machine = sim.machine
    syscalls = sim._inner.syscalls
    costs = sim.costs
    cost_of = {m: costs.cycles_for(m) for m in FAST_HANDLERS}
    trap_cost = costs.sys  # synthetic "trap" effects charge exception entry
    mem = machine.mem
    cache = cache_for(machine)
    entries = cache.entries if cache is not None else None
    recorder = _flight.RECORDER
    fr_append = recorder.events.append if recorder.enabled else None
    fr_room = recorder.limit - len(recorder.events)
    steps = 0
    while not machine.halted:
        if steps >= max_steps:
            try:
                machine.trap(
                    TrapCause.WATCHDOG,
                    detail=f"exceeded {max_steps} steps without halting",
                )
            except TrapDelivered:
                break
        pc = machine.pc
        if entries is not None:
            entry = entries.get(pc)
            if entry is None:
                entry = entries[pc] = _predecode(mem, pc)
        else:
            entry = _predecode(mem, pc)
        handler = entry.handler
        if handler is None:
            try:
                machine.trap(TrapCause.ILLEGAL_OPCODE, detail=entry.error)
            except TrapDelivered:
                sim.cycles += trap_cost
                steps += 1
                continue
        try:
            machine.pc = handler(machine, entry.instr, entry.ops,
                                 (pc + entry.words) & 0xFFFF, syscalls)
            machine.instret += 1
            sim.cycles += cost_of[entry.mnemonic]
            if fr_append is not None:
                fr_append((0, pc, entry.raw))
                fr_room -= 1
                if fr_room <= 0:
                    recorder._trim()
                    fr_room = recorder.limit - len(recorder.events)
        except TrapDelivered:
            sim.cycles += trap_cost
        steps += 1
    return sim.cycles
