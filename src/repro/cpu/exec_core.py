"""Single-instruction executor shared by all simulators.

Semantics follow Tables 1 and 3 exactly where the paper specifies them;
where it leaves detail to the implementer the choices are documented
inline (and in DESIGN.md):

- ``shift $d,$s``: the paper says "shift left/right" with functionality
  ``$d = $d << $s``; here ``$s`` is taken as signed -- positive shifts
  left, negative shifts right (logical).  Magnitudes >= 16 yield 0.
- ``slt`` compares signed 16-bit values.
- Branch truth is "register non-zero"; offsets are relative to the
  *following* instruction.
- ``mul`` keeps the low 16 bits of the product.
- ``meas``/``next``/``pop`` index channels modulo the AoB length.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from repro.bf16 import (
    bf16_add,
    bf16_from_int,
    bf16_mul,
    bf16_neg,
    bf16_recip,
    bf16_to_int,
)
from repro.errors import SimulatorError
from repro.faults.traps import TrapCause
from repro.isa.instructions import INSTRUCTIONS, Instr
from repro.obs import flight as _flight
from repro.obs import runtime as _obs

#: Mnemonic of the synthetic :class:`Effects` a simulator returns when an
#: instruction trapped under the halt/vector policy instead of executing.
TRAP_MNEMONIC = "trap"

#: bf16 exponent field: all-ones means NaN or infinity (overflow).
_BF16_EXP_MASK = 0x7F80


@dataclass
class Effects:
    """What one executed instruction did (consumed by timing models)."""

    mnemonic: str
    next_pc: int
    taken_branch: bool = False
    reads_gpr: frozenset[int] = frozenset()
    writes_gpr: frozenset[int] = frozenset()
    reads_qreg: frozenset[int] = frozenset()
    writes_qreg: frozenset[int] = frozenset()
    is_load: bool = False
    is_store: bool = False
    store_addr: int | None = None


@dataclass(frozen=True)
class StaticEffects:
    """Register use derivable without executing (for hazard detection)."""

    reads_gpr: frozenset[int]
    writes_gpr: frozenset[int]
    reads_qreg: frozenset[int]
    writes_qreg: frozenset[int]
    is_branch: bool
    is_jump: bool
    is_load: bool
    is_store: bool


def static_effects(instr: Instr) -> StaticEffects:
    """Registers read/written by ``instr``, from the spec alone."""
    m = instr.mnemonic
    ops = instr.ops
    rg: set[int] = set()
    wg: set[int] = set()
    rq: set[int] = set()
    wq: set[int] = set()
    is_branch = m in ("brf", "brt")
    is_jump = m == "jumpr"
    is_load = m == "load"
    is_store = m == "store"
    if m in ("add", "addf", "and", "mul", "mulf", "or", "shift", "slt", "xor"):
        rg = {ops[0], ops[1]}
        wg = {ops[0]}
    elif m == "copy":
        rg = {ops[1]}
        wg = {ops[0]}
    elif m == "load":
        rg = {ops[1]}
        wg = {ops[0]}
    elif m == "store":
        rg = {ops[0], ops[1]}
    elif m in ("float", "int", "neg", "negf", "not", "recip"):
        rg = {ops[0]}
        wg = {ops[0]}
    elif m == "lex":
        wg = {ops[0]}
    elif m == "lhi":
        rg = {ops[0]}  # lhi preserves the low byte: read-modify-write
        wg = {ops[0]}
    elif m in ("brf", "brt"):
        rg = {ops[0]}
    elif m == "jumpr":
        rg = {ops[0]}
    elif m == "sys":
        pass
    elif m in ("qand", "qor", "qxor"):
        rq = {ops[1], ops[2]}
        wq = {ops[0]}
    elif m == "qccnot":
        rq = {ops[0], ops[1], ops[2]}
        wq = {ops[0]}
    elif m == "qcnot":
        rq = {ops[0], ops[1]}
        wq = {ops[0]}
    elif m == "qcswap":
        rq = {ops[0], ops[1], ops[2]}
        wq = {ops[0], ops[1]}
    elif m == "qswap":
        rq = {ops[0], ops[1]}
        wq = {ops[0], ops[1]}
    elif m == "qnot":
        rq = {ops[0]}
        wq = {ops[0]}
    elif m in ("qzero", "qone"):
        wq = {ops[0]}
    elif m == "qhad":
        wq = {ops[0]}
    elif m in ("qmeas", "qnext", "qpop"):
        rg = {ops[0]}
        wg = {ops[0]}
        rq = {ops[1]}
    else:  # pragma: no cover
        raise SimulatorError(f"no effects model for {m!r}")
    return StaticEffects(
        frozenset(rg), frozenset(wg), frozenset(rq), frozenset(wq),
        is_branch, is_jump, is_load, is_store,
    )


def execute(machine, instr: Instr, syscalls=None) -> Effects:
    """Execute ``instr`` on ``machine`` (PC already points at it).

    Advances the PC (including branches/jumps), mutates registers, memory
    and the Qat register file, and returns the dynamic :class:`Effects`.
    """
    m = instr.mnemonic
    ops = instr.ops
    spec = INSTRUCTIONS.get(m)
    if spec is None:
        machine.trap(
            TrapCause.ILLEGAL_OPCODE,
            detail=f"no executor for {m!r}",
            instruction=m,
        )
    pc_next = (machine.pc + spec.words) & 0xFFFF
    try:
        stat = static_effects(instr)
    except SimulatorError as exc:  # pragma: no cover - table gap guard
        machine.trap(
            TrapCause.ILLEGAL_OPCODE,
            detail=str(exc),
            instruction=m,
            resume_pc=pc_next,
        )
    eff = Effects(
        mnemonic=m,
        next_pc=pc_next,
        reads_gpr=stat.reads_gpr,
        writes_gpr=stat.writes_gpr,
        reads_qreg=stat.reads_qreg,
        writes_qreg=stat.writes_qreg,
        is_load=stat.is_load,
        is_store=stat.is_store,
    )
    read = machine.read_reg
    read_s = machine.read_reg_signed
    write = machine.write_reg

    # Flight recorder: capture PC and raw word(s) *before* execution so a
    # store over its own encoding still records what actually ran.  The
    # retire event is appended at the tail, after the instruction
    # completes without trapping, mirroring the fast loops.
    _fr = _flight.RECORDER
    if _fr.enabled:
        _fr_pc = machine.pc
        _w0 = int(machine.mem[_fr_pc])
        if spec.words == 2:
            _fr_raw = (_w0, int(machine.mem[(_fr_pc + 1) & 0xFFFF]))
        else:
            _fr_raw = (_w0,)

    # Telemetry: time Qat coprocessor ops, count syscalls.  One branch
    # per instruction when observability is off (the default).
    _t0 = 0
    if _obs.active:
        if m[0] == "q":
            _t0 = _time.perf_counter_ns()
        elif m == "sys":
            _obs.current().metrics.counter("cpu.syscalls").inc()

    if m == "add":
        write(ops[0], read(ops[0]) + read(ops[1]))
    elif m == "addf":
        result = bf16_add(read(ops[0]), read(ops[1]))
        if machine.trap_policy.trap_bf16 and (result & _BF16_EXP_MASK) == _BF16_EXP_MASK:
            machine.trap(
                TrapCause.BF16_FAULT,
                detail=f"addf produced non-finite bf16 {result:#06x}",
                instruction=instr.render(),
                resume_pc=pc_next,
            )
        write(ops[0], result)
    elif m == "and":
        write(ops[0], read(ops[0]) & read(ops[1]))
    elif m == "brf":
        if read(ops[0]) == 0:
            pc_next = (pc_next + ops[1]) & 0xFFFF
            eff.taken_branch = True
    elif m == "brt":
        if read(ops[0]) != 0:
            pc_next = (pc_next + ops[1]) & 0xFFFF
            eff.taken_branch = True
    elif m == "copy":
        write(ops[0], read(ops[1]))
    elif m == "float":
        write(ops[0], bf16_from_int(read(ops[0])))
    elif m == "int":
        write(ops[0], bf16_to_int(read(ops[0])))
    elif m == "jumpr":
        pc_next = read(ops[0])
        eff.taken_branch = True
    elif m == "lex":
        write(ops[0], ops[1] & 0xFF if (ops[1] & 0x80) == 0 else (ops[1] & 0xFF) | 0xFF00)
    elif m == "lhi":
        write(ops[0], (read(ops[0]) & 0x00FF) | ((ops[1] & 0xFF) << 8))
    elif m == "load":
        addr = read(ops[1])
        fence = machine.trap_policy.mem_fence
        if fence is not None and addr >= fence:
            machine.trap(
                TrapCause.MEM_FAULT,
                detail=f"load from {addr:#06x} beyond fence {fence:#06x}",
                instruction=instr.render(),
                resume_pc=pc_next,
            )
        write(ops[0], machine.read_mem(addr))
    elif m == "mul":
        write(ops[0], read(ops[0]) * read(ops[1]))
    elif m == "mulf":
        result = bf16_mul(read(ops[0]), read(ops[1]))
        if machine.trap_policy.trap_bf16 and (result & _BF16_EXP_MASK) == _BF16_EXP_MASK:
            machine.trap(
                TrapCause.BF16_FAULT,
                detail=f"mulf produced non-finite bf16 {result:#06x}",
                instruction=instr.render(),
                resume_pc=pc_next,
            )
        write(ops[0], result)
    elif m == "neg":
        write(ops[0], -read(ops[0]))
    elif m == "negf":
        write(ops[0], bf16_neg(read(ops[0])))
    elif m == "not":
        write(ops[0], ~read(ops[0]))
    elif m == "or":
        write(ops[0], read(ops[0]) | read(ops[1]))
    elif m == "recip":
        result = bf16_recip(read(ops[0]))
        if machine.trap_policy.trap_bf16 and (result & _BF16_EXP_MASK) == _BF16_EXP_MASK:
            machine.trap(
                TrapCause.BF16_FAULT,
                detail=f"recip produced non-finite bf16 {result:#06x}",
                instruction=instr.render(),
                resume_pc=pc_next,
            )
        write(ops[0], result)
    elif m == "shift":
        amount = read_s(ops[1])
        value = read(ops[0])
        if amount >= 16 or amount <= -16:
            result = 0
        elif amount >= 0:
            result = value << amount
        else:
            result = value >> (-amount)
        write(ops[0], result)
    elif m == "slt":
        write(ops[0], 1 if read_s(ops[0]) < read_s(ops[1]) else 0)
    elif m == "store":
        addr = read(ops[1])
        fence = machine.trap_policy.mem_fence
        if fence is not None and addr >= fence:
            machine.trap(
                TrapCause.MEM_FAULT,
                detail=f"store to {addr:#06x} beyond fence {fence:#06x}",
                instruction=instr.render(),
                resume_pc=pc_next,
            )
        machine.write_mem(addr, read(ops[0]))
        eff.store_addr = addr
    elif m == "sys":
        if syscalls is not None:
            syscalls.handle(machine)
        else:
            machine.halted = True
    elif m == "xor":
        write(ops[0], read(ops[0]) ^ read(ops[1]))
    # ---- Qat coprocessor (Table 3, via the pluggable substrate) -------------
    elif m in ("qand", "qor", "qxor"):
        machine.qat.binary(m[1:], ops[0], ops[1], ops[2])
    elif m == "qccnot":
        machine.qat.ccnot(ops[0], ops[1], ops[2])
    elif m == "qcnot":
        machine.qat.cnot(ops[0], ops[1])
    elif m == "qcswap":
        machine.qat.cswap(ops[0], ops[1], ops[2])
    elif m == "qswap":
        machine.qat.swap(ops[0], ops[1])
    elif m == "qnot":
        machine.qat.invert(ops[0])
    elif m == "qzero":
        machine.qat.zero(ops[0])
    elif m == "qone":
        machine.qat.one(ops[0])
    elif m == "qhad":
        if machine.trap_policy.strict_qat and ops[1] >= machine.ways:
            machine.trap(
                TrapCause.QAT_FAULT,
                detail=f"had k={ops[1]} exceeds {machine.ways}-way entanglement",
                instruction=instr.render(),
                resume_pc=pc_next,
            )
        machine.qat.had(ops[0], ops[1])
    elif m in ("qmeas", "qnext", "qpop"):
        channel = read(ops[0])
        if machine.trap_policy.strict_qat and channel >= machine.nbits:
            machine.trap(
                TrapCause.QAT_FAULT,
                detail=f"channel {channel} out of range for "
                       f"{machine.nbits}-channel AoB",
                instruction=instr.render(),
                resume_pc=pc_next,
            )
        if m == "qmeas":
            write(ops[0], machine.qat.meas(ops[1], channel))
        elif m == "qnext":
            # Like the Figure 8 Verilog, a start channel past the AoB top
            # shifts everything out and returns 0 (no masking of $d).
            write(ops[0], machine.qat.next(ops[1], channel))
        else:
            # A pop count of 2^16 or more cannot be represented in $d;
            # saturate rather than wrap (a full 16-way-plus register must
            # not read back as empty).
            value = machine.qat.pop_after(ops[1], channel)
            if value > 0xFFFF:
                if machine.trap_policy.strict_qat:
                    machine.trap(
                        TrapCause.QAT_FAULT,
                        detail=f"pop after channel {channel} counted {value} "
                               f"ones, exceeding the 16-bit destination",
                        instruction=instr.render(),
                        resume_pc=pc_next,
                    )
                value = 0xFFFF
            write(ops[0], value)
    else:  # pragma: no cover
        machine.trap(
            TrapCause.ILLEGAL_OPCODE,
            detail=f"no executor for {m!r}",
            instruction=instr.render(),
            resume_pc=pc_next,
        )

    eff.next_pc = pc_next
    machine.pc = pc_next
    machine.instret += 1
    if _fr.enabled:
        _fr.note_retire(_fr_pc, _fr_raw)
    if _t0 and _obs.active:
        _obs.current().qat_executed(m, _t0)
    return eff


# ---------------------------------------------------------------------------
# Fast-path handler dispatch table
# ---------------------------------------------------------------------------
#
# One handler per mnemonic, selected once at predecode time
# (:mod:`repro.cpu.fastpath`) instead of walking the mnemonic chain above
# on every step.  Handlers are only ever called with telemetry inactive
# and no trace attached, so they carry none of the observability hooks;
# everything architectural -- register/memory/Qat semantics, trap causes,
# trap detail strings, PC arithmetic -- must match :func:`execute`
# exactly.  The randomized differential suite (tests/test_fastpath.py)
# asserts that equivalence on all three simulators and both Qat
# substrates.
#
# Signature: ``handler(machine, instr, ops, pc_next, syscalls) -> next_pc``.
# The caller (the fast run loop) owns ``machine.pc = next_pc`` and the
# ``instret`` increment, mirroring the tail of :func:`execute`.

def _fast_add(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = (int(regs[d]) + int(regs[ops[1]])) & 0xFFFF
    return pc_next


def _fast_addf(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    result = bf16_add(int(regs[d]), int(regs[ops[1]]))
    if machine.trap_policy.trap_bf16 and (result & _BF16_EXP_MASK) == _BF16_EXP_MASK:
        machine.trap(
            TrapCause.BF16_FAULT,
            detail=f"addf produced non-finite bf16 {result:#06x}",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    regs[d] = result & 0xFFFF
    return pc_next


def _fast_and(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = (int(regs[d]) & int(regs[ops[1]])) & 0xFFFF
    return pc_next


def _fast_brf(machine, instr, ops, pc_next, syscalls):
    if int(machine.regs[ops[0]]) == 0:
        return (pc_next + ops[1]) & 0xFFFF
    return pc_next


def _fast_brt(machine, instr, ops, pc_next, syscalls):
    if int(machine.regs[ops[0]]) != 0:
        return (pc_next + ops[1]) & 0xFFFF
    return pc_next


def _fast_copy(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    regs[ops[0]] = regs[ops[1]]
    return pc_next


def _fast_float(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = bf16_from_int(int(regs[d])) & 0xFFFF
    return pc_next


def _fast_int(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = bf16_to_int(int(regs[d])) & 0xFFFF
    return pc_next


def _fast_jumpr(machine, instr, ops, pc_next, syscalls):
    return int(machine.regs[ops[0]])


def _fast_lex(machine, instr, ops, pc_next, syscalls):
    imm = ops[1]
    machine.regs[ops[0]] = imm & 0xFF if (imm & 0x80) == 0 else (imm & 0xFF) | 0xFF00
    return pc_next


def _fast_lhi(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = (int(regs[d]) & 0x00FF) | ((ops[1] & 0xFF) << 8)
    return pc_next


def _fast_load(machine, instr, ops, pc_next, syscalls):
    addr = int(machine.regs[ops[1]])
    fence = machine.trap_policy.mem_fence
    if fence is not None and addr >= fence:
        machine.trap(
            TrapCause.MEM_FAULT,
            detail=f"load from {addr:#06x} beyond fence {fence:#06x}",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    machine.regs[ops[0]] = machine.mem[addr & 0xFFFF]
    return pc_next


def _fast_mul(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = (int(regs[d]) * int(regs[ops[1]])) & 0xFFFF
    return pc_next


def _fast_mulf(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    result = bf16_mul(int(regs[d]), int(regs[ops[1]]))
    if machine.trap_policy.trap_bf16 and (result & _BF16_EXP_MASK) == _BF16_EXP_MASK:
        machine.trap(
            TrapCause.BF16_FAULT,
            detail=f"mulf produced non-finite bf16 {result:#06x}",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    regs[d] = result & 0xFFFF
    return pc_next


def _fast_neg(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = (-int(regs[d])) & 0xFFFF
    return pc_next


def _fast_negf(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = bf16_neg(int(regs[d])) & 0xFFFF
    return pc_next


def _fast_not(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = (~int(regs[d])) & 0xFFFF
    return pc_next


def _fast_or(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = (int(regs[d]) | int(regs[ops[1]])) & 0xFFFF
    return pc_next


def _fast_recip(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    result = bf16_recip(int(regs[d]))
    if machine.trap_policy.trap_bf16 and (result & _BF16_EXP_MASK) == _BF16_EXP_MASK:
        machine.trap(
            TrapCause.BF16_FAULT,
            detail=f"recip produced non-finite bf16 {result:#06x}",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    regs[d] = result & 0xFFFF
    return pc_next


def _fast_shift(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    amount = int(regs[ops[1]])
    if amount >= 0x8000:
        amount -= 0x10000
    value = int(regs[d])
    if amount >= 16 or amount <= -16:
        result = 0
    elif amount >= 0:
        result = value << amount
    else:
        result = value >> (-amount)
    regs[d] = result & 0xFFFF
    return pc_next


def _fast_slt(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    a = int(regs[d])
    b = int(regs[ops[1]])
    if a >= 0x8000:
        a -= 0x10000
    if b >= 0x8000:
        b -= 0x10000
    regs[d] = 1 if a < b else 0
    return pc_next


def _fast_store(machine, instr, ops, pc_next, syscalls):
    addr = int(machine.regs[ops[1]])
    fence = machine.trap_policy.mem_fence
    if fence is not None and addr >= fence:
        machine.trap(
            TrapCause.MEM_FAULT,
            detail=f"store to {addr:#06x} beyond fence {fence:#06x}",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    machine.write_mem(addr, int(machine.regs[ops[0]]))
    return pc_next


def _fast_sys(machine, instr, ops, pc_next, syscalls):
    if syscalls is not None:
        syscalls.handle(machine)
    else:
        machine.halted = True
    return pc_next


def _fast_xor(machine, instr, ops, pc_next, syscalls):
    regs = machine.regs
    d = ops[0]
    regs[d] = (int(regs[d]) ^ int(regs[ops[1]])) & 0xFFFF
    return pc_next


def _fast_qand(machine, instr, ops, pc_next, syscalls):
    machine.qat.binary("and", ops[0], ops[1], ops[2])
    return pc_next


def _fast_qor(machine, instr, ops, pc_next, syscalls):
    machine.qat.binary("or", ops[0], ops[1], ops[2])
    return pc_next


def _fast_qxor(machine, instr, ops, pc_next, syscalls):
    machine.qat.binary("xor", ops[0], ops[1], ops[2])
    return pc_next


def _fast_qccnot(machine, instr, ops, pc_next, syscalls):
    machine.qat.ccnot(ops[0], ops[1], ops[2])
    return pc_next


def _fast_qcnot(machine, instr, ops, pc_next, syscalls):
    machine.qat.cnot(ops[0], ops[1])
    return pc_next


def _fast_qcswap(machine, instr, ops, pc_next, syscalls):
    machine.qat.cswap(ops[0], ops[1], ops[2])
    return pc_next


def _fast_qswap(machine, instr, ops, pc_next, syscalls):
    machine.qat.swap(ops[0], ops[1])
    return pc_next


def _fast_qnot(machine, instr, ops, pc_next, syscalls):
    machine.qat.invert(ops[0])
    return pc_next


def _fast_qzero(machine, instr, ops, pc_next, syscalls):
    machine.qat.zero(ops[0])
    return pc_next


def _fast_qone(machine, instr, ops, pc_next, syscalls):
    machine.qat.one(ops[0])
    return pc_next


def _fast_qhad(machine, instr, ops, pc_next, syscalls):
    if machine.trap_policy.strict_qat and ops[1] >= machine.ways:
        machine.trap(
            TrapCause.QAT_FAULT,
            detail=f"had k={ops[1]} exceeds {machine.ways}-way entanglement",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    machine.qat.had(ops[0], ops[1])
    return pc_next


def _fast_qmeas(machine, instr, ops, pc_next, syscalls):
    d = ops[0]
    channel = int(machine.regs[d])
    if machine.trap_policy.strict_qat and channel >= machine.nbits:
        machine.trap(
            TrapCause.QAT_FAULT,
            detail=f"channel {channel} out of range for "
                   f"{machine.nbits}-channel AoB",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    machine.regs[d] = machine.qat.meas(ops[1], channel) & 0xFFFF
    return pc_next


def _fast_qnext(machine, instr, ops, pc_next, syscalls):
    d = ops[0]
    channel = int(machine.regs[d])
    if machine.trap_policy.strict_qat and channel >= machine.nbits:
        machine.trap(
            TrapCause.QAT_FAULT,
            detail=f"channel {channel} out of range for "
                   f"{machine.nbits}-channel AoB",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    machine.regs[d] = machine.qat.next(ops[1], channel) & 0xFFFF
    return pc_next


def _fast_qpop(machine, instr, ops, pc_next, syscalls):
    d = ops[0]
    channel = int(machine.regs[d])
    if machine.trap_policy.strict_qat and channel >= machine.nbits:
        machine.trap(
            TrapCause.QAT_FAULT,
            detail=f"channel {channel} out of range for "
                   f"{machine.nbits}-channel AoB",
            instruction=instr.render(),
            resume_pc=pc_next,
        )
    value = machine.qat.pop_after(ops[1], channel)
    if value > 0xFFFF:
        if machine.trap_policy.strict_qat:
            machine.trap(
                TrapCause.QAT_FAULT,
                detail=f"pop after channel {channel} counted {value} "
                       f"ones, exceeding the 16-bit destination",
                instruction=instr.render(),
                resume_pc=pc_next,
            )
        value = 0xFFFF
    machine.regs[d] = value
    return pc_next


#: mnemonic -> fast handler; covers every entry of :data:`INSTRUCTIONS`.
FAST_HANDLERS = {
    "add": _fast_add,
    "addf": _fast_addf,
    "and": _fast_and,
    "brf": _fast_brf,
    "brt": _fast_brt,
    "copy": _fast_copy,
    "float": _fast_float,
    "int": _fast_int,
    "jumpr": _fast_jumpr,
    "lex": _fast_lex,
    "lhi": _fast_lhi,
    "load": _fast_load,
    "mul": _fast_mul,
    "mulf": _fast_mulf,
    "neg": _fast_neg,
    "negf": _fast_negf,
    "not": _fast_not,
    "or": _fast_or,
    "recip": _fast_recip,
    "shift": _fast_shift,
    "slt": _fast_slt,
    "store": _fast_store,
    "sys": _fast_sys,
    "xor": _fast_xor,
    "qand": _fast_qand,
    "qccnot": _fast_qccnot,
    "qcnot": _fast_qcnot,
    "qcswap": _fast_qcswap,
    "qhad": _fast_qhad,
    "qmeas": _fast_qmeas,
    "qnext": _fast_qnext,
    "qnot": _fast_qnot,
    "qone": _fast_qone,
    "qor": _fast_qor,
    "qpop": _fast_qpop,
    "qswap": _fast_qswap,
    "qxor": _fast_qxor,
    "qzero": _fast_qzero,
}

assert set(FAST_HANDLERS) == set(INSTRUCTIONS), "fast dispatch table out of sync"


# ---------------------------------------------------------------------------
# Batch-execution metadata
# ---------------------------------------------------------------------------
#
# The batched simulator (:mod:`repro.cpu.batch`) groups machines by the
# raw instruction word they are about to execute and dispatches one
# handler call per group.  This table declares, per mnemonic, how that
# handler runs across the lane axis:
#
# - ``"vector"``: one NumPy expression over every lane in the group
#   (ALU/branch/memory traffic, and Qat gates on the dense substrate);
# - ``"lanewise"``: a per-lane scalar loop inside the batch handler --
#   table-driven bf16 conversions, ``sys`` side effects (output lists,
#   halt), and the AoB ordinal probes (``next``/``pop``) whose results
#   are data-dependent scans.
#
# The split is advisory metadata for tooling and docs; correctness never
# depends on it (a "vector" mnemonic may still fall back to a scalar
# loop, e.g. every Qat op on the RE-compressed substrate).

BATCH_VECTOR = "vector"
BATCH_LANEWISE = "lanewise"

#: mnemonic -> :data:`BATCH_VECTOR` | :data:`BATCH_LANEWISE`.
BATCH_EXEC = {
    "add": BATCH_VECTOR,
    "addf": BATCH_VECTOR,
    "and": BATCH_VECTOR,
    "brf": BATCH_VECTOR,
    "brt": BATCH_VECTOR,
    "copy": BATCH_VECTOR,
    "float": BATCH_LANEWISE,
    "int": BATCH_LANEWISE,
    "jumpr": BATCH_VECTOR,
    "lex": BATCH_VECTOR,
    "lhi": BATCH_VECTOR,
    "load": BATCH_VECTOR,
    "mul": BATCH_VECTOR,
    "mulf": BATCH_VECTOR,
    "neg": BATCH_VECTOR,
    "negf": BATCH_VECTOR,
    "not": BATCH_VECTOR,
    "or": BATCH_VECTOR,
    "recip": BATCH_LANEWISE,
    "shift": BATCH_VECTOR,
    "slt": BATCH_VECTOR,
    "store": BATCH_VECTOR,
    "sys": BATCH_LANEWISE,
    "xor": BATCH_VECTOR,
    "qand": BATCH_VECTOR,
    "qccnot": BATCH_VECTOR,
    "qcnot": BATCH_VECTOR,
    "qcswap": BATCH_VECTOR,
    "qhad": BATCH_VECTOR,
    "qmeas": BATCH_VECTOR,
    "qnext": BATCH_LANEWISE,
    "qnot": BATCH_VECTOR,
    "qone": BATCH_VECTOR,
    "qor": BATCH_VECTOR,
    "qpop": BATCH_LANEWISE,
    "qswap": BATCH_VECTOR,
    "qxor": BATCH_VECTOR,
    "qzero": BATCH_VECTOR,
}

assert set(BATCH_EXEC) == set(INSTRUCTIONS), "batch metadata out of sync"
