"""CPU simulators for the Tangled/Qat processor.

Three models of increasing timing fidelity, all sharing one architectural
state (:class:`~repro.cpu.state.MachineState`) and one instruction
executor (:mod:`repro.cpu.exec_core`), mirroring the course's project
sequence (multi-cycle design, then pipelined, then pipelined with Qat):

- :class:`~repro.cpu.functional.FunctionalSimulator` -- one instruction
  per step, no timing; the reference for architectural correctness
  (paper Figure 6's simplified single-cycle design).
- :class:`~repro.cpu.multicycle.MultiCycleSimulator` -- per-class cycle
  costs, the students' first implementation project.
- :class:`~repro.cpu.pipeline.PipelinedSimulator` -- a cycle-stepped
  4- or 5-stage pipeline with RAW interlocks, optional forwarding,
  branch flushes, and the two-word Qat fetch penalty the paper says
  generated "the most common student questions".

A fourth, orthogonal strategy batches *machines* rather than refining
timing: :class:`~repro.cpu.batch.BatchFunctionalSimulator` runs N
functional machines in
lockstep over NumPy arrays with divergence-grouped dispatch -- the
engine behind ``tangled faults --batch N``.

All three take a ``trap_policy`` (:class:`~repro.faults.TrapPolicy`)
controlling whether architectural traps raise, halt, or vector to a
handler; the trap model itself lives in :mod:`repro.faults` and is
re-exported here for convenience.  They also take a ``qat_backend``
(``"dense"`` or ``"re"``) selecting the Qat register substrate -- see
:mod:`repro.cpu.qat_backend`.
"""

from repro.cpu.batch import BatchFunctionalSimulator, BatchMachines
from repro.cpu.functional import FunctionalSimulator
from repro.cpu.multicycle import CycleCosts, MultiCycleSimulator
from repro.cpu.pipeline import PipelineConfig, PipelinedSimulator, PipelineStats
from repro.cpu.qat_backend import (
    BACKENDS,
    MAX_RE_WAYS,
    DenseQatBackend,
    QatBackend,
    REQatBackend,
    make_qat_backend,
)
from repro.cpu.state import MachineState
from repro.cpu.syscalls import SyscallHandler
from repro.faults.traps import TrapAction, TrapCause, TrapPolicy, TrapRecord

__all__ = [
    "BACKENDS",
    "BatchFunctionalSimulator",
    "BatchMachines",
    "CycleCosts",
    "DenseQatBackend",
    "FunctionalSimulator",
    "MAX_RE_WAYS",
    "MachineState",
    "MultiCycleSimulator",
    "PipelineConfig",
    "PipelineStats",
    "PipelinedSimulator",
    "QatBackend",
    "REQatBackend",
    "SyscallHandler",
    "TrapAction",
    "TrapCause",
    "TrapPolicy",
    "TrapRecord",
    "make_qat_backend",
]
