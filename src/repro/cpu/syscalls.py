"""System-call handling for the ``sys`` instruction.

Table 1 specifies ``sys`` with no further detail; this reproduction's
convention (documented in DESIGN.md) is: the service number is taken from
``$rv`` (register 12) --

====== ==========================================
``0``  halt the machine
``1``  print the signed integer in ``$0``
``2``  print the character whose code is in ``$0``
``3``  read the low 16 bits of the cycle counter into ``$0``
``4``  print the 0-terminated string at address ``$0``
====== ==========================================

An unknown service number is an architectural trap
(:data:`~repro.faults.traps.TrapCause.UNKNOWN_SYSCALL`): under the
default policy it raises a typed :class:`~repro.errors.SyscallError`
carrying the service number and the faulting PC; a ``halt`` policy
restores the old silent-stop behaviour and ``vector`` lets a handler
program emulate the service.  Output is accumulated in
``machine.output``.
"""

from __future__ import annotations

from repro.faults.traps import TrapCause
from repro.isa.registers import RV

HALT = 0
PRINT_INT = 1
PRINT_CHAR = 2
READ_CYCLES = 3
PRINT_STRING = 4


class SyscallHandler:
    """Default ``sys`` services; subclass or register to extend."""

    def __init__(self, cycle_source=None):
        self._cycle_source = cycle_source
        self._custom: dict[int, object] = {}

    def register(self, service: int, handler) -> None:
        """Install ``handler(machine)`` for a service number."""
        self._custom[service] = handler

    def handle(self, machine) -> None:
        """Dispatch one ``sys`` instruction on ``machine``."""
        service = machine.read_reg(RV)
        # Flight recorder: machine.pc still addresses the ``sys`` word
        # here in both the slow path and the fast handlers.
        from repro.obs import flight as _flight

        if _flight.RECORDER.enabled:
            _flight.RECORDER.note_syscall(machine.pc, service)
        custom = self._custom.get(service)
        if custom is not None:
            custom(machine)
            return
        if service == HALT:
            machine.halted = True
        elif service == PRINT_INT:
            machine.output.append(str(machine.read_reg_signed(0)))
        elif service == PRINT_CHAR:
            machine.output.append(chr(machine.read_reg(0) & 0xFF))
        elif service == READ_CYCLES:
            # A machine without a clock reads 0 rather than faulting: the
            # service exists, the counter simply is not implemented there.
            source = self._cycle_source
            machine.write_reg(0, source() & 0xFFFF if source is not None else 0)
        elif service == PRINT_STRING:
            addr = machine.read_reg(0)
            chars = []
            for _ in range(4096):  # runaway guard
                code = machine.read_mem(addr)
                if code == 0:
                    break
                chars.append(chr(code & 0xFF))
                addr = (addr + 1) & 0xFFFF
            machine.output.append("".join(chars))
        else:
            machine.trap(
                TrapCause.UNKNOWN_SYSCALL,
                detail=f"unknown sys service {service}",
                instruction="sys",
                service=service,
            )
