"""System-call handling for the ``sys`` instruction.

Table 1 specifies ``sys`` with no further detail; this reproduction's
convention (documented in DESIGN.md) is: the service number is taken from
``$rv`` (register 12) --

====== ==========================================
``0``  halt the machine
``1``  print the signed integer in ``$0``
``2``  print the character whose code is in ``$0``
``3``  read the low 16 bits of the cycle counter into ``$0``
``4``  print the 0-terminated string at address ``$0``
====== ==========================================

Unknown service numbers halt (the safe default for student code).  Output
is accumulated in ``machine.output``.
"""

from __future__ import annotations

from repro.isa.registers import RV

HALT = 0
PRINT_INT = 1
PRINT_CHAR = 2
READ_CYCLES = 3
PRINT_STRING = 4


class SyscallHandler:
    """Default ``sys`` services; subclass or register to extend."""

    def __init__(self, cycle_source=None):
        self._cycle_source = cycle_source
        self._custom: dict[int, object] = {}

    def register(self, service: int, handler) -> None:
        """Install ``handler(machine)`` for a service number."""
        self._custom[service] = handler

    def handle(self, machine) -> None:
        """Dispatch one ``sys`` instruction on ``machine``."""
        service = machine.read_reg(RV)
        custom = self._custom.get(service)
        if custom is not None:
            custom(machine)
            return
        if service == PRINT_INT:
            machine.output.append(str(machine.read_reg_signed(0)))
        elif service == PRINT_CHAR:
            machine.output.append(chr(machine.read_reg(0) & 0xFF))
        elif service == READ_CYCLES and self._cycle_source is not None:
            machine.write_reg(0, self._cycle_source() & 0xFFFF)
        elif service == PRINT_STRING:
            addr = machine.read_reg(0)
            chars = []
            for _ in range(4096):  # runaway guard
                code = machine.read_mem(addr)
                if code == 0:
                    break
                chars.append(chr(code & 0xFF))
                addr = (addr + 1) & 0xFFFF
            machine.output.append("".join(chars))
        else:
            machine.halted = True
