"""Multi-cycle timing model (the students' first implementation project).

Architecturally identical to the functional simulator, but charges a
configurable number of cycles per instruction class, the way a classic
multi-cycle (non-pipelined) implementation would: every instruction pays
fetch + decode + execute + writeback, memory operations and multiply pay
extra state cycles, and two-word Qat instructions pay an extra fetch.

The default costs are a plausible rendering of the course design (the
paper reports team scores, not cycle tables, for the multi-cycle project)
and are swappable for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aob.bitvector import QAT_WAYS
from repro.cpu import fastpath as _fastpath
from repro.cpu.functional import FunctionalSimulator
from repro.cpu.syscalls import SyscallHandler
from repro.errors import HaltedError, SimulatorError
from repro.faults.traps import TrapCause, TrapDelivered, TrapPolicy
from repro.isa.instructions import INSTRUCTIONS


@dataclass(frozen=True)
class CycleCosts:
    """Cycles charged per instruction category."""

    alu: int = 3  # fetch, decode/read, execute+writeback
    fpu: int = 3
    mul: int = 4  # extra execute state for the 16-bit multiplier
    mem: int = 4  # extra memory-access state
    branch: int = 3
    jump: int = 3
    sys: int = 3
    qat: int = 3
    qmeas: int = 3
    extra_fetch_word: int = 1  # each instruction word beyond the first

    def cycles_for(self, mnemonic: str) -> int:
        spec = INSTRUCTIONS.get(mnemonic)
        if spec is None:
            # Synthetic "trap" effects: charge the exception-entry cost.
            return self.sys
        base = getattr(self, spec.category)
        return base + (spec.words - 1) * self.extra_fetch_word

    def breakdown(self, mnemonic: str) -> list[tuple[str, int]]:
        """``[(profiler reason, cycles), ...]`` summing to :meth:`cycles_for`.

        The universal fetch/decode/execute+writeback states are ``issue``;
        extra memory-access states are ``memory``; extra execute states
        (the multiplier's) are ``structural``; each instruction word past
        the first is ``fetch``; a trap charges its entry cost as ``flush``.
        """
        spec = INSTRUCTIONS.get(mnemonic)
        if spec is None:
            return [("flush", self.sys)]
        base = getattr(self, spec.category)
        issue = min(base, self.alu)
        parts = [("issue", issue)]
        if base > issue:
            parts.append(
                ("memory" if spec.category == "mem" else "structural",
                 base - issue)
            )
        fetch = (spec.words - 1) * self.extra_fetch_word
        if fetch:
            parts.append(("fetch", fetch))
        return parts


class MultiCycleSimulator:
    """Functional execution plus a per-instruction cycle charge."""

    #: Fast-path override: ``None`` auto-selects (fast loop when no
    #: observer is attached), ``False``/``True`` force slow/fast.
    use_fastpath: bool | None = None

    def __init__(
        self,
        ways: int = QAT_WAYS,
        costs: CycleCosts | None = None,
        syscalls: SyscallHandler | None = None,
        trap_policy: TrapPolicy | None = None,
        qat_backend="dense",
    ):
        self.costs = costs or CycleCosts()
        self.cycles = 0
        self._inner = FunctionalSimulator(
            ways=ways, syscalls=syscalls, trap_policy=trap_policy,
            qat_backend=qat_backend,
        )
        self.machine.cycle_provider = lambda: self.cycles
        #: optional :class:`repro.obs.profile.Profiler`; every cycle
        #: charged by :meth:`step` is attributed to a PC and reason.
        self.profiler = None

    @property
    def machine(self):
        return self._inner.machine

    @property
    def checkpointer(self):
        return self._inner.checkpointer

    @checkpointer.setter
    def checkpointer(self, value) -> None:
        self._inner.checkpointer = value

    def load(self, program, origin: int | None = None) -> None:
        """Load an assembled program image."""
        self._inner.load(program, origin)
        self.cycles = 0

    def step(self) -> int:
        """Execute one instruction; returns the cycles it cost."""
        if self.machine.halted:
            raise HaltedError("machine is halted", pc=self.machine.pc,
                              cycle=self.cycles)
        prof = self.profiler
        pc = self.machine.pc
        if prof is not None:
            prof.current_pc = pc
        try:
            effects = self._inner.step()
        finally:
            if prof is not None:
                prof.current_pc = None
        cost = self.costs.cycles_for(effects.mnemonic)
        self.cycles += cost
        if prof is not None:
            instr = self._decoded_at(pc)
            for reason, cycles in self.costs.breakdown(effects.mnemonic):
                prof.attribute(pc, reason, cycles=cycles, instr=instr)
        return cost

    def _decoded_at(self, pc: int):
        """Best-effort re-decode at ``pc`` for profiler labels."""
        from repro.errors import EncodingError
        from repro.isa.encoding import decode

        try:
            instr, _ = decode(self.machine.mem, pc)
            return instr
        except EncodingError:
            return None

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run to halt; returns total cycles.

        A blown step budget fires a ``watchdog`` trap -- a
        :class:`~repro.errors.SimulatorError` under the default policy,
        a clean stop under ``halt``.

        With no observer attached (no profiler, trace, checkpointer, or
        telemetry) the stripped loop in :mod:`repro.cpu.fastpath` runs
        instead, with identical architectural and cycle accounting.
        """
        if _fastpath.eligible(self):
            return _fastpath.run_multicycle(self, max_steps)
        steps = 0
        checkpointer = self._inner.checkpointer
        while not self.machine.halted:
            if steps >= max_steps:
                try:
                    self.machine.trap(
                        TrapCause.WATCHDOG,
                        detail=f"exceeded {max_steps} steps without halting",
                    )
                except TrapDelivered:
                    break
            self.step()
            steps += 1
            if checkpointer is not None:
                checkpointer.tick(self.machine)
        return self.cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction so far."""
        if self.machine.instret == 0:
            return 0.0
        return self.cycles / self.machine.instret
