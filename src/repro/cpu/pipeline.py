"""Cycle-stepped pipelined Tangled/Qat simulator.

Models the student/author pipelines of paper section 3.1: a 4-stage
(IF, ID, EX, WB) or 5-stage (IF, ID, EX, MEM, WB) in-order pipeline that
"sustains completion of one instruction every clock cycle, provided there
were no pipeline interlocks encountered".  The timing artifacts the paper
calls out are all modeled:

- **variable-length fetch** -- two-word Qat instructions occupy IF for two
  cycles ("the most common student questions involved the fetch and
  decode handling of variable-length instructions");
- **data interlocks and forwarding** -- RAW hazards on both the Tangled
  and the Qat register files ("pipeline interlocks and forwarding are
  determined in part by coprocessor operations"); with forwarding the
  4-stage runs stall-free, without it consumers wait for writeback, and
  the 5-stage keeps the classic load-use bubble;
- **control hazards** -- branches/jumps resolve in EX and flush the two
  younger stages;
- **Qat register-file port structural hazard** -- section 2.5 notes
  ``swap``/``cswap`` need a second write port; configure
  ``second_qat_write_port=False`` to charge them an extra EX cycle
  instead (the section-5 ablation).

Architectural state changes happen exactly once, in program order, when
an instruction enters EX, so the pipelined model is state-equivalent to
the functional simulator by construction -- the test suite checks this on
random programs anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aob.bitvector import QAT_WAYS
from repro.cpu import fastpath as _fastpath
from repro.cpu.exec_core import execute, static_effects
from repro.cpu.state import MachineState
from repro.cpu.syscalls import SyscallHandler
from repro.errors import EncodingError, HaltedError
from repro.faults.traps import TrapCause, TrapDelivered, TrapPolicy
from repro.isa.encoding import decode
from repro.isa.instructions import Instr
from repro.obs import runtime as _obs
from repro.obs.spans import PID_PIPELINE


@dataclass
class PipelineConfig:
    """Structural parameters of the pipeline."""

    stages: int = 4  # 4 (IF ID EX WB) or 5 (IF ID EX MEM WB)
    forwarding: bool = True
    second_qat_write_port: bool = True

    def __post_init__(self) -> None:
        if self.stages not in (4, 5):
            raise ValueError("stages must be 4 or 5")


@dataclass
class PipelineStats:
    """Cycle accounting."""

    cycles: int = 0
    retired: int = 0
    stall_data: int = 0
    stall_load_use: int = 0
    stall_structural: int = 0
    fetch_extra: int = 0
    branch_flushes: int = 0
    squashed: int = 0
    traps: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction."""
        return self.cycles / self.retired if self.retired else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "retired": self.retired,
            "cpi": round(self.cpi, 4),
            "stall_data": self.stall_data,
            "stall_load_use": self.stall_load_use,
            "stall_structural": self.stall_structural,
            "fetch_extra": self.fetch_extra,
            "branch_flushes": self.branch_flushes,
            "squashed": self.squashed,
            "traps": self.traps,
        }


@dataclass
class _InFlight:
    """One instruction (or fetch error) moving through the pipe."""

    pc: int
    instr: Instr | None  # None = fetched garbage (wrong-path data)
    words: int = 1
    fetch_left: int = 0
    ex_left: int = 1
    executed: bool = False
    reads_gpr: frozenset = frozenset()
    writes_gpr: frozenset = frozenset()
    reads_qreg: frozenset = frozenset()
    writes_qreg: frozenset = frozenset()
    is_load: bool = False
    # (stage label, entry cycle) pairs, populated only while telemetry
    # tracing is active; None keeps the default path allocation-free.
    stage_entries: list | None = None


_IF, _ID, _EX = 0, 1, 2


class PipelinedSimulator:
    """In-order scalar pipeline over the shared machine state."""

    def __init__(
        self,
        ways: int = QAT_WAYS,
        config: PipelineConfig | None = None,
        syscalls: SyscallHandler | None = None,
        trap_policy: TrapPolicy | None = None,
        qat_backend="dense",
    ):
        self.config = config or PipelineConfig()
        self.machine = MachineState(ways, trap_policy=trap_policy,
                                    qat_backend=qat_backend)
        self.machine.cycle_provider = lambda: self.stats.cycles
        self.syscalls = syscalls if syscalls is not None else SyscallHandler(
            cycle_source=lambda: self.stats.cycles
        )
        self.stats = PipelineStats()
        #: optional :class:`repro.faults.checkpoint.AutoCheckpointer`
        self.checkpointer = None
        #: optional :class:`repro.obs.profile.Profiler`; receives exactly
        #: one per-PC attribution per cycle while attached.
        self.profiler = None
        self._flush_refill = 0   # bubble cycles still owed to a flush
        self._flush_pc = 0       # PC of the branch/trap that caused them
        self._flush_instr = None
        nstages = self.config.stages
        self._pipe: list[_InFlight | None] = [None] * nstages
        self._fetch_pc = 0
        self._fetch_current: _InFlight | None = None
        # Set by run() while an installed telemetry instance is tracing;
        # every per-cycle hook is guarded on this being non-None.
        self._obs = None
        self._stage_names = (
            ("IF", "ID", "EX", "WB") if nstages == 4
            else ("IF", "ID", "EX", "MEM", "WB")
        )

    # -- program loading ---------------------------------------------------------

    def load(self, program, origin: int | None = None) -> None:
        """Load an assembled :class:`~repro.asm.Program` (or raw words)."""
        words = getattr(program, "words", program)
        entry = getattr(program, "entry", 0) if origin is None else origin
        self.machine.load_program(words, origin=0 if origin is None else origin)
        self.machine.pc = entry
        self._fetch_pc = entry
        self._fetch_current = None
        self._pipe = [None] * self.config.stages
        self.stats = PipelineStats()
        self._flush_refill = 0
        self._flush_instr = None

    # -- fetch/decode ----------------------------------------------------------------

    def _start_fetch(self) -> _InFlight:
        pc = self._fetch_pc
        cache = _fastpath.cache_for(self.machine)
        if cache is not None:
            entry = cache.lookup(self.machine.mem, pc)
            if entry.error is not None:
                instr, words, stat = None, 1, None
            else:
                instr, words, stat = entry.instr, entry.words, entry.static
        else:
            try:
                instr, words = decode(self.machine.mem, pc)
                stat = static_effects(instr)
            except EncodingError:
                instr, words, stat = None, 1, None
        if instr is None:
            # Wrong-path fetch of data; becomes an error only if executed.
            self._fetch_pc = (pc + 1) & 0xFFFF
            rec = _InFlight(pc=pc, instr=None, words=1, fetch_left=1)
            if self._obs is not None:
                rec.stage_entries = [("IF", self.stats.cycles)]
            return rec
        self._fetch_pc = (pc + words) & 0xFFFF
        ex_left = 1
        if not self.config.second_qat_write_port and instr.mnemonic in (
            "qswap",
            "qcswap",
        ):
            # Two result writes through a single Qat write port.
            ex_left = 2
        rec = _InFlight(
            pc=pc,
            instr=instr,
            words=words,
            fetch_left=words,
            ex_left=ex_left,
            reads_gpr=stat.reads_gpr,
            writes_gpr=stat.writes_gpr,
            reads_qreg=stat.reads_qreg,
            writes_qreg=stat.writes_qreg,
            is_load=stat.is_load,
        )
        if self._obs is not None:
            rec.stage_entries = [("IF", self.stats.cycles)]
        return rec

    # -- hazards ------------------------------------------------------------------------

    def _id_stall_reason(self, rec: _InFlight) -> tuple[str, _InFlight] | None:
        """Why the instruction in ID cannot enter EX this cycle, if any.

        Returns ``(reason, producer)`` so the caller can both count the
        stall kind and blame the older instruction it waited on.
        """
        nstages = self.config.stages
        for s in range(_EX, nstages):
            prod = self._pipe[s]
            if prod is None or prod.instr is None:
                continue
            raw = (
                (rec.reads_gpr & prod.writes_gpr)
                or (rec.reads_qreg & prod.writes_qreg)
            )
            if not raw:
                continue
            if self.config.forwarding:
                # Results forward from the end of EX (loads: end of MEM in
                # the 5-stage) straight into the consumer's EX.
                if prod.is_load and s == _EX and nstages == 5:
                    return ("load_use", prod)
                continue
            # No forwarding: wait until the producer is in WB (split-phase
            # register file: write in the first half, read in the second).
            if s < nstages - 1:
                return ("data", prod)
        return None

    # -- the cycle ------------------------------------------------------------------------

    def cycle(self) -> None:
        """Advance the pipeline by one clock.

        Stage latches update from *old* values, so an instruction spends a
        full cycle in each stage: IF (per encoded word), ID, EX, [MEM,] WB.
        """
        if self.machine.halted:
            raise HaltedError("machine is halted", pc=self.machine.pc,
                              cycle=self.stats.cycles)
        pipe = self._pipe
        nstages = self.config.stages
        obs = self._obs
        prof = self.profiler
        self.stats.cycles += 1

        # WB: retire (instruction leaves the pipe).
        tail = pipe[nstages - 1]
        if tail is not None and tail.instr is not None:
            self.stats.retired += 1
            if obs is not None and tail.stage_entries is not None:
                self._emit_stage_spans(tail)

        if obs is not None and (self.stats.cycles & 63) == 0 and self.stats.retired:
            obs.tracer.sample(
                "pipeline.cpi",
                self.stats.cycles / self.stats.retired,
                ts_ns=self.stats.cycles * 1000,
                pid=PID_PIPELINE,
            )

        # EX occupancy: a multi-cycle EX holds everything upstream.
        ex_rec = pipe[_EX]
        ex_busy = ex_rec is not None and ex_rec.executed and ex_rec.ex_left > 1

        # Shift post-EX stages toward WB.
        for s in range(nstages - 1, _EX, -1):
            if s == _EX + 1 and ex_busy:
                pipe[s] = None  # EX keeps its instruction; a bubble moves on
            else:
                pipe[s] = pipe[s - 1]
                if (
                    obs is not None
                    and pipe[s] is not None
                    and pipe[s].stage_entries is not None
                ):
                    pipe[s].stage_entries.append(
                        (self._stage_names[s], self.stats.cycles)
                    )

        redirected = False
        if ex_busy:
            ex_rec.ex_left -= 1
            self.stats.stall_structural += 1
            pipe[_EX] = ex_rec
            if prof is not None:
                prof.attribute(ex_rec.pc, "structural", instr=ex_rec.instr)
        else:
            # ID -> EX (with interlock check).
            id_rec = pipe[_ID]
            stall = self._id_stall_reason(id_rec) if id_rec is not None else None
            if stall is not None:
                pipe[_EX] = None
                reason, producer = stall
                if reason == "data":
                    self.stats.stall_data += 1
                else:
                    self.stats.stall_load_use += 1
                if prof is not None:
                    prof.attribute(id_rec.pc, "raw" if reason == "data"
                                   else reason, instr=id_rec.instr,
                                   blame_pc=producer.pc)
            else:
                pipe[_EX] = id_rec
                pipe[_ID] = None
                if (
                    obs is not None
                    and id_rec is not None
                    and id_rec.stage_entries is not None
                ):
                    id_rec.stage_entries.append(("EX", self.stats.cycles))

            # Execute on EX entry (all architectural state changes happen
            # here, in program order).  A trap taken here is precise:
            # older instructions have retired, the trapped one is
            # squashed, and younger wrong-path work is flushed.
            entering = pipe[_EX]
            if entering is not None and not entering.executed:
                self.machine.pc = entering.pc
                entering.executed = True
                if prof is not None:
                    prof.attribute(entering.pc, "issue", instr=entering.instr)
                    prof.current_pc = entering.pc
                try:
                    if entering.instr is None:
                        self.machine.trap(
                            TrapCause.ILLEGAL_OPCODE,
                            detail=f"executed undecodable word at "
                                   f"{entering.pc:#06x}",
                        )
                    effects = execute(self.machine, entering.instr, self.syscalls)
                except TrapDelivered:
                    if prof is not None:
                        prof.current_pc = None
                    self.stats.traps += 1
                    pipe[_EX] = None  # trapped instruction never retires
                    if self.machine.halted:
                        return
                    # Vectored: flush the wrong-path stages and refetch
                    # from the handler address the trap installed.
                    if pipe[_ID] is not None:
                        self.stats.squashed += 1
                    pipe[_ID] = None
                    if self._fetch_current is not None:
                        self.stats.squashed += 1
                    self._fetch_current = None
                    self._fetch_pc = self.machine.pc
                    self._flush_refill = 2
                    self._flush_pc = entering.pc
                    self._flush_instr = entering.instr
                    return  # redirect lands next cycle (2-cycle penalty)
                if prof is not None:
                    prof.current_pc = None
                if self.machine.halted:
                    return
                if effects.taken_branch:
                    # Flush the two younger stages; the fetch redirect takes
                    # effect at the end of this cycle (2-cycle penalty).
                    self.stats.branch_flushes += 1
                    if pipe[_ID] is not None:
                        self.stats.squashed += 1
                    pipe[_ID] = None
                    if self._fetch_current is not None:
                        self.stats.squashed += 1
                    self._fetch_current = None
                    self._fetch_pc = effects.next_pc
                    self._flush_refill = 2
                    self._flush_pc = entering.pc
                    self._flush_instr = entering.instr
                    redirected = True
            elif prof is not None and stall is None:
                # Bubble: the backend had nothing to issue.  Charge the
                # flush that emptied the frontend while its penalty is
                # still being repaid, otherwise the fetch in progress
                # (two-word Qat fetch, pipeline fill after reset).
                if self._flush_refill > 0:
                    self._flush_refill -= 1
                    prof.attribute(self._flush_pc, "flush",
                                   instr=self._flush_instr)
                else:
                    fetching = self._fetch_current
                    prof.attribute(
                        fetching.pc if fetching is not None else self._fetch_pc,
                        "fetch",
                        instr=fetching.instr if fetching is not None else None,
                    )

        # IF -> ID: only a fetch that completed in an *earlier* cycle may
        # latch into a free ID slot (old-state latching).
        if (
            not redirected
            and pipe[_ID] is None
            and self._fetch_current is not None
            and self._fetch_current.fetch_left == 0
        ):
            pipe[_ID] = self._fetch_current
            self._fetch_current = None
            if obs is not None and pipe[_ID].stage_entries is not None:
                pipe[_ID].stage_entries.append(("ID", self.stats.cycles))

        # IF: progress the in-flight fetch / start the next one.
        if not redirected:
            self._fetch_progress()

    def _fetch_progress(self) -> None:
        """One cycle of instruction fetch work."""
        if self._fetch_current is None:
            self._fetch_current = self._start_fetch()
        rec = self._fetch_current
        if rec.fetch_left > 0:
            rec.fetch_left -= 1
            if rec.fetch_left > 0:
                self.stats.fetch_extra += 1

    # -- telemetry -----------------------------------------------------------------------------

    def _emit_stage_spans(self, rec: _InFlight) -> None:
        """Emit one cycle-domain span per stage the retired ``rec`` occupied."""
        tracer = self._obs.tracer
        entries = rec.stage_entries
        label = rec.instr.render() if rec.instr is not None else f"?@{rec.pc:04x}"
        now = self.stats.cycles
        for i, (stage, start) in enumerate(entries):
            end = entries[i + 1][1] if i + 1 < len(entries) else now
            tracer.complete(
                label,
                ts_ns=start * 1000,
                dur_ns=max(end - start, 1) * 1000,
                cat="stage",
                pid=PID_PIPELINE,
                tid=stage,
                pc=f"{rec.pc:#06x}",
            )

    # -- driving -------------------------------------------------------------------------------

    def run(self, max_cycles: int = 10_000_000) -> PipelineStats:
        """Run to ``sys``-halt; returns the cycle statistics.

        While a telemetry instance is installed (``repro.obs``), the run
        is wrapped in a ``pipeline.run`` span, per-stage occupancy is
        traced on the cycle timebase, and the final
        :class:`PipelineStats` are published into the metric registry.
        """
        telemetry = _obs.current() if _obs.active else None
        self._obs = telemetry if (telemetry is not None and telemetry.tracing) else None
        try:
            if telemetry is not None:
                with telemetry.span(
                    "pipeline.run",
                    cat="cpu",
                    stages=self.config.stages,
                    forwarding=self.config.forwarding,
                ):
                    self._run_to_halt(max_cycles)
            else:
                self._run_to_halt(max_cycles)
        finally:
            self._obs = None
        # Every executed instruction would drain to WB; count them all so
        # CPI is consistent with the functional instruction count.
        self.stats.retired = self.machine.instret
        if telemetry is not None:
            telemetry.publish_pipeline(self.stats)
        return self.stats

    def _run_to_halt(self, max_cycles: int) -> None:
        checkpointer = self.checkpointer
        while not self.machine.halted:
            if self.stats.cycles >= max_cycles:
                try:
                    self.machine.trap(
                        TrapCause.WATCHDOG,
                        detail=f"exceeded {max_cycles} cycles without halting",
                    )
                except TrapDelivered:
                    break
            self.cycle()
            if checkpointer is not None:
                checkpointer.tick(self.machine, cycle=self.stats.cycles)

    def step(self) -> None:
        """Advance one clock (alias of :meth:`cycle`).

        All three simulators expose ``step()`` with uniform
        :class:`~repro.errors.HaltedError` behaviour after halt.
        """
        self.cycle()

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction so far."""
        return self.stats.cpi
