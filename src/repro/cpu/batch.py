"""NumPy-batched functional simulator: thousands of machines per step.

Fault campaigns replay the same golden program under thousands of
seeded bit flips, and bench sweeps are embarrassingly batchable -- but
the per-machine simulators pay Python dispatch per instruction per
machine.  This module turns the machine axis into an *array* axis:

- **Array-of-machines state** (:class:`BatchMachines`): GPRs are an
  ``(N, 16)`` uint16 matrix, memory an ``(N, 65536)`` uint16 matrix
  (``np.zeros`` is calloc-backed, so untouched lanes cost no RSS),
  PC / instret / halted / parked are per-lane vectors, and the Qat
  register file gains a leading lane axis
  (:class:`BatchDenseQat` / :class:`BatchREQat`).
- **Divergence grouping** (:meth:`BatchFunctionalSimulator.run`): every
  step, active lanes are grouped by the raw instruction word(s) they
  are about to execute -- *not* by PC, so lanes at different addresses
  running the same word still share one dispatch, and self-modifying
  code or memory faults never consult a stale predecode (the fetch
  re-reads the words each step).  Each group resolves its
  :class:`~repro.cpu.fastpath.Predecoded` entry through the same
  process-wide intern table as the fast path and dispatches a single
  :data:`BATCH_HANDLERS` call with vectorized operands
  (:data:`repro.cpu.exec_core.BATCH_EXEC` declares which mnemonics run
  as one NumPy expression vs a per-lane loop).
- **Per-lane traps**: trap semantics mirror
  :func:`repro.faults.traps.deliver` exactly, lane by lane -- the
  :class:`~repro.faults.traps.TrapRecord` (cause, pc, instruction,
  cycle=None, instret, detail) is appended to the lane's ``traps``
  list, and under the default ``raise`` policy the lane is **parked**
  (removed from the active set) with ``errors[lane]`` holding the
  ``str()`` of the exact :class:`~repro.errors.TrapError` /
  :class:`~repro.errors.SyscallError` the serial simulator would have
  raised, context suffix included.  ``halt`` and ``vector`` policies
  update the lane architecturally and keep going.  A trapped
  instruction never retires, exactly like the serial paths.

Flight-recorder semantics (documented batch-mode downgrade): trap,
syscall, and fault-injection events are recorded per lane like the
serial paths, but the per-instruction *retire* stream is dropped --
one batched dispatch retires many lanes and an interleaved per-lane
retire ring would be noise at 1/N the useful depth.  Post-mortems of a
batched campaign therefore show marks, faults, traps, and syscalls
only.

The fault-campaign runner (:mod:`repro.faults.campaign`) packs run
shards into lane batches and classifies each lane exactly like the
serial runner; ``tests/test_batch.py`` holds the differential suite
asserting final-state digests, trap records, and campaign report bytes
match the serial path.
"""

from __future__ import annotations

import numpy as np

from repro.aob import AoB
from repro.aob.bitvector import MAX_DENSE_WAYS, QAT_WAYS
from repro.aob.hadamard import hadamard_words
from repro.aob import kernels
from repro.bf16 import bf16_from_int, bf16_recip, bf16_to_int
from repro.bf16 import vector as bf16_vec
from repro.cpu import fastpath as _fastpath
from repro.cpu.exec_core import BATCH_EXEC  # noqa: F401  (re-exported)
from repro.cpu.qat_backend import MAX_RE_WAYS, REQatBackend
from repro.errors import ReproError, SimulatorError, SyscallError, TrapError
from repro.faults.traps import TrapAction, TrapCause, TrapPolicy, TrapRecord
from repro.isa.instructions import INSTRUCTIONS
from repro.isa.registers import NUM_GPRS, NUM_QAT_REGS, RV
from repro.obs import flight as _flight
from repro.obs import runtime as _obs
from repro.utils.bits import top_mask, words_for_bits

_MEM_WORDS = 1 << 16
_BF16_EXP_MASK = 0x7F80
_WORD_FULL = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: Group-key sentinel for "no second word" (one-word instruction or a
#: two-word major at the last address).  Word values are 16-bit, so
#: 0x10000 can never collide with a real second word.
_NO_WORD2 = 0x10000


# ---------------------------------------------------------------------------
# Batched Qat substrates
# ---------------------------------------------------------------------------

class BatchDenseQat:
    """Dense substrate with a leading lane axis: ``(N, 256, words)``.

    Gates take a ``lanes`` index vector and run as one fancy-indexed
    NumPy expression over the whole divergence group; the data layout
    and the bit-level semantics are exactly those of
    :class:`~repro.cpu.qat_backend.DenseQatBackend` /
    :mod:`repro.aob.kernels` (top-word masking invariant included).
    """

    name = "dense"

    def __init__(self, n: int, ways: int):
        if not 0 <= ways <= MAX_DENSE_WAYS:
            raise SimulatorError(
                f"dense Qat backend supports ways in [0, {MAX_DENSE_WAYS}], "
                f"got {ways}; the 're' backend (run-length compressed) "
                f"supports up to {MAX_RE_WAYS}-way entanglement"
            )
        self.ways = ways
        self.nbits = 1 << ways
        self.qregs = np.zeros(
            (n, NUM_QAT_REGS, words_for_bits(self.nbits)), dtype=np.uint64
        )

    # -- gates --------------------------------------------------------------

    def binary(self, op: str, lanes, d: int, a: int, b: int) -> None:
        q = self.qregs
        if op == "and":
            q[lanes, d] = q[lanes, a] & q[lanes, b]
        elif op == "or":
            q[lanes, d] = q[lanes, a] | q[lanes, b]
        elif op == "xor":
            q[lanes, d] = q[lanes, a] ^ q[lanes, b]
        else:  # pragma: no cover - table-driven callers
            raise SimulatorError(f"unknown Qat binary op {op!r}")

    def ccnot(self, lanes, d: int, b: int, c: int) -> None:
        self.qregs[lanes, d] ^= self.qregs[lanes, b] & self.qregs[lanes, c]

    def cnot(self, lanes, d: int, c: int) -> None:
        self.qregs[lanes, d] ^= self.qregs[lanes, c]

    def cswap(self, lanes, a: int, b: int, ctrl: int) -> None:
        q = self.qregs
        diff = (q[lanes, a] ^ q[lanes, b]) & q[lanes, ctrl]
        q[lanes, a] ^= diff
        q[lanes, b] ^= diff

    def swap(self, lanes, a: int, b: int) -> None:
        q = self.qregs
        tmp = q[lanes, a].copy()
        q[lanes, a] = q[lanes, b]
        q[lanes, b] = tmp

    def invert(self, lanes, d: int) -> None:
        inverted = ~self.qregs[lanes, d]
        inverted[:, -1] &= top_mask(self.nbits)
        self.qregs[lanes, d] = inverted

    def zero(self, lanes, d: int) -> None:
        self.qregs[lanes, d] = 0

    def one(self, lanes, d: int) -> None:
        ones = np.full(
            (len(lanes), self.qregs.shape[2]), _WORD_FULL, dtype=np.uint64
        )
        ones[:, -1] = top_mask(self.nbits)
        self.qregs[lanes, d] = ones

    def had(self, lanes, d: int, k: int) -> None:
        self.qregs[lanes, d] = hadamard_words(self.ways, k)

    # -- measurement --------------------------------------------------------

    def meas(self, lanes, reg: int, channels: np.ndarray) -> np.ndarray:
        # Vectorized k_meas: channel modulo the AoB length, one-word probe.
        ch = channels & (self.nbits - 1)
        rows = self.qregs[lanes, reg]
        words = rows[np.arange(rows.shape[0]), ch >> 6]
        return (
            (words >> (ch & 63).astype(np.uint64)) & np.uint64(1)
        ).astype(np.uint16)

    def next(self, lanes, reg: int, channels: np.ndarray) -> np.ndarray:
        # Data-dependent scan: per-lane kernel probes (readout is rare).
        return np.array(
            [kernels.k_next(self.qregs[int(lane), reg], int(ch), self.nbits)
             for lane, ch in zip(lanes, channels)],
            dtype=np.int64,
        )

    def pop_after(self, lanes, reg: int, channels: np.ndarray) -> np.ndarray:
        return np.array(
            [kernels.k_pop_after(self.qregs[int(lane), reg], int(ch),
                                 self.nbits)
             for lane, ch in zip(lanes, channels)],
            dtype=np.int64,
        )

    # -- fault / readout surfaces -------------------------------------------

    def flip_bit(self, lane: int, reg: int, word: int, bit: int) -> None:
        self.qregs[lane, reg, word] ^= np.uint64(1 << bit)

    def read(self, lane: int, reg: int) -> AoB:
        return AoB(self.ways, self.qregs[lane, reg].copy())


class BatchREQat:
    """Run-length compressed substrate: one private backend per lane.

    The RE substrate's compressed registers have no dense lane axis to
    vectorize over, so every gate is a per-lane delegation to a real
    :class:`~repro.cpu.qat_backend.REQatBackend` -- bit-exact with the
    serial path by construction, just without the SIMD win.
    """

    name = "re"

    def __init__(self, n: int, ways: int):
        self.lanes = [REQatBackend(ways) for _ in range(n)]
        self.ways = ways
        self.nbits = 1 << ways

    def binary(self, op: str, lanes, d: int, a: int, b: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].binary(op, d, a, b)

    def ccnot(self, lanes, d: int, b: int, c: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].ccnot(d, b, c)

    def cnot(self, lanes, d: int, c: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].cnot(d, c)

    def cswap(self, lanes, a: int, b: int, ctrl: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].cswap(a, b, ctrl)

    def swap(self, lanes, a: int, b: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].swap(a, b)

    def invert(self, lanes, d: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].invert(d)

    def zero(self, lanes, d: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].zero(d)

    def one(self, lanes, d: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].one(d)

    def had(self, lanes, d: int, k: int) -> None:
        for lane in lanes:
            self.lanes[int(lane)].had(d, k)

    def meas(self, lanes, reg: int, channels: np.ndarray) -> np.ndarray:
        return np.array(
            [self.lanes[int(lane)].meas(reg, int(ch))
             for lane, ch in zip(lanes, channels)],
            dtype=np.int64,
        )

    def next(self, lanes, reg: int, channels: np.ndarray) -> np.ndarray:
        return np.array(
            [self.lanes[int(lane)].next(reg, int(ch))
             for lane, ch in zip(lanes, channels)],
            dtype=np.int64,
        )

    def pop_after(self, lanes, reg: int, channels: np.ndarray) -> np.ndarray:
        return np.array(
            [self.lanes[int(lane)].pop_after(reg, int(ch))
             for lane, ch in zip(lanes, channels)],
            dtype=np.int64,
        )

    def flip_bit(self, lane: int, reg: int, word: int, bit: int) -> None:
        self.lanes[int(lane)].flip_bit(reg, word, bit)

    def read(self, lane: int, reg: int) -> AoB:
        return self.lanes[int(lane)].read(reg)


def _make_batch_qat(spec, n: int, ways: int):
    if spec == "dense":
        return BatchDenseQat(n, ways)
    if spec == "re":
        return BatchREQat(n, ways)
    raise SimulatorError(
        f"unknown Qat backend spec {spec!r} for the batch simulator "
        f"(expected 'dense' or 're')"
    )


# ---------------------------------------------------------------------------
# Array-of-machines state
# ---------------------------------------------------------------------------

class BatchMachines:
    """Architectural state of ``n`` machines over a leading lane axis."""

    def __init__(self, n: int, ways: int = QAT_WAYS,
                 trap_policy: TrapPolicy | None = None,
                 qat_backend="dense"):
        if n <= 0:
            raise SimulatorError(f"batch size must be positive, got {n}")
        self.qat = _make_batch_qat(qat_backend, n, ways)
        self.n = n
        self.ways = ways
        self.nbits = 1 << ways
        self.regs = np.zeros((n, NUM_GPRS), dtype=np.uint16)
        self.mem = np.zeros((n, _MEM_WORDS), dtype=np.uint16)
        self.pc = np.zeros(n, dtype=np.int64)
        self.instret = np.zeros(n, dtype=np.int64)
        self.halted = np.zeros(n, dtype=bool)
        #: lanes whose trap raised under the ``raise`` policy: out of the
        #: active set, with the would-be exception text in ``errors``
        self.parked = np.zeros(n, dtype=bool)
        self.output: list[list[str]] = [[] for _ in range(n)]
        self.traps: list[list[TrapRecord]] = [[] for _ in range(n)]
        self.errors: list[str | None] = [None] * n
        self.trap_policy = (
            trap_policy if trap_policy is not None else TrapPolicy()
        )

    def load_program(self, words, origin: int = 0) -> None:
        """Copy one program image into every lane's memory."""
        words = np.asarray([int(w) & 0xFFFF for w in words], dtype=np.uint16)
        if origin + words.size > _MEM_WORDS:
            raise SimulatorError("program image exceeds memory")
        self.mem[:, origin:origin + words.size] = words
        self.pc[:] = origin

    def active_lanes(self) -> np.ndarray:
        return np.flatnonzero(~(self.halted | self.parked))

    def retire(self, lanes, pc_next) -> None:
        self.pc[lanes] = pc_next
        self.instret[lanes] += 1

    def read_qreg(self, lane: int, reg: int) -> AoB:
        return self.qat.read(lane, reg)

    def trap_lane(self, lane: int, cause: TrapCause, detail: str = "",
                  instruction: str | None = None,
                  resume_pc: int | None = None,
                  service: int | None = None) -> None:
        """Per-lane mirror of :func:`repro.faults.traps.deliver`.

        Same record, same recorder/metrics hooks, same policy actions --
        except that the ``raise`` action *parks* the lane (recording the
        exact exception text the serial simulator would have raised)
        instead of raising, so the other lanes keep stepping.
        """
        policy = self.trap_policy
        record = TrapRecord(
            cause=cause,
            pc=int(self.pc[lane]),
            instruction=instruction,
            cycle=None,
            instret=int(self.instret[lane]),
            detail=detail,
        )
        self.traps[lane].append(record)
        if _flight.RECORDER.enabled:
            _flight.RECORDER.note_trap(record.pc, cause.value, None,
                                       record.instret, detail)
        if _obs.active:
            _obs.current().metrics.counter(f"traps.{cause.value}").inc()

        action = policy.action_for(cause)
        if action is TrapAction.RAISE:
            message = detail or f"trap: {cause.value}"
            context = {"pc": record.pc, "cycle": None,
                       "instruction": instruction}
            if service is not None:
                exc = SyscallError(message, service=service, record=record,
                                   **context)
            else:
                exc = TrapError(message, record=record, **context)
            self.errors[lane] = str(exc)
            self.parked[lane] = True
        elif action is TrapAction.HALT:
            self.halted[lane] = True
        else:  # VECTOR
            if resume_pc is None:
                resume_pc = (int(self.pc[lane]) + 1) & 0xFFFF
            self.regs[lane, policy.cause_reg] = cause.code & 0xFFFF
            self.regs[lane, policy.epc_reg] = resume_pc & 0xFFFF
            self.pc[lane] = policy.handler_for(cause)


# ---------------------------------------------------------------------------
# Batched mnemonic handlers
# ---------------------------------------------------------------------------
#
# Signature: ``handler(bm, entry, lanes, pc_next)``.  ``lanes`` is the
# divergence group's lane-index vector, ``pc_next`` the per-lane
# sequential successor.  Handlers own retirement: surviving lanes get
# ``bm.retire(lanes, next_pc)`` (branches pass their redirected
# targets); lanes that trap never retire, mirroring the serial paths.

def _trap_group(bm, entry, lanes, pc_next, cause, details,
                instruction=None, services=None) -> None:
    """Deliver one trap per lane (``details`` is per-lane or shared)."""
    for i, lane in enumerate(lanes):
        bm.trap_lane(
            int(lane), cause,
            detail=details[i] if isinstance(details, list) else details,
            instruction=instruction,
            resume_pc=int(pc_next[i]),
            service=None if services is None else services[i],
        )


def _b_add(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    bm.regs[lanes, d] += bm.regs[lanes, s]
    bm.retire(lanes, pc_next)


def _b_and(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    bm.regs[lanes, d] &= bm.regs[lanes, s]
    bm.retire(lanes, pc_next)


def _b_or(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    bm.regs[lanes, d] |= bm.regs[lanes, s]
    bm.retire(lanes, pc_next)


def _b_xor(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    bm.regs[lanes, d] ^= bm.regs[lanes, s]
    bm.retire(lanes, pc_next)


def _b_mul(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    bm.regs[lanes, d] *= bm.regs[lanes, s]
    bm.retire(lanes, pc_next)


def _b_copy(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    bm.regs[lanes, d] = bm.regs[lanes, s]
    bm.retire(lanes, pc_next)


def _b_neg(bm, entry, lanes, pc_next):
    d = entry.ops[0]
    bm.regs[lanes, d] = -bm.regs[lanes, d]
    bm.retire(lanes, pc_next)


def _b_not(bm, entry, lanes, pc_next):
    d = entry.ops[0]
    bm.regs[lanes, d] = ~bm.regs[lanes, d]
    bm.retire(lanes, pc_next)


def _b_shift(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    amount = bm.regs[lanes, s].astype(np.int64)
    amount = np.where(amount >= 0x8000, amount - 0x10000, amount)
    value = bm.regs[lanes, d].astype(np.int64)
    left = value << np.clip(amount, 0, 15)
    right = value >> np.clip(-amount, 0, 63)
    result = np.where(
        (amount >= 16) | (amount <= -16), 0,
        np.where(amount >= 0, left, right),
    )
    bm.regs[lanes, d] = result & 0xFFFF
    bm.retire(lanes, pc_next)


def _b_slt(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    a = bm.regs[lanes, d].astype(np.int64)
    b = bm.regs[lanes, s].astype(np.int64)
    a = np.where(a >= 0x8000, a - 0x10000, a)
    b = np.where(b >= 0x8000, b - 0x10000, b)
    bm.regs[lanes, d] = (a < b).astype(np.uint16)
    bm.retire(lanes, pc_next)


def _b_lex(bm, entry, lanes, pc_next):
    imm = entry.ops[1]
    value = imm & 0xFF if (imm & 0x80) == 0 else (imm & 0xFF) | 0xFF00
    bm.regs[lanes, entry.ops[0]] = value
    bm.retire(lanes, pc_next)


def _b_lhi(bm, entry, lanes, pc_next):
    d = entry.ops[0]
    high = (entry.ops[1] & 0xFF) << 8
    bm.regs[lanes, d] = (bm.regs[lanes, d] & 0x00FF) | high
    bm.retire(lanes, pc_next)


def _b_brf(bm, entry, lanes, pc_next):
    taken = bm.regs[lanes, entry.ops[0]] == 0
    bm.retire(lanes, np.where(taken, (pc_next + entry.ops[1]) & 0xFFFF,
                              pc_next))


def _b_brt(bm, entry, lanes, pc_next):
    taken = bm.regs[lanes, entry.ops[0]] != 0
    bm.retire(lanes, np.where(taken, (pc_next + entry.ops[1]) & 0xFFFF,
                              pc_next))


def _b_jumpr(bm, entry, lanes, pc_next):
    bm.retire(lanes, bm.regs[lanes, entry.ops[0]].astype(np.int64))


def _b_load(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    addr = bm.regs[lanes, s].astype(np.int64)
    fence = bm.trap_policy.mem_fence
    if fence is not None:
        bad = addr >= fence
        if bad.any():
            _trap_group(
                bm, entry, lanes[bad], pc_next[bad], TrapCause.MEM_FAULT,
                [f"load from {int(a):#06x} beyond fence {fence:#06x}"
                 for a in addr[bad]],
                instruction=entry.instr.render(),
            )
            good = ~bad
            lanes, pc_next, addr = lanes[good], pc_next[good], addr[good]
            if lanes.size == 0:
                return
    bm.regs[lanes, d] = bm.mem[lanes, addr]
    bm.retire(lanes, pc_next)


def _b_store(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    addr = bm.regs[lanes, s].astype(np.int64)
    fence = bm.trap_policy.mem_fence
    if fence is not None:
        bad = addr >= fence
        if bad.any():
            _trap_group(
                bm, entry, lanes[bad], pc_next[bad], TrapCause.MEM_FAULT,
                [f"store to {int(a):#06x} beyond fence {fence:#06x}"
                 for a in addr[bad]],
                instruction=entry.instr.render(),
            )
            good = ~bad
            lanes, pc_next, addr = lanes[good], pc_next[good], addr[good]
            if lanes.size == 0:
                return
    bm.mem[lanes, addr] = bm.regs[lanes, d]
    bm.retire(lanes, pc_next)


def _finish_bf16(bm, entry, lanes, pc_next, d, result, mnemonic):
    """Shared non-finite check + writeback for addf/mulf/recip."""
    if bm.trap_policy.trap_bf16:
        bad = (result & _BF16_EXP_MASK) == _BF16_EXP_MASK
        if bad.any():
            _trap_group(
                bm, entry, lanes[bad], pc_next[bad], TrapCause.BF16_FAULT,
                [f"{mnemonic} produced non-finite bf16 {int(r):#06x}"
                 for r in result[bad]],
                instruction=entry.instr.render(),
            )
            good = ~bad
            lanes, pc_next, result = lanes[good], pc_next[good], result[good]
            if lanes.size == 0:
                return
    bm.regs[lanes, d] = result
    bm.retire(lanes, pc_next)


def _b_addf(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    result = bf16_vec.add(bm.regs[lanes, d], bm.regs[lanes, s])
    _finish_bf16(bm, entry, lanes, pc_next, d,
                 result.astype(np.uint16), "addf")


def _b_mulf(bm, entry, lanes, pc_next):
    d, s = entry.ops[0], entry.ops[1]
    result = bf16_vec.mul(bm.regs[lanes, d], bm.regs[lanes, s])
    _finish_bf16(bm, entry, lanes, pc_next, d,
                 result.astype(np.uint16), "mulf")


def _b_negf(bm, entry, lanes, pc_next):
    d = entry.ops[0]
    bm.regs[lanes, d] = bf16_vec.neg(bm.regs[lanes, d]).astype(np.uint16)
    bm.retire(lanes, pc_next)


def _b_recip(bm, entry, lanes, pc_next):
    d = entry.ops[0]
    result = np.array(
        [bf16_recip(int(v)) & 0xFFFF for v in bm.regs[lanes, d]],
        dtype=np.uint16,
    )
    _finish_bf16(bm, entry, lanes, pc_next, d, result, "recip")


def _b_float(bm, entry, lanes, pc_next):
    d = entry.ops[0]
    bm.regs[lanes, d] = np.array(
        [bf16_from_int(int(v)) & 0xFFFF for v in bm.regs[lanes, d]],
        dtype=np.uint16,
    )
    bm.retire(lanes, pc_next)


def _b_int(bm, entry, lanes, pc_next):
    d = entry.ops[0]
    bm.regs[lanes, d] = np.array(
        [bf16_to_int(int(v)) & 0xFFFF for v in bm.regs[lanes, d]],
        dtype=np.uint16,
    )
    bm.retire(lanes, pc_next)


def _b_sys(bm, entry, lanes, pc_next):
    recorder = _flight.RECORDER
    keep = []
    for i in range(len(lanes)):
        lane = int(lanes[i])
        service = int(bm.regs[lane, RV])
        # machine.pc still addresses the ``sys`` word here, exactly as
        # in SyscallHandler.handle (the serial slow and fast paths).
        if recorder.enabled:
            recorder.note_syscall(int(bm.pc[lane]), service)
        if service == 0:
            bm.halted[lane] = True
        elif service == 1:
            value = int(bm.regs[lane, 0])
            if value >= 0x8000:
                value -= 0x10000
            bm.output[lane].append(str(value))
        elif service == 2:
            bm.output[lane].append(chr(int(bm.regs[lane, 0]) & 0xFF))
        elif service == 3:
            # The batch simulator is untimed: like the functional
            # simulator's default SyscallHandler, the counter reads 0.
            bm.regs[lane, 0] = 0
        elif service == 4:
            addr = int(bm.regs[lane, 0])
            row = bm.mem[lane]
            chars = []
            for _ in range(4096):  # runaway guard
                code = int(row[addr])
                if code == 0:
                    break
                chars.append(chr(code & 0xFF))
                addr = (addr + 1) & 0xFFFF
            bm.output[lane].append("".join(chars))
        else:
            bm.trap_lane(
                lane, TrapCause.UNKNOWN_SYSCALL,
                detail=f"unknown sys service {service}",
                instruction="sys",
                resume_pc=int(pc_next[i]),
                service=service,
            )
            continue
        keep.append(i)
    if keep:
        kept = np.asarray(keep)
        bm.retire(lanes[kept], pc_next[kept])


def _b_qand(bm, entry, lanes, pc_next):
    bm.qat.binary("and", lanes, *entry.ops)
    bm.retire(lanes, pc_next)


def _b_qor(bm, entry, lanes, pc_next):
    bm.qat.binary("or", lanes, *entry.ops)
    bm.retire(lanes, pc_next)


def _b_qxor(bm, entry, lanes, pc_next):
    bm.qat.binary("xor", lanes, *entry.ops)
    bm.retire(lanes, pc_next)


def _b_qccnot(bm, entry, lanes, pc_next):
    bm.qat.ccnot(lanes, *entry.ops)
    bm.retire(lanes, pc_next)


def _b_qcnot(bm, entry, lanes, pc_next):
    bm.qat.cnot(lanes, *entry.ops)
    bm.retire(lanes, pc_next)


def _b_qcswap(bm, entry, lanes, pc_next):
    bm.qat.cswap(lanes, *entry.ops)
    bm.retire(lanes, pc_next)


def _b_qswap(bm, entry, lanes, pc_next):
    bm.qat.swap(lanes, *entry.ops)
    bm.retire(lanes, pc_next)


def _b_qnot(bm, entry, lanes, pc_next):
    bm.qat.invert(lanes, entry.ops[0])
    bm.retire(lanes, pc_next)


def _b_qzero(bm, entry, lanes, pc_next):
    bm.qat.zero(lanes, entry.ops[0])
    bm.retire(lanes, pc_next)


def _b_qone(bm, entry, lanes, pc_next):
    bm.qat.one(lanes, entry.ops[0])
    bm.retire(lanes, pc_next)


def _b_qhad(bm, entry, lanes, pc_next):
    if bm.trap_policy.strict_qat and entry.ops[1] >= bm.ways:
        _trap_group(
            bm, entry, lanes, pc_next, TrapCause.QAT_FAULT,
            f"had k={entry.ops[1]} exceeds {bm.ways}-way entanglement",
            instruction=entry.instr.render(),
        )
        return
    bm.qat.had(lanes, entry.ops[0], entry.ops[1])
    bm.retire(lanes, pc_next)


def _strict_channels(bm, entry, lanes, pc_next, channels):
    """Split off lanes whose channel operand is out of range (strict)."""
    bad = channels >= bm.nbits
    if bad.any():
        _trap_group(
            bm, entry, lanes[bad], pc_next[bad], TrapCause.QAT_FAULT,
            [f"channel {int(ch)} out of range for {bm.nbits}-channel AoB"
             for ch in channels[bad]],
            instruction=entry.instr.render(),
        )
        good = ~bad
        return lanes[good], pc_next[good], channels[good]
    return lanes, pc_next, channels


def _b_qmeas(bm, entry, lanes, pc_next):
    d, a = entry.ops[0], entry.ops[1]
    channels = bm.regs[lanes, d].astype(np.int64)
    if bm.trap_policy.strict_qat:
        lanes, pc_next, channels = _strict_channels(
            bm, entry, lanes, pc_next, channels)
        if lanes.size == 0:
            return
    bm.regs[lanes, d] = bm.qat.meas(lanes, a, channels)
    bm.retire(lanes, pc_next)


def _b_qnext(bm, entry, lanes, pc_next):
    d, a = entry.ops[0], entry.ops[1]
    channels = bm.regs[lanes, d].astype(np.int64)
    if bm.trap_policy.strict_qat:
        lanes, pc_next, channels = _strict_channels(
            bm, entry, lanes, pc_next, channels)
        if lanes.size == 0:
            return
    values = bm.qat.next(lanes, a, channels)
    bm.regs[lanes, d] = (values & 0xFFFF).astype(np.uint16)
    bm.retire(lanes, pc_next)


def _b_qpop(bm, entry, lanes, pc_next):
    d, a = entry.ops[0], entry.ops[1]
    channels = bm.regs[lanes, d].astype(np.int64)
    if bm.trap_policy.strict_qat:
        lanes, pc_next, channels = _strict_channels(
            bm, entry, lanes, pc_next, channels)
        if lanes.size == 0:
            return
    values = bm.qat.pop_after(lanes, a, channels)
    over = values > 0xFFFF
    if over.any():
        if bm.trap_policy.strict_qat:
            _trap_group(
                bm, entry, lanes[over], pc_next[over], TrapCause.QAT_FAULT,
                [f"pop after channel {int(ch)} counted {int(v)} "
                 f"ones, exceeding the 16-bit destination"
                 for ch, v in zip(channels[over], values[over])],
                instruction=entry.instr.render(),
            )
            good = ~over
            lanes, pc_next, values = lanes[good], pc_next[good], values[good]
            if lanes.size == 0:
                return
        else:
            values = np.minimum(values, 0xFFFF)
    bm.regs[lanes, d] = values.astype(np.uint16)
    bm.retire(lanes, pc_next)


#: mnemonic -> batch handler; covers every entry of ``INSTRUCTIONS``.
BATCH_HANDLERS = {
    "add": _b_add,
    "addf": _b_addf,
    "and": _b_and,
    "brf": _b_brf,
    "brt": _b_brt,
    "copy": _b_copy,
    "float": _b_float,
    "int": _b_int,
    "jumpr": _b_jumpr,
    "lex": _b_lex,
    "lhi": _b_lhi,
    "load": _b_load,
    "mul": _b_mul,
    "mulf": _b_mulf,
    "neg": _b_neg,
    "negf": _b_negf,
    "not": _b_not,
    "or": _b_or,
    "recip": _b_recip,
    "shift": _b_shift,
    "slt": _b_slt,
    "store": _b_store,
    "sys": _b_sys,
    "xor": _b_xor,
    "qand": _b_qand,
    "qccnot": _b_qccnot,
    "qcnot": _b_qcnot,
    "qcswap": _b_qcswap,
    "qhad": _b_qhad,
    "qmeas": _b_qmeas,
    "qnext": _b_qnext,
    "qnot": _b_qnot,
    "qone": _b_qone,
    "qor": _b_qor,
    "qpop": _b_qpop,
    "qswap": _b_qswap,
    "qxor": _b_qxor,
    "qzero": _b_qzero,
}

assert set(BATCH_HANDLERS) == set(INSTRUCTIONS), \
    "batch dispatch table out of sync"


# ---------------------------------------------------------------------------
# Fault injection (per-lane mirror of repro.faults.inject.apply_event)
# ---------------------------------------------------------------------------

def apply_lane_event(bm: BatchMachines, lane: int, event) -> None:
    """Flip the bit ``event`` names in lane ``lane`` of ``bm``.

    Mirrors :func:`repro.faults.inject.apply_event` (recorder note,
    metrics counter, then the architectural flip).  There is no
    predecode cache to invalidate -- the batch loop re-fetches the raw
    instruction words every step -- and ``latch`` events degrade to an
    architectural PC flip exactly as they do on the serial functional
    simulator.
    """
    if _flight.RECORDER.enabled:
        _flight.RECORDER.note_fault(
            event.target,
            f"step={event.step} index={event.index} "
            f"word={event.word} bit={event.bit}",
        )
    if _obs.active:
        _obs.current().metrics.counter(
            f"faults.injected.{event.target}").inc()
    if event.target == "gpr":
        bm.regs[lane, event.index] ^= np.uint16(1 << event.bit)
    elif event.target == "mem":
        bm.mem[lane, event.index] ^= np.uint16(1 << event.bit)
    elif event.target == "qreg":
        bm.qat.flip_bit(lane, event.index, event.word, event.bit)
    elif event.target in ("pc", "latch"):
        bm.pc[lane] ^= 1 << event.bit
    else:
        raise ReproError(f"unknown fault target {event.target!r}")


# ---------------------------------------------------------------------------
# The batched run loop
# ---------------------------------------------------------------------------

class BatchFunctionalSimulator:
    """Functional simulation of ``n`` machines in lockstep.

    Divergence-grouped execution: each step, active lanes are grouped
    by the raw instruction word(s) under their PC, each group's
    :class:`~repro.cpu.fastpath.Predecoded` entry is resolved through
    the process-wide intern table, and one :data:`BATCH_HANDLERS` call
    executes the whole group.  Lanes halt independently (``sys 0``) or
    park on a raised trap; :meth:`run` returns when no lane is active.
    """

    def __init__(self, n: int, ways: int = QAT_WAYS,
                 trap_policy: TrapPolicy | None = None,
                 qat_backend="dense"):
        self.machines = BatchMachines(n, ways=ways, trap_policy=trap_policy,
                                      qat_backend=qat_backend)
        self.n = n

    def load(self, program, origin: int | None = None) -> None:
        """Load one assembled Program (or raw words) into every lane."""
        words = getattr(program, "words", program)
        entry = getattr(program, "entry", 0) if origin is None else origin
        self.machines.load_program(words,
                                   origin=0 if origin is None else origin)
        self.machines.pc[:] = entry

    def run(self, max_steps: int = 1_000_000, plans=None,
            watchdog_detail: str | None = None) -> np.ndarray:
        """Step every lane to halt/park; returns per-lane step counts.

        ``plans`` (optional, one :class:`~repro.faults.inject.FaultPlan`
        per lane or ``None`` entries) injects each lane's due fault
        events before the step executes, exactly where the campaign
        driver does.  When the step budget is exhausted, every still-
        active lane takes the ``watchdog`` trap (``watchdog_detail``
        lets the campaign runner supply its exact serial detail string)
        and the loop ends.
        """
        bm = self.machines
        if plans is not None and len(plans) != bm.n:
            raise SimulatorError(
                f"got {len(plans)} fault plans for {bm.n} lanes"
            )
        due: list[dict[int, list]] = []
        if plans is not None:
            for plan in plans:
                by_step: dict[int, list] = {}
                if plan is not None:
                    for event in plan.events:
                        by_step.setdefault(event.step, []).append(event)
                due.append(by_step)
        lane_steps = np.zeros(bm.n, dtype=np.int64)
        step = 0
        while True:
            lanes = bm.active_lanes()
            if lanes.size == 0:
                break
            if step >= max_steps:
                detail = (
                    watchdog_detail if watchdog_detail is not None
                    else f"exceeded {max_steps} steps without halting"
                )
                for lane in lanes:
                    bm.trap_lane(int(lane), TrapCause.WATCHDOG,
                                 detail=detail)
                # The serial drivers stop stepping a machine once its
                # watchdog fires, whatever the policy action was.
                break
            if due:
                for lane in lanes:
                    for event in due[int(lane)].get(step, ()):
                        apply_lane_event(bm, int(lane), event)
                lanes = bm.active_lanes()
                if lanes.size == 0:
                    break
            pcs = bm.pc[lanes]
            word0 = bm.mem[lanes, pcs].astype(np.int64)
            two = ((word0 >> 12) == 0x8) | ((word0 >> 12) == 0x9)
            two &= pcs + 1 < _MEM_WORDS
            word1 = np.full(lanes.shape, _NO_WORD2, dtype=np.int64)
            if two.any():
                word1[two] = bm.mem[lanes[two], pcs[two] + 1]
            keys = (word0 << 17) | word1
            unique, inverse = np.unique(keys, return_inverse=True)
            for gi, key in enumerate(unique):
                members = inverse == gi
                glanes = lanes[members]
                gpcs = pcs[members]
                word2 = int(key) & 0x1FFFF
                intern_key = (
                    int(key) >> 17 if word2 == _NO_WORD2
                    else (int(key) >> 17, word2)
                )
                entry = _fastpath._INTERN.get(intern_key)
                if entry is None:
                    # Decode on a representative lane's full memory row
                    # (interns the entry; error text included).
                    entry = _fastpath._predecode(bm.mem[glanes[0]],
                                                 int(gpcs[0]))
                if entry.handler is None:
                    for lane in glanes:
                        bm.trap_lane(int(lane), TrapCause.ILLEGAL_OPCODE,
                                     detail=entry.error)
                else:
                    pc_next = (gpcs + entry.words) & 0xFFFF
                    BATCH_HANDLERS[entry.mnemonic](bm, entry, glanes,
                                                   pc_next)
            lane_steps[lanes] += 1
            step += 1
        return lane_steps
