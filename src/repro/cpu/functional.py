"""Functional (instruction-accurate, untimed) simulator.

The reference model: decodes and executes one instruction per step with
no timing, like the paper's Figure 6 single-cycle datapath.  The other
simulators are validated against this one on random programs.

Abnormal events route through the trap model
(:mod:`repro.faults.traps`): an undecodable word is an
``illegal_opcode`` trap, a blown step budget is a ``watchdog`` trap.
Under the default ``raise`` policy both surface as
:class:`~repro.errors.TrapError` with PC/instruction context; a ``halt``
or ``vector`` policy lets execution stop cleanly or continue in a
trap-handler program.
"""

from __future__ import annotations

from repro.aob.bitvector import QAT_WAYS
from repro.cpu import fastpath as _fastpath
from repro.cpu.exec_core import TRAP_MNEMONIC, Effects, execute
from repro.cpu.state import MachineState
from repro.cpu.syscalls import SyscallHandler
from repro.errors import EncodingError, HaltedError
from repro.faults.traps import TrapCause, TrapDelivered, TrapPolicy
from repro.isa.encoding import decode
from repro.isa.instructions import Instr
from repro.obs import runtime as _obs
from repro.obs.spans import NULL_SPAN


class FunctionalSimulator:
    """Executes a program image one instruction at a time."""

    #: Fast-path override: ``None`` auto-selects (fast loop when no
    #: observer is attached), ``False``/``True`` force slow/fast.
    use_fastpath: bool | None = None

    def __init__(
        self,
        ways: int = QAT_WAYS,
        syscalls: SyscallHandler | None = None,
        trace=None,
        trap_policy: TrapPolicy | None = None,
        qat_backend="dense",
    ):
        self.machine = MachineState(ways, trap_policy=trap_policy,
                                    qat_backend=qat_backend)
        self.syscalls = syscalls if syscalls is not None else SyscallHandler()
        self.trace = trace
        #: optional :class:`repro.faults.checkpoint.AutoCheckpointer`
        self.checkpointer = None

    def load(self, program, origin: int | None = None) -> None:
        """Load an assembled :class:`~repro.asm.Program` (or raw words)."""
        words = getattr(program, "words", program)
        entry = getattr(program, "entry", 0) if origin is None else origin
        self.machine.load_program(words, origin=0 if origin is None else origin)
        self.machine.pc = entry

    def fetch_decode(self) -> tuple[Instr, int]:
        """Decode the instruction at the current PC."""
        return decode(self.machine.mem, self.machine.pc)

    def _trapped_effects(self) -> Effects:
        """Synthetic effects for an instruction consumed by a trap."""
        return Effects(mnemonic=TRAP_MNEMONIC, next_pc=self.machine.pc)

    def step(self) -> Effects:
        """Fetch, decode and execute one instruction.

        An instruction that traps under the halt/vector policy returns a
        synthetic :class:`Effects` with mnemonic ``"trap"``; under the
        default policy the typed error propagates.
        """
        machine = self.machine
        if machine.halted:
            raise HaltedError("machine is halted", pc=machine.pc)
        pc = machine.pc
        try:
            instr, _ = self.fetch_decode()
        except EncodingError as exc:
            try:
                machine.trap(TrapCause.ILLEGAL_OPCODE, detail=str(exc))
            except TrapDelivered:
                return self._trapped_effects()
        try:
            effects = execute(machine, instr, self.syscalls)
        except TrapDelivered:
            return self._trapped_effects()
        if self.trace is not None:
            self.trace.record(pc, instr, effects, machine)
        return effects

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until ``sys``-halt; returns instructions executed.

        Fires a ``watchdog`` trap if the step budget is exhausted
        (runaway program) -- a :class:`~repro.errors.TrapError` under the
        default policy.  When telemetry is installed (``repro.obs``) the
        run is wrapped in a ``cpu.run`` span and the retired instruction
        count lands on the ``cpu.instructions`` counter.  An attached
        :class:`~repro.faults.checkpoint.AutoCheckpointer` snapshots the
        machine periodically so a watchdog expiry is recoverable.

        With no observer attached the architecturally identical stripped
        loop in :mod:`repro.cpu.fastpath` is used instead.
        """
        if _fastpath.eligible(self):
            return _fastpath.run_functional(self, max_steps)
        telemetry = _obs.current() if _obs.active else None
        steps = 0
        checkpointer = self.checkpointer
        with (telemetry.span("cpu.run", cat="cpu", sim="functional")
              if telemetry is not None else NULL_SPAN):
            while not self.machine.halted:
                if steps >= max_steps:
                    try:
                        self.machine.trap(
                            TrapCause.WATCHDOG,
                            detail=f"exceeded {max_steps} steps without halting",
                        )
                    except TrapDelivered:
                        break
                self.step()
                steps += 1
                if checkpointer is not None:
                    checkpointer.tick(self.machine)
        if telemetry is not None:
            telemetry.metrics.counter("cpu.instructions").add(steps)
        return steps
