"""Functional (instruction-accurate, untimed) simulator.

The reference model: decodes and executes one instruction per step with
no timing, like the paper's Figure 6 single-cycle datapath.  The other
simulators are validated against this one on random programs.
"""

from __future__ import annotations

from repro.aob.bitvector import QAT_WAYS
from repro.cpu.exec_core import Effects, execute
from repro.cpu.state import MachineState
from repro.cpu.syscalls import SyscallHandler
from repro.errors import HaltedError, SimulatorError
from repro.isa.encoding import decode
from repro.isa.instructions import Instr
from repro.obs import runtime as _obs
from repro.obs.spans import NULL_SPAN


class FunctionalSimulator:
    """Executes a program image one instruction at a time."""

    def __init__(
        self,
        ways: int = QAT_WAYS,
        syscalls: SyscallHandler | None = None,
        trace=None,
    ):
        self.machine = MachineState(ways)
        self.syscalls = syscalls if syscalls is not None else SyscallHandler()
        self.trace = trace

    def load(self, program, origin: int | None = None) -> None:
        """Load an assembled :class:`~repro.asm.Program` (or raw words)."""
        words = getattr(program, "words", program)
        entry = getattr(program, "entry", 0) if origin is None else origin
        self.machine.load_program(words, origin=0 if origin is None else origin)
        self.machine.pc = entry

    def fetch_decode(self) -> tuple[Instr, int]:
        """Decode the instruction at the current PC."""
        return decode(self.machine.mem, self.machine.pc)

    def step(self) -> Effects:
        """Fetch, decode and execute one instruction."""
        if self.machine.halted:
            raise HaltedError("machine is halted")
        instr, _ = self.fetch_decode()
        pc = self.machine.pc
        effects = execute(self.machine, instr, self.syscalls)
        if self.trace is not None:
            self.trace.record(pc, instr, effects, self.machine)
        return effects

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until ``sys``-halt; returns instructions executed.

        Raises :class:`SimulatorError` if the step budget is exhausted
        (runaway program).  When telemetry is installed (``repro.obs``)
        the run is wrapped in a ``cpu.run`` span and the retired
        instruction count lands on the ``cpu.instructions`` counter.
        """
        telemetry = _obs.current() if _obs.active else None
        steps = 0
        with (telemetry.span("cpu.run", cat="cpu", sim="functional")
              if telemetry is not None else NULL_SPAN):
            while not self.machine.halted:
                if steps >= max_steps:
                    raise SimulatorError(
                        f"exceeded {max_steps} steps without halting"
                    )
                self.step()
                steps += 1
        if telemetry is not None:
            telemetry.metrics.counter("cpu.instructions").add(steps)
        return steps
