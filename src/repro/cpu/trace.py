"""Execution tracing for the simulators.

Attach an :class:`ExecutionTrace` to a simulator to capture the dynamic
instruction stream -- handy for debugging programs and for the benches
that analyse instruction mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import INSTRUCTIONS, Instr


@dataclass
class TraceEntry:
    """One executed instruction."""

    pc: int
    instr: Instr
    taken_branch: bool

    def render(self) -> str:
        flag = " T" if self.taken_branch else ""
        return f"{self.pc:04x}: {self.instr.render()}{flag}"


@dataclass
class ExecutionTrace:
    """Collects executed instructions (optionally capped).

    When ``limit`` is hit, further instructions are *counted* rather than
    stored: ``dropped`` says how many, ``truncated`` flags the condition,
    and :meth:`render` appends an explicit marker -- a capped trace can
    never be mistaken for a complete one.
    """

    limit: int | None = None
    entries: list[TraceEntry] = field(default_factory=list)
    dropped: int = 0

    @property
    def truncated(self) -> bool:
        """True iff at least one instruction was not stored."""
        return self.dropped > 0

    def record(self, pc: int, instr: Instr, effects, machine) -> None:
        """Called by the simulator after each instruction."""
        if self.limit is not None and len(self.entries) >= self.limit:
            self.dropped += 1
            return
        self.entries.append(TraceEntry(pc, instr, effects.taken_branch))

    def mix(self) -> dict[str, int]:
        """Dynamic instruction count per timing category."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            cat = INSTRUCTIONS[entry.instr.mnemonic].category
            counts[cat] = counts.get(cat, 0) + 1
        return counts

    def render(self) -> str:
        """The whole trace as text, with an explicit truncation marker."""
        lines = [entry.render() for entry in self.entries]
        if self.truncated:
            lines.append(
                f"... truncated: {self.dropped} more instruction(s) "
                f"executed but not recorded (limit={self.limit})"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
