"""Pluggable Qat register-file substrates (the coprocessor "backend").

The paper's hardware implements the 256-register Qat file as dense
65,536-bit AoB rows; its scaling story (section 1.2 and the LCPC'20
software prototype) is that entanglement beyond the hardware width is
handled by run-length/RE compression.  This module makes that a
per-machine choice:

- :class:`DenseQatBackend` -- the existing ``(256, words)`` uint64
  matrix; gates are whole-row NumPy kernel calls.  Memory is
  :math:`O(2^{ways})` per register, so it is bounded by
  :data:`~repro.aob.bitvector.MAX_DENSE_WAYS`.
- :class:`REQatBackend` -- each register is a
  :class:`~repro.pattern.PatternVector` over one private
  :class:`~repro.pattern.ChunkStore`; gates walk runs and memoize
  distinct chunk pairs, so ``had(k)`` and constant registers cost
  O(runs) and entanglement up to :data:`MAX_RE_WAYS` runs in bounded
  memory.

Both backends expose the full Table 3 op set used by
:mod:`repro.cpu.exec_core` plus snapshot/restore (checkpointing) and
single-bit flips (fault injection), so the simulators, the checkpoint
layer and the fault campaigns are substrate-agnostic.
"""

from __future__ import annotations

import numpy as np

from repro.aob import AoB, kernels
from repro.aob.bitvector import MAX_DENSE_WAYS
from repro.errors import SimulatorError
from repro.isa.registers import NUM_QAT_REGS
from repro.obs import runtime as _obs
from repro.pattern import ChunkStore, PatternVector
from repro.pattern.vector import PAPER_CHUNK_WAYS
from repro.utils.bits import words_for_bits

#: Recognized backend selector names (CLI ``--qat-backend`` values).
BACKENDS = ("dense", "re")

#: Widest entanglement the RE backend accepts.  Runs and chunk symbols
#: stay bounded well past this, but 16-bit channel operands make wider
#: registers unobservable from Tangled code.
MAX_RE_WAYS = 32

#: Narrowest entanglement the RE backend accepts (chunks are whole
#: 64-bit words, so ``chunk_ways >= 6``).
MIN_RE_WAYS = 6


def make_qat_backend(spec, ways: int):
    """Build the Qat register substrate named by ``spec`` for ``ways``.

    ``spec`` is ``"dense"``, ``"re"``, or an already-built backend
    (returned as-is after a width check).
    """
    if isinstance(spec, QatBackend):
        if spec.ways != ways:
            raise SimulatorError(
                f"backend is {spec.ways}-way but machine wants {ways}-way"
            )
        return spec
    if spec == "dense":
        return DenseQatBackend(ways)
    if spec == "re":
        return REQatBackend(ways)
    raise SimulatorError(
        f"unknown Qat backend {spec!r} (expected one of {', '.join(BACKENDS)})"
    )


class QatBackend:
    """Operation set both substrates implement (registers are indices).

    Gate methods mutate the named destination registers in place (from
    the machine's point of view); measurement methods are pure.  The
    snapshot value is an opaque deep copy consumed only by ``restore``
    on a backend of the same type and width.
    """

    name: str
    ways: int
    nbits: int

    def describe(self) -> str:
        """One-line human description (CLI/report surfaces)."""
        return f"{self.name} ({self.ways}-way)"

    def _tag_metrics(self) -> None:
        """Publish which substrate is live (the backend tag on metrics)."""
        if _obs.active:
            _obs.current().metrics.gauge(f"qat.backend.{self.name}").set(1)


class DenseQatBackend(QatBackend):
    """The paper's hardware rendering: one uint64 matrix, SIMD kernels."""

    name = "dense"

    def __init__(self, ways: int):
        if not 0 <= ways <= MAX_DENSE_WAYS:
            raise SimulatorError(
                f"dense Qat backend supports ways in [0, {MAX_DENSE_WAYS}], "
                f"got {ways}; the 're' backend (run-length compressed) "
                f"supports up to {MAX_RE_WAYS}-way entanglement"
            )
        self.ways = ways
        self.nbits = 1 << ways
        self.qregs = np.zeros(
            (NUM_QAT_REGS, words_for_bits(self.nbits)), dtype=np.uint64
        )
        self._tag_metrics()

    # -- raw access (dense-only surfaces) -----------------------------------

    def row(self, reg: int) -> np.ndarray:
        """Mutable word row of register ``reg``."""
        return self.qregs[reg]

    # -- gates --------------------------------------------------------------

    def binary(self, op: str, d: int, a: int, b: int) -> None:
        kernel = _DENSE_BINOPS[op]
        kernel(self.qregs[a], self.qregs[b], self.qregs[d])

    def ccnot(self, d: int, b: int, c: int) -> None:
        kernels.k_ccnot(self.qregs[d], self.qregs[b], self.qregs[c])

    def cnot(self, d: int, c: int) -> None:
        kernels.k_cnot(self.qregs[d], self.qregs[c])

    def cswap(self, a: int, b: int, ctrl: int) -> None:
        kernels.k_cswap(self.qregs[a], self.qregs[b], self.qregs[ctrl])

    def swap(self, a: int, b: int) -> None:
        kernels.k_swap(self.qregs[a], self.qregs[b])

    def invert(self, d: int) -> None:
        kernels.k_not(self.qregs[d], self.qregs[d], self.nbits)

    def zero(self, d: int) -> None:
        kernels.k_zero(self.qregs[d])

    def one(self, d: int) -> None:
        kernels.k_one(self.qregs[d], self.nbits)

    def had(self, d: int, k: int) -> None:
        kernels.k_had(self.qregs[d], k, self.ways)

    # -- measurement ---------------------------------------------------------

    def meas(self, reg: int, channel: int) -> int:
        return kernels.k_meas(self.qregs[reg], channel, self.nbits)

    def next(self, reg: int, channel: int) -> int:
        return kernels.k_next(self.qregs[reg], channel, self.nbits)

    def pop_after(self, reg: int, channel: int) -> int:
        return kernels.k_pop_after(self.qregs[reg], channel, self.nbits)

    # -- values ---------------------------------------------------------------

    def read(self, reg: int) -> AoB:
        return AoB(self.ways, self.qregs[reg].copy())

    def write(self, reg: int, value: AoB) -> None:
        self.qregs[reg] = value.words

    # -- checkpoint / fault surfaces ------------------------------------------

    def snapshot(self) -> np.ndarray:
        return self.qregs.copy()

    def restore(self, snap: np.ndarray) -> None:
        if snap.shape != self.qregs.shape:
            raise SimulatorError(
                f"snapshot shape {snap.shape} does not match register file "
                f"{self.qregs.shape}"
            )
        self.qregs[:] = snap

    def flip_bit(self, reg: int, word: int, bit: int) -> None:
        self.qregs[reg, word] ^= np.uint64(1 << bit)

    def stats(self) -> dict:
        return {"backend": self.name, "ways": self.ways,
                "bytes": int(self.qregs.nbytes)}


_DENSE_BINOPS = {
    "and": kernels.k_and,
    "or": kernels.k_or,
    "xor": kernels.k_xor,
}


class REQatBackend(QatBackend):
    """Run-length compressed register file over a private chunk store.

    Every register is a :class:`PatternVector`; the store is created per
    backend (never the process-global default), so two machines -- or
    two rounds of a benchmark, or two seeds of a fault campaign -- can
    never leak interned chunks or memo hit counts into each other.
    When a persistent chunk cache is configured
    (:mod:`repro.pattern.persist`) the private store attaches to it:
    locality stays per machine, but gate products are shared across
    machines, workers, and process lifetimes without changing any
    result.
    """

    name = "re"

    def __init__(self, ways: int, chunk_ways: int | None = None):
        if not MIN_RE_WAYS <= ways <= MAX_RE_WAYS:
            raise SimulatorError(
                f"RE Qat backend supports ways in [{MIN_RE_WAYS}, "
                f"{MAX_RE_WAYS}], got {ways}"
                + (f"; the dense backend covers [0, {MAX_DENSE_WAYS}]"
                   if ways < MIN_RE_WAYS else "")
            )
        if chunk_ways is None:
            chunk_ways = min(PAPER_CHUNK_WAYS, ways)
        self.ways = ways
        self.nbits = 1 << ways
        from repro.pattern import persist

        self.store = ChunkStore(chunk_ways, cache=persist.attached_cache())
        zero = PatternVector.zeros(ways, self.store)
        self.regs: list[PatternVector] = [zero] * NUM_QAT_REGS
        self._tag_metrics()

    # -- gates --------------------------------------------------------------

    def binary(self, op: str, d: int, a: int, b: int) -> None:
        regs = self.regs
        regs[d] = regs[a].binop(op, regs[b])
        self._volume(op, regs[d])

    def ccnot(self, d: int, b: int, c: int) -> None:
        regs = self.regs
        regs[d] = regs[d].ccnot(regs[b], regs[c])
        self._volume("ccnot", regs[d])

    def cnot(self, d: int, c: int) -> None:
        regs = self.regs
        regs[d] = regs[d] ^ regs[c]
        self._volume("cnot", regs[d])

    def cswap(self, a: int, b: int, ctrl: int) -> None:
        regs = self.regs
        regs[a], regs[b] = regs[a].cswap(regs[b], regs[ctrl])
        self._volume("cswap", regs[a])

    def swap(self, a: int, b: int) -> None:
        regs = self.regs
        regs[a], regs[b] = regs[b], regs[a]
        self._volume("swap", regs[a])

    def invert(self, d: int) -> None:
        self.regs[d] = ~self.regs[d]
        self._volume("not", self.regs[d])

    def zero(self, d: int) -> None:
        self.regs[d] = PatternVector.zeros(self.ways, self.store)
        self._volume("zero", self.regs[d])

    def one(self, d: int) -> None:
        self.regs[d] = PatternVector.ones(self.ways, self.store)
        self._volume("one", self.regs[d])

    def had(self, d: int, k: int) -> None:
        self.regs[d] = PatternVector.hadamard(self.ways, k, self.store)
        self._volume("had", self.regs[d])

    # -- measurement ---------------------------------------------------------

    def meas(self, reg: int, channel: int) -> int:
        return self.regs[reg].meas(channel)

    def next(self, reg: int, channel: int) -> int:
        return self.regs[reg].next(channel)

    def pop_after(self, reg: int, channel: int) -> int:
        return self.regs[reg].pop_after(channel)

    # -- values ---------------------------------------------------------------

    def vector(self, reg: int) -> PatternVector:
        """The compressed value of register ``reg`` (immutable)."""
        return self.regs[reg]

    def read(self, reg: int) -> AoB:
        return self.regs[reg].to_aob()

    def write(self, reg: int, value) -> None:
        if isinstance(value, PatternVector):
            if value.store is not self.store:
                value = PatternVector(
                    self.ways,
                    tuple(
                        (self.store.intern(value.store.chunk(sym)), count)
                        for sym, count in value.runs
                    ),
                    self.store,
                )
            self.regs[reg] = value
        else:
            self.regs[reg] = PatternVector.from_aob(
                value, ways=self.ways, store=self.store
            )

    # -- checkpoint / fault surfaces ------------------------------------------

    def snapshot(self) -> tuple:
        """``(runs per register, chunk payloads)`` -- a value snapshot.

        The chunk payloads pin the meaning of every symbol id at capture
        time, so the snapshot stays valid even if the store later
        re-interns (degradation) or is restored from a checkpoint.
        """
        runs = tuple(pv.runs for pv in self.regs)
        chunks = tuple(np.array(c.words, copy=True) for c in self.store.chunks())
        return (runs, chunks)

    def restore(self, snap: tuple) -> None:
        runs, chunks = snap
        if len(runs) != NUM_QAT_REGS:
            raise SimulatorError(
                f"snapshot covers {len(runs)} registers, expected {NUM_QAT_REGS}"
            )
        self.store.restore_chunks(chunks)
        self.regs = [
            PatternVector(self.ways, reg_runs, self.store) for reg_runs in runs
        ]

    def flip_bit(self, reg: int, word: int, bit: int) -> None:
        """Copy-on-write bit flip: interned chunks are never mutated.

        A soft error against a compressed register lands on exactly one
        entanglement channel of that register; every other register (and
        every other run sharing the chunk symbol) keeps its value.
        """
        channel = (word << 6) | bit
        self.regs[reg] = self.regs[reg].with_flipped_bit(channel)

    def stats(self) -> dict:
        out = {"backend": self.name, "ways": self.ways,
               "chunk_ways": self.store.chunk_ways,
               "total_runs": sum(pv.num_runs for pv in self.regs)}
        out.update(self.store.stats())
        return out

    def _volume(self, op: str, result: PatternVector) -> None:
        """Telemetry: count compressed-op volume in *runs*, not bits.

        The dense kernels report AoB bit volume; here the honest unit of
        work is the run walk, so ``qat.re.runs.<op>`` counts runs
        touched and ``qat.re.ops`` the compressed operations.  The
        chunkstore's own hit/miss/bytes-saved counters fire underneath.
        """
        if _obs.active:
            metrics = _obs.current().metrics
            metrics.counter("qat.re.ops").inc()
            metrics.counter(f"qat.re.runs.{op}").add(result.num_runs)
