"""Pattern integers: superposed words built from entangled pbits.

A :class:`Pint` is a little-endian tuple of pbit values (bit 0 first), all
sharing one :class:`~repro.pbp.context.PbpContext`.  Arithmetic lowers
through the gate library (:mod:`repro.gates.library`) so the exact same
circuits run on dense AoB values, compressed pattern vectors, or -- under
a :class:`~repro.pbp.trace.TraceContext` -- into a
:class:`~repro.gates.ir.GateCircuit` for emission as Qat assembly.

Because PBP measurement is non-destructive (paper section 2.7), every
query method (:meth:`measure`, :meth:`distribution`, :meth:`sample`,
:meth:`at`) leaves the value intact and may be freely interleaved with
further computation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EntanglementError, MeasurementError
from repro.gates import library


class Pint:
    """A superposed ``width``-bit unsigned integer (one value per channel)."""

    __slots__ = ("ctx", "bits", "channels")

    def __init__(self, ctx, bits: tuple, channels: int = 0):
        if not bits:
            raise ValueError("a pint needs at least one pbit")
        self.ctx = ctx
        self.bits = tuple(bits)
        #: Bitmask of Hadamard channel sets this value is entangled over.
        self.channels = channels

    # -- shape -------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of pbits in the word."""
        return len(self.bits)

    def _join(self, other: "Pint") -> int:
        if not isinstance(other, Pint):
            raise TypeError(f"expected Pint, got {type(other).__name__}")
        if other.ctx is not self.ctx:
            raise EntanglementError("pints belong to different contexts")
        return self.channels | other.channels

    def _same_width(self, other: "Pint") -> None:
        if self.width != other.width:
            raise EntanglementError(
                f"width mismatch: {self.width} vs {other.width}"
            )

    def resized(self, width: int) -> "Pint":
        """Zero-extend or truncate to ``width`` bits."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if width <= self.width:
            return Pint(self.ctx, self.bits[:width], self.channels)
        zero = self.ctx.const(0)
        return Pint(
            self.ctx, self.bits + (zero,) * (width - self.width), self.channels
        )

    # -- arithmetic (Figure 9 pint_* operations) ------------------------------------

    def __add__(self, other: "Pint") -> "Pint":
        """Wrapping addition at the wider operand's width."""
        chans = self._join(other)
        w = max(self.width, other.width)
        a, b = self.resized(w), other.resized(w)
        total, _ = library.ripple_add(self.ctx.alg, a.bits, b.bits)
        return Pint(self.ctx, tuple(total), chans)

    def add_expand(self, other: "Pint") -> "Pint":
        """Addition widened by one bit so the carry is kept."""
        chans = self._join(other)
        w = max(self.width, other.width)
        a, b = self.resized(w), other.resized(w)
        total, carry = library.ripple_add(self.ctx.alg, a.bits, b.bits)
        return Pint(self.ctx, tuple(total) + (carry,), chans)

    def __sub__(self, other: "Pint") -> "Pint":
        """Wrapping two's-complement subtraction."""
        chans = self._join(other)
        w = max(self.width, other.width)
        a, b = self.resized(w), other.resized(w)
        diff, _ = library.ripple_sub(self.ctx.alg, a.bits, b.bits)
        return Pint(self.ctx, tuple(diff), chans)

    def __mul__(self, other: "Pint") -> "Pint":
        """Full-width product (``width = w_a + w_b``) -- ``pint_mul``.

        When the operands superpose over *disjoint* channel sets the
        product is entangled over the union (Figure 9's 8-way ``b * c``);
        with shared channels it computes correlated products such as
        squares, exactly as the paper cautions.
        """
        chans = self._join(other)
        product = library.multiply(self.ctx.alg, self.bits, other.bits)
        return Pint(self.ctx, tuple(product), chans)

    def eq(self, other: "Pint") -> "Pint":
        """Single-pbit comparison: 1 in channels where values match (``pint_eq``)."""
        chans = self._join(other)
        w = max(self.width, other.width)
        a, b = self.resized(w), other.resized(w)
        bit = library.equals(self.ctx.alg, a.bits, b.bits)
        return Pint(self.ctx, (bit,), chans)

    def eq_const(self, value: int) -> "Pint":
        """Single-pbit comparison against a classical constant."""
        bit = library.equals_const(self.ctx.alg, self.bits, value)
        return Pint(self.ctx, (bit,), self.channels)

    def ne(self, other: "Pint") -> "Pint":
        """Single-pbit inequality."""
        eq = self.eq(other)
        return Pint(self.ctx, (self.ctx.alg.bnot(eq.bits[0]),), eq.channels)

    def lt(self, other: "Pint") -> "Pint":
        """Single-pbit unsigned ``self < other``."""
        chans = self._join(other)
        w = max(self.width, other.width)
        a, b = self.resized(w), other.resized(w)
        bit = library.less_than(self.ctx.alg, a.bits, b.bits)
        return Pint(self.ctx, (bit,), chans)

    def le(self, other: "Pint") -> "Pint":
        """Single-pbit unsigned ``self <= other`` (NOT other < self)."""
        gt = other.lt(self)
        return Pint(self.ctx, (self.ctx.alg.bnot(gt.bits[0]),), gt.channels)

    def gt(self, other: "Pint") -> "Pint":
        """Single-pbit unsigned ``self > other``."""
        return other.lt(self)

    def ge(self, other: "Pint") -> "Pint":
        """Single-pbit unsigned ``self >= other``."""
        return other.le(self)

    def min(self, other: "Pint") -> "Pint":
        """Channel-wise unsigned minimum (a lt-comparator feeding a mux)."""
        w = max(self.width, other.width)
        a, b = self.resized(w), other.resized(w)
        return a.lt(b).mux(a, b)

    def max(self, other: "Pint") -> "Pint":
        """Channel-wise unsigned maximum."""
        w = max(self.width, other.width)
        a, b = self.resized(w), other.resized(w)
        return a.lt(b).mux(b, a)

    def square(self) -> "Pint":
        """Channel-wise ``self * self`` -- the shared-channel product the
        paper's section 4.1 warns a careless ``pint_mul`` computes."""
        return self * self

    # -- two's-complement (signed) views ------------------------------------------

    def negate(self) -> "Pint":
        """Two's-complement negation at this width (``~x + 1``)."""
        one = self.ctx.pint_mk(self.width, 1)
        inverted = ~self
        total, _ = library.ripple_add(self.ctx.alg, inverted.bits, one.bits)
        return Pint(self.ctx, tuple(total), self.channels)

    def sign_bit(self) -> "Pint":
        """The sign pbit (MSB) of this word read as two's complement."""
        return Pint(self.ctx, (self.bits[-1],), self.channels)

    def abs(self) -> "Pint":
        """Two's-complement absolute value (MIN wraps to itself)."""
        return self.sign_bit().mux(self.negate(), self)

    def lt_signed(self, other: "Pint") -> "Pint":
        """Single-pbit signed ``self < other``.

        Flipping both sign bits maps two's-complement order onto unsigned
        order (an XOR with ``1 << (w-1)``), then the unsigned comparator
        applies.
        """
        chans = self._join(other)
        w = max(self.width, other.width)
        a = self.sign_extended(w)
        b = other.sign_extended(w)
        alg = self.ctx.alg
        a_bits = a.bits[:-1] + (alg.bnot(a.bits[-1]),)
        b_bits = b.bits[:-1] + (alg.bnot(b.bits[-1]),)
        bit = library.less_than(alg, a_bits, b_bits)
        return Pint(self.ctx, (bit,), chans)

    def sign_extended(self, width: int) -> "Pint":
        """Extend to ``width`` bits replicating the sign pbit."""
        if width < self.width:
            raise EntanglementError("sign_extended cannot truncate")
        sign = self.bits[-1]
        return Pint(
            self.ctx,
            self.bits + (sign,) * (width - self.width),
            self.channels,
        )

    # -- bitwise -----------------------------------------------------------------------

    def _bitwise(self, other: "Pint", op: str) -> "Pint":
        chans = self._join(other)
        self._same_width(other)
        out = library.logical_ops(self.ctx.alg, self.bits, other.bits, op)
        return Pint(self.ctx, tuple(out), chans)

    def __and__(self, other: "Pint") -> "Pint":
        return self._bitwise(other, "and")

    def __or__(self, other: "Pint") -> "Pint":
        return self._bitwise(other, "or")

    def __xor__(self, other: "Pint") -> "Pint":
        return self._bitwise(other, "xor")

    def __invert__(self) -> "Pint":
        alg = self.ctx.alg
        return Pint(self.ctx, tuple(alg.bnot(b) for b in self.bits), self.channels)

    def mux(self, when_true: "Pint", when_false: "Pint") -> "Pint":
        """Per-channel select using this single-pbit value as the condition."""
        if self.width != 1:
            raise EntanglementError("mux condition must be a single pbit")
        when_true._same_width(when_false)
        chans = self.channels | when_true.channels | when_false.channels
        out = library.mux(
            self.ctx.alg, self.bits[0], when_true.bits, when_false.bits
        )
        return Pint(self.ctx, tuple(out), chans)

    def __lshift__(self, amount: int) -> "Pint":
        """Shift left by a classical constant, widening."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        zero = self.ctx.const(0)
        return Pint(self.ctx, (zero,) * amount + self.bits, self.channels)

    # -- measurement (all non-destructive) ------------------------------------------------

    def at(self, channel: int) -> int:
        """The classical value this word holds in one entanglement channel."""
        if channel < 0:
            raise MeasurementError(f"channel must be non-negative, got {channel}")
        if not hasattr(self.bits[0], "meas"):
            raise MeasurementError(
                "this pint holds no data (trace context): compile the "
                "circuit and run it on a simulator to observe values"
            )
        value = 0
        for i, bit in enumerate(self.bits):
            value |= bit.meas(channel) << i
        return value

    def measure(self) -> list[int]:
        """Sorted distinct values across all channels (``pint_measure``)."""
        from repro.pbp.measure import measure_distribution

        return sorted(measure_distribution(self))

    def distribution(self) -> dict[int, float]:
        """Probability of each value (channel counts / :math:`2^E`)."""
        from repro.pbp.measure import measure_distribution

        counts = measure_distribution(self)
        total = 1 << self.ctx.ways
        return {value: count / total for value, count in counts.items()}

    def counts(self) -> dict[int, int]:
        """Raw channel count per value."""
        from repro.pbp.measure import measure_distribution

        return dict(measure_distribution(self))

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Random channel sampling -- what a quantum measurement would return,
        except the superposition survives."""
        channels = rng.integers(0, 1 << self.ctx.ways, size=n)
        return np.array([self.at(int(c)) for c in channels])

    def __repr__(self) -> str:
        return (
            f"Pint(width={self.width}, ways={self.ctx.ways}, "
            f"channels={self.channels:#x})"
        )
