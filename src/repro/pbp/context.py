"""PBP execution context: substrate choice and entanglement-channel bookkeeping.

A :class:`PbpContext` fixes the entanglement degree ``ways`` for a
computation, picks the value substrate (dense AoB up to the hardware's
16-way limit, run-length compressed pattern vectors beyond -- exactly the
paper's section 1.2 split), and hands out *disjoint* Hadamard channel sets,
the discipline that made Figure 9's ``b * c`` an 8-way entangled product
rather than a 4-way entangled square.
"""

from __future__ import annotations

from repro.aob import AoB
from repro.aob.bitvector import MAX_DENSE_WAYS
from repro.errors import ChannelExhaustedError, EntanglementError
from repro.gates.alg import ValueAlgebra
from repro.pattern import ChunkStore, PatternVector
from repro.pattern.vector import PAPER_CHUNK_WAYS
from repro.pbp.pint import Pint

BACKENDS = ("auto", "aob", "pattern")


class PbpContext:
    """Owns the substrate and the entanglement-channel allocator.

    Parameters
    ----------
    ways:
        Total entanglement degree: every pbit in this context is an array
        of :math:`2^{ways}` bits (possibly compressed).
    backend:
        ``"aob"`` for dense vectors, ``"pattern"`` for RE-compressed
        vectors, or ``"auto"`` (dense up to the Qat hardware's 16-way,
        compressed beyond).
    chunk_ways:
        Chunk width for the pattern backend (the paper's hardware chunks
        are 16-way / 65,536 bits; tests may use smaller).
    store:
        Optional explicit :class:`ChunkStore` (pattern backend).
    """

    def __init__(
        self,
        ways: int,
        backend: str = "auto",
        chunk_ways: int | None = None,
        store: ChunkStore | None = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if ways < 0:
            raise EntanglementError(f"ways must be non-negative, got {ways}")
        if backend == "auto":
            backend = "aob" if ways <= PAPER_CHUNK_WAYS else "pattern"
        if backend == "aob" and ways > MAX_DENSE_WAYS:
            raise EntanglementError(
                f"{ways}-way is too wide for the dense backend; use 'pattern'"
            )
        self.ways = ways
        self.backend = backend
        if backend == "pattern":
            if store is None:
                cw = chunk_ways if chunk_ways is not None else min(PAPER_CHUNK_WAYS, ways)
                store = ChunkStore(cw)
            self.store: ChunkStore | None = store
            self.alg = ValueAlgebra(ways, PatternVector, store)
        else:
            self.store = None
            self.alg = ValueAlgebra(ways, AoB)
        self._used_channels = 0  # bitmask over Hadamard indices 0..ways-1

    # -- channel allocation ----------------------------------------------------

    @property
    def used_channel_mask(self) -> int:
        """Bitmask of Hadamard channel sets already claimed."""
        return self._used_channels

    def claim_channels(self, mask: int) -> None:
        """Mark Hadamard channel sets as used; raises on any overlap."""
        if mask < 0 or mask >> self.ways:
            raise EntanglementError(
                f"channel mask {mask:#x} exceeds {self.ways} ways"
            )
        if mask & self._used_channels:
            raise EntanglementError(
                f"channel sets {mask & self._used_channels:#x} already claimed"
            )
        self._used_channels |= mask

    def alloc_channels(self, count: int) -> int:
        """Claim the ``count`` lowest unused channel sets; returns the mask."""
        mask = 0
        found = 0
        for k in range(self.ways):
            if not (self._used_channels >> k) & 1:
                mask |= 1 << k
                found += 1
                if found == count:
                    break
        if found < count:
            raise ChannelExhaustedError(
                f"requested {count} channel sets but only {found} remain "
                f"of {self.ways}"
            )
        self._used_channels |= mask
        return mask

    # -- pint constructors --------------------------------------------------------

    def pint_mk(self, width: int, value: int) -> Pint:
        """Constant pattern integer (Figure 9 ``pint_mk``)."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        bits = tuple(self.alg.const((value >> i) & 1) for i in range(width))
        return Pint(self, bits, channels=0)

    def pint_h(self, width: int, channel_mask: int) -> Pint:
        """Hadamard superposition over explicit channel sets (``pint_h``).

        Bit ``i`` of the result is ``H(k_i)`` where ``k_i`` is the ``i``-th
        set bit of ``channel_mask``; the mask must have exactly ``width``
        bits set, all of them unclaimed.  The result takes each value
        ``0 .. 2**width - 1`` with equal probability.
        """
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        ks = [k for k in range(self.ways) if (channel_mask >> k) & 1]
        if channel_mask < 0 or channel_mask >> self.ways or len(ks) != width:
            raise EntanglementError(
                f"channel mask {channel_mask:#x} must select exactly {width} "
                f"of {self.ways} channel sets"
            )
        self.claim_channels(channel_mask)
        bits = tuple(self.alg.had(k) for k in ks)
        return Pint(self, bits, channels=channel_mask)

    def pint_h_fresh(self, width: int) -> Pint:
        """Hadamard superposition over the next ``width`` unused channel sets."""
        mask = self.alloc_channels(width)
        ks = [k for k in range(self.ways) if (mask >> k) & 1]
        bits = tuple(self.alg.had(k) for k in ks)
        return Pint(self, bits, channels=mask)

    def pint_from_values(self, values: list) -> Pint:
        """Build a pint directly from per-bit pbit values (advanced use)."""
        return Pint(self, tuple(values), channels=0)

    # -- raw pbit helpers ------------------------------------------------------------

    def const(self, bit: int):
        """The constant pbit 0 or 1 as a substrate value."""
        return self.alg.const(bit)

    def had(self, k: int):
        """The ``H(k)`` pbit as a substrate value."""
        return self.alg.had(k)

    def __repr__(self) -> str:
        return (
            f"PbpContext(ways={self.ways}, backend={self.backend!r}, "
            f"used={self._used_channels:#x})"
        )
