"""Word-level parallel-bit-pattern API: pattern integers (``pint``).

This is the programming model of the paper's Figure 9 -- the layer at
which the LCPC'20 software-only prototype exposes PBP computing::

    ctx = PbpContext(ways=8)
    a = ctx.pint_mk(4, 15)        # the constant 15
    b = ctx.pint_h(4, 0x0f)       # 0..15 on channels 0-3
    c = ctx.pint_h(4, 0xf0)       # 0..15 on channels 4-7
    d = b * c                     # 8-way entangled product
    e = d.eq(a)                   # pbit: 1 where product == 15
    f = e * b                     # zero the non-factors
    f.measure()                   # {0, 1, 3, 5, 15}

The context chooses the substrate (dense :class:`~repro.aob.AoB` or
compressed :class:`~repro.pattern.PatternVector`) and hands out
entanglement-channel sets; :class:`Pint` carries little-endian pbit words
with arithmetic lowered through :mod:`repro.gates.library`.
"""

from repro.pbp.context import PbpContext
from repro.pbp.measure import measure_distribution, values_where
from repro.pbp.pint import Pint

# ``pbp.trace`` is the gate-recording *compiler* (TraceContext), not a
# runtime tracer -- re-exported as ``compile_trace`` so it cannot be
# confused with ``repro.obs`` tracing or ``repro.cpu.trace``.
from repro.pbp import trace as compile_trace
from repro.pbp.trace import TraceContext

__all__ = [
    "PbpContext",
    "Pint",
    "TraceContext",
    "compile_trace",
    "measure_distribution",
    "values_where",
]
