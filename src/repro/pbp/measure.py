"""Non-destructive measurement of pattern integers.

The paper stresses (section 2.7) that PBP measurement returns *all* values
in an entangled superposition without collapsing it.  This module provides
the whole-distribution readout:

- for the dense AoB backend, a vectorized assemble-and-count over all
  :math:`2^E` channels, and
- for the pattern backend, a joint run-merge across the word's pbits that
  counts each *distinct chunk-symbol tuple* once (memoized), so perfectly
  regular superpositions are measured in time independent of
  :math:`2^E` -- the same symbolic-computation win the RE representation
  gives gate operations.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.aob import AoB
from repro.errors import MeasurementError
from repro.pattern import PatternVector
from repro.pbp.pint import Pint

_MAX_WIDTH = 32  # assembled values are held in uint32 lanes


def _dense_value_counts(chunks: list[AoB]) -> dict[int, int]:
    """Counts of assembled values over a list of equal-width AoB pbits."""
    acc = np.zeros(chunks[0].nbits, dtype=np.uint32)
    for i, chunk in enumerate(chunks):
        acc |= chunk.to_bool_array().astype(np.uint32) << np.uint32(i)
    values, counts = np.unique(acc, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def measure_distribution(pint: Pint) -> Counter[int]:
    """Channel count per distinct value of ``pint`` (non-destructive).

    The sum of the counts is always :math:`2^{ways}`: every entanglement
    channel holds exactly one value.
    """
    if pint.width > _MAX_WIDTH:
        raise MeasurementError(
            f"measurement supports up to {_MAX_WIDTH}-bit pints, got {pint.width}"
        )
    first = pint.bits[0]
    if isinstance(first, AoB):
        return Counter(_dense_value_counts(list(pint.bits)))
    if isinstance(first, PatternVector):
        return _pattern_distribution(list(pint.bits))
    raise MeasurementError(
        f"unsupported pbit type {type(first).__name__} (a trace context "
        "records gates but holds no data: compile and run it instead)"
    )


def _pattern_distribution(bits: list[PatternVector]) -> Counter[int]:
    """Joint run-merge measurement over compressed pbits."""
    store = bits[0].store
    for b in bits[1:]:
        if b.store is not store:
            raise MeasurementError("pbits must share a ChunkStore")
        if b.ways != bits[0].ways:
            raise MeasurementError("pbits must share entanglement ways")
    result: Counter[int] = Counter()
    memo: dict[tuple[int, ...], dict[int, int]] = {}
    # Walk all run lists simultaneously.
    positions = [0] * len(bits)  # run index per pbit
    remaining = [vec.runs[0][1] for vec in bits]
    total_chunks = bits[0].num_chunks
    done = 0
    while done < total_chunks:
        take = min(remaining)
        key = tuple(vec.runs[positions[i]][0] for i, vec in enumerate(bits))
        counts = memo.get(key)
        if counts is None:
            chunks = [store.chunk(sym) for sym in key]
            counts = _dense_value_counts(chunks)
            memo[key] = counts
        for value, count in counts.items():
            result[value] += count * take
        done += take
        for i, vec in enumerate(bits):
            remaining[i] -= take
            if remaining[i] == 0 and done < total_chunks:
                positions[i] += 1
                remaining[i] = vec.runs[positions[i]][1]
    return result


def values_where(pint: Pint, condition) -> list[int]:
    """Distinct values of ``pint`` in channels where ``condition`` holds.

    ``condition`` is a single pbit value (or a width-1 :class:`Pint`).
    This is the Tangled/Qat readout idiom of the paper's section 4.2: walk
    the 1-channels of the condition with ``next`` and assemble the word's
    bits at each with ``meas``.
    """
    if isinstance(condition, Pint):
        if condition.width != 1:
            raise MeasurementError("condition must be a single pbit")
        condition = condition.bits[0]
    seen: set[int] = set()
    for channel in condition.iter_ones():
        seen.add(pint.at(channel))
    return sorted(seen)
