"""Tracing context: compile word-level pint programs to Qat assembly.

.. note::
   Despite the module name, this is a **compiler**, not an execution
   tracer: "trace" here means *recording the gate-level computation* of a
   pint program so it can be emitted as Qat assembly.  Runtime
   observability (spans, counters, Chrome traces) lives in
   :mod:`repro.obs`; the instruction-stream tracer is
   :class:`repro.cpu.trace.ExecutionTrace`.  To avoid import-site
   confusion this module is also re-exported as ``repro.pbp.compile_trace``.

A :class:`TraceContext` looks like a :class:`~repro.pbp.PbpContext` but
evaluates nothing: its "pbit values" are node ids in a
:class:`~repro.gates.ir.GateCircuit`, so running an ordinary pint program
against it *records* the gate-level computation.  :meth:`compile` then
optimizes and emits the recording as Tangled/Qat assembly -- the exact
path by which the paper's Figure 10 listing came out of the word-level
Figure 9 program ("the software was slightly modified to output the
gate-level operations rather than to perform them").

Example::

    ctx = TraceContext(ways=8)
    b = ctx.pint_h(4, 0x0F)
    c = ctx.pint_h(4, 0xF0)
    e = (b * c).eq(ctx.pint_mk(8, 15))
    emission = ctx.compile({"e": e})
    print(emission.text())          # had/and/xor/... Qat assembly

Measurement methods are unavailable while tracing (there is no data);
they raise :class:`~repro.errors.MeasurementError` telling you to run the
compiled program instead.
"""

from __future__ import annotations

from repro.errors import EntanglementError, MeasurementError
from repro.gates import EmitOptions, GateCircuit, emit_qat, optimize
from repro.gates.emit import QatEmission
from repro.pbp.context import PbpContext
from repro.pbp.pint import Pint

__all__ = ["TraceContext"]


class _TraceAlgebra:
    """Bit algebra over circuit node ids (records instead of computing)."""

    def __init__(self, circuit: GateCircuit):
        self.circuit = circuit
        self._const_cache: dict[int, int] = {}
        self._had_cache: dict[int, int] = {}

    def const(self, bit: int) -> int:
        node = self._const_cache.get(bit)
        if node is None:
            node = self.circuit.const(bit)
            self._const_cache[bit] = node
        return node

    def had(self, k: int) -> int:
        node = self._had_cache.get(k)
        if node is None:
            node = self.circuit.had(k)
            self._had_cache[k] = node
        return node

    def band(self, a: int, b: int) -> int:
        return self.circuit.band(a, b)

    def bor(self, a: int, b: int) -> int:
        return self.circuit.bor(a, b)

    def bxor(self, a: int, b: int) -> int:
        return self.circuit.bxor(a, b)

    def bnot(self, a: int) -> int:
        return self.circuit.bnot(a)


class TraceContext(PbpContext):
    """A PbpContext whose computations are recorded, not executed."""

    def __init__(self, ways: int):
        if not 0 <= ways <= 16:
            raise EntanglementError(
                "trace compilation targets the Qat hardware: ways must be <= 16"
            )
        # Deliberately skip PbpContext.__init__: no substrate is built.
        self.ways = ways
        self.backend = "trace"
        self.store = None
        self.circuit = GateCircuit()
        self.alg = _TraceAlgebra(self.circuit)
        self._used_channels = 0

    # -- compilation ---------------------------------------------------------

    def compile(
        self,
        outputs: dict[str, Pint],
        options: EmitOptions | None = None,
        optimized: bool = True,
    ) -> QatEmission:
        """Emit everything reachable from ``outputs`` as Qat assembly.

        Multi-pbit pints expose one output per bit, named ``name``,
        ``name.1``, ``name.2``, ...; the returned emission's
        ``output_regs`` maps each to its Qat register.
        """
        if not outputs:
            raise MeasurementError("compile needs at least one output pint")
        circuit = self.circuit
        circuit.outputs = {}
        for name, pint in outputs.items():
            if pint.ctx is not self:
                raise EntanglementError(f"output {name!r} belongs to another context")
            for i, node in enumerate(pint.bits):
                circuit.mark_output(name if i == 0 else f"{name}.{i}", node)
        target = optimize(circuit) if optimized else circuit
        return emit_qat(target, options or EmitOptions())

