"""Version of the Tangled/Qat reproduction package."""

__version__ = "1.0.0"
