"""Word-level arithmetic lowered to pbit gates.

These are the circuits the word-level ``pint`` API of the paper's Figure 9
compiles into: ripple-carry addition, shift-add multiplication, equality
and magnitude comparison, and multiplexing.  Every function takes a
:class:`~repro.gates.alg.BitAlgebra` plus little-endian lists of pbit
values (bit 0 first), and returns pbit values of the same representation
-- concrete AoB / pattern values when given a value algebra, circuit node
ids when given a :class:`~repro.gates.ir.GateCircuit`.
"""

from __future__ import annotations

from typing import Any, Sequence

Bits = Sequence[Any]


def _check_nonempty(name: str, bits: Bits) -> None:
    if len(bits) == 0:
        raise ValueError(f"{name} must have at least one pbit")


def full_adder(alg, a: Any, b: Any, carry: Any) -> tuple[Any, Any]:
    """One full-adder stage: returns ``(sum, carry_out)``.

    Uses the standard 2-XOR / majority decomposition (5 gates); the
    ``a ^ b`` term is shared between sum and carry.
    """
    axb = alg.bxor(a, b)
    total = alg.bxor(axb, carry)
    carry_out = alg.bor(alg.band(a, b), alg.band(carry, axb))
    return total, carry_out


def ripple_add(alg, a: Bits, b: Bits, carry_in: Any | None = None) -> tuple[list[Any], Any]:
    """Ripple-carry addition of equal-width words; returns ``(sum, carry)``."""
    _check_nonempty("a", a)
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    carry = carry_in if carry_in is not None else alg.const(0)
    out: list[Any] = []
    for bit_a, bit_b in zip(a, b):
        total, carry = full_adder(alg, bit_a, bit_b, carry)
        out.append(total)
    return out, carry


def ripple_sub(alg, a: Bits, b: Bits) -> tuple[list[Any], Any]:
    """Two's-complement subtraction ``a - b``; returns ``(diff, borrow)``.

    ``borrow`` is 1 when ``a < b`` (unsigned), i.e. the complement of the
    final carry of ``a + ~b + 1``.
    """
    _check_nonempty("a", a)
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    not_b = [alg.bnot(bit) for bit in b]
    diff, carry = ripple_add(alg, a, not_b, carry_in=alg.const(1))
    return diff, alg.bnot(carry)


def multiply(alg, a: Bits, b: Bits, out_width: int | None = None) -> list[Any]:
    """Shift-add multiplication; result width defaults to ``len(a)+len(b)``.

    This is the circuit behind the Figure 9 ``pint_mul``: when ``a`` and
    ``b`` are Hadamard superpositions over *disjoint* channel sets, the
    product is entangled over the union of both sets.
    """
    _check_nonempty("a", a)
    _check_nonempty("b", b)
    if out_width is None:
        out_width = len(a) + len(b)
    zero = alg.const(0)
    acc: list[Any] = [zero] * out_width
    for i, bit_a in enumerate(a):
        if i >= out_width:
            break
        # Partial product: b gated by bit i of a, shifted left by i.
        width = min(len(b), out_width - i)
        partial = [alg.band(bit_a, b[j]) for j in range(width)]
        segment, carry = ripple_add(alg, acc[i : i + width], partial)
        acc[i : i + width] = segment
        # Propagate the carry through the remaining accumulator bits.
        pos = i + width
        while pos < out_width:
            total = alg.bxor(acc[pos], carry)
            carry = alg.band(acc[pos], carry)
            acc[pos] = total
            pos += 1
    return acc


def equals(alg, a: Bits, b: Bits) -> Any:
    """Single pbit that is 1 in channels where the words are equal."""
    _check_nonempty("a", a)
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    result = None
    for bit_a, bit_b in zip(a, b):
        same = alg.bnot(alg.bxor(bit_a, bit_b))
        result = same if result is None else alg.band(result, same)
    return result


def equals_const(alg, a: Bits, value: int) -> Any:
    """Single pbit that is 1 where word ``a`` equals the constant ``value``."""
    _check_nonempty("a", a)
    if value < 0 or value >> len(a):
        raise ValueError(f"constant {value} does not fit in {len(a)} bits")
    result = None
    for i, bit_a in enumerate(a):
        term = bit_a if (value >> i) & 1 else alg.bnot(bit_a)
        result = term if result is None else alg.band(result, term)
    return result


def less_than(alg, a: Bits, b: Bits) -> Any:
    """Single pbit that is 1 where ``a < b`` (unsigned)."""
    _, borrow = ripple_sub(alg, list(a), list(b))
    return borrow


def mux(alg, sel: Any, when_true: Bits, when_false: Bits) -> list[Any]:
    """Per-channel select: ``sel ? when_true : when_false`` for each bit.

    The paper notes (section 2.5) that ``cswap`` is a generalization of a
    1-of-2 multiplexor; this is the irreversible-gate expansion used when
    the Fredkin instruction is ablated away.
    """
    if len(when_true) != len(when_false):
        raise ValueError(
            f"width mismatch: {len(when_true)} vs {len(when_false)}"
        )
    not_sel = alg.bnot(sel)
    return [
        alg.bor(alg.band(sel, t), alg.band(not_sel, f))
        for t, f in zip(when_true, when_false)
    ]


def logical_ops(alg, a: Bits, b: Bits, op: str) -> list[Any]:
    """Bitwise and/or/xor across equal-width words."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    fn = {"and": alg.band, "or": alg.bor, "xor": alg.bxor}[op]
    return [fn(x, y) for x, y in zip(a, b)]
