"""Gate-level optimization passes.

The paper's introduction argues (citing Dietz, LCPC 2017) that aggressive
compiler optimization *at the gate level* can cut gate actions by orders of
magnitude.  These passes are the reproduction's rendering of that claim,
and the S5 ablation bench measures their effect on the factoring circuit:

- constant folding with boolean identities (``x & 0 = 0``, ``x ^ x = 0``,
  ``~~x = x``, ...),
- common-subexpression elimination by hash-consing,
- dead-gate elimination (anything unreachable from the outputs).

Passes are applied to a fixpoint by :func:`optimize`; circuits are never
mutated -- a new :class:`~repro.gates.ir.GateCircuit` is returned.
"""

from __future__ import annotations

import time

from repro.gates.ir import GateCircuit, Node
from repro.obs import runtime as _obs

_COMMUTATIVE = ("and", "or", "xor")


def _rebuild(circuit: GateCircuit, replace: list[int | None]) -> GateCircuit:
    """Copy ``circuit`` keeping only nodes whose ``replace`` entry is None,
    remapping arguments through the replacement table."""
    new = GateCircuit()
    mapping: dict[int, int] = {}

    def resolve(i: int) -> int:
        while replace[i] is not None:
            i = replace[i]
        return mapping[i]

    for i, node in enumerate(circuit.nodes):
        if replace[i] is not None:
            continue
        args = tuple(resolve(a) for a in node.args)
        mapping[i] = new._add(Node(node.op, args, k=node.k, name=node.name))
    for name, out in circuit.outputs.items():
        i = out
        while replace[i] is not None:
            i = replace[i]
        new.mark_output(name, mapping[i])
    return new


def fold_constants(circuit: GateCircuit) -> GateCircuit:
    """Apply boolean identities; returns a new circuit.

    Handled identities (``c0``/``c1`` are constant nodes)::

        x & c0 = c0     x & c1 = x      x & x = x
        x | c0 = x      x | c1 = c1     x | x = x
        x ^ c0 = x      x ^ c1 = ~x     x ^ x = c0
        ~c0 = c1        ~c1 = c0        ~~x = x
    """
    nodes = circuit.nodes
    const_of: list[int | None] = [None] * len(nodes)  # 0/1 for known consts
    replace: list[int | None] = [None] * len(nodes)
    rewritten: list[Node] = list(nodes)

    def root(i: int) -> int:
        while replace[i] is not None:
            i = replace[i]
        return i

    for i, node in enumerate(nodes):
        if node.op == "const0":
            const_of[i] = 0
            continue
        if node.op == "const1":
            const_of[i] = 1
            continue
        if node.op in ("had", "input"):
            continue
        args = tuple(root(a) for a in node.args)
        if node.op == "not":
            (a,) = args
            if const_of[a] == 0:
                rewritten[i] = Node("const1")
                const_of[i] = 1
            elif const_of[a] == 1:
                rewritten[i] = Node("const0")
                const_of[i] = 0
            elif rewritten[a].op == "not":
                replace[i] = rewritten[a].args[0]
            else:
                rewritten[i] = Node("not", (a,))
            continue
        a, b = args
        ca, cb = const_of[a], const_of[b]
        if node.op == "and":
            if ca == 0 or cb == 0:
                rewritten[i] = Node("const0")
                const_of[i] = 0
            elif ca == 1:
                replace[i] = b
            elif cb == 1 or a == b:
                replace[i] = a
            else:
                rewritten[i] = Node("and", (a, b))
        elif node.op == "or":
            if ca == 1 or cb == 1:
                rewritten[i] = Node("const1")
                const_of[i] = 1
            elif ca == 0:
                replace[i] = b
            elif cb == 0 or a == b:
                replace[i] = a
            else:
                rewritten[i] = Node("or", (a, b))
        elif node.op == "xor":
            if a == b:
                rewritten[i] = Node("const0")
                const_of[i] = 0
            elif ca == 0:
                replace[i] = b
            elif cb == 0:
                replace[i] = a
            elif ca == 1:
                rewritten[i] = Node("not", (b,))
            elif cb == 1:
                rewritten[i] = Node("not", (a,))
            else:
                rewritten[i] = Node("xor", (a, b))

    patched = GateCircuit(nodes=rewritten, outputs=dict(circuit.outputs))
    return _rebuild(patched, replace)


def eliminate_common_subexpressions(circuit: GateCircuit) -> GateCircuit:
    """Merge structurally identical nodes (hash-consing).

    Commutative gate operands are canonicalized so ``a & b`` and ``b & a``
    unify.  ``input`` nodes unify by name; ``had`` nodes by ``k``.
    """
    seen: dict[tuple, int] = {}
    replace: list[int | None] = [None] * len(circuit.nodes)

    def root(i: int) -> int:
        while replace[i] is not None:
            i = replace[i]
        return i

    for i, node in enumerate(circuit.nodes):
        args = tuple(root(a) for a in node.args)
        if node.op in _COMMUTATIVE and args[0] > args[1]:
            args = (args[1], args[0])
        key = (node.op, args, node.k, node.name)
        prior = seen.get(key)
        if prior is not None:
            replace[i] = prior
        else:
            seen[key] = i
    return _rebuild(circuit, replace)


def eliminate_dead_gates(circuit: GateCircuit) -> GateCircuit:
    """Drop every node not reachable from a named output."""
    live = circuit.live_nodes()
    replace: list[int | None] = [
        None if i in live else -1 for i in range(len(circuit.nodes))
    ]
    # _rebuild treats non-None as a redirect; dead nodes are never referenced
    # by live ones, so redirecting them to themselves-as-dropped is safe only
    # if we filter instead.  Use a direct rebuild here.
    new = GateCircuit()
    mapping: dict[int, int] = {}
    for i, node in enumerate(circuit.nodes):
        if replace[i] is not None:
            continue
        args = tuple(mapping[a] for a in node.args)
        mapping[i] = new._add(Node(node.op, args, k=node.k, name=node.name))
    for name, out in circuit.outputs.items():
        new.mark_output(name, mapping[out])
    return new


_PASSES = (
    ("fold", fold_constants),
    ("cse", eliminate_common_subexpressions),
    ("dce", eliminate_dead_gates),
)


def _run_pass(telemetry, name: str, fn, circuit: GateCircuit) -> GateCircuit:
    """Apply one pass, recording its timing and gates eliminated."""
    if telemetry is None:
        return fn(circuit)
    before = len(circuit.nodes)
    start = time.perf_counter_ns()
    try:
        result = fn(circuit)
    finally:
        dur_ns = time.perf_counter_ns() - start
        if telemetry.tracing:
            telemetry.tracer.complete(
                f"gates.optimize.{name}", ts_ns=start, dur_ns=dur_ns,
                cat="gates", tid="gates",
            )
    telemetry.metrics.histogram("gates.optimize.pass_seconds").observe(
        dur_ns / 1e9
    )
    eliminated = before - len(result.nodes)
    if eliminated > 0:
        telemetry.metrics.counter("gates.eliminated").add(eliminated)
        telemetry.metrics.counter(f"gates.eliminated.{name}").add(eliminated)
    return result


def optimize(circuit: GateCircuit, max_rounds: int = 8) -> GateCircuit:
    """Run fold / CSE / dead-code passes to a fixpoint.

    With telemetry installed (``repro.obs``), each pass is traced as a
    ``gates.optimize.*`` span and eliminated-gate counts accumulate on
    the ``gates.eliminated`` counters.
    """
    telemetry = _obs.current() if _obs.active else None
    current = circuit
    for _ in range(max_rounds):
        before = len(current.nodes)
        for name, fn in _PASSES:
            current = _run_pass(telemetry, name, fn, current)
        if len(current.nodes) == before:
            break
    return current
