"""Gate-level circuit IR, optimizer, and Qat code emitter.

Quantum algorithms "are optimized at the gate level rather than the word
level" (paper section 1, citing Dietz's LCPC 2017 bit-level compiler
work).  This package is the reproduction's gate level:

- :mod:`repro.gates.alg` -- the tiny bit-algebra protocol every backend
  implements (AoB values, pattern vectors, and circuit builders alike),
- :mod:`repro.gates.ir` -- an SSA circuit of gate nodes with an evaluator,
- :mod:`repro.gates.library` -- word-level arithmetic (adders,
  multipliers, comparators) lowered onto any bit algebra,
- :mod:`repro.gates.optimizer` -- constant folding, common-subexpression
  elimination and dead-gate removal,
- :mod:`repro.gates.regalloc` -- Qat register allocators (the paper's
  greedy preserve-everything scheme and a recycling linear scan),
- :mod:`repro.gates.emit` -- emission of Tangled/Qat assembly like the
  paper's Figure 10.
"""

from repro.gates.alg import BitAlgebra
from repro.gates.emit import EmitOptions, emit_qat
from repro.gates.ir import GateCircuit, Node
from repro.gates.library import (
    equals,
    less_than,
    multiply,
    mux,
    ripple_add,
    ripple_sub,
)
from repro.gates.optimizer import optimize
from repro.gates.regalloc import GreedyAllocator, RecyclingAllocator

__all__ = [
    "BitAlgebra",
    "EmitOptions",
    "GateCircuit",
    "GreedyAllocator",
    "Node",
    "RecyclingAllocator",
    "emit_qat",
    "equals",
    "less_than",
    "multiply",
    "mux",
    "optimize",
    "ripple_add",
    "ripple_sub",
]
