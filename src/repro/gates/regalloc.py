"""Qat register allocators.

Qat has 256 AoB registers and *no* memory interface (paper section 2.2),
so spilling is impossible: allocation either fits or the circuit cannot be
emitted.  Two allocators are provided:

- :class:`GreedyAllocator` reproduces the paper's Figure 10 scheme: "the
  register allocation scheme greedily uses registers so that every
  intermediate computation's value is still available in a register at the
  end of the computation".
- :class:`RecyclingAllocator` frees a register at its value's last use,
  the obvious improvement the paper notes would need "far fewer
  registers".
"""

from __future__ import annotations

import heapq

from repro.errors import CircuitError


class AllocationError(CircuitError):
    """The circuit needs more live registers than Qat provides."""


class GreedyAllocator:
    """Fresh register per value; nothing is ever freed."""

    def __init__(self, num_regs: int = 256, first_free: int = 0):
        self.num_regs = num_regs
        self._next = first_free

    def alloc(self) -> int:
        """Claim the next register forever."""
        if self._next >= self.num_regs:
            raise AllocationError(
                f"greedy allocation exhausted all {self.num_regs} Qat registers"
            )
        reg = self._next
        self._next += 1
        return reg

    def free(self, reg: int) -> None:
        """No-op: the greedy scheme preserves every intermediate value."""

    @property
    def high_water(self) -> int:
        """Number of registers ever allocated."""
        return self._next


class RecyclingAllocator:
    """Linear-scan allocation: registers return to a free pool at last use."""

    def __init__(self, num_regs: int = 256, first_free: int = 0):
        self.num_regs = num_regs
        self._free: list[int] = list(range(first_free, num_regs))
        heapq.heapify(self._free)
        self._live = 0
        self._high_water = first_free

    def alloc(self) -> int:
        """Claim the lowest-numbered free register."""
        if not self._free:
            raise AllocationError(
                f"live values exceed all {self.num_regs} Qat registers"
            )
        reg = heapq.heappop(self._free)
        self._live += 1
        self._high_water = max(self._high_water, reg + 1)
        return reg

    def free(self, reg: int) -> None:
        """Return ``reg`` to the pool."""
        heapq.heappush(self._free, reg)
        self._live -= 1

    @property
    def high_water(self) -> int:
        """Highest register number ever claimed, plus one."""
        return self._high_water
