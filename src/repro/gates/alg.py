"""The bit-algebra protocol shared by every PBP backend.

Word-level operations (adders, multipliers, comparators, the whole of
:mod:`repro.gates.library`) are written once against this protocol and
then run unchanged over:

- dense :class:`~repro.aob.AoB` values (immediate evaluation),
- compressed :class:`~repro.pattern.PatternVector` values (symbolic
  evaluation), or
- a :class:`~repro.gates.ir.GateCircuit` builder (no evaluation at all --
  the operations are *recorded* so they can be optimized and emitted as
  Qat assembly, which is how the paper's Figure 10 listing was produced
  from its word-level Figure 9 program).
"""

from __future__ import annotations

from typing import Any, Protocol, TypeVar, runtime_checkable

B = TypeVar("B")


@runtime_checkable
class BitAlgebra(Protocol):
    """Operations over single pbit values of some representation ``B``."""

    def const(self, bit: int) -> Any:
        """The constant pbit 0 or 1."""

    def had(self, k: int) -> Any:
        """The standard entangled superposition ``H(k)``."""

    def band(self, a: Any, b: Any) -> Any:
        """AND of two pbits."""

    def bor(self, a: Any, b: Any) -> Any:
        """OR of two pbits."""

    def bxor(self, a: Any, b: Any) -> Any:
        """XOR of two pbits."""

    def bnot(self, a: Any) -> Any:
        """NOT (Pauli-X analogue) of a pbit."""


class ValueAlgebra:
    """Bit algebra over concrete pbit values (AoB or pattern vectors).

    Parameters
    ----------
    ways:
        Entanglement degree of every value.
    value_type:
        Either :class:`repro.aob.AoB` or :class:`repro.pattern.PatternVector`.
    store:
        Chunk store, pattern backend only.
    """

    def __init__(self, ways: int, value_type: type, store=None):
        self.ways = ways
        self.value_type = value_type
        self.store = store
        self._const_cache: dict[int, Any] = {}
        self._had_cache: dict[int, Any] = {}

    def _make(self, factory: str, *args):
        method = getattr(self.value_type, factory)
        if self.store is not None:
            return method(*args, store=self.store)
        return method(*args)

    def const(self, bit: int):
        value = self._const_cache.get(bit)
        if value is None:
            value = self._make("constant", self.ways, bit)
            self._const_cache[bit] = value
        return value

    def had(self, k: int):
        value = self._had_cache.get(k)
        if value is None:
            value = self._make("hadamard", self.ways, k)
            self._had_cache[k] = value
        return value

    def band(self, a, b):
        return a & b

    def bor(self, a, b):
        return a | b

    def bxor(self, a, b):
        return a ^ b

    def bnot(self, a):
        return ~a
