"""Emission of gate circuits as Tangled/Qat assembly.

This reproduces how the paper's Figure 10 listing was produced: "the
software-only PBP implementation ... was slightly modified to output the
gate-level operations rather than to perform them".  A
:class:`~repro.gates.ir.GateCircuit` is walked in topological order and
each node becomes one (or a few) Qat instructions.

Three target gate sets support the section-5 ablation:

``full``
    Everything in Table 3 is available.  Irreversible 3-operand gates are
    preferred; with the recycling allocator, in-place ``not``/``cnot``/
    ``ccnot`` forms are used when an operand dies at its last use.
``irreversible``
    The section-5 recommendation: only ``and``/``or``/``xor``/``not`` plus
    initializers and measurement; the reversible gates become macros.
``reversible``
    A quantum-style target with *only* thermodynamically reversible gates
    (``not``/``cnot``/``ccnot``/``swap``/``cswap``) plus initializers --
    what Qat code would cost if it inherited quantum constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CircuitError
from repro.gates.ir import GateCircuit
from repro.gates.regalloc import GreedyAllocator, RecyclingAllocator

GATE_SETS = ("full", "irreversible", "reversible")

#: Register map when ``reserved_constants`` is on -- the paper's section 5
#: suggestion: "@0 be 0, @1 be 1, @2 be H(0), @3 be H(1), etc.".
RESERVED_ZERO = 0
RESERVED_ONE = 1
RESERVED_HAD_BASE = 2
NUM_RESERVED = 18


@dataclass
class EmitOptions:
    """Knobs for Qat code emission (see module docstring)."""

    gate_set: str = "full"
    allocator: str = "greedy"  # or "recycle"
    reserved_constants: bool = False
    num_regs: int = 256

    def __post_init__(self) -> None:
        if self.gate_set not in GATE_SETS:
            raise ValueError(f"gate_set must be one of {GATE_SETS}")
        if self.allocator not in ("greedy", "recycle"):
            raise ValueError("allocator must be 'greedy' or 'recycle'")


@dataclass
class QatEmission:
    """Result of emitting a circuit: assembly plus cost accounting."""

    lines: list[str] = field(default_factory=list)
    output_regs: dict[str, int] = field(default_factory=dict)
    instruction_count: int = 0
    word_count: int = 0
    high_water_regs: int = 0

    def text(self) -> str:
        """The program as assembly source."""
        return "\n".join(self.lines) + ("\n" if self.lines else "")


#: Encoded size in 16-bit words of each Qat mnemonic (our encoding keeps
#: every instruction naming more than one @-register at two words).
_WORDS = {
    "and": 2, "or": 2, "xor": 2, "ccnot": 2, "cswap": 2,
    "cnot": 2, "swap": 2,
    "not": 1, "zero": 1, "one": 1, "had": 1,
    "meas": 1, "next": 1, "pop": 1,
}


class _Emitter:
    def __init__(self, circuit: GateCircuit, options: EmitOptions):
        self.circuit = circuit
        self.options = options
        self.emission = QatEmission()
        first_free = NUM_RESERVED if options.reserved_constants else 0
        if options.allocator == "greedy":
            self.alloc = GreedyAllocator(options.num_regs, first_free)
        else:
            self.alloc = RecyclingAllocator(options.num_regs, first_free)
        self.live = circuit.live_nodes()
        self.reg_of: dict[int, int] = {}
        self.last_use: dict[int, int] = {}
        self.uses_left: dict[int, int] = {}
        outputs = set(circuit.outputs.values())
        for i, node in enumerate(circuit.nodes):
            if i not in self.live:
                continue
            for arg in node.args:
                self.last_use[arg] = i
                self.uses_left[arg] = self.uses_left.get(arg, 0) + 1
        for out in outputs:
            # Outputs stay live to the end of the program.
            self.last_use[out] = len(circuit.nodes)
            self.uses_left[out] = self.uses_left.get(out, 0) + 1

    # -- low-level helpers ---------------------------------------------------

    def emit(self, mnemonic: str, *operands: str) -> None:
        line = f"{mnemonic}\t{','.join(operands)}" if operands else mnemonic
        self.emission.lines.append(line)
        self.emission.instruction_count += 1
        self.emission.word_count += _WORDS[mnemonic]

    def consume(self, node_id: int) -> None:
        """Record one use of a node; free its register at the last one."""
        self.uses_left[node_id] -= 1
        if self.uses_left[node_id] == 0 and node_id not in self._pinned:
            self.alloc.free(self.reg_of[node_id])

    def dies_here(self, node_id: int) -> bool:
        """True if this is the final use and in-place reuse is allowed."""
        return (
            self.options.allocator == "recycle"
            and self.uses_left.get(node_id, 0) == 1
            and node_id not in self._pinned
        )

    def take_over(self, node_id: int) -> int:
        """Steal a dying operand's register for the result (no free/alloc)."""
        self.uses_left[node_id] -= 1
        return self.reg_of[node_id]

    def copy_into_fresh(self, src_reg: int) -> int:
        """Materialize a copy of ``src_reg`` in a fresh register."""
        dest = self.alloc.alloc()
        if self.options.gate_set == "reversible":
            self.emit("zero", f"@{dest}")
            self.emit("cnot", f"@{dest}", f"@{src_reg}")
        else:
            # Figure 10 idiom: "or @80,@79,@79 is simply making a copy".
            self.emit("or", f"@{dest}", f"@{src_reg}", f"@{src_reg}")
        return dest

    # -- leaves ----------------------------------------------------------------

    def emit_const(self, node_id: int, bit: int) -> None:
        if self.options.reserved_constants:
            self.reg_of[node_id] = RESERVED_ONE if bit else RESERVED_ZERO
            return
        reg = self.alloc.alloc()
        self.emit("one" if bit else "zero", f"@{reg}")
        self.reg_of[node_id] = reg

    def emit_had(self, node_id: int, k: int) -> None:
        if self.options.reserved_constants:
            self.reg_of[node_id] = RESERVED_HAD_BASE + k
            return
        reg = self.alloc.alloc()
        self.emit("had", f"@{reg}", str(k))
        self.reg_of[node_id] = reg

    # -- gates -----------------------------------------------------------------

    def emit_binary(self, node_id: int, op: str, a: int, b: int) -> None:
        if self.options.gate_set == "reversible":
            self.emit_binary_reversible(node_id, op, a, b)
            return
        ra, rb = self.reg_of[a], self.reg_of[b]
        if self.options.gate_set == "full" and op == "xor" and self.dies_here(a) and b != a:
            # cnot @a,@b == xor @a,@a,@b (section 5): reuse a's register.
            dest = self.take_over(a)
            self.consume(b)
            self.emit("cnot", f"@{dest}", f"@{rb}")
            self.reg_of[node_id] = dest
            return
        self.consume(a)
        self.consume(b)
        dest = self.alloc.alloc()
        self.emit(op, f"@{dest}", f"@{ra}", f"@{rb}")
        self.reg_of[node_id] = dest

    def emit_binary_reversible(self, node_id: int, op: str, a: int, b: int) -> None:
        ra, rb = self.reg_of[a], self.reg_of[b]
        dest = self.alloc.alloc()
        if op == "xor":
            self.emit("zero", f"@{dest}")
            self.emit("cnot", f"@{dest}", f"@{ra}")
            self.emit("cnot", f"@{dest}", f"@{rb}")
        elif op == "and":
            self.emit("zero", f"@{dest}")
            self.emit("ccnot", f"@{dest}", f"@{ra}", f"@{rb}")
        elif op == "or":
            # a | b == a ^ b ^ (a & b)
            self.emit("zero", f"@{dest}")
            self.emit("cnot", f"@{dest}", f"@{ra}")
            self.emit("cnot", f"@{dest}", f"@{rb}")
            self.emit("ccnot", f"@{dest}", f"@{ra}", f"@{rb}")
        else:  # pragma: no cover
            raise CircuitError(f"unknown binary op {op!r}")
        self.consume(a)
        self.consume(b)
        self.reg_of[node_id] = dest

    def emit_not(self, node_id: int, a: int) -> None:
        ra = self.reg_of[a]
        if self.options.gate_set == "reversible":
            # ~a == 1 ^ a: one @dest; cnot @dest,@a
            dest = self.alloc.alloc()
            self.emit("one", f"@{dest}")
            self.emit("cnot", f"@{dest}", f"@{ra}")
            self.consume(a)
            self.reg_of[node_id] = dest
            return
        if self.dies_here(a):
            dest = self.take_over(a)
            self.emit("not", f"@{dest}")
            self.reg_of[node_id] = dest
            return
        # Figure 10 idiom: copy then invert in place so the source survives.
        self.consume(a)
        dest = self.copy_into_fresh(ra)
        self.emit("not", f"@{dest}")
        self.reg_of[node_id] = dest

    # -- driver -------------------------------------------------------------------

    def run(self, input_regs: dict[str, int] | None = None) -> QatEmission:
        input_regs = input_regs or {}
        self._pinned: set[int] = set()
        circuit = self.circuit
        # Pin nodes bound to externally provided registers.
        for i, node in enumerate(circuit.nodes):
            if i in self.live and node.op == "input":
                if node.name not in input_regs:
                    raise CircuitError(
                        f"Qat cannot read host values: bind input {node.name!r} "
                        "to a register via input_regs"
                    )
                self.reg_of[i] = input_regs[node.name]
                self._pinned.add(i)
        if self.options.reserved_constants:
            # Reserved registers are never freed.
            pass
        for i, node in enumerate(circuit.nodes):
            if i not in self.live:
                continue
            if node.op == "const0":
                self.emit_const(i, 0)
                if self.options.reserved_constants:
                    self._pinned.add(i)
            elif node.op == "const1":
                self.emit_const(i, 1)
                if self.options.reserved_constants:
                    self._pinned.add(i)
            elif node.op == "had":
                self.emit_had(i, node.k)
                if self.options.reserved_constants:
                    self._pinned.add(i)
            elif node.op == "input":
                pass
            elif node.op in ("and", "or", "xor"):
                self.emit_binary(i, node.op, node.args[0], node.args[1])
            elif node.op == "not":
                self.emit_not(i, node.args[0])
            else:  # pragma: no cover
                raise CircuitError(f"unknown op {node.op!r}")
        for name, out in circuit.outputs.items():
            self.emission.output_regs[name] = self.reg_of[out]
        self.emission.high_water_regs = self.alloc.high_water
        return self.emission


def emit_qat(
    circuit: GateCircuit,
    options: EmitOptions | None = None,
    input_regs: dict[str, int] | None = None,
) -> QatEmission:
    """Emit ``circuit`` as Qat assembly under ``options``.

    Returns a :class:`QatEmission` whose ``lines`` are bare mnemonics (no
    labels), ready to paste into a Tangled program, and whose
    ``output_regs`` names the Qat register holding each circuit output.
    """
    return _Emitter(circuit, options or EmitOptions()).run(input_regs)
