"""SSA gate-circuit intermediate representation.

A :class:`GateCircuit` is an append-only list of :class:`Node` records in
topological order; node ids are indices into that list.  The circuit
doubles as a :class:`~repro.gates.alg.BitAlgebra`, so the word-level
arithmetic in :mod:`repro.gates.library` can *record* its gate operations
by simply running against a circuit instead of against values.

Node ops::

    const0 / const1        -- constant pbit initializers (zero/one)
    had                    -- standard superposition, arg ``k`` (had @a,k)
    input                  -- externally supplied pbit (named)
    and / or / xor         -- two-operand irreversible gates (section 2.6)
    not                    -- one-operand Pauli-X analogue
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CircuitError

_BINARY_OPS = ("and", "or", "xor")
_LEAF_OPS = ("const0", "const1", "had", "input")
VALID_OPS = _LEAF_OPS + _BINARY_OPS + ("not",)


@dataclass(frozen=True)
class Node:
    """One gate (or leaf) of a circuit.

    Attributes
    ----------
    op:
        One of :data:`VALID_OPS`.
    args:
        Ids of operand nodes (empty for leaves).
    k:
        Hadamard index for ``had`` nodes.
    name:
        Label for ``input`` nodes.
    """

    op: str
    args: tuple[int, ...] = ()
    k: int | None = None
    name: str | None = None


@dataclass
class GateCircuit:
    """A gate-level program: nodes in topological order plus named outputs."""

    nodes: list[Node] = field(default_factory=list)
    outputs: dict[str, int] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    def _add(self, node: Node) -> int:
        for arg in node.args:
            if not 0 <= arg < len(self.nodes):
                raise CircuitError(f"node argument {arg} out of range")
        self.nodes.append(node)
        return len(self.nodes) - 1

    def const(self, bit: int) -> int:
        """Constant pbit leaf (``zero @a`` / ``one @a``)."""
        if bit not in (0, 1):
            raise CircuitError(f"const bit must be 0 or 1, got {bit}")
        return self._add(Node("const1" if bit else "const0"))

    def had(self, k: int) -> int:
        """Hadamard initializer leaf (``had @a,k``)."""
        if not 0 <= k < 16:
            raise CircuitError(f"had k must fit the 4-bit immediate, got {k}")
        return self._add(Node("had", k=k))

    def input(self, name: str) -> int:
        """Externally supplied pbit."""
        return self._add(Node("input", name=name))

    def band(self, a: int, b: int) -> int:
        """AND gate."""
        return self._add(Node("and", (a, b)))

    def bor(self, a: int, b: int) -> int:
        """OR gate."""
        return self._add(Node("or", (a, b)))

    def bxor(self, a: int, b: int) -> int:
        """XOR gate."""
        return self._add(Node("xor", (a, b)))

    def bnot(self, a: int) -> int:
        """NOT gate."""
        return self._add(Node("not", (a,)))

    def mark_output(self, name: str, node: int) -> None:
        """Expose ``node`` as a named result of the circuit."""
        if not 0 <= node < len(self.nodes):
            raise CircuitError(f"output node {node} out of range")
        self.outputs[name] = node

    # -- interrogation ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def gate_count(self) -> int:
        """Number of actual gates (excludes leaves)."""
        return sum(1 for n in self.nodes if n.op not in _LEAF_OPS)

    def op_histogram(self) -> dict[str, int]:
        """Count of nodes per op, useful for the ablation benches."""
        hist: dict[str, int] = {}
        for node in self.nodes:
            hist[node.op] = hist.get(node.op, 0) + 1
        return hist

    def depth(self) -> int:
        """Longest gate chain from any leaf to any output."""
        depths = [0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            if node.op in _LEAF_OPS:
                depths[i] = 0
            else:
                depths[i] = 1 + max(depths[a] for a in node.args)
        if not self.outputs:
            return max(depths, default=0)
        return max(depths[o] for o in self.outputs.values())

    def live_nodes(self) -> set[int]:
        """Ids reachable from the outputs (the rest is dead)."""
        live: set[int] = set()
        stack = list(self.outputs.values())
        while stack:
            i = stack.pop()
            if i in live:
                continue
            live.add(i)
            stack.extend(self.nodes[i].args)
        return live

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, algebra, inputs: dict[str, object] | None = None) -> dict[str, object]:
        """Run the circuit over any :class:`~repro.gates.alg.BitAlgebra`.

        Returns the named outputs as backend values.  ``inputs`` supplies
        values for ``input`` leaves by name.
        """
        inputs = inputs or {}
        values: list[object] = [None] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            if node.op == "const0":
                values[i] = algebra.const(0)
            elif node.op == "const1":
                values[i] = algebra.const(1)
            elif node.op == "had":
                values[i] = algebra.had(node.k)
            elif node.op == "input":
                try:
                    values[i] = inputs[node.name]
                except KeyError:
                    raise CircuitError(f"missing input {node.name!r}") from None
            elif node.op == "and":
                values[i] = algebra.band(values[node.args[0]], values[node.args[1]])
            elif node.op == "or":
                values[i] = algebra.bor(values[node.args[0]], values[node.args[1]])
            elif node.op == "xor":
                values[i] = algebra.bxor(values[node.args[0]], values[node.args[1]])
            elif node.op == "not":
                values[i] = algebra.bnot(values[node.args[0]])
            else:  # pragma: no cover - construction rejects unknown ops
                raise CircuitError(f"unknown op {node.op!r}")
        return {name: values[node] for name, node in self.outputs.items()}
