"""Reciprocal fraction lookup table.

The course's Verilog floating-point library "required a small VMEM file
initializing a lookup table for computing fraction reciprocals" (paper
section 3.1).  This module builds the equivalent table: for each of the
128 possible mantissas ``m``, the correctly rounded bfloat16 rendering of
``1 / 1.m`` as a ``(mantissa', exponent_adjust)`` pair, where
``exponent_adjust`` is ``0`` for ``m == 0`` (``1/1.0 == 1.0``) and ``-1``
otherwise (``1/1.m`` lies in ``(0.5, 1)`` and renormalizes down one
binade).

The table depends only on the 7-bit mantissa, never the exponent, because
``1/(1.m * 2^e) = (1/1.m) * 2^-e`` -- which is why a 128-entry VMEM
suffices in hardware.
"""

from __future__ import annotations


def _round_fraction(numerator: int, denominator: int, bits: int) -> tuple[int, int]:
    """Round ``numerator/denominator`` (in [1, 2)) to ``1.f`` with ``bits``
    fraction bits, RNE.  Returns ``(fraction, exp_carry)`` where
    ``exp_carry`` is 1 if rounding overflowed to 2.0."""
    scaled_num = numerator << (bits + 1)
    q, r = divmod(scaled_num, denominator)
    # q has bits+1 fraction bits; round the last one to nearest even.
    half = q & 1
    q >>= 1
    if half and (r or (q & 1)):
        q += 1
    if q >> (bits + 1):
        return 0, 1  # rounded up to 2.0 -> mantissa 0, exponent +1
    return q & ((1 << bits) - 1), 0


def recip_lut() -> list[tuple[int, int]]:
    """Build the 128-entry reciprocal table (see module docstring)."""
    table: list[tuple[int, int]] = []
    for man in range(128):
        if man == 0:
            table.append((0, 0))  # 1/1.0 == 1.0 exactly
            continue
        # 1/1.m where 1.m = (128 + man) / 128; reciprocal = 128/(128+man),
        # which lies in (0.5, 1): renormalize as 1.f * 2^-1, i.e. compute
        # 256/(128+man) in [1, 2) with 7 fraction bits.
        frac, carry = _round_fraction(256, 128 + man, 7)
        table.append((frac, -1 + carry))
    return table


#: The table itself, built once at import (the "VMEM" contents).
RECIP_LUT: list[tuple[int, int]] = recip_lut()
