"""Software bfloat16 ALU matching the Verilog library given to students.

The paper's Tangled host uses bfloat16 (1 sign / 8 exponent / 7 mantissa)
"because there are ALU implementations of all the basic floating-point
operations that can be treated as single-cycle delay", and its reciprocal
hardware uses "a lookup table for computing fraction reciprocals".

This package provides bit-exact scalar operations (:mod:`repro.bf16.scalar`),
the reciprocal fraction LUT (:mod:`repro.bf16.table`), and vectorized NumPy
batch versions (:mod:`repro.bf16.vector`).  Values are carried as ``int``
bit patterns (0..0xFFFF); a bfloat16 becomes an IEEE float32 by catenating
sixteen zero bits, exactly as the paper notes.
"""

from repro.bf16.scalar import (
    bf16_add,
    bf16_from_float,
    bf16_from_int,
    bf16_mul,
    bf16_neg,
    bf16_recip,
    bf16_to_float,
    bf16_to_int,
)
from repro.bf16.table import RECIP_LUT, recip_lut

__all__ = [
    "RECIP_LUT",
    "bf16_add",
    "bf16_from_float",
    "bf16_from_int",
    "bf16_mul",
    "bf16_neg",
    "bf16_recip",
    "bf16_to_float",
    "bf16_to_int",
    "recip_lut",
]
