"""Vectorized bfloat16 operations over NumPy uint16 arrays.

Batch versions of the scalar ALU for the benchmark harness; semantics are
identical to :mod:`repro.bf16.scalar` (RNE on the float32 boundary,
subnormals flushed), validated against the scalar path by the test suite.
"""

from __future__ import annotations

import numpy as np

EXP_MASK = np.uint16(0x7F80)
MAN_MASK = np.uint16(0x007F)
SIGN_MASK = np.uint16(0x8000)
NAN = np.uint16(0x7FC0)


def decode(bits: np.ndarray) -> np.ndarray:
    """uint16 bfloat16 patterns -> float32 array (subnormals flushed)."""
    bits = np.asarray(bits, dtype=np.uint16)
    flushed = np.where((bits & EXP_MASK) == 0, bits & SIGN_MASK, bits)
    return (flushed.astype(np.uint32) << np.uint32(16)).view(np.float32)


def encode(values: np.ndarray) -> np.ndarray:
    """float32 array -> uint16 bfloat16 patterns with RNE; flush subnormals."""
    f32 = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    lower = f32 & np.uint32(0xFFFF)
    upper = (f32 >> np.uint32(16)).astype(np.uint32)
    round_up = (lower > 0x8000) | ((lower == 0x8000) & ((upper & 1) == 1))
    upper = upper + round_up.astype(np.uint32)
    out = (upper & np.uint32(0xFFFF)).astype(np.uint16)
    # NaN canonicalization and subnormal flush.
    nan = np.isnan(values)
    out = np.where(nan, NAN, out)
    subnormal = ((out & EXP_MASK) == 0) & ~nan
    out = np.where(subnormal, out & SIGN_MASK, out)
    return out


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise bfloat16 addition on bit patterns."""
    with np.errstate(invalid="ignore", over="ignore"):
        return encode(decode(a) + decode(b))


def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise bfloat16 multiplication on bit patterns."""
    with np.errstate(invalid="ignore", over="ignore"):
        return encode(decode(a) * decode(b))


def neg(a: np.ndarray) -> np.ndarray:
    """Elementwise sign flip; NaNs canonicalized."""
    a = np.asarray(a, dtype=np.uint16)
    is_nan = ((a & EXP_MASK) == EXP_MASK) & ((a & MAN_MASK) != 0)
    return np.where(is_nan, NAN, a ^ SIGN_MASK)
