"""Bit-exact scalar bfloat16 operations.

Layout: bit 15 sign, bits 14..7 biased exponent (bias 127), bits 6..0
mantissa.  A bfloat16 is exactly the top half of an IEEE-754 float32.

Rounding is round-to-nearest-even on the float32 boundary, the behaviour
of hardware that computes in (or converts through) float32 and keeps the
top 16 bits.  Subnormal results flush to signed zero, the usual FPGA-class
simplification (and the one the course library used); subnormal *inputs*
are treated as zero.
"""

from __future__ import annotations

import math
import struct

SIGN_MASK = 0x8000
EXP_MASK = 0x7F80
MAN_MASK = 0x007F
EXP_SHIFT = 7
EXP_BIAS = 127

POS_INF = 0x7F80
NEG_INF = 0xFF80
NAN = 0x7FC0
POS_ZERO = 0x0000
NEG_ZERO = 0x8000


def _check(bits: int) -> int:
    if not 0 <= bits <= 0xFFFF:
        raise ValueError(f"bfloat16 bit pattern out of range: {bits:#x}")
    return bits


def is_nan(bits: int) -> bool:
    """True for any NaN encoding."""
    _check(bits)
    return (bits & EXP_MASK) == EXP_MASK and (bits & MAN_MASK) != 0


def is_inf(bits: int) -> bool:
    """True for +/- infinity."""
    _check(bits)
    return (bits & EXP_MASK) == EXP_MASK and (bits & MAN_MASK) == 0


def is_zero_or_subnormal(bits: int) -> bool:
    """True for +/-0 and subnormals (which this ALU flushes to zero)."""
    _check(bits)
    return (bits & EXP_MASK) == 0


def bf16_to_float(bits: int) -> float:
    """Decode to a Python float (exact: bf16 is a float32 prefix)."""
    _check(bits)
    if is_zero_or_subnormal(bits):
        # Flush subnormal inputs, preserving sign.
        bits &= SIGN_MASK
    (value,) = struct.unpack(">f", struct.pack(">I", bits << 16))
    return value


def bf16_from_float(value: float) -> int:
    """Encode a Python float with round-to-nearest-even; flush subnormals."""
    if math.isnan(value):
        return NAN
    if math.isinf(value):
        return POS_INF if value > 0 else NEG_INF
    try:
        (f32,) = struct.unpack(">I", struct.pack(">f", value))
    except OverflowError:
        # Magnitude rounds past float32 max: overflow to signed infinity.
        return POS_INF if value > 0 else NEG_INF
    # Round float32 -> bfloat16 (RNE on bit 16).
    lower = f32 & 0xFFFF
    upper = f32 >> 16
    if lower > 0x8000 or (lower == 0x8000 and (upper & 1)):
        upper += 1
        if (upper & EXP_MASK) == EXP_MASK and (upper & MAN_MASK) == 0:
            # Rounded up into infinity: keep it as signed infinity.
            return upper & 0xFFFF
    upper &= 0xFFFF
    if (upper & EXP_MASK) == 0:
        return upper & SIGN_MASK  # flush subnormal result
    return upper


def bf16_neg(bits: int) -> int:
    """Sign flip (``negf $d``); NaN stays NaN."""
    _check(bits)
    if is_nan(bits):
        return NAN
    return bits ^ SIGN_MASK


def bf16_add(a: int, b: int) -> int:
    """Addition (``addf $d,$s``)."""
    _check(a)
    _check(b)
    if is_nan(a) or is_nan(b):
        return NAN
    if is_inf(a) and is_inf(b) and (a ^ b) & SIGN_MASK:
        return NAN  # inf + -inf
    return bf16_from_float(bf16_to_float(a) + bf16_to_float(b))


def bf16_mul(a: int, b: int) -> int:
    """Multiplication (``mulf $d,$s``)."""
    _check(a)
    _check(b)
    if is_nan(a) or is_nan(b):
        return NAN
    inf = is_inf(a) or is_inf(b)
    zero = is_zero_or_subnormal(a) or is_zero_or_subnormal(b)
    if inf and zero:
        return NAN  # inf * 0
    return bf16_from_float(bf16_to_float(a) * bf16_to_float(b))


def bf16_recip(a: int) -> int:
    """Reciprocal (``recip $d``) via the fraction lookup table.

    Mirrors the course Verilog: the mantissa indexes a pre-computed table
    of normalized reciprocal fractions (:mod:`repro.bf16.table`) while the
    exponent is negated and adjusted; the table entries are themselves
    correctly rounded, so the composite is bit-exact RNE except where the
    exponent under/overflows (flushed / saturated to zero / infinity).
    """
    _check(a)
    if is_nan(a):
        return NAN
    sign = a & SIGN_MASK
    if is_inf(a):
        return sign  # 1/inf = signed zero
    if is_zero_or_subnormal(a):
        return sign | POS_INF  # 1/0 = signed infinity
    from repro.bf16.table import RECIP_LUT

    exp = (a & EXP_MASK) >> EXP_SHIFT
    man = a & MAN_MASK
    frac_man, exp_adjust = RECIP_LUT[man]
    # 1 / (1.m * 2^(exp-127)) = (1/1.m) * 2^(127-exp); 1/1.m is in (0.5, 1]
    # and renormalizes as 1.m' * 2^exp_adjust with exp_adjust in {-1, 0}.
    new_exp = (EXP_BIAS - (exp - EXP_BIAS)) + exp_adjust
    if new_exp <= 0:
        return sign  # underflow: flush
    if new_exp >= 0xFF:
        return sign | POS_INF  # overflow: saturate
    return sign | (new_exp << EXP_SHIFT) | frac_man


def bf16_from_int(value: int) -> int:
    """Signed 16-bit integer to bfloat16 with RNE (``float $d``)."""
    if not -0x8000 <= value <= 0xFFFF:
        raise ValueError(f"int16 value out of range: {value}")
    if value > 0x7FFF:
        value -= 0x10000  # accept raw register bit patterns
    return bf16_from_float(float(value))


def bf16_to_int(bits: int) -> int:
    """bfloat16 to signed 16-bit integer, truncating toward zero (``int $d``).

    Saturates at the int16 limits; NaN converts to 0.  Returned as the
    16-bit two's-complement register pattern (0..0xFFFF).
    """
    _check(bits)
    if is_nan(bits):
        return 0
    value = bf16_to_float(bits)
    if value >= 32767.0:
        truncated = 32767
    elif value <= -32768.0:
        truncated = -32768
    else:
        truncated = math.trunc(value)
    return truncated & 0xFFFF
