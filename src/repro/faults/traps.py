"""Architectural trap model for the Tangled/Qat simulators.

Real pipelined processors define what happens when things go wrong; this
module gives the reproduction the same precision.  Every abnormal event a
simulator can hit is a :class:`TrapCause`; when one fires, the machine
records a :class:`TrapRecord` (cause, PC, disassembled instruction,
cycle) and then acts according to the per-cause :class:`TrapPolicy`:

``raise``
    Raise a typed :class:`~repro.errors.TrapError` (or
    :class:`~repro.errors.SyscallError` for unknown services) carrying
    the record.  This is the default and matches the historical
    behaviour of the simulators, now with full machine context.
``halt``
    Stop the machine cleanly (``machine.halted = True``); the record is
    available on ``machine.traps`` for post-mortem inspection.
``vector``
    Jump to a configured handler address, writing the trap cause code
    and the resume PC into two conventional GPRs first -- enough to
    write trap-handler programs in Tangled assembly that catch a fault
    and resume.

Delivery uses a private control-flow exception
(:class:`TrapDelivered`) so an instruction that faults mid-execution is
aborted precisely: no partial architectural update completes after the
trap point.  The simulators catch it; user code only ever sees
:class:`~repro.errors.TrapError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SyscallError, TrapError


class TrapCause(enum.Enum):
    """Why a trap fired.  ``code`` is the value a vectored handler sees."""

    ILLEGAL_OPCODE = "illegal_opcode"
    MEM_FAULT = "mem_fault"
    UNKNOWN_SYSCALL = "unknown_syscall"
    QAT_FAULT = "qat_fault"
    BF16_FAULT = "bf16_fault"
    WATCHDOG = "watchdog"

    @property
    def code(self) -> int:
        """Numeric cause code delivered to vectored trap handlers."""
        return _CAUSE_CODES[self]


_CAUSE_CODES = {
    TrapCause.ILLEGAL_OPCODE: 1,
    TrapCause.MEM_FAULT: 2,
    TrapCause.UNKNOWN_SYSCALL: 3,
    TrapCause.QAT_FAULT: 4,
    TrapCause.BF16_FAULT: 5,
    TrapCause.WATCHDOG: 6,
}


class TrapAction(enum.Enum):
    """What the machine does when a given cause fires."""

    RAISE = "raise"
    HALT = "halt"
    VECTOR = "vector"


@dataclass(frozen=True)
class TrapRecord:
    """One trap, as recorded on ``machine.traps``."""

    cause: TrapCause
    pc: int
    instruction: str | None  #: disassembled text, None if undecodable
    cycle: int | None  #: timing-model clock, None on the functional sim
    instret: int  #: dynamic instruction count at the fault
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-ready rendering (used by campaign reports)."""
        return {
            "cause": self.cause.value,
            "pc": self.pc,
            "instruction": self.instruction,
            "cycle": self.cycle,
            "instret": self.instret,
            "detail": self.detail,
        }

    def describe(self) -> str:
        parts = [f"trap {self.cause.value} at pc={self.pc:#06x}"]
        if self.instruction is not None:
            parts.append(f"instr={self.instruction!r}")
        if self.cycle is not None:
            parts.append(f"cycle={self.cycle}")
        if self.detail:
            parts.append(self.detail)
        return ", ".join(parts)


@dataclass
class TrapPolicy:
    """Per-cause trap handling configuration.

    ``actions`` overrides the ``default`` action per cause; ``handlers``
    gives a vectored cause its handler address (falling back to
    ``vector_base``).  On a vectored trap the machine writes
    ``cause.code`` into GPR ``cause_reg`` and the resume address into
    GPR ``epc_reg`` before jumping, so a handler can dispatch on the
    cause and resume with ``jumpr``.

    Detection knobs (all default to the historical lenient semantics):

    - ``mem_fence`` -- when set, loads/stores at addresses >= the fence
      raise :data:`TrapCause.MEM_FAULT` (a protected region at the top
      of the 64Ki-word memory).
    - ``strict_qat`` -- ``meas``/``next``/``pop`` channel operands at or
      above the AoB length, and ``had`` with ``k >= ways``, raise
      :data:`TrapCause.QAT_FAULT` instead of wrapping/zeroing.
    - ``trap_bf16`` -- ``addf``/``mulf``/``recip`` results that are NaN
      or infinite raise :data:`TrapCause.BF16_FAULT` instead of
      propagating the IEEE special value.
    """

    default: TrapAction = TrapAction.RAISE
    actions: dict[TrapCause, TrapAction] = field(default_factory=dict)
    vector_base: int = 0x0010
    handlers: dict[TrapCause, int] = field(default_factory=dict)
    cause_reg: int = 13
    epc_reg: int = 14
    mem_fence: int | None = None
    strict_qat: bool = False
    trap_bf16: bool = False

    def action_for(self, cause: TrapCause) -> TrapAction:
        return self.actions.get(cause, self.default)

    def handler_for(self, cause: TrapCause) -> int:
        return self.handlers.get(cause, self.vector_base) & 0xFFFF

    @classmethod
    def halting(cls, **overrides) -> "TrapPolicy":
        """Policy that stops the machine cleanly on every trap."""
        return cls(default=TrapAction.HALT, **overrides)

    @classmethod
    def vectored(cls, base: int, **overrides) -> "TrapPolicy":
        """Policy that vectors every trap to a handler at ``base``."""
        return cls(default=TrapAction.VECTOR, vector_base=base, **overrides)


class TrapDelivered(Exception):
    """Internal control flow: a trap was handled by halt/vector policy.

    Raised by :func:`deliver` after the machine state has been updated
    (halted flag set, or PC redirected to the handler).  The simulators
    catch this to abort the faulting instruction; it must never escape
    to user code.
    """

    def __init__(self, record: TrapRecord):
        self.record = record
        super().__init__(record.describe())


def deliver(machine, cause: TrapCause, detail: str = "",
            instruction: str | None = None, resume_pc: int | None = None,
            service: int | None = None) -> None:
    """Fire a trap on ``machine``.  Never returns normally.

    Under the ``raise`` policy this raises :class:`TrapError` (or
    :class:`SyscallError` when ``service`` is given); under ``halt`` and
    ``vector`` it updates the machine and raises :class:`TrapDelivered`
    for the owning simulator to catch.
    """
    policy = machine.trap_policy
    cycle = machine.cycle_provider() if machine.cycle_provider is not None else None
    record = TrapRecord(
        cause=cause,
        pc=machine.pc,
        instruction=instruction,
        cycle=cycle,
        instret=machine.instret,
        detail=detail,
    )
    machine.traps.append(record)

    from repro.obs import flight as _flight
    from repro.obs import runtime as _obs

    if _flight.RECORDER.enabled:
        _flight.RECORDER.note_trap(record.pc, cause.value, cycle,
                                   record.instret, detail)
    if _obs.active:
        _obs.current().metrics.counter(f"traps.{cause.value}").inc()

    action = policy.action_for(cause)
    if action is TrapAction.RAISE:
        message = detail or f"trap: {cause.value}"
        context = {"pc": record.pc, "cycle": cycle, "instruction": instruction}
        if service is not None:
            raise SyscallError(message, service=service, record=record, **context)
        raise TrapError(message, record=record, **context)
    if action is TrapAction.HALT:
        machine.halted = True
        raise TrapDelivered(record)
    # VECTOR: hand control to the handler, like a real precise trap.
    if resume_pc is None:
        resume_pc = (machine.pc + 1) & 0xFFFF
    machine.write_reg(policy.cause_reg, cause.code)
    machine.write_reg(policy.epc_reg, resume_pc)
    machine.pc = policy.handler_for(cause)
    raise TrapDelivered(record)
