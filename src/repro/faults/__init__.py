"""Robustness layer: architectural traps, fault injection, checkpointing.

Three cooperating pieces:

- :mod:`repro.faults.traps` -- the trap model shared by all three CPU
  simulators (causes, per-cause policies, trap records, delivery).
- :mod:`repro.faults.inject` -- deterministic seeded bit flips against
  architectural state plus gate-level stuck-at plans.
- :mod:`repro.faults.checkpoint` -- integrity-checked snapshot/restore
  of full machine state with periodic auto-checkpointing.

Campaign orchestration (:mod:`repro.faults.campaign`) is re-exported
lazily: it imports :mod:`repro.cpu`, which itself imports the trap model
from this package, so a module-level import here would be circular.
"""

from repro.faults.checkpoint import FORMAT_VERSION, AutoCheckpointer, Checkpoint
from repro.faults.inject import (
    TARGETS,
    FaultEvent,
    FaultPlan,
    apply_event,
    flip_chunk_bit,
    stuck_at_plan,
)
from repro.faults.traps import (
    TrapAction,
    TrapCause,
    TrapDelivered,
    TrapPolicy,
    TrapRecord,
)

_CAMPAIGN_EXPORTS = ("RunResult", "golden_run", "render_report", "run_campaign")

__all__ = [
    "AutoCheckpointer",
    "Checkpoint",
    "FORMAT_VERSION",
    "FaultEvent",
    "FaultPlan",
    "RunResult",
    "TARGETS",
    "TrapAction",
    "TrapCause",
    "TrapDelivered",
    "TrapPolicy",
    "TrapRecord",
    "apply_event",
    "flip_chunk_bit",
    "golden_run",
    "render_report",
    "run_campaign",
    "stuck_at_plan",
]


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from repro.faults import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
