"""Seeded soft-error campaigns over the Tangled/Qat simulators.

A campaign runs the same program ``N`` times, each run with a fresh
simulator and a deterministic per-run :class:`~repro.faults.inject.FaultPlan`
derived from the master seed, and classifies every run the way the
fault-tolerance literature does:

``detected``
    The fault tripped the machinery -- an architectural trap fired
    (illegal opcode, watchdog, Qat fault, ...) or a typed
    :class:`~repro.errors.ReproError` surfaced.
``masked``
    The run completed and the architectural result (GPRs + program
    output) matches the fault-free golden run: the flipped bit was
    dead state.
``silent``
    The run completed *wrong* -- silent data corruption, the case a
    real design must budget hardware against.

The report is a plain dict (JSON-ready, sorted keys, no timestamps), so
two invocations with the same arguments produce byte-identical output --
that determinism is asserted in CI.  When telemetry
(:mod:`repro.obs`) is active the classification counts also land on the
``faults.detected`` / ``faults.masked`` / ``faults.silent`` counters.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.faults.inject import FaultPlan, apply_event
from repro.faults.traps import TrapPolicy
from repro.obs import flight as _flight
from repro.obs import runtime as _obs
from repro.runtime.supervisor import chaos_hook

#: Run outcome labels.  ``toxic`` is the supervised fan-out's poison
#: shard: a run whose worker crashed or hung on every allowed attempt
#: and was quarantined instead of aborting the campaign.
DETECTED, MASKED, SILENT, TOXIC = "detected", "masked", "silent", "toxic"

#: Watchdog slack: a faulted run may legitimately take longer than the
#: golden run (a corrupted branch can re-execute work) before we call it
#: runaway.
_WATCHDOG_FACTOR = 4
_WATCHDOG_SLACK = 64


@dataclass
class RunResult:
    """Classification of one faulted run."""

    run: int
    seed: int
    outcome: str
    events: list[dict] = field(default_factory=list)
    traps: list[dict] = field(default_factory=list)
    error: str | None = None

    def as_dict(self) -> dict:
        return {
            "run": self.run,
            "seed": self.seed,
            "outcome": self.outcome,
            "events": self.events,
            "traps": self.traps,
            "error": self.error,
        }


def _load_program(name: str):
    """Resolve a campaign program by name (lazy: pulls in repro.apps)."""
    from repro.apps import compile_factor_program, fig10_program

    if name == "fig10":
        return fig10_program()
    if name == "factor":
        return compile_factor_program(15, 4, 4).program
    raise ReproError(f"unknown campaign program {name!r} (try fig10, factor)")


def _new_simulator(sim: str, ways: int, trap_policy: TrapPolicy | None,
                   qat_backend: str = "dense"):
    from repro.cpu import FunctionalSimulator, MultiCycleSimulator, PipelinedSimulator

    if sim == "functional":
        return FunctionalSimulator(ways=ways, trap_policy=trap_policy,
                                   qat_backend=qat_backend)
    if sim == "multicycle":
        return MultiCycleSimulator(ways=ways, trap_policy=trap_policy,
                                   qat_backend=qat_backend)
    if sim == "pipelined":
        return PipelinedSimulator(ways=ways, trap_policy=trap_policy,
                                  qat_backend=qat_backend)
    raise ReproError(f"unknown simulator {sim!r}")


def _architectural_result(machine) -> tuple:
    """What a user of the run can observe: GPR file + program output."""
    return (tuple(int(r) for r in machine.regs), tuple(machine.output))


def _drive(sim, plan: FaultPlan | None, max_steps: int) -> int:
    """Step ``sim`` to halt, applying due fault events between steps.

    Returns the number of steps executed (the fan-out progress layer
    turns it into a steps/sec heartbeat)."""
    from repro.cpu import PipelinedSimulator

    pipeline = sim if isinstance(sim, PipelinedSimulator) else None
    step = 0
    while not sim.machine.halted:
        if step >= max_steps:
            from repro.faults.traps import TrapCause, TrapDelivered

            try:
                sim.machine.trap(
                    TrapCause.WATCHDOG,
                    detail=f"campaign watchdog: exceeded {max_steps} steps",
                )
            except TrapDelivered:
                break
        if plan is not None:
            for event in plan.due(step):
                apply_event(sim.machine, event, pipeline=pipeline)
        sim.step()
        step += 1
    return step


def golden_run(program, sim: str = "functional", ways: int = 8,
               qat_backend: str = "dense") -> tuple[tuple, int]:
    """Fault-free reference execution: (architectural result, steps)."""
    reference = _new_simulator(sim, ways, None, qat_backend=qat_backend)
    reference.load(program)
    steps = 0
    while not reference.machine.halted:
        reference.step()
        steps += 1
    return _architectural_result(reference.machine), steps


#: Per-worker-process program cache: campaign tasks arrive carrying only
#: the program *name*, and loading/assembling it once per worker (not
#: once per run) keeps the fan-out overhead flat.
_WORKER_IMAGES: dict[str, object] = {}


def _worker_image(program: str):
    image = _WORKER_IMAGES.get(program)
    if image is None:
        image = _WORKER_IMAGES[program] = _load_program(program)
    return image


def _worker_init() -> None:
    """Set up one campaign worker process.

    Workers forked from an instrumented parent must not write into its
    telemetry (the parent replays per-run hooks from the returned
    durations), and each gets pristine process-global pattern stores.
    The persistent chunk cache keeps its configured *path* (workers of a
    warm campaign share the cache) but drops the inherited instance, so
    the child opens its own sqlite handle instead of reusing the
    parent's.
    """
    from repro.pattern import persist, reset_default_stores

    _obs.install(None)
    persist.worker_reset()
    reset_default_stores()
    _WORKER_IMAGES.clear()


def _single_run(task: tuple, attempt: int = 0) -> tuple[int, dict, float, int, int]:
    """Execute one faulted run; pure function of its task tuple.

    Returns ``(run index, RunResult dict, wall seconds, steps, worker)``
    so results can be merged deterministically regardless of worker
    scheduling; the trailing wall/steps/worker fields feed the progress
    layer and never enter the report.  ``attempt`` is the supervisor's
    retry ordinal (0 on the first execution); the result is attempt-
    independent, but the chaos hook uses it to model faults that heal
    on retry.
    """
    (run, program, seed, sim, ways, faults_per_run, targets, qat_backend,
     golden, golden_steps, mem_span, watchdog) = task
    # Flight recorder: a boundary mark per run (the worker's ring spans
    # runs, so a post-mortem can tell whose events the tail belongs to)
    # plus fresh spill context -- recorded *before* the chaos hook so a
    # chaos crash spills a ring already labeled with this run.
    if _flight.RECORDER.enabled:
        _flight.RECORDER.mark(
            "campaign.run", f"run={run} attempt={attempt} sim={sim}"
        )
    _flight.WORKER_CONTEXT.clear()
    _flight.WORKER_CONTEXT.update(
        program=program, sim=sim, ways=ways, qat_backend=qat_backend,
        run=run, attempt=attempt,
    )
    chaos_hook(run, attempt)
    image = _worker_image(program)
    run_seed = seed * 1_000_003 + run
    plan = FaultPlan.from_seed(
        run_seed,
        faults_per_run,
        max_step=golden_steps,
        ways=ways,
        targets=tuple(targets),
        mem_span=mem_span,
    )
    subject = _new_simulator(sim, ways, None, qat_backend=qat_backend)
    subject.load(image)
    result = RunResult(
        run=run,
        seed=run_seed,
        outcome=MASKED,
        events=[e.as_dict() for e in plan.events],
    )
    t0 = time.perf_counter()
    steps = 0
    try:
        steps = _drive(subject, plan, watchdog)
    except ReproError as exc:
        result.outcome = DETECTED
        result.error = str(exc)
    else:
        if subject.machine.traps:
            result.outcome = DETECTED
        elif _architectural_result(subject.machine) == golden:
            result.outcome = MASKED
        else:
            result.outcome = SILENT
    from repro.obs.progress import worker_ident
    from repro.pattern import persist

    # Run boundary: land this run's write-behind cache appends so a
    # worker killed at its deadline loses at most one run's worth.
    persist.flush()
    result.traps = [r.as_dict() for r in subject.machine.traps]
    return (run, result.as_dict(), time.perf_counter() - t0, steps,
            worker_ident())


def _batch_pending(pending: list, batch: int, image, settle) -> None:
    """Execute pending campaign tasks in lane batches, in-process.

    Each chunk of up to ``batch`` tasks becomes one
    :class:`~repro.cpu.batch.BatchFunctionalSimulator`: every run is a
    lane with its own per-run :class:`FaultPlan` (the same
    ``seed * 1_000_003 + run`` derivation as the serial and ``--jobs``
    paths), fault events are injected on the lane's array slices, and
    classification -- parked-lane error text => ``detected``, trap
    records => ``detected``, architectural result vs golden =>
    ``masked``/``silent`` -- matches :func:`_single_run` field for
    field, so the merged report is byte-identical to the serial
    campaign.  Wall seconds are apportioned evenly across the chunk's
    lanes for the progress heartbeats (never part of the report).
    """
    from repro.cpu.batch import BatchFunctionalSimulator
    from repro.obs.progress import worker_ident

    worker = worker_ident()
    for chunk_start in range(0, len(pending), batch):
        chunk = pending[chunk_start:chunk_start + batch]
        (_, program, seed, sim, ways, faults_per_run, targets, qat_backend,
         golden, golden_steps, mem_span, watchdog) = chunk[0]
        if _flight.RECORDER.enabled:
            _flight.RECORDER.mark(
                "campaign.batch",
                f"runs={chunk[0][0]}..{chunk[-1][0]} lanes={len(chunk)} "
                f"sim={sim}",
            )
        _flight.WORKER_CONTEXT.clear()
        _flight.WORKER_CONTEXT.update(
            program=program, sim=sim, ways=ways, qat_backend=qat_backend,
            run=chunk[0][0], batch=len(chunk),
        )
        plans = [
            FaultPlan.from_seed(
                seed * 1_000_003 + task[0],
                faults_per_run,
                max_step=golden_steps,
                ways=ways,
                targets=tuple(targets),
                mem_span=mem_span,
            )
            for task in chunk
        ]
        subject = BatchFunctionalSimulator(len(chunk), ways=ways,
                                           qat_backend=qat_backend)
        subject.load(image)
        t0 = time.perf_counter()
        lane_steps = subject.run(
            watchdog, plans=plans,
            watchdog_detail=f"campaign watchdog: exceeded {watchdog} steps",
        )
        seconds = (time.perf_counter() - t0) / len(chunk)
        machines = subject.machines
        for lane, task in enumerate(chunk):
            run = task[0]
            result = RunResult(
                run=run,
                seed=seed * 1_000_003 + run,
                outcome=MASKED,
                events=[e.as_dict() for e in plans[lane].events],
            )
            steps = int(lane_steps[lane])
            if machines.errors[lane] is not None:
                result.outcome = DETECTED
                result.error = machines.errors[lane]
                # The serial run's exception path never assigns steps.
                steps = 0
            elif machines.traps[lane]:
                result.outcome = DETECTED
            elif (tuple(int(r) for r in machines.regs[lane]),
                  tuple(machines.output[lane])) == golden:
                result.outcome = MASKED
            else:
                result.outcome = SILENT
            result.traps = [r.as_dict() for r in machines.traps[lane]]
            settle(run, result.as_dict(), seconds, steps, 1, worker)
        from repro.pattern import persist

        persist.flush()


class CampaignInterrupted(ReproError):
    """A fan-out campaign was interrupted (Ctrl-C) mid-flight.

    Carries the partial ``report`` (completed runs only, marked with
    ``"interrupted": true``) so the CLI can still flush it and record a
    ledger row with the ``interrupted`` exit status instead of losing
    the run to a traceback.  Already-completed shards were journaled,
    so ``tangled faults --resume <run-id>`` finishes the campaign.
    """

    def __init__(self, report: dict, done: int, total: int):
        self.report = report
        self.done = done
        self.total = total
        super().__init__(f"campaign interrupted after {done}/{total} runs")


def _toxic_detail(run: int, seed: int, outcome) -> dict:
    """RunResult-shaped dict for a quarantined (poison) shard."""
    return {
        "run": run,
        "seed": seed * 1_000_003 + run,
        "outcome": TOXIC,
        "events": [],
        "traps": [],
        "error": outcome.quarantine_message(),
        "failures": outcome.failure_kinds,
        "blackbox": getattr(outcome, "blackbox", None),
    }


def _campaign_report(program, sim, ways, qat_backend, seed, runs,
                     faults_per_run, targets, golden, golden_steps,
                     results: list[dict]) -> dict:
    """Fold run details into the JSON-ready campaign report."""
    counts = {DETECTED: 0, MASKED: 0, SILENT: 0, TOXIC: 0}
    for detail in results:
        counts[detail["outcome"]] += 1
    total = float(max(len(results), 1))
    return {
        "program": program,
        "sim": sim,
        "ways": ways,
        "qat_backend": qat_backend,
        "seed": seed,
        "runs": runs,
        "faults_per_run": faults_per_run,
        "targets": list(targets),
        "golden": {
            "r0": golden[0][0],
            "r1": golden[0][1],
            "output": list(golden[1]),
            "steps": golden_steps,
        },
        "summary": {
            "detected": counts[DETECTED],
            "masked": counts[MASKED],
            "silent": counts[SILENT],
            "toxic": counts[TOXIC],
            "detected_rate": round(counts[DETECTED] / total, 4),
            "masked_rate": round(counts[MASKED] / total, 4),
            "silent_rate": round(counts[SILENT] / total, 4),
            "toxic_rate": round(counts[TOXIC] / total, 4),
        },
        "runs_detail": results,
    }


def run_campaign(
    program: str = "fig10",
    runs: int = 20,
    seed: int = 7,
    sim: str = "functional",
    ways: int = 8,
    faults_per_run: int = 1,
    targets: tuple[str, ...] = ("gpr", "mem", "qreg"),
    qat_backend: str = "dense",
    jobs: int = 1,
    batch: int = 1,
    tracker=None,
    supervise=None,
    journal=None,
) -> dict:
    """Run a seeded soft-error campaign; returns the JSON-ready report.

    Every run gets its own simulator and a per-run fault plan seeded
    from ``seed`` and the run index, so the whole campaign is a pure
    function of its arguments.  The process-global pattern stores are
    reset first so chunk interning from earlier work (or an earlier
    campaign) can never bleed into this one's RE-backed runs.

    ``jobs > 1`` shards the runs across a *supervised* worker pool
    (:class:`repro.runtime.supervisor.Supervisor`): a worker that
    crashes or exceeds the shard timeout is killed and replaced and its
    run retried with backoff; a run that fails every allowed attempt is
    quarantined as outcome ``toxic`` instead of aborting the campaign.
    Each run is a pure function of ``(seed, run index)`` with its own
    simulator and stores, so the merged report -- results reordered by
    run index, counts recomputed in run order -- is byte-identical to
    the serial campaign whenever nothing was quarantined.
    ``supervise`` (a :class:`~repro.runtime.supervisor.SupervisorConfig`)
    tunes timeouts, retry budget, and the per-worker memory ceiling.

    ``journal`` (a :class:`repro.obs.ledger.ShardJournal`) records every
    completed run as it lands; a journal opened with ``resume=True``
    replays already-completed runs from the ledger and re-executes only
    the missing and toxic ones -- still byte-identical to a one-shot
    campaign.  A ``KeyboardInterrupt`` during the fan-out terminates the
    workers and raises :class:`CampaignInterrupted` carrying the partial
    report instead of losing the run.

    ``tracker`` (a :class:`repro.obs.progress.ProgressTracker`) receives
    one heartbeat per completed run -- worker id, wall seconds, steps --
    as results arrive, off the report path: the report bytes are
    identical with or without it.

    ``batch > 1`` is the third execution strategy: runs are packed into
    lane batches on the NumPy-batched functional simulator
    (:mod:`repro.cpu.batch`), one process, vectorized across machines.
    Classification is per lane and the merged report is byte-identical
    to the serial and ``--jobs`` paths.  Batch mode requires the
    functional simulator (the timing models have no batched
    counterpart) and is mutually exclusive with ``jobs > 1``.
    """
    if runs <= 0:
        raise ReproError(f"runs must be positive, got {runs}")
    if jobs <= 0:
        raise ReproError(f"jobs must be positive, got {jobs}")
    if batch <= 0:
        raise ReproError(f"batch must be positive, got {batch}")
    if batch > 1 and sim != "functional":
        raise ReproError(
            f"batch campaigns need the functional simulator, got {sim!r} "
            f"(the timing models have no batched counterpart)"
        )
    if batch > 1 and jobs > 1:
        raise ReproError(
            "batch and jobs are mutually exclusive fan-out strategies; "
            "use --batch N or --jobs N, not both"
        )
    from repro.obs.ledger import SHARD_DONE, SHARD_TOXIC
    from repro.pattern import reset_default_stores

    reset_default_stores()
    image = _load_program(program)
    golden, golden_steps = golden_run(image, sim=sim, ways=ways,
                                      qat_backend=qat_backend)
    # Concentrate memory faults on the loaded image plus a data margin.
    mem_span = max(64, 2 * len(getattr(image, "words", image)))
    watchdog = golden_steps * _WATCHDOG_FACTOR + _WATCHDOG_SLACK

    tasks = [
        (run, program, seed, sim, ways, faults_per_run, tuple(targets),
         qat_backend, golden, golden_steps, mem_span, watchdog)
        for run in range(runs)
    ]
    fingerprint = {
        "program": program, "runs": runs, "seed": seed, "sim": sim,
        "ways": ways, "faults_per_run": faults_per_run,
        "targets": list(targets), "qat_backend": qat_backend,
    }
    done: dict[int, dict] = {}
    if journal is not None:
        done = journal.begin("faults", fingerprint)
    completed: list[dict] = list(done.values())
    pending = [task for task in tasks if task[0] not in done]
    if tracker is not None and done:
        # Replayed shards never heartbeat; track only what will run.
        tracker.total = len(pending)

    def _settle(run_idx: int, detail: dict, seconds: float, steps: int,
                attempts: int, worker: int) -> None:
        payload = {"run": run_idx, "detail": detail,
                   "seconds": seconds, "steps": steps}
        completed.append(payload)
        if journal is not None:
            status = SHARD_TOXIC if detail["outcome"] == TOXIC \
                else SHARD_DONE
            journal.record(run_idx, status, attempts, payload)
        if tracker is not None:
            tracker.note(worker, seconds, steps=steps)

    interrupted = None
    if pending and jobs > 1 and len(pending) > 1:
        from repro.runtime.supervisor import (
            Supervisor,
            SupervisorConfig,
            SupervisorInterrupted,
        )

        config = supervise if supervise is not None \
            else SupervisorConfig(jobs=jobs)
        _WORKER_IMAGES.setdefault(program, image)

        def _on_result(outcome) -> None:
            if outcome.ok:
                run_idx, detail, seconds, steps, worker = outcome.result
                _settle(run_idx, detail, seconds, steps,
                        outcome.attempts, worker)
            else:
                _settle(outcome.shard,
                        _toxic_detail(outcome.shard, seed, outcome),
                        0.0, 0, outcome.attempts, 0)

        supervisor = Supervisor(
            _single_run, config, initializer=_worker_init,
            on_event=(tracker.note_supervisor
                      if tracker is not None else None),
        )
        try:
            supervisor.run({task[0]: task for task in pending},
                           on_result=_on_result)
        except SupervisorInterrupted as stop:
            interrupted = stop
        if _obs.active:
            # The recovery tallies are parent-side state, published
            # whether or not anything failed -- a clean fan-out records
            # explicit zeros in the supervisor.* counter taxonomy.
            _obs.current().supervisor_run(supervisor.stats.as_dict())
    elif pending and batch > 1:
        _WORKER_IMAGES[program] = image
        _batch_pending(pending, batch, image, _settle)
    elif pending:
        _WORKER_IMAGES[program] = image
        for task in pending:
            run_idx, detail, seconds, steps, worker = _single_run(task)
            _settle(run_idx, detail, seconds, steps, 1, worker)
    if tracker is not None:
        tracker.finish()

    completed.sort(key=lambda payload: payload["run"])
    results = [payload["detail"] for payload in completed]
    if _obs.active:
        for payload in completed:
            # Per-run hook: outcome counters plus a run-duration
            # histogram, so ``tangled faults --stats`` shows both the
            # classification totals and the campaign's timing profile.
            # Replayed here (not in workers) so parallel campaigns feed
            # the same parent-process telemetry as serial ones.
            _obs.current().fault_run(payload["detail"]["outcome"],
                                     payload["seconds"])

    from repro.pattern import persist

    persist.flush()  # campaign boundary: golden-run products included
    report = _campaign_report(program, sim, ways, qat_backend, seed, runs,
                              faults_per_run, targets, golden, golden_steps,
                              results)
    # Blackbox spool files collected from quarantined shards.  Only
    # present when something was actually quarantined, so a healed or
    # clean fan-out stays byte-identical to the serial report.
    blackboxes = sorted(
        detail["blackbox"] for detail in results if detail.get("blackbox")
    )
    if blackboxes:
        report["blackbox"] = blackboxes
    if interrupted is not None:
        report["interrupted"] = True
        raise CampaignInterrupted(report, done=len(completed), total=runs)
    return report


def render_report(report: dict) -> str:
    """Canonical JSON rendering (byte-identical for identical campaigns)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
