"""Checkpoint/recovery of full Tangled/Qat machine state.

A :class:`Checkpoint` captures everything architecturally visible --
GPRs, PC, 64Ki-word memory, the whole Qat register file, the halted
flag, instruction count and program output -- plus a SHA-256 integrity
digest over the canonical byte encoding, so a checkpoint corrupted at
rest (or by the fault injector) is *detected* on restore rather than
silently resurrecting bad state.

:class:`AutoCheckpointer` is the periodic variant the simulators drive
from their run loops: attach one as ``sim.checkpointer`` and the machine
is snapshotted every ``interval`` retired instructions, keeping a small
ring of recent checkpoints.  Combined with a ``halt`` watchdog policy
this gives crash-recovery semantics: a runaway program stops cleanly and
the last good checkpoint is one ``restore`` away.

Checkpoints serialize with :func:`numpy.savez_compressed`, so they are
single portable files with no extra dependencies.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError
from repro.obs import runtime as _obs

#: Format version stamped into saved checkpoint files.  RE-backend
#: checkpoints add optional header keys (``qat_backend``, ``qat_ways``,
#: ``qat_runs``) but dense files are byte-compatible, so the version is
#: unchanged and old files load as dense.
FORMAT_VERSION = 1

#: ``qregs`` payload of an RE checkpoint (no dense matrix exists there).
_NO_QREGS = np.zeros((0, 0), dtype=np.uint64)


def _digest(regs: np.ndarray, mem: np.ndarray, qat_blobs: tuple[bytes, ...],
            pc: int, halted: bool, instret: int, output: tuple[str, ...]) -> str:
    hasher = hashlib.sha256()
    hasher.update(regs.tobytes())
    hasher.update(mem.tobytes())
    for blob in qat_blobs:
        hasher.update(blob)
    hasher.update(f"{pc}:{int(halted)}:{instret}".encode())
    for chunk in output:
        hasher.update(b"\x00")
        hasher.update(chunk.encode("utf-8"))
    return hasher.hexdigest()


def _qat_blobs(backend: str, qregs: np.ndarray, qat_runs: tuple,
               store_chunks: tuple[np.ndarray, ...]) -> tuple[bytes, ...]:
    """Canonical byte encoding of the Qat substrate for digesting.

    Dense checkpoints hash the packed matrix exactly as format v1 always
    did (old digests stay valid); RE checkpoints hash the run lists plus
    the chunk payloads that pin each symbol's meaning.
    """
    if backend == "dense":
        return (qregs.tobytes(),)
    blobs = [json.dumps(qat_runs, sort_keys=True).encode("utf-8")]
    blobs.extend(np.ascontiguousarray(c).tobytes() for c in store_chunks)
    return tuple(blobs)


@dataclass(frozen=True)
class Checkpoint:
    """An immutable snapshot of one machine's architectural state."""

    pc: int
    halted: bool
    instret: int
    regs: np.ndarray
    mem: np.ndarray
    qregs: np.ndarray
    output: tuple[str, ...]
    digest: str
    #: timing-model cycle at capture, if the simulator supplied one
    cycle: int | None = None
    #: chunkstore symbols captured alongside -- an explicitly passed
    #: store (dense machines) or the RE backend's private store
    store_chunks: tuple[np.ndarray, ...] = field(default=())
    store_chunk_ways: int | None = None
    #: which Qat substrate the machine ran ("dense" or "re")
    qat_backend: str = "dense"
    qat_ways: int | None = None
    #: RE only: per-register run lists ``((symbol, count), ...)``; the
    #: symbols' payloads are pinned by ``store_chunks``
    qat_runs: tuple = ()

    @classmethod
    def take(cls, machine, cycle: int | None = None, store=None) -> "Checkpoint":
        """Snapshot ``machine`` (and optionally a ``ChunkStore``) now.

        On an RE-backed machine the backend's private store is captured
        (the ``store`` argument is ignored): the run lists are
        meaningless without the chunk payloads their symbols point at.
        """
        t0 = time.perf_counter_ns()
        regs = machine.regs.copy()
        mem = machine.mem.copy()
        backend = machine.qat.name
        qat_runs: tuple = ()
        if backend == "dense":
            qregs = machine.qregs.copy()
        else:
            qregs = _NO_QREGS
            qat_runs = tuple(
                tuple((int(sym), int(count)) for sym, count in pv.runs)
                for pv in machine.qat.regs
            )
            store = machine.qat.store
        output = tuple(machine.output)
        store_chunks: tuple[np.ndarray, ...] = ()
        store_chunk_ways = None
        if store is not None:
            store_chunks = tuple(np.array(c.words, copy=True) for c in store.chunks())
            store_chunk_ways = store.chunk_ways
        if _obs.active:
            _obs.current().checkpoint_op("capture", t0)
        from repro.obs import flight as _flight

        if _flight.RECORDER.enabled:
            _flight.RECORDER.note_checkpoint(
                "capture", f"pc={machine.pc:#06x} instret={machine.instret}"
            )
        return cls(
            pc=machine.pc,
            halted=machine.halted,
            instret=machine.instret,
            regs=regs,
            mem=mem,
            qregs=qregs,
            output=output,
            digest=_digest(regs, mem,
                           _qat_blobs(backend, qregs, qat_runs, store_chunks),
                           machine.pc, machine.halted,
                           machine.instret, output),
            cycle=cycle,
            store_chunks=store_chunks,
            store_chunk_ways=store_chunk_ways,
            qat_backend=backend,
            qat_ways=machine.ways,
            qat_runs=qat_runs,
        )

    def verify(self) -> bool:
        """True iff the snapshot still matches its integrity digest."""
        t0 = time.perf_counter_ns()
        blobs = _qat_blobs(self.qat_backend, self.qregs, self.qat_runs,
                           self.store_chunks)
        ok = _digest(self.regs, self.mem, blobs, self.pc, self.halted,
                     self.instret, self.output) == self.digest
        if _obs.active:
            _obs.current().checkpoint_op("verify", t0, ok=ok)
        return ok

    def restore(self, machine, store=None, verify: bool = True) -> None:
        """Write this snapshot back into ``machine`` (and ``store``).

        Raises :class:`~repro.errors.CheckpointError` if ``verify`` is
        set and the digest no longer matches (the checkpoint was
        corrupted after capture), or if the machine runs a different Qat
        substrate or width than the one captured.
        """
        t0 = time.perf_counter_ns()
        if verify and not self.verify():
            if _obs.active:
                _obs.current().checkpoint_op("restore", t0, ok=False)
            raise CheckpointError(
                "checkpoint failed integrity verification; refusing to restore"
            )
        mismatch = None
        if machine.qat.name != self.qat_backend:
            mismatch = (f"checkpoint captured a {self.qat_backend!r} Qat "
                        f"backend but the machine runs {machine.qat.name!r}")
        elif self.qat_ways is not None and machine.ways != self.qat_ways:
            mismatch = (f"checkpoint is {self.qat_ways}-way but the machine "
                        f"is {machine.ways}-way")
        elif machine.regs.shape != self.regs.shape:
            mismatch = (f"checkpoint shape mismatch: regs {self.regs.shape} "
                        f"vs machine {machine.regs.shape}")
        elif (self.qat_backend == "dense"
              and machine.qregs.shape != self.qregs.shape):
            mismatch = (f"checkpoint shape mismatch: qregs {self.qregs.shape} "
                        f"vs machine {machine.qregs.shape}")
        if mismatch is not None:
            if _obs.active:
                _obs.current().checkpoint_op("restore", t0, ok=False)
            raise CheckpointError(mismatch)
        machine.regs[:] = self.regs
        machine.mem[:] = self.mem
        # Whole-memory overwrite: every predecoded instruction is stale.
        machine.invalidate_predecode()
        if self.qat_backend == "dense":
            machine.qregs[:] = self.qregs
            if store is not None and self.store_chunks:
                store.restore_chunks(self.store_chunks)
        else:
            machine.qat.restore((self.qat_runs, self.store_chunks))
        machine.pc = self.pc
        machine.halted = self.halted
        machine.instret = self.instret
        machine.output[:] = list(self.output)
        if _obs.active:
            _obs.current().checkpoint_op("restore", t0)
        from repro.obs import flight as _flight

        if _flight.RECORDER.enabled:
            _flight.RECORDER.note_checkpoint(
                "restore", f"pc={self.pc:#06x} instret={self.instret}"
            )

    # -- file round trip -----------------------------------------------------

    def save(self, path: str, cache=None) -> None:
        """Write the checkpoint to ``path`` (``.npz``, compressed).

        When the persistent chunk cache is active (or an explicit
        ``cache`` is passed), pinned chunk payloads already present in
        the cache are written as digest references instead of inline
        arrays, and the rest are both inlined and published to the
        cache -- repeated checkpoints of a warmed substrate shrink to
        their run lists.  :meth:`load` resolves the references back
        through the cache; :meth:`verify` still covers the
        reconstructed payloads end to end.
        """
        if cache is None:
            from repro.pattern import persist

            cache = persist.attached_cache()
        chunk_refs: dict[str, str] = {}
        inline: dict[str, np.ndarray] = {}
        for i, words in enumerate(self.store_chunks):
            if cache is not None and self.store_chunk_ways is not None:
                from repro.pattern.persist import chunk_digest

                digest = chunk_digest(words)
                if cache.has_chunk(digest, self.store_chunk_ways):
                    chunk_refs[str(i)] = digest
                    continue
                cache.store_chunk(digest, self.store_chunk_ways, words)
            inline[f"chunk_{i}"] = words
        if cache is not None and (inline or chunk_refs):
            # A checkpoint must never reference a payload that only
            # exists in this process's write-behind buffer.
            cache.flush()
        header = {
            "version": FORMAT_VERSION,
            "pc": self.pc,
            "halted": self.halted,
            "instret": self.instret,
            "output": list(self.output),
            "digest": self.digest,
            "cycle": self.cycle,
            "store_chunk_ways": self.store_chunk_ways,
            "store_chunk_count": len(self.store_chunks),
            "qat_backend": self.qat_backend,
            "qat_ways": self.qat_ways,
            "qat_runs": [[list(run) for run in reg] for reg in self.qat_runs],
        }
        if chunk_refs:
            header["chunk_refs"] = chunk_refs
        arrays = {
            "regs": self.regs,
            "mem": self.mem,
            "qregs": self.qregs,
            "header": np.frombuffer(
                json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
            ),
        }
        arrays.update(inline)
        t0 = time.perf_counter_ns()
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        if _obs.active:
            _obs.current().checkpoint_op("save", t0)
        from repro.obs import flight as _flight

        if _flight.RECORDER.enabled:
            _flight.RECORDER.note_checkpoint("save", path)

    @classmethod
    def load(cls, path: str, cache=None) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save`.

        Digest references written by a cache-aware :meth:`save` are
        resolved through ``cache`` (default: the process's attached
        persistent chunk cache).  A reference whose payload is missing
        or fails its integrity check raises
        :class:`~repro.errors.CheckpointError` -- a deduplicated
        checkpoint never silently resurrects a wrong payload.
        """
        t0 = time.perf_counter_ns()
        try:
            data = np.load(path)
            header = json.loads(bytes(data["header"]).decode("utf-8"))
        except (OSError, ValueError, KeyError) as exc:
            if _obs.active:
                _obs.current().checkpoint_op("load", t0, ok=False)
            raise CheckpointError(f"unreadable checkpoint {path!r}: {exc}") from exc
        if _obs.active:
            _obs.current().checkpoint_op("load", t0)
        from repro.obs import flight as _flight

        if _flight.RECORDER.enabled:
            _flight.RECORDER.note_checkpoint("load", path)
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {header.get('version')!r}"
            )
        chunk_refs = header.get("chunk_refs", {})
        if chunk_refs and cache is None:
            from repro.pattern import persist

            cache = persist.attached_cache()
        names = set(data.files)
        chunks = []
        for i in range(header["store_chunk_count"]):
            key = f"chunk_{i}"
            if key in names:
                chunks.append(data[key])
                continue
            digest = chunk_refs.get(str(i))
            if digest is None or cache is None:
                raise CheckpointError(
                    f"checkpoint {path!r} references chunk {i} by digest "
                    "but no persistent chunk cache is attached "
                    "(--chunk-cache / TANGLED_CHUNK_CACHE)"
                )
            words, status = cache.load_chunk(digest, header["store_chunk_ways"])
            if words is None:
                raise CheckpointError(
                    f"checkpoint {path!r} chunk {i} ({digest[:12]}...) is "
                    f"{status} in the persistent chunk cache"
                )
            chunks.append(words)
        chunks = tuple(chunks)
        return cls(
            pc=header["pc"],
            halted=header["halted"],
            instret=header["instret"],
            regs=data["regs"],
            mem=data["mem"],
            qregs=data["qregs"],
            output=tuple(header["output"]),
            digest=header["digest"],
            cycle=header["cycle"],
            store_chunks=chunks,
            store_chunk_ways=header["store_chunk_ways"],
            qat_backend=header.get("qat_backend", "dense"),
            qat_ways=header.get("qat_ways"),
            qat_runs=tuple(
                tuple((sym, count) for sym, count in reg)
                for reg in header.get("qat_runs", ())
            ),
        )


class AutoCheckpointer:
    """Periodic checkpointing driven by a simulator's run loop.

    Attach as ``sim.checkpointer``; every ``interval`` ticks (one tick
    per retired instruction or pipeline cycle) the machine is
    snapshotted into a ring of the ``keep`` most recent checkpoints.
    """

    def __init__(self, interval: int = 1024, keep: int = 2, store=None):
        if interval <= 0:
            raise CheckpointError(f"interval must be positive, got {interval}")
        if keep <= 0:
            raise CheckpointError(f"keep must be positive, got {keep}")
        self.interval = interval
        self.keep = keep
        self.store = store
        self.ticks = 0
        self.taken = 0
        self._ring: list[Checkpoint] = []

    def tick(self, machine, cycle: int | None = None) -> Checkpoint | None:
        """One unit of progress; snapshots when the interval elapses."""
        self.ticks += 1
        if self.ticks % self.interval:
            return None
        checkpoint = Checkpoint.take(machine, cycle=cycle, store=self.store)
        self._ring.append(checkpoint)
        if len(self._ring) > self.keep:
            self._ring.pop(0)
        self.taken += 1

        from repro.obs import runtime as _obs

        if _obs.active:
            _obs.current().metrics.counter("checkpoint.taken").inc()
        return checkpoint

    @property
    def latest(self) -> Checkpoint | None:
        """Most recent checkpoint, or None before the first interval."""
        return self._ring[-1] if self._ring else None

    @property
    def checkpoints(self) -> list[Checkpoint]:
        """The retained ring, oldest first."""
        return list(self._ring)
