"""Declarative instruction table for Tangled (Table 1) and Qat (Table 3).

Every instruction is described once by an :class:`InstrSpec`; the
assembler, encoder, disassembler, and all three CPU simulators consume
this table, so adding an instruction is a one-line change here plus its
semantics in :mod:`repro.cpu.exec_core`.

Operand kind codes
------------------
``d``/``s``/``c``/``a`` (GPR), ``A``/``B``/``C`` (Qat register),
``i`` (imm8), ``k`` (imm4), ``o`` (branch offset, label in source).

Internal mnemonics for Qat carry a ``q`` prefix; ``asm_name`` is the
paper's spelling used in assembly source and disassembly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one machine instruction."""

    mnemonic: str  #: internal unique name (``qand`` etc. for Qat)
    asm_name: str  #: spelling in assembly source (paper's Table 1/3)
    operands: str  #: operand kind codes, in source order
    words: int  #: encoded length in 16-bit words
    category: str  #: timing class: alu/fpu/mul/mem/branch/jump/sys/qat/qmeas
    description: str  #: Table 1/3 description column

    @property
    def is_qat(self) -> bool:
        """True for coprocessor instructions (Table 3)."""
        return self.mnemonic.startswith("q")


@dataclass(frozen=True)
class Instr:
    """One decoded/assembled instruction instance.

    ``ops`` holds operand values in the spec's source order: register
    numbers for GPR/Qat operands, the immediate for ``i``/``k``, and the
    *word offset relative to the following instruction* for ``o``.
    """

    mnemonic: str
    ops: tuple[int, ...] = ()

    @property
    def spec(self) -> InstrSpec:
        return INSTRUCTIONS[self.mnemonic]

    def render(self) -> str:
        """Assembly text (offsets rendered numerically)."""
        spec = self.spec
        parts = []
        for kind, value in zip(spec.operands, self.ops):
            if kind in "dsca":
                from repro.isa.registers import gpr_name

                parts.append(gpr_name(value))
            elif kind in "ABC":
                parts.append(f"@{value}")
            else:
                parts.append(str(value))
        return f"{spec.asm_name}\t{', '.join(parts)}" if parts else spec.asm_name


def _t(mnemonic, operands, category, description, words=1, asm_name=None):
    return InstrSpec(mnemonic, asm_name or mnemonic, operands, words, category, description)


#: Table 1 -- Tangled base instruction set (25 instructions).
_TANGLED = [
    _t("add", "ds", "alu", "int add"),
    _t("addf", "ds", "fpu", "bfloat16 add"),
    _t("and", "ds", "alu", "bitwise AND"),
    _t("brf", "co", "branch", "branch false to lab"),
    _t("brt", "co", "branch", "branch true to lab"),
    _t("copy", "ds", "alu", "copy"),
    _t("float", "d", "fpu", "int to bfloat16"),
    _t("int", "d", "fpu", "bfloat16 to int"),
    _t("jumpr", "a", "jump", "jump to register"),
    _t("lex", "di", "alu", "load sign extended"),
    _t("lhi", "di", "alu", "load high"),
    _t("load", "ds", "mem", "load"),
    _t("mul", "ds", "mul", "int multiply"),
    _t("mulf", "ds", "fpu", "bfloat16 multiply"),
    _t("neg", "d", "alu", "int negate"),
    _t("negf", "d", "fpu", "bfloat16 negate"),
    _t("not", "d", "alu", "bitwise NOT"),
    _t("or", "ds", "alu", "bitwise OR"),
    _t("recip", "d", "fpu", "bfloat16 reciprocal"),
    _t("shift", "ds", "alu", "shift left/right"),
    _t("slt", "ds", "alu", "set less than"),
    _t("store", "ds", "mem", "store"),
    _t("sys", "", "sys", "system call"),
    _t("xor", "ds", "alu", "bitwise XOR"),
]

#: Table 3 -- Qat coprocessor instructions (plus the specified-but-omitted
#: ``pop`` extension of section 2.7).
_QAT = [
    _t("qand", "ABC", "qat", "AND", words=2, asm_name="and"),
    _t("qccnot", "ABC", "qat", "controlled-controlled NOT", words=2, asm_name="ccnot"),
    _t("qcnot", "AB", "qat", "controlled NOT", words=2, asm_name="cnot"),
    _t("qcswap", "ABC", "qat", "controlled swap (Fredkin gate)", words=2, asm_name="cswap"),
    _t("qhad", "Ak", "qat", "Hadamard initializer", asm_name="had"),
    _t("qmeas", "dA", "qmeas", "entanglement channel measure", asm_name="meas"),
    _t("qnext", "dA", "qmeas", "entanglement channel of next 1", asm_name="next"),
    _t("qnot", "A", "qat", "NOT (Pauli-X gate)", asm_name="not"),
    _t("qor", "ABC", "qat", "OR", words=2, asm_name="or"),
    _t("qone", "A", "qat", "1 initializer", asm_name="one"),
    _t("qpop", "dA", "qmeas", "population count after channel", asm_name="pop"),
    _t("qswap", "AB", "qat", "swap", words=2, asm_name="swap"),
    _t("qxor", "ABC", "qat", "XOR", words=2, asm_name="xor"),
    _t("qzero", "A", "qat", "0 initializer", asm_name="zero"),
]

#: Full instruction table keyed by internal mnemonic.
INSTRUCTIONS: dict[str, InstrSpec] = {s.mnemonic: s for s in _TANGLED + _QAT}

TANGLED_MNEMONICS = tuple(s.mnemonic for s in _TANGLED)
QAT_MNEMONICS = tuple(s.mnemonic for s in _QAT)

#: Assembly-source name -> candidate internal mnemonics (``and`` maps to
#: both the Tangled and the Qat instruction; the assembler picks by the
#: first operand's sigil).
ASM_NAMES: dict[str, list[str]] = {}
for _spec in list(INSTRUCTIONS.values()):
    ASM_NAMES.setdefault(_spec.asm_name, []).append(_spec.mnemonic)


def instruction_length(mnemonic: str) -> int:
    """Encoded length in 16-bit words."""
    return INSTRUCTIONS[mnemonic].words
