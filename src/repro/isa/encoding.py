"""Binary encoding of the Tangled/Qat instruction set.

The paper's 16-bit instruction word "only has space for a 4-bit fixed
opcode field, but there are more than 16 different types of instructions",
so implementers had to pick a sub-coded scheme; this is ours:

====== ============================== =================================
major  format                          instructions
====== ============================== =================================
0x0    ``sub[11:8] d[7:4] s[3:0]``     add and copy load mul or shift
                                       slt store xor addf mulf
0x1    ``sub[11:8] d[7:4]``            float int jumpr neg negf not
                                       recip sys
0x2    ``d[11:8] imm8[7:0]``           lex
0x3    ``d[11:8] imm8[7:0]``           lhi
0x4    ``c[11:8] off8[7:0]``           brf (offset from next instruction)
0x5    ``c[11:8] off8[7:0]``           brt
0x8    ``sub[11:8] a[7:0]`` + word2    qat 3-register: and or xor ccnot
       ``b[15:8] c[7:0]``              cswap   (two words)
0x9    ``sub[11:8] a[7:0]`` + word2    qat 2-register: cnot swap
       ``b[15:8]``                     (two words)
0xA    ``sub[11:8] a[7:0]``            qat 1-register: not zero one
0xB    ``k[11:8] a[7:0]``              had
0xC    ``d[11:8] a[7:0]``              meas
0xD    ``d[11:8] a[7:0]``              next
0xE    ``d[11:8] a[7:0]``              pop (section 2.7 extension)
====== ============================== =================================

Any Qat instruction naming two or more 8-bit coprocessor registers takes
two words, matching the paper's observation that "the use of 8-bit Qat
register numbers does force some Qat instructions to be two 16-bit words
long".
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import EncodingError
from repro.isa.instructions import INSTRUCTIONS, Instr

_ALU2_SUBS = {
    "add": 0, "and": 1, "copy": 2, "load": 3, "mul": 4, "or": 5,
    "shift": 6, "slt": 7, "store": 8, "xor": 9, "addf": 10, "mulf": 11,
}
_ALU1_SUBS = {
    "float": 0, "int": 1, "jumpr": 2, "neg": 3, "negf": 4, "not": 5,
    "recip": 6, "sys": 7,
}
_QAT3_SUBS = {"qand": 0, "qor": 1, "qxor": 2, "qccnot": 3, "qcswap": 4}
_QAT2_SUBS = {"qcnot": 0, "qswap": 1}
_QAT1_SUBS = {"qnot": 0, "qzero": 1, "qone": 2}

_ALU2_BY_SUB = {v: k for k, v in _ALU2_SUBS.items()}
_ALU1_BY_SUB = {v: k for k, v in _ALU1_SUBS.items()}
_QAT3_BY_SUB = {v: k for k, v in _QAT3_SUBS.items()}
_QAT2_BY_SUB = {v: k for k, v in _QAT2_SUBS.items()}
_QAT1_BY_SUB = {v: k for k, v in _QAT1_SUBS.items()}

_IMM_MAJORS = {"lex": 0x2, "lhi": 0x3, "brf": 0x4, "brt": 0x5}
_QMEAS_MAJORS = {"qmeas": 0xC, "qnext": 0xD, "qpop": 0xE}
_MAJOR_TO_IMM = {v: k for k, v in _IMM_MAJORS.items()}
_MAJOR_TO_QMEAS = {v: k for k, v in _QMEAS_MAJORS.items()}


def _check_range(name: str, value: int, low: int, high: int) -> int:
    if not low <= value <= high:
        raise EncodingError(f"{name} out of range [{low}, {high}]: {value}")
    return value


def encode(instr: Instr) -> list[int]:
    """Encode one instruction into 16-bit words."""
    spec = INSTRUCTIONS.get(instr.mnemonic)
    if spec is None:
        raise EncodingError(f"unknown mnemonic {instr.mnemonic!r}")
    if len(instr.ops) != len(spec.operands):
        raise EncodingError(
            f"{instr.mnemonic} expects {len(spec.operands)} operands, "
            f"got {len(instr.ops)}"
        )
    m = instr.mnemonic
    ops = instr.ops
    if m in _ALU2_SUBS:
        d = _check_range("register", ops[0], 0, 15)
        s = _check_range("register", ops[1], 0, 15)
        return [(0x0 << 12) | (_ALU2_SUBS[m] << 8) | (d << 4) | s]
    if m in _ALU1_SUBS:
        d = _check_range("register", ops[0], 0, 15) if ops else 0
        return [(0x1 << 12) | (_ALU1_SUBS[m] << 8) | (d << 4)]
    if m in ("lex", "lhi"):
        d = _check_range("register", ops[0], 0, 15)
        imm = _check_range("imm8", ops[1], -128, 255) & 0xFF
        return [(_IMM_MAJORS[m] << 12) | (d << 8) | imm]
    if m in ("brf", "brt"):
        c = _check_range("register", ops[0], 0, 15)
        off = _check_range("branch offset", ops[1], -128, 127) & 0xFF
        return [(_IMM_MAJORS[m] << 12) | (c << 8) | off]
    if m in _QAT3_SUBS:
        a = _check_range("Qat register", ops[0], 0, 255)
        b = _check_range("Qat register", ops[1], 0, 255)
        c = _check_range("Qat register", ops[2], 0, 255)
        return [(0x8 << 12) | (_QAT3_SUBS[m] << 8) | a, (b << 8) | c]
    if m in _QAT2_SUBS:
        a = _check_range("Qat register", ops[0], 0, 255)
        b = _check_range("Qat register", ops[1], 0, 255)
        return [(0x9 << 12) | (_QAT2_SUBS[m] << 8) | a, b << 8]
    if m in _QAT1_SUBS:
        a = _check_range("Qat register", ops[0], 0, 255)
        return [(0xA << 12) | (_QAT1_SUBS[m] << 8) | a]
    if m == "qhad":
        a = _check_range("Qat register", ops[0], 0, 255)
        k = _check_range("imm4", ops[1], 0, 15)
        return [(0xB << 12) | (k << 8) | a]
    if m in _QMEAS_MAJORS:
        d = _check_range("register", ops[0], 0, 15)
        a = _check_range("Qat register", ops[1], 0, 255)
        return [(_QMEAS_MAJORS[m] << 12) | (d << 8) | a]
    raise EncodingError(f"no encoding for {m!r}")  # pragma: no cover


def decode(words: Sequence[int], index: int = 0) -> tuple[Instr, int]:
    """Decode the instruction starting at ``words[index]``.

    Returns ``(instruction, word_count)``.  Raises :class:`EncodingError`
    for unassigned opcodes or a truncated two-word instruction.
    """
    try:
        word = int(words[index]) & 0xFFFF
    except IndexError:
        raise EncodingError(f"decode past end of memory at {index}") from None
    major = word >> 12
    if major == 0x0:
        sub, d, s = (word >> 8) & 0xF, (word >> 4) & 0xF, word & 0xF
        m = _ALU2_BY_SUB.get(sub)
        if m is None:
            raise EncodingError(f"bad ALU sub-opcode {sub} in {word:#06x}")
        return Instr(m, (d, s)), 1
    if major == 0x1:
        sub, d = (word >> 8) & 0xF, (word >> 4) & 0xF
        m = _ALU1_BY_SUB.get(sub)
        if m is None:
            raise EncodingError(f"bad unary sub-opcode {sub} in {word:#06x}")
        return Instr(m, (d,) if m != "sys" else ()), 1
    if major in _MAJOR_TO_IMM:
        m = _MAJOR_TO_IMM[major]
        reg, imm = (word >> 8) & 0xF, word & 0xFF
        if m in ("brf", "brt") or m == "lex":
            if imm >= 128 and m != "lhi":
                imm -= 256  # sign-extend offsets and lex immediates
        return Instr(m, (reg, imm)), 1
    if major == 0x8:
        sub, a = (word >> 8) & 0xF, word & 0xFF
        m = _QAT3_BY_SUB.get(sub)
        if m is None:
            raise EncodingError(f"bad qat3 sub-opcode {sub} in {word:#06x}")
        if index + 1 >= len(words):
            raise EncodingError(f"truncated two-word instruction at {index}")
        word2 = int(words[index + 1]) & 0xFFFF
        return Instr(m, (a, word2 >> 8, word2 & 0xFF)), 2
    if major == 0x9:
        sub, a = (word >> 8) & 0xF, word & 0xFF
        m = _QAT2_BY_SUB.get(sub)
        if m is None:
            raise EncodingError(f"bad qat2 sub-opcode {sub} in {word:#06x}")
        if index + 1 >= len(words):
            raise EncodingError(f"truncated two-word instruction at {index}")
        word2 = int(words[index + 1]) & 0xFFFF
        return Instr(m, (a, word2 >> 8)), 2
    if major == 0xA:
        sub, a = (word >> 8) & 0xF, word & 0xFF
        m = _QAT1_BY_SUB.get(sub)
        if m is None:
            raise EncodingError(f"bad qat1 sub-opcode {sub} in {word:#06x}")
        return Instr(m, (a,)), 1
    if major == 0xB:
        return Instr("qhad", (word & 0xFF, (word >> 8) & 0xF)), 1
    if major in _MAJOR_TO_QMEAS:
        m = _MAJOR_TO_QMEAS[major]
        return Instr(m, ((word >> 8) & 0xF, word & 0xFF)), 1
    raise EncodingError(f"unassigned major opcode {major:#x} in {word:#06x}")


def decode_stream(words: Sequence[int], start: int = 0, count: int | None = None) -> list[tuple[int, Instr]]:
    """Decode a run of instructions; returns ``[(address, instr), ...]``."""
    out: list[tuple[int, Instr]] = []
    index = start
    while index < len(words) and (count is None or len(out) < count):
        instr, n = decode(words, index)
        out.append((index, instr))
        index += n
    return out
