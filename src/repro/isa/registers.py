"""Register files and naming.

Tangled has 16 conventional 16-bit general-purpose registers (paper
section 2.1): ``$0``-``$10`` general, ``$at`` (11) the assembler
temporary, then ``$rv``, ``$ra``, ``$fp``, ``$sp`` for call handling.
None has special meaning to Qat.

Qat has 256 AoB registers ``@0``-``@255`` and no memory interface.
"""

from __future__ import annotations

from repro.errors import AssemblerError

NUM_GPRS = 16
NUM_QAT_REGS = 256

AT = 11  #: assembler temporary
RV = 12  #: return value
RA = 13  #: return address
FP = 14  #: frame pointer
SP = 15  #: stack pointer

_ALIASES = {"at": AT, "rv": RV, "ra": RA, "fp": FP, "sp": SP}
_NAMES = {v: k for k, v in _ALIASES.items()}


def gpr_name(reg: int) -> str:
    """Canonical assembly name of a general-purpose register."""
    if not 0 <= reg < NUM_GPRS:
        raise ValueError(f"GPR number out of range: {reg}")
    alias = _NAMES.get(reg)
    return f"${alias}" if alias else f"${reg}"


def parse_gpr(token: str) -> int:
    """Parse ``$n`` / ``$at`` / ``$rv`` / ``$ra`` / ``$fp`` / ``$sp``."""
    if not token.startswith("$"):
        raise AssemblerError(f"expected a $-register, got {token!r}")
    body = token[1:].lower()
    if body in _ALIASES:
        return _ALIASES[body]
    try:
        reg = int(body, 10)
    except ValueError:
        raise AssemblerError(f"unknown register {token!r}") from None
    if not 0 <= reg < NUM_GPRS:
        raise AssemblerError(f"register number out of range: {token!r}")
    return reg


def parse_qreg(token: str) -> int:
    """Parse a Qat coprocessor register ``@0`` .. ``@255``."""
    if not token.startswith("@"):
        raise AssemblerError(f"expected an @-register, got {token!r}")
    try:
        reg = int(token[1:], 10)
    except ValueError:
        raise AssemblerError(f"unknown Qat register {token!r}") from None
    if not 0 <= reg < NUM_QAT_REGS:
        raise AssemblerError(f"Qat register number out of range: {token!r}")
    return reg
