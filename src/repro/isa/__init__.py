"""Instruction-set architecture of Tangled (Table 1) and Qat (Table 3).

The paper deliberately leaves the binary encoding to each implementer
("students needed to be slightly clever about picking an encoding"); the
encoding used here is documented in :mod:`repro.isa.encoding` and keeps
the paper's one observable constraint: Qat instructions that name more
than one 8-bit coprocessor register occupy *two* 16-bit words, everything
else one.

Internally, Qat mnemonics carry a ``q`` prefix (``qand``, ``qnot``, ...)
to distinguish them from the identically spelled Tangled instructions;
assembly source uses the paper's spelling, disambiguated by the ``@``
operand sigil.
"""

from repro.isa.encoding import decode, decode_stream, encode
from repro.isa.instructions import (
    INSTRUCTIONS,
    QAT_MNEMONICS,
    TANGLED_MNEMONICS,
    Instr,
    InstrSpec,
    instruction_length,
)
from repro.isa.registers import (
    AT,
    FP,
    NUM_GPRS,
    NUM_QAT_REGS,
    RA,
    RV,
    SP,
    gpr_name,
    parse_gpr,
    parse_qreg,
)

__all__ = [
    "AT",
    "FP",
    "INSTRUCTIONS",
    "Instr",
    "InstrSpec",
    "NUM_GPRS",
    "NUM_QAT_REGS",
    "QAT_MNEMONICS",
    "RA",
    "RV",
    "SP",
    "TANGLED_MNEMONICS",
    "decode",
    "decode_stream",
    "encode",
    "gpr_name",
    "instruction_length",
    "parse_gpr",
    "parse_qreg",
]
