"""Reproduction of Tangled/Qat (Dietz, ICPP Workshops 2021).

A conventional 16-bit host processor (*Tangled*) tightly integrating a
quantum-inspired coprocessor (*Qat*) that implements the parallel bit
pattern (PBP) model: superposition and entanglement realized as operations
on Array-of-Bits (AoB) vectors and run-length-compressed pattern vectors,
executed on conventional bit-level SIMD hardware.

Public entry points
-------------------
- :mod:`repro.aob` -- the AoB bit-vector substrate (65,536-bit values for
  16-way entanglement, plus any other width).
- :mod:`repro.pattern` -- regular-expression (run-length) compressed
  pattern vectors that scale past the hardware entanglement limit.
- :mod:`repro.pbp` -- the word-level ``pint`` (pattern integer) API used by
  the paper's Figure 9 factoring example.
- :mod:`repro.gates` -- gate-level circuit IR, optimizer and the emitter
  that produces Tangled/Qat assembly like the paper's Figure 10.
- :mod:`repro.isa` / :mod:`repro.asm` -- the Table 1/2/3 instruction sets,
  16-bit encodings, assembler and disassembler.
- :mod:`repro.cpu` -- functional, multi-cycle and pipelined simulators.
- :mod:`repro.hw` -- structural netlist cost models for the ``had`` and
  ``next`` hardware (paper Figures 7 and 8).
- :mod:`repro.quantum` -- the state-vector quantum baseline used for the
  destructive-measurement comparison.
- :mod:`repro.apps` -- the paper's applications (prime factoring and more).
"""

from repro._version import __version__
from repro.aob import AoB
from repro.pattern import PatternVector
from repro.pbp import PbpContext, Pint, TraceContext

__all__ = [
    "__version__",
    "AoB",
    "PatternVector",
    "PbpContext",
    "Pint",
    "TraceContext",
]
