"""Superposed-arithmetic demonstrations.

Small self-contained computations exercising the ``pint`` layer the way
the paper's Figure 9 does, used by the examples and benchmarks: whole
multiplication tables and sums computed "at once" over entangled
superpositions, read out non-destructively.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.pbp import PbpContext


def multiplication_distribution(
    bits_a: int,
    bits_b: int,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> dict[int, int]:
    """Channel counts of ``a * b`` over all pairs of ``a`` and ``b``.

    One gate-level multiply evaluates the entire
    :math:`2^{bits_a} \\times 2^{bits_b}` times table; the returned counts
    say how many (a, b) pairs produce each product.
    """
    ctx = PbpContext(ways=bits_a + bits_b, backend=backend, chunk_ways=chunk_ways)
    a = ctx.pint_h(bits_a, (1 << bits_a) - 1)
    b = ctx.pint_h(bits_b, ((1 << bits_b) - 1) << bits_a)
    return dict((a * b).counts())


def superposed_sum(
    bits: int,
    constant: int,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> dict[int, int]:
    """Channel counts of ``x + constant`` over all ``x`` (wrapping).

    Every count is 1: addition of a constant permutes the superposed
    values -- a quick uniformity check used by tests and examples.
    """
    ctx = PbpContext(ways=bits, backend=backend, chunk_ways=chunk_ways)
    if constant < 0 or constant >> bits:
        raise ReproError(f"constant {constant} does not fit in {bits} bits")
    x = ctx.pint_h(bits, (1 << bits) - 1)
    k = ctx.pint_mk(bits, constant)
    return dict((x + k).counts())
