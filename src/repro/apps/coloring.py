"""Graph coloring in superposition.

A constraint-satisfaction demonstration of the PBP model on a classic
NP-complete problem: superpose *every* assignment of colors to vertices,
evaluate all edge constraints with gate operations, and read every proper
coloring out of one non-destructive measurement.

Each vertex gets ``bits_per_color`` Hadamard channel sets; an edge
constraint is a gate-level inequality between two color fields; invalid
color codes (when the palette is not a power of two) are excluded with
per-vertex range constraints.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.errors import ReproError
from repro.pbp import PbpContext


def color_graph(
    edges: Iterable[tuple[Hashable, Hashable]],
    num_colors: int,
    nodes: Iterable[Hashable] | None = None,
    backend: str = "auto",
    chunk_ways: int | None = None,
    max_solutions: int | None = None,
) -> list[dict[Hashable, int]]:
    """All proper ``num_colors``-colorings of a graph, via one PBP pass.

    Returns one dict (vertex -> color) per solution; vertices are ordered
    consistently so colorings are canonical.  Accepts any edge iterable,
    including a ``networkx.Graph.edges()`` view.

    ``max_solutions`` caps the readout walk (the evaluation itself always
    covers the full assignment space -- that is the point).
    """
    edge_list = [tuple(e) for e in edges]
    vertex_set = set()
    for u, v in edge_list:
        vertex_set.update((u, v))
    if nodes is not None:
        vertex_set.update(nodes)
    vertices = sorted(vertex_set, key=repr)
    if not vertices:
        return []
    if num_colors < 1:
        raise ReproError("need at least one color")
    bits = max(1, (num_colors - 1).bit_length())
    ways = bits * len(vertices)
    ctx = PbpContext(ways=ways, backend=backend, chunk_ways=chunk_ways)
    fields = {
        vertex: ctx.pint_h_fresh(bits) for vertex in vertices
    }
    alg = ctx.alg
    valid = alg.const(1)
    # Range constraints: color codes >= num_colors are not colors.
    if num_colors != (1 << bits):
        limit = ctx.pint_mk(bits, num_colors - 1)
        for vertex in vertices:
            le = ~limit.lt(fields[vertex])  # field <= num_colors - 1
            valid = alg.band(valid, le.bits[0])
    # Edge constraints: endpoint colors differ.
    for u, v in edge_list:
        if u == v:
            raise ReproError(f"self-loop at {u!r} is uncolorable")
        differ = fields[u].ne(fields[v])
        valid = alg.band(valid, differ.bits[0])
    solutions: list[dict[Hashable, int]] = []
    for channel in valid.iter_ones():
        coloring = {
            vertex: (channel >> (i * bits)) & ((1 << bits) - 1)
            for i, vertex in enumerate(vertices)
        }
        solutions.append(coloring)
        if max_solutions is not None and len(solutions) >= max_solutions:
            break
    return solutions


def chromatic_number(
    edges: Iterable[tuple[Hashable, Hashable]],
    nodes: Iterable[Hashable] | None = None,
    max_colors: int = 6,
) -> int:
    """Smallest k with a proper k-coloring, by increasing-k PBP sweeps."""
    edge_list = [tuple(e) for e in edges]
    for k in range(1, max_colors + 1):
        if color_graph(edge_list, k, nodes=nodes, max_solutions=1):
            return k
    raise ReproError(f"no coloring with up to {max_colors} colors")
