"""Exhaustive search in superposition (quantum-inspired, non-quantum).

A Grover-style search on Qat needs no amplitude amplification: superpose
every assignment with Hadamard initializers, evaluate the predicate with
ordinary gates, and read *all* satisfying assignments from the result
pbit's 1-channels -- in one pass, non-destructively.  This is the class
of algorithm the paper's introduction argues PBP serves.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import ReproError
from repro.pbp import PbpContext


def solve_sat(
    clauses: Sequence[Sequence[int]],
    num_vars: int,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> list[int]:
    """All satisfying assignments of a CNF formula, in one PBP pass.

    ``clauses`` use DIMACS conventions: each clause is a list of non-zero
    ints, positive for the variable, negative for its negation; variables
    are numbered from 1.  Returns assignments as integers (bit ``i`` =
    value of variable ``i+1``), sorted.
    """
    if num_vars <= 0:
        raise ReproError("num_vars must be positive")
    ctx = PbpContext(ways=num_vars, backend=backend, chunk_ways=chunk_ways)
    alg = ctx.alg
    # Superpose every assignment: variable i rides channel set H(i).
    variables = [ctx.had(i) for i in range(num_vars)]
    result = alg.const(1)
    for clause in clauses:
        if not clause:
            raise ReproError("empty clause is unsatisfiable")
        acc = alg.const(0)
        for literal in clause:
            var = abs(literal) - 1
            if not 0 <= var < num_vars:
                raise ReproError(f"literal {literal} out of range")
            term = variables[var] if literal > 0 else alg.bnot(variables[var])
            acc = alg.bor(acc, term)
        result = alg.band(result, acc)
    return sorted(result.iter_ones())


def compile_sat(
    clauses: Sequence[Sequence[int]],
    num_vars: int,
    options=None,
):
    """Compile a CNF formula into a runnable Tangled/Qat program.

    Returns ``(program, result_reg)``: assembling the satisfiability pbit
    into Qat register ``result_reg`` and halting.  Host code (or a
    caller-provided epilogue) can then walk the register's 1-channels
    with ``next`` to enumerate satisfying assignments on the simulated
    hardware -- the full Figure 9 -> Figure 10 path for SAT instead of
    factoring.
    """
    from repro.asm import assemble
    from repro.pbp.trace import TraceContext

    ctx = TraceContext(ways=num_vars)
    alg = ctx.alg
    variables = [ctx.had(i) for i in range(num_vars)]
    result = alg.const(1)
    for clause in clauses:
        if not clause:
            raise ReproError("empty clause is unsatisfiable")
        acc = alg.const(0)
        for literal in clause:
            var = abs(literal) - 1
            if not 0 <= var < num_vars:
                raise ReproError(f"literal {literal} out of range")
            term = variables[var] if literal > 0 else alg.bnot(variables[var])
            acc = alg.bor(acc, term)
        result = alg.band(result, acc)
    from repro.pbp.pint import Pint

    emission = ctx.compile({"sat": Pint(ctx, (result,))}, options)
    source = "\n".join(emission.lines + ["lex\t$rv,0", "sys"])
    return assemble(source), emission.output_regs["sat"]


def invert_function(
    fn: Callable[[object, list], object],
    num_inputs: int,
    target_channels_only: bool = True,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> list[int]:
    """All preimages ``x`` with ``fn(alg, bits_of_x) == 1``, in one pass.

    ``fn`` receives the context's bit algebra and the superposed input
    bits (LSB first) and must return a single pbit -- arbitrary PBP
    circuits allowed.  Returns the satisfying inputs as sorted integers.
    """
    if num_inputs <= 0:
        raise ReproError("num_inputs must be positive")
    ctx = PbpContext(ways=num_inputs, backend=backend, chunk_ways=chunk_ways)
    bits = [ctx.had(i) for i in range(num_inputs)]
    result = fn(ctx.alg, bits)
    return sorted(result.iter_ones())
