"""Combinatorial optimization in superposition.

Two further members of the algorithm class the paper's introduction
motivates — problems whose quantum formulations earn their keep through
superposition over exponentially many candidates:

- **subset-sum**: superpose all subsets of a weight list, compute each
  subset's total with gate-level adders (one circuit evaluates all
  :math:`2^n` sums at once), and read out every solution;
- **max-cut**: superpose all 2-partitions of a graph, count cut edges
  per channel, and extract the maximum and all argmax partitions.

Unlike quantum approaches (Grover for subset-sum, QAOA for max-cut),
non-destructive measurement returns *all* optima exactly, in one pass.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.errors import ReproError
from repro.pbp import PbpContext
from repro.pbp.pint import Pint


def _superposed_subset_sum(ctx: PbpContext, weights: Sequence[int]) -> Pint:
    """Pint whose channel ``S`` holds ``sum(weights[i] for i in S)``.

    Element ``i`` rides channel set ``H(i)``; each weight joins the total
    as a constant word ANDed with its selector bit (a gate-level
    multiply-by-0-or-1), accumulated with ripple adders.
    """
    total_bits = max(1, sum(w for w in weights if w > 0).bit_length())
    total = ctx.pint_mk(total_bits, 0)
    for i, weight in enumerate(weights):
        if weight < 0:
            raise ReproError("weights must be non-negative")
        if weight == 0:
            continue
        selector = ctx.had(i)
        word = ctx.pint_mk(weight.bit_length(), weight).resized(total_bits)
        gated = Pint(
            ctx,
            tuple(ctx.alg.band(bit, selector) for bit in word.bits),
            channels=1 << i,
        )
        total = total + gated
    return total


def subset_sum(
    weights: Sequence[int],
    target: int,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> list[list[int]]:
    """All index subsets of ``weights`` summing exactly to ``target``.

    One evaluation covers all :math:`2^{len(weights)}` subsets; channel
    ``S`` of the equality pbit encodes the subset (bit ``i`` set = element
    ``i`` chosen).
    """
    if not weights:
        raise ReproError("need at least one weight")
    if target < 0:
        raise ReproError("target must be non-negative")
    ctx = PbpContext(ways=len(weights), backend=backend, chunk_ways=chunk_ways)
    total = _superposed_subset_sum(ctx, weights)
    if target >> total.width:
        return []
    hit = total.eq_const(target)
    solutions = []
    for channel in hit.bits[0].iter_ones():
        solutions.append([i for i in range(len(weights)) if (channel >> i) & 1])
    return solutions


def max_cut(
    edges: Iterable[tuple[Hashable, Hashable]],
    nodes: Iterable[Hashable] | None = None,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> tuple[int, list[set[Hashable]]]:
    """Exact maximum cut: ``(cut_size, [best partitions])``.

    Vertex ``i`` rides channel set ``H(i)`` (its side of the partition);
    an edge is cut where its endpoints' bits differ, and the per-channel
    cut sizes accumulate through adders.  The best value is found from
    the non-destructive distribution, and every argmax partition is
    enumerated (each cut appears twice, once per side labeling; the
    returned sets name vertices on side 1).
    """
    edge_list = [tuple(e) for e in edges]
    vertex_set = set()
    for u, v in edge_list:
        if u == v:
            raise ReproError(f"self-loop at {u!r}")
        vertex_set.update((u, v))
    if nodes is not None:
        vertex_set.update(nodes)
    vertices = sorted(vertex_set, key=repr)
    if not vertices:
        return 0, [set()]
    index = {v: i for i, v in enumerate(vertices)}
    ctx = PbpContext(ways=len(vertices), backend=backend, chunk_ways=chunk_ways)
    count_bits = max(1, len(edge_list).bit_length())
    total = ctx.pint_mk(count_bits, 0)
    one = ctx.pint_mk(1, 1)
    for u, v in edge_list:
        differ = ctx.alg.bxor(ctx.had(index[u]), ctx.had(index[v]))
        contribution = Pint(ctx, (differ,)).resized(count_bits)
        total = total + contribution
    counts = total.counts()
    best = max(counts)
    argmax = total.eq_const(best)
    partitions = []
    for channel in argmax.bits[0].iter_ones():
        partitions.append({v for v in vertices if (channel >> index[v]) & 1})
    return best, partitions
