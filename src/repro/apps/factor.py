"""Prime factoring on the PBP model (paper section 4).

The word-level algorithm of Figure 9::

    pint a = pint_mk(4, 15);      // a = 15
    pint b = pint_h(4, 0x0f);     // b = 0..15  (channels H0-H3)
    pint c = pint_h(4, 0xf0);     // c = 0..15  (channels H4-H7)
    pint d = pint_mul(b, c);      // 8-way entangled product
    pint e = pint_eq(d, a);       // 1 where b*c == 15
    pint f = pint_mul(e, b);      // zero the non-factors
    pint_measure(f);              // prints 0, 1, 3, 5, 15

and the section 4.2 refinement: because entanglement channel ``k``
encodes ``b = k % 2**bits_b`` directly, the final multiply is redundant --
walking the 1-channels of ``e`` with ``next`` and decoding them recovers
the factor *pairs*.  Both forms are implemented, for any target number
and bit widths, over either substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.pbp import PbpContext, Pint
from repro.pbp.measure import values_where


@dataclass
class FactorResult:
    """Everything the factoring computation produced (non-destructively)."""

    n: int
    bits_b: int
    bits_c: int
    #: Figure 9's printed measurement of ``f = e * b`` (0 and the factors).
    measured: list[int] = field(default_factory=list)
    #: (b, c) pairs with ``b * c == n``, from channel decoding.
    pairs: list[tuple[int, int]] = field(default_factory=list)
    #: Nontrivial factors (excluding 1 and n).
    nontrivial: list[int] = field(default_factory=list)
    #: The equality pbit, still measurable (PBP measurement never collapses).
    e: Pint | None = None
    #: The superposed candidate b, likewise intact.
    b: Pint | None = None


def _make_context(bits_b: int, bits_c: int, backend: str, chunk_ways: int | None) -> PbpContext:
    return PbpContext(ways=bits_b + bits_c, backend=backend, chunk_ways=chunk_ways)


def factor_word_level(
    n: int,
    bits_b: int,
    bits_c: int,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> FactorResult:
    """Run the Figure 9 algorithm for ``n`` with the given factor widths.

    Returns the sorted distinct values of ``f = e * b`` -- for ``n = 15``
    with 4+4 bits that is exactly the paper's ``{0, 1, 3, 5, 15}``.
    """
    if n <= 0 or n >> (bits_b + bits_c):
        raise ReproError(f"{n} does not fit in {bits_b}+{bits_c} bits")
    ctx = _make_context(bits_b, bits_c, backend, chunk_ways)
    width_n = bits_b + bits_c
    a = ctx.pint_mk(width_n, n)
    b = ctx.pint_h(bits_b, (1 << bits_b) - 1)
    c = ctx.pint_h(bits_c, ((1 << bits_c) - 1) << bits_b)
    d = b * c
    e = d.eq(a)
    f = e * b
    measured = f.measure()
    pairs = _decode_pairs(e, bits_b)
    return FactorResult(
        n=n,
        bits_b=bits_b,
        bits_c=bits_c,
        measured=measured,
        pairs=pairs,
        nontrivial=sorted(
            {p for pair in pairs for p in pair if p not in (1, n)}
        ),
        e=e,
        b=b,
    )


def _decode_pairs(e: Pint, bits_b: int) -> list[tuple[int, int]]:
    """Section 4.2 channel decoding: channel ``k`` encodes
    ``(k % 2**bits_b, k >> bits_b)``."""
    mask = (1 << bits_b) - 1
    pairs = []
    for channel in e.bits[0].iter_ones():
        pairs.append((channel & mask, channel >> bits_b))
    return sorted(pairs)


def factor_channels(
    n: int,
    bits_b: int,
    bits_c: int,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> list[tuple[int, int]]:
    """Factor pairs of ``n`` via channel decoding only (no ``e * b``).

    This is the Tangled/Qat readout of section 4.2: build ``e``, then walk
    its 1-channels with the ``next`` protocol.
    """
    ctx = _make_context(bits_b, bits_c, backend, chunk_ways)
    a = ctx.pint_mk(bits_b + bits_c, n)
    b = ctx.pint_h(bits_b, (1 << bits_b) - 1)
    c = ctx.pint_h(bits_c, ((1 << bits_c) - 1) << bits_b)
    e = (b * c).eq(a)
    return _decode_pairs(e, bits_b)


def factor_pairs(
    n: int,
    bits_b: int,
    bits_c: int,
    backend: str = "auto",
    chunk_ways: int | None = None,
) -> list[tuple[int, int]]:
    """Like :func:`factor_channels` but via :func:`values_where` on ``b``.

    Returns (b, n//b) pairs; relies on the non-destructive readout of the
    still-superposed ``b`` in the channels where ``e`` holds.
    """
    ctx = _make_context(bits_b, bits_c, backend, chunk_ways)
    a = ctx.pint_mk(bits_b + bits_c, n)
    b = ctx.pint_h(bits_b, (1 << bits_b) - 1)
    c = ctx.pint_h(bits_c, ((1 << bits_c) - 1) << bits_b)
    e = (b * c).eq(a)
    bs = values_where(b, e)
    return sorted((value, n // value) for value in bs if value and n % value == 0)


def figure9_demo() -> list[int]:
    """The paper's exact Figure 9 run: factor 15 with 4+4 bits, 8-way.

    Returns ``[0, 1, 3, 5, 15]``.
    """
    return factor_word_level(15, 4, 4).measured
