"""The Figure 10 program and the compiler pipeline that regenerates it.

Figure 10 is the complete Tangled/Qat listing factoring 15 (the gate
operations were emitted by the LCPC'20 software-only PBP system; the
readout was hand written).  Here it exists twice:

- :data:`FIG10_SOURCE` -- the literal listing, transcribed from the paper
  (``fig10.s``), runnable on all three simulators; and
- :func:`compile_factor_program` -- our gate-level compiler producing an
  equivalent program for *any* semiprime from the word-level algorithm,
  with the paper's greedy register allocation or the section 5
  improvements (recycling allocator, reserved constant registers,
  alternative gate sets) -- the substrate for the ablation benches.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass

from repro.asm import Program, assemble
from repro.cpu import (
    FunctionalSimulator,
    MultiCycleSimulator,
    PipelineConfig,
    PipelinedSimulator,
)
from repro.errors import ReproError
from repro.gates import EmitOptions, GateCircuit, emit_qat, multiply, optimize
from repro.gates.library import equals_const

#: The literal Figure 10 listing (transcribed from the paper).
FIG10_SOURCE: str = (
    importlib.resources.files("repro.apps").joinpath("fig10.s").read_text()
)

#: Epilogue we append so the simulators halt after the readout.
_HALT = "\n\tlex\t$rv,0\n\tsys\n"


def fig10_program() -> Program:
    """The assembled Figure 10 program (plus a halting ``sys``)."""
    return assemble(FIG10_SOURCE + _HALT)


@dataclass
class CompiledFactor:
    """A factoring program produced by our compiler pipeline."""

    n: int
    bits_b: int
    bits_c: int
    asm: str
    program: Program
    e_reg: int  #: Qat register holding the equality pbit
    qat_instructions: int
    qat_words: int
    high_water_regs: int
    gate_count: int


def build_factor_circuit(n: int, bits_b: int, bits_c: int, optimized: bool = True) -> GateCircuit:
    """Gate circuit computing ``e = (b * c == n)`` over Hadamard inputs."""
    circuit = GateCircuit()
    b = [circuit.had(k) for k in range(bits_b)]
    c = [circuit.had(bits_b + k) for k in range(bits_c)]
    product = multiply(circuit, b, c)
    e = equals_const(circuit, product, n)
    circuit.mark_output("e", e)
    return optimize(circuit) if optimized else circuit


def compile_factor_program(
    n: int,
    bits_b: int,
    bits_c: int,
    options: EmitOptions | None = None,
    optimized: bool = True,
    skip_trivial: bool = True,
) -> CompiledFactor:
    """Compile a complete factoring program like Figure 10.

    The readout mirrors the paper's hand-written epilogue: start the
    ``next`` walk after the trivial ``(n, 1)`` channel, take two hits,
    and mask each down to ``b`` with ``and``.
    """
    if n <= 0 or n >> (bits_b + bits_c):
        raise ReproError(f"{n} does not fit in {bits_b}+{bits_c} bits")
    circuit = build_factor_circuit(n, bits_b, bits_c, optimized=optimized)
    options = options or EmitOptions()
    emission = emit_qat(circuit, options)
    e_reg = emission.output_regs["e"]
    prologue: list[str] = []
    if options.reserved_constants:
        # In hardware these registers would be constant-wired (section 5);
        # the simulator must materialize them once at program start.
        prologue.append("\tzero\t@0")
        prologue.append("\tone\t@1")
        prologue.extend(f"\thad\t@{2 + k},{k}" for k in range(16))
    if skip_trivial and n < (1 << bits_b) and n < (1 << bits_c):
        # Channel of the (n, 1) pair -- Figure 10's "lex $0,31" for n=15.
        start = n + (1 << bits_b)
    else:
        start = 0
    mask = (1 << bits_b) - 1
    lines = prologue + [f"\t{line}" for line in emission.lines]
    lines += [
        f"\tloadi\t$0,{start}",
        f"\tnext\t$0,@{e_reg}",
        "\tcopy\t$1,$0",
        f"\tnext\t$1,@{e_reg}",
        f"\tloadi\t$2,{mask}",
        "\tand\t$0,$2",
        "\tand\t$1,$2",
        "\tlex\t$rv,0",
        "\tsys",
    ]
    asm = "\n".join(lines) + "\n"
    return CompiledFactor(
        n=n,
        bits_b=bits_b,
        bits_c=bits_c,
        asm=asm,
        program=assemble(asm),
        e_reg=e_reg,
        qat_instructions=emission.instruction_count,
        qat_words=emission.word_count,
        high_water_regs=emission.high_water_regs,
        gate_count=circuit.gate_count(),
    )


def run_factor_program(
    program: Program,
    ways: int = 8,
    simulator: str = "pipelined",
    config: PipelineConfig | None = None,
    qat_backend: str = "dense",
):
    """Run a factoring program; returns ``(simulator, ($0, $1))``.

    ``simulator`` is ``"functional"``, ``"multicycle"`` or ``"pipelined"``;
    ``qat_backend`` selects the Qat register substrate (``"dense"`` or
    ``"re"``), which is what lets this run at ways well past 26.
    """
    if simulator == "functional":
        sim = FunctionalSimulator(ways=ways, qat_backend=qat_backend)
    elif simulator == "multicycle":
        sim = MultiCycleSimulator(ways=ways, qat_backend=qat_backend)
    elif simulator == "pipelined":
        sim = PipelinedSimulator(ways=ways, config=config,
                                 qat_backend=qat_backend)
    else:
        raise ReproError(f"unknown simulator {simulator!r}")
    sim.load(program)
    sim.run()
    return sim, (sim.machine.read_reg(0), sim.machine.read_reg(1))


def profile_factor_program(
    program: Program | None = None,
    ways: int = 8,
    simulator: str = "pipelined",
    config: PipelineConfig | None = None,
    qat_backend: str = "dense",
):
    """Run a factoring program under the architectural profiler.

    Defaults to the literal Figure 10 listing.  Returns
    ``(simulator, profiler)`` -- the profiler's per-PC ledger
    (:meth:`~repro.obs.profile.Profiler.as_dict`) is the programmatic
    view behind ``tangled profile fig10``, with per-PC cycles summing
    exactly to the run's cycle count.
    """
    from repro.obs.profile import profile_program

    if program is None:
        program = fig10_program()
    return profile_program(program, ways=ways, simulator=simulator,
                           config=config, qat_backend=qat_backend)
