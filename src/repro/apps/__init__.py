"""Applications: the paper's algorithms plus further PBP demonstrations.

- :mod:`repro.apps.factor` -- the word-level prime-factoring algorithm of
  Figure 9, generalized to any semiprime and both substrates, plus the
  section 4.2 channel-decoding readout.
- :mod:`repro.apps.fig10` -- the *literal* Figure 10 Tangled/Qat assembly
  listing (transcribed from the paper) and a compiler pipeline that
  regenerates equivalent programs from the word-level form.
- :mod:`repro.apps.search` -- exhaustive SAT / inverse-function search in
  superposition: every satisfying assignment from one non-destructive
  readout.
- :mod:`repro.apps.arithmetic` -- superposed arithmetic demonstrations.
"""

from repro.apps.factor import (
    FactorResult,
    factor_channels,
    factor_pairs,
    factor_word_level,
    figure9_demo,
)
from repro.apps.fig10 import (
    FIG10_SOURCE,
    compile_factor_program,
    fig10_program,
    profile_factor_program,
    run_factor_program,
)
from repro.apps.search import solve_sat, invert_function
from repro.apps.arithmetic import multiplication_distribution, superposed_sum
from repro.apps.coloring import chromatic_number, color_graph

__all__ = [
    "FIG10_SOURCE",
    "FactorResult",
    "chromatic_number",
    "color_graph",
    "compile_factor_program",
    "factor_channels",
    "factor_pairs",
    "factor_word_level",
    "fig10_program",
    "figure9_demo",
    "invert_function",
    "multiplication_distribution",
    "profile_factor_program",
    "run_factor_program",
    "solve_sat",
    "superposed_sum",
]
