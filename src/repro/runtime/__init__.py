"""Hardened job-execution substrate for the ``--jobs`` fan-outs.

The fault-campaign and bench runners shard pure tasks across worker
processes.  :mod:`repro.runtime.supervisor` owns the part the raw
``multiprocessing.Pool`` never did: per-shard wall-clock deadlines with
hung-worker kill-and-replace, bounded retry with exponential backoff,
poison-shard quarantine, opt-in per-worker memory ceilings, and the
failure/recovery counters the telemetry taxonomy and run ledger record.
"""

from repro.runtime.supervisor import (
    Supervisor,
    SupervisorConfig,
    SupervisorInterrupted,
    SupervisorStats,
    ShardOutcome,
    chaos_hook,
)

__all__ = [
    "Supervisor",
    "SupervisorConfig",
    "SupervisorInterrupted",
    "SupervisorStats",
    "ShardOutcome",
    "chaos_hook",
]
