"""Supervised worker pool: timeouts, retries, quarantine, resume hooks.

``multiprocessing.Pool`` treats a dead or wedged worker as a fatal
event: one OOM-killed shard aborts (or stalls) a whole thousand-run
fault campaign.  The :class:`Supervisor` replaces it with a pool the
campaign layer can actually trust at the memory frontier:

- **deadlines** -- every shard gets a wall-clock budget
  (:attr:`SupervisorConfig.shard_timeout`); a worker that blows it is
  SIGKILLed and replaced, and the shard is retried;
- **crash isolation** -- a worker that dies mid-shard (``os._exit``,
  OOM kill, segfault) is detected through its process sentinel; the
  shard it held is retried on a replacement worker;
- **bounded retry with backoff** -- each failed shard is re-dispatched
  after an exponential delay, at most :attr:`SupervisorConfig.max_attempts`
  executions in total;
- **quarantine** -- a shard that exhausts its attempts is returned as a
  *toxic* :class:`ShardOutcome` (``ok=False``) instead of failing the
  run; every other shard still completes;
- **resource ceilings** -- :attr:`SupervisorConfig.worker_mem_mib`
  applies ``RLIMIT_AS`` in every worker before it touches a task,
  generalizing the RE-backend 512 MiB CI trick into a knob.

Workers communicate over per-worker duplex pipes, so a kill can never
corrupt a shared queue, and the parent waits simultaneously on result
pipes and process sentinels -- a worker death wakes the loop at once.

Shard functions must be top-level callables with the signature
``fn(payload, attempt)`` returning a picklable result.  Results are
keyed by shard id, so callers merge them deterministically regardless
of scheduling (the same post-hoc sort the ``Pool`` path used).

The per-run failure/recovery tallies land in :class:`SupervisorStats`,
whose keys (``retries``, ``timeouts``, ``crashes``, ``errors``,
``workers.replaced``, ``shards.toxic``) are exactly the telemetry
counter suffixes published under the ``supervisor.`` namespace.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from multiprocessing.connection import wait as _conn_wait
from typing import Callable

from repro.errors import ReproError, SupervisorError
from repro.obs import flight as _flight

#: Shard failure kinds (the ``failures`` history entries).
CRASH, TIMEOUT, ERROR = "crash", "timeout", "error"

#: Environment variable carrying a chaos directive (``kind:shard:attempt``)
#: for the failure-mode tests and the CI ``chaos-smoke`` job.
CHAOS_ENV = "TANGLED_CHAOS"


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for one supervised fan-out."""

    #: worker process count (the CLI ``--jobs``).
    jobs: int = 2
    #: wall-clock seconds a shard may run before its worker is killed
    #: and the shard retried; ``None`` disables the deadline.
    shard_timeout: float | None = None
    #: total executions a shard may consume (first try + retries)
    #: before it is quarantined as toxic.
    max_attempts: int = 3
    #: first retry delay in seconds; doubles per failed attempt.
    backoff_base: float = 0.05
    #: retry delay ceiling in seconds.
    backoff_cap: float = 2.0
    #: per-worker ``RLIMIT_AS`` ceiling in MiB (``None`` = unlimited).
    worker_mem_mib: int | None = None

    def __post_init__(self) -> None:
        if self.jobs <= 0:
            raise SupervisorError(f"jobs must be positive, got {self.jobs}")
        if self.max_attempts <= 0:
            raise SupervisorError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise SupervisorError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )
        if self.worker_mem_mib is not None and self.worker_mem_mib <= 0:
            raise SupervisorError(
                f"worker_mem_mib must be positive, got {self.worker_mem_mib}"
            )


@dataclass
class SupervisorStats:
    """Failure/recovery tallies for one :meth:`Supervisor.run`."""

    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    errors: int = 0
    workers_replaced: int = 0
    toxic: int = 0

    def as_dict(self) -> dict:
        """Telemetry-taxonomy keyed rendering (``supervisor.<key>``)."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "workers.replaced": self.workers_replaced,
            "shards.toxic": self.toxic,
        }


@dataclass
class ShardOutcome:
    """Terminal state of one shard: a result, or quarantine."""

    shard: int
    ok: bool
    result: object = None
    attempts: int = 1
    #: failure history: ``{"kind": crash|timeout|error, "error": str}``
    #: per failed attempt, oldest first.
    failures: list[dict] = field(default_factory=list)
    #: path of the blackbox spool file the (first failing) worker left
    #: behind; only populated for quarantined shards.
    blackbox: str | None = None

    @property
    def failure_kinds(self) -> list[str]:
        return [f["kind"] for f in self.failures]

    def quarantine_message(self) -> str:
        last = self.failures[-1]["error"] if self.failures else "unknown"
        return (
            f"shard quarantined after {self.attempts} failed attempt(s): "
            f"{last}"
        )


class SupervisorInterrupted(ReproError):
    """Raised when the fan-out is interrupted (Ctrl-C) mid-flight.

    Carries every shard outcome that completed before the interrupt so
    the caller can flush a partial report; all workers have already
    been terminated when this propagates.
    """

    def __init__(self, outcomes: dict[int, ShardOutcome],
                 stats: SupervisorStats, total: int):
        self.outcomes = outcomes
        self.stats = stats
        self.total = total
        super().__init__(
            f"fan-out interrupted after {len(outcomes)}/{total} shards"
        )


def chaos_hook(shard: int, attempt: int) -> None:
    """Deterministic failure injection for chaos tests -- workers only.

    Honors ``TANGLED_CHAOS=kind:shard:last_attempt`` where *kind* is
    ``crash`` (``os._exit(1)``), ``hang`` (sleep far past any shard
    timeout) or ``bloat`` (allocate ~1 GiB, tripping an ``RLIMIT_AS``
    ceiling).  The directive fires when executing *shard* at any attempt
    ``<= last_attempt``, and never in the parent process -- the serial
    path and the golden run are exempt by construction.
    """
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return
    if multiprocessing.parent_process() is None:
        return
    try:
        kind, target, last_attempt = spec.split(":")
        target_i, last_i = int(target), int(last_attempt)
    except ValueError:
        return
    if shard != target_i or attempt > last_i:
        return
    if kind == "crash":
        # A crash is the one failure the deadline timer cannot cover:
        # spill the flight ring before the process evaporates.
        _flight.spool_spill(shard, "chaos-crash")
        os._exit(1)
    elif kind == "hang":
        time.sleep(600.0)
    elif kind == "bloat":
        hog = bytearray(1 << 30)
        hog[::4096] = b"x" * len(hog[::4096])


def _apply_memory_ceiling(mem_mib: int) -> None:
    """Best-effort ``RLIMIT_AS`` ceiling (no-op where unsupported)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return
    limit = mem_mib << 20
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError):
        pass


def _worker_main(conn, fn, initializer, mem_mib,
                 shard_timeout=None) -> None:
    """One supervised worker: receive tasks, send results, never raise.

    SIGINT is ignored (the parent owns interrupt handling and kills
    workers explicitly).  A ``MemoryError`` is reported and then the
    worker exits -- its heap is untrustworthy near an ``RLIMIT_AS``
    ceiling, so the parent replaces it with a fresh process.

    The parent enforces ``shard_timeout`` with SIGKILL, which a worker
    can never catch -- so before each task the worker arms a SIGALRM
    self-dump (:func:`repro.obs.flight.arm_deadline_dump`) that spills
    its flight-recorder ring to the blackbox spool ahead of the
    deadline; in-worker errors spill on the way out too.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    if mem_mib is not None:
        _apply_memory_ceiling(mem_mib)
    if initializer is not None:
        initializer()
    # The forked ring holds the *parent's* history (golden run, earlier
    # commands); a worker's post-mortem should contain only its own work.
    _flight.RECORDER.reset()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        shard, attempt, payload = message
        poisoned = False
        disarm = _flight.arm_deadline_dump(shard, shard_timeout)
        try:
            result = fn(payload, attempt)
        except MemoryError:
            reply = (shard, ERROR, "MemoryError: worker memory ceiling "
                                   "exceeded")
            poisoned = True
            _flight.spool_spill(shard, "worker-error")
        except BaseException as exc:  # report, never crash the loop
            reply = (shard, ERROR, f"{type(exc).__name__}: {exc}")
            _flight.spool_spill(shard, "worker-error")
        else:
            reply = (shard, "ok", result)
        finally:
            disarm()
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        if poisoned:
            break
    conn.close()


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("process", "conn", "shard", "deadline", "ident")

    def __init__(self, process, conn, ident: int):
        self.process = process
        self.conn = conn
        self.ident = ident
        self.shard: int | None = None
        self.deadline: float | None = None


class Supervisor:
    """Run shards through a self-healing worker pool.

    ``fn(payload, attempt)`` executes one shard in a worker process;
    ``initializer()`` runs once per worker (telemetry detach, store
    resets).  ``on_event(kind)`` fires in the parent on every recovery
    action with a :meth:`SupervisorStats.as_dict` key (``"retries"``,
    ``"timeouts"``, ``"crashes"``, ``"errors"``, ``"workers.replaced"``,
    ``"shards.toxic"``) -- the progress layer turns these into status-
    line annotations and gauges.
    """

    #: Parent-loop wakeup ceiling (deadline checks happen at least this
    #: often even when no results arrive).
    _POLL_SECONDS = 0.25

    def __init__(self, fn: Callable, config: SupervisorConfig,
                 initializer: Callable | None = None,
                 on_event: Callable[[str], None] | None = None):
        self.fn = fn
        self.config = config
        self.initializer = initializer
        self.on_event = on_event
        self.stats = SupervisorStats()
        self._workers: list[_Worker] = []
        self._spawned = 0

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = multiprocessing.Pipe()
        self._spawned += 1
        process = multiprocessing.Process(
            target=_worker_main,
            args=(child_conn, self.fn, self.initializer,
                  self.config.worker_mem_mib, self.config.shard_timeout),
            name=f"TangledWorker-{self._spawned}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn, self._spawned)
        self._workers.append(worker)
        return worker

    def _retire(self, worker: _Worker, kill: bool = False) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _shutdown(self, force: bool = False) -> None:
        for worker in list(self._workers):
            if not force and worker.process.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in list(self._workers):
            worker.process.join(timeout=0.2 if force else 2.0)
            self._retire(worker, kill=True)

    def _emit(self, kind: str) -> None:
        if _flight.RECORDER.enabled:
            _flight.RECORDER.mark(f"supervisor.{kind}")
        if self.on_event is not None:
            self.on_event(kind)

    # -- the supervise loop --------------------------------------------------

    def run(self, payloads, on_result=None) -> dict[int, ShardOutcome]:
        """Execute every shard; returns ``{shard: ShardOutcome}``.

        ``payloads`` is a mapping ``{shard_id: payload}`` (a sequence is
        treated as ``enumerate``).  ``on_result(outcome)`` fires in the
        parent the moment a shard reaches a terminal state (success or
        quarantine) -- the journaling / progress hook.  Raises
        :class:`SupervisorInterrupted` on Ctrl-C with the partial
        outcome map attached; workers are terminated first.
        """
        if isinstance(payloads, dict):
            items = dict(payloads)
        else:
            items = dict(enumerate(payloads))
        total = len(items)
        outcomes: dict[int, ShardOutcome] = {}
        if total == 0:
            return outcomes
        if _flight.RECORDER.enabled:
            _flight.RECORDER.mark(
                "supervisor.start",
                f"{total} shard(s), jobs={self.config.jobs}",
            )
        attempts = {shard: 0 for shard in items}
        failures: dict[int, list[dict]] = {shard: [] for shard in items}
        queue: deque[int] = deque(sorted(items))
        delayed: list[tuple[float, int]] = []
        # A worker dying faster than work completes (e.g. an initializer
        # that cannot allocate under the memory ceiling) must not become
        # a fork bomb: cap total spawns at the worst legitimate case.
        spawn_cap = self.config.jobs + total * self.config.max_attempts + 8

        def settle(shard: int, outcome: ShardOutcome) -> None:
            if outcome.ok:
                # An earlier failing attempt (or a deadline dump that
                # beat a just-in-time finish) may have spooled a
                # blackbox; the shard recovered, so drop it.
                _flight.spool_discard(shard)
            else:
                outcome.blackbox = _flight.spool_collect(shard)
            outcomes[shard] = outcome
            if on_result is not None:
                on_result(outcome)

        def fail(shard: int, kind: str, message: str) -> None:
            failures[shard].append({"kind": kind, "error": message})
            if kind == TIMEOUT:
                self.stats.timeouts += 1
                self._emit("timeouts")
            elif kind == CRASH:
                self.stats.crashes += 1
                self._emit("crashes")
            else:
                self.stats.errors += 1
                self._emit("errors")
            if attempts[shard] >= self.config.max_attempts:
                self.stats.toxic += 1
                self._emit("shards.toxic")
                settle(shard, ShardOutcome(
                    shard, ok=False, attempts=attempts[shard],
                    failures=failures[shard],
                ))
                return
            self.stats.retries += 1
            self._emit("retries")
            delay = min(
                self.config.backoff_cap,
                self.config.backoff_base * (2 ** (attempts[shard] - 1)),
            )
            heappush(delayed, (time.monotonic() + delay, shard))

        def replace_worker(worker: _Worker, kill: bool) -> None:
            self._retire(worker, kill=kill)
            self.stats.workers_replaced += 1
            self._emit("workers.replaced")

        try:
            while len(outcomes) < total:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    queue.append(heappop(delayed)[1])
                # Keep the pool sized to the remaining work.
                remaining = total - len(outcomes)
                while len(self._workers) < min(self.config.jobs, remaining):
                    if self._spawned >= spawn_cap:
                        raise SupervisorError(
                            f"workers are dying faster than shards complete "
                            f"({self._spawned} spawned for {total} shards); "
                            f"giving up"
                        )
                    self._spawn()
                # Dispatch ready shards onto idle workers.
                for worker in self._workers:
                    if worker.shard is not None or not queue:
                        continue
                    shard = queue.popleft()
                    attempts[shard] += 1
                    try:
                        worker.conn.send(
                            (shard, attempts[shard] - 1, items[shard])
                        )
                    except (BrokenPipeError, OSError):
                        # Dead before dispatch: not the shard's fault.
                        attempts[shard] -= 1
                        queue.appendleft(shard)
                        replace_worker(worker, kill=True)
                        break
                    worker.shard = shard
                    worker.deadline = (
                        now + self.config.shard_timeout
                        if self.config.shard_timeout is not None else None
                    )
                # Wait for a result, a worker death, or the next
                # deadline/backoff expiry -- whichever is soonest.
                wait_until = now + self._POLL_SECONDS
                for worker in self._workers:
                    if worker.deadline is not None:
                        wait_until = min(wait_until, worker.deadline)
                if delayed:
                    wait_until = min(wait_until, delayed[0][0])
                handles = [w.conn for w in self._workers]
                handles += [w.process.sentinel for w in self._workers]
                ready = _conn_wait(handles,
                                   timeout=max(0.0, wait_until - now))
                # Results first, so a shard finishing right at its
                # deadline is never misclassified as a timeout.
                for worker in list(self._workers):
                    if worker.conn not in ready:
                        continue
                    try:
                        shard, status, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        continue  # death; the sentinel pass handles it
                    worker.shard = None
                    worker.deadline = None
                    if shard in outcomes:
                        continue  # late duplicate of a retried shard
                    if status == "ok":
                        settle(shard, ShardOutcome(
                            shard, ok=True, result=payload,
                            attempts=attempts[shard],
                            failures=failures[shard],
                        ))
                    else:
                        fail(shard, ERROR, payload)
                now = time.monotonic()
                for worker in list(self._workers):
                    if not worker.process.is_alive():
                        held = worker.shard
                        replace_worker(worker, kill=False)
                        if held is not None and held not in outcomes:
                            code = worker.process.exitcode
                            fail(held, CRASH,
                                 f"worker exited with code {code} "
                                 f"mid-shard")
                    elif (worker.deadline is not None
                          and now > worker.deadline):
                        held = worker.shard
                        replace_worker(worker, kill=True)
                        if held is not None and held not in outcomes:
                            fail(held, TIMEOUT,
                                 f"exceeded shard timeout of "
                                 f"{self.config.shard_timeout:g}s")
        except KeyboardInterrupt:
            self._shutdown(force=True)
            raise SupervisorInterrupted(outcomes, self.stats, total) from None
        finally:
            self._shutdown()
        return outcomes


def map_supervised(fn, payloads, config: SupervisorConfig,
                   initializer=None, on_result=None, on_event=None,
                   ) -> tuple[dict[int, ShardOutcome], SupervisorStats]:
    """One-shot convenience wrapper around :class:`Supervisor`."""
    supervisor = Supervisor(fn, config, initializer=initializer,
                            on_event=on_event)
    outcomes = supervisor.run(payloads, on_result=on_result)
    return outcomes, supervisor.stats
