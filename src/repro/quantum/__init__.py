"""State-vector quantum baseline.

The paper contrasts Qat's non-destructive measurement with real quantum
computers, where "measuring a superposed qubit's value collapses it"
(section 2.7, Figure 5) and "there is no number of runs sufficient to
guarantee that all values in the entangled superposition have been seen".

This package provides the comparison substrate: a dense state-vector
simulator with the gates of the paper's Figures 2-4 (X, H, CNOT, CCNOT,
SWAP, CSWAP) and *destructive* projective measurement, plus the
coupon-collector analysis used by the quantum-vs-PBP benchmark.
"""

from repro.quantum.statevector import QuantumSimulator
from repro.quantum.sampling import (
    expected_runs_to_see_all,
    runs_to_collect_all,
)
from repro.quantum.reversible import (
    ReversibleCircuit,
    build_quantum_factor_circuit,
    controlled_cuccaro_add,
    cuccaro_add,
    run_factoring,
)

__all__ = [
    "QuantumSimulator",
    "ReversibleCircuit",
    "build_quantum_factor_circuit",
    "controlled_cuccaro_add",
    "cuccaro_add",
    "expected_runs_to_see_all",
    "run_factoring",
    "runs_to_collect_all",
]
