"""Coupon-collector analysis of destructive measurement.

The paper (section 2.7): "although an entangled superposition at the end
of a computation might contain all answers, only one can be examined per
run.  Further, the inability to deterministically pick which answer is
sampled means that there is no number of runs sufficient to guarantee
that all values in the entangled superposition have been seen."

These helpers quantify that: the *expected* number of runs for a quantum
computer to observe every distinct answer at least once (the weighted
coupon-collector problem), and a Monte-Carlo run counter against a
:class:`~repro.quantum.statevector.QuantumSimulator`.  PBP needs exactly
one (non-destructive) readout regardless of the distribution.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.errors import ReproError


def expected_runs_to_see_all(probabilities: list[float]) -> float:
    """Expected draws to see every outcome once (inclusion-exclusion).

    ``E = sum over non-empty subsets S of (-1)^(|S|+1) / P(S)`` where
    ``P(S)`` is the total probability of subset ``S``.  Exponential in the
    number of distinct outcomes; fine for the handful of answers the
    factoring benchmarks produce.
    """
    probs = [p for p in probabilities if p > 0]
    if not probs:
        raise ReproError("need at least one positive-probability outcome")
    if len(probs) > 20:
        raise ReproError("inclusion-exclusion limited to 20 outcomes")
    total = float(sum(probs))
    expected = 0.0
    n = len(probs)
    for size in range(1, n + 1):
        sign = 1.0 if size % 2 else -1.0
        for subset in combinations(probs, size):
            expected += sign * total / sum(subset)
    return expected


def runs_to_collect_all(
    prepare,
    distinct: int,
    rng: np.random.Generator,
    max_runs: int = 1_000_000,
) -> int:
    """Monte-Carlo: repeat "prepare state, measure destructively" until
    ``distinct`` different outcomes have been observed.

    ``prepare`` is a zero-argument callable returning a freshly prepared
    :class:`~repro.quantum.statevector.QuantumSimulator` (each quantum run
    must re-prepare from scratch -- measurement destroyed the last state).
    Returns the number of runs used.
    """
    seen: set[int] = set()
    runs = 0
    while len(seen) < distinct:
        if runs >= max_runs:
            raise ReproError(f"did not see all outcomes within {max_runs} runs")
        sim = prepare()
        sim.rng = rng
        seen.add(sim.measure_all())
        runs += 1
    return runs
