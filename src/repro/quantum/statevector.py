"""Dense state-vector simulation of a small quantum computer.

Implements exactly the gate set the paper draws in Figures 2-4 plus the
Figure 5 measurement gate.  Qubit 0 is the least significant bit of a
basis-state index.  Unlike Qat, measurement here **collapses** the state:
entangled qubits lock to consistent values and the superposition is gone
-- which is precisely the behavioural difference the benchmarks quantify.

Permutation gates (X, CNOT, CCNOT, SWAP, CSWAP) are applied as basis
re-indexing (every one is an involution on basis states); only the
Hadamard mixes amplitudes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

_SQRT_HALF = 1.0 / np.sqrt(2.0)


class QuantumSimulator:
    """An ``n``-qubit register with ideal (noiseless) gates."""

    def __init__(self, num_qubits: int, rng: np.random.Generator | None = None):
        if not 1 <= num_qubits <= 24:
            raise ReproError(f"num_qubits must be in [1, 24], got {num_qubits}")
        self.num_qubits = num_qubits
        self.rng = rng if rng is not None else np.random.default_rng()
        self.state = np.zeros(1 << num_qubits, dtype=np.complex128)
        self.state[0] = 1.0
        self._idx = np.arange(1 << num_qubits)

    def _check(self, *qubits: int) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ReproError(f"qubit index out of range: {q}")
        if len(set(qubits)) != len(qubits):
            raise ReproError("gate qubits must be distinct")

    # -- state preparation ------------------------------------------------------

    def reset(self, basis_state: int = 0) -> None:
        """Initialize to a computational basis state (the Figure 2 phase 1)."""
        if not 0 <= basis_state < self.state.size:
            raise ReproError(f"basis state out of range: {basis_state}")
        self.state[:] = 0.0
        self.state[basis_state] = 1.0

    def prepare_distribution(self, counts: dict[int, int]) -> None:
        """Load amplitudes proportional to the square roots of ``counts``.

        Used by the comparison benchmarks to hand the quantum baseline the
        same final distribution PBP computed, isolating the *measurement*
        difference from the computation difference.
        """
        self.state[:] = 0.0
        total = sum(counts.values())
        if total <= 0:
            raise ReproError("counts must be positive")
        for value, count in counts.items():
            if not 0 <= value < self.state.size:
                raise ReproError(f"value {value} exceeds the register width")
            self.state[value] = np.sqrt(count / total)

    def _axes(self, *qubits: int) -> np.ndarray:
        """Tensor view with the given qubits moved to the leading axes.

        Axis order in the reshape is most-significant qubit first, so
        qubit ``q`` sits at axis ``num_qubits - 1 - q``.
        """
        view = self.state.reshape([2] * self.num_qubits)
        sources = tuple(self.num_qubits - 1 - q for q in qubits)
        return np.moveaxis(view, sources, tuple(range(len(qubits))))

    @staticmethod
    def _swap_slices(view: np.ndarray, i, j) -> None:
        """Exchange two disjoint index tuples of a tensor view in place."""
        tmp = view[i].copy()
        view[i] = view[j]
        view[j] = tmp

    # -- gates (Figures 2-4) ------------------------------------------------------

    def x(self, qubit: int) -> None:
        """Pauli-X (the ``not`` gate of Figure 3)."""
        self._check(qubit)
        self._swap_slices(self._axes(qubit), 0, 1)

    def h(self, qubit: int) -> None:
        """Hadamard gate (Figure 2): creates/uncreates superposition."""
        self._check(qubit)
        view = self._axes(qubit)
        zero = view[0].copy()
        one = view[1].copy()
        view[0] = (zero + one) * _SQRT_HALF
        view[1] = (zero - one) * _SQRT_HALF

    def cnot(self, target: int, control: int) -> None:
        """Controlled NOT (Figure 3), operand order matching Qat's
        ``cnot @a,@b``: the *first* argument is potentially flipped."""
        self._check(target, control)
        self._swap_slices(self._axes(control, target), (1, 0), (1, 1))

    def ccnot(self, target: int, control1: int, control2: int) -> None:
        """Toffoli gate (Figure 3)."""
        self._check(target, control1, control2)
        view = self._axes(control1, control2, target)
        self._swap_slices(view, (1, 1, 0), (1, 1, 1))

    def swap(self, a: int, b: int) -> None:
        """Swap gate (Figure 4)."""
        self._check(a, b)
        self._swap_slices(self._axes(a, b), (0, 1), (1, 0))

    def cswap(self, a: int, b: int, control: int) -> None:
        """Fredkin gate (Figure 4)."""
        self._check(a, b, control)
        view = self._axes(control, a, b)
        self._swap_slices(view, (1, 0, 1), (1, 1, 0))

    # -- inspection (not available on real hardware; used by tests) -----------------

    def probabilities(self) -> np.ndarray:
        """Basis-state probability vector (simulator-only introspection)."""
        return np.abs(self.state) ** 2

    def probability_of_one(self, qubit: int) -> float:
        """P(measuring ``qubit`` = 1) without collapsing (simulator-only)."""
        self._check(qubit)
        probs = self.probabilities()
        return float(probs[(self._idx >> qubit) & 1 == 1].sum())

    # -- measurement (Figure 5: destructive) --------------------------------------------

    def measure(self, qubit: int) -> int:
        """Projective measurement of one qubit.  **Collapses the state**:
        any qubits entangled with it lock to consistent values."""
        p_one = self.probability_of_one(qubit)
        outcome = int(self.rng.random() < p_one)
        keep = ((self._idx >> qubit) & 1) == outcome
        self.state[~keep] = 0.0
        norm = np.linalg.norm(self.state)
        if norm == 0.0:  # pragma: no cover - unreachable for valid states
            raise ReproError("measurement collapsed to a zero state")
        self.state /= norm
        return outcome

    def measure_all(self) -> int:
        """Measure every qubit; returns the basis state and collapses to it."""
        probs = self.probabilities()
        probs = probs / probs.sum()
        outcome = int(self.rng.choice(probs.size, p=probs))
        self.reset(outcome)
        return outcome
