"""Reversible (quantum-style) arithmetic circuits for the baseline.

The paper's section 2.2 describes how a real quantum computer must do the
factoring computation: init, then a sequence of thermodynamically
reversible gate operations, then one destructive measurement.  This
module builds that circuit for the product-equality predicate
``b * c == n`` out of exactly the Figure 2-3 gate set (X, H, CNOT,
CCNOT), so the QVP benchmark can compare *computation plus measurement*
against the PBP path rather than measurement alone:

- :func:`cuccaro_add` -- the standard MAJ/UMA in-place ripple adder
  (Cuccaro et al. 2004): ``b += a`` using one ancilla, restoring ``a``;
- a controlled variant whose extra control is realized by decomposing
  each 3-control NOT into Toffolis with one shared ancilla;
- :func:`build_factor_circuit` -- allocate qubit registers, superpose
  ``b`` and ``c``, multiply by controlled additions, and compute the
  ``== n`` flag through a Toffoli AND-chain;
- :func:`run_factoring` -- execute on the state-vector simulator and
  destructively measure one ``(b, c, flag)`` sample, re-preparing from
  scratch for every run exactly as hardware would.

Everything is pure permutation logic after the initial Hadamards, so the
circuits are also unit-testable classically on basis states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.quantum.statevector import QuantumSimulator


@dataclass
class Gate:
    """One reversible gate: ``kind`` in {'x', 'h', 'cnot', 'ccnot'}."""

    kind: str
    qubits: tuple[int, ...]


@dataclass
class ReversibleCircuit:
    """A gate list over ``num_qubits`` qubits, applied in order."""

    num_qubits: int
    gates: list[Gate] = field(default_factory=list)

    def x(self, q: int) -> None:
        self.gates.append(Gate("x", (q,)))

    def h(self, q: int) -> None:
        self.gates.append(Gate("h", (q,)))

    def cnot(self, target: int, control: int) -> None:
        self.gates.append(Gate("cnot", (target, control)))

    def ccnot(self, target: int, c1: int, c2: int) -> None:
        self.gates.append(Gate("ccnot", (target, c1, c2)))

    def cccnot(self, target: int, c1: int, c2: int, c3: int, ancilla: int) -> None:
        """3-controlled NOT via the standard 3-Toffoli decomposition.

        ``ancilla`` must be 0 on entry and is restored to 0.
        """
        self.ccnot(ancilla, c1, c2)
        self.ccnot(target, ancilla, c3)
        self.ccnot(ancilla, c1, c2)

    def gate_count(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for g in self.gates:
            counts[g.kind] = counts.get(g.kind, 0) + 1
        return counts

    def apply(self, sim: QuantumSimulator) -> None:
        """Run the circuit on a simulator."""
        if sim.num_qubits < self.num_qubits:
            raise ReproError(
                f"circuit needs {self.num_qubits} qubits, simulator has {sim.num_qubits}"
            )
        for g in self.gates:
            if g.kind == "x":
                sim.x(*g.qubits)
            elif g.kind == "h":
                sim.h(*g.qubits)
            elif g.kind == "cnot":
                sim.cnot(*g.qubits)
            elif g.kind == "ccnot":
                sim.ccnot(*g.qubits)
            else:  # pragma: no cover
                raise ReproError(f"unknown gate kind {g.kind!r}")


# ---------------------------------------------------------------------------
# Cuccaro ripple adder (MAJ / UMA), plain and single-controlled
# ---------------------------------------------------------------------------

def _maj(circ: ReversibleCircuit, c: int, b: int, a: int) -> None:
    circ.cnot(b, a)
    circ.cnot(c, a)
    circ.ccnot(a, b, c)


def _uma(circ: ReversibleCircuit, c: int, b: int, a: int) -> None:
    circ.ccnot(a, b, c)
    circ.cnot(c, a)
    circ.cnot(b, c)


def cuccaro_add(
    circ: ReversibleCircuit,
    a: list[int],
    b: list[int],
    carry_anc: int,
    carry_out: int | None = None,
) -> None:
    """In-place reversible addition ``b += a`` (LSB first, equal widths).

    ``carry_anc`` must be 0 on entry and is restored; ``carry_out``, if
    given, receives the final carry (xored in).
    """
    if len(a) != len(b):
        raise ReproError(f"width mismatch: {len(a)} vs {len(b)}")
    if not a:
        raise ReproError("adder needs at least one bit")
    n = len(a)
    _maj(circ, carry_anc, b[0], a[0])
    for i in range(1, n):
        _maj(circ, a[i - 1], b[i], a[i])
    if carry_out is not None:
        circ.cnot(carry_out, a[n - 1])
    for i in range(n - 1, 0, -1):
        _uma(circ, a[i - 1], b[i], a[i])
    _uma(circ, carry_anc, b[0], a[0])


def _controlled(circ: ReversibleCircuit, control: int, toffoli_anc: int):
    """Wrap gate emitters so every gate gains ``control``."""

    class _Ctl:
        def cnot(self, target, c1):
            circ.ccnot(target, c1, control)

        def ccnot(self, target, c1, c2):
            circ.cccnot(target, c1, c2, control, toffoli_anc)

    return _Ctl()


def controlled_cuccaro_add(
    circ: ReversibleCircuit,
    a: list[int],
    b: list[int],
    carry_anc: int,
    control: int,
    toffoli_anc: int,
    carry_out: int | None = None,
) -> None:
    """``if control: b += a`` -- every adder gate gains one control.

    The MAJ/UMA internals may run unconditionally *only* if they restore
    state when the addition is skipped; they do not, so each gate is
    individually controlled (CNOT -> CCNOT, CCNOT -> 3-control via the
    shared ``toffoli_anc``).
    """
    if len(a) != len(b):
        raise ReproError(f"width mismatch: {len(a)} vs {len(b)}")
    ctl = _controlled(circ, control, toffoli_anc)
    n = len(a)

    def maj(c, bq, aq):
        ctl.cnot(bq, aq)
        ctl.cnot(c, aq)
        ctl.ccnot(aq, bq, c)

    def uma(c, bq, aq):
        ctl.ccnot(aq, bq, c)
        ctl.cnot(c, aq)
        ctl.cnot(bq, c)

    maj(carry_anc, b[0], a[0])
    for i in range(1, n):
        maj(a[i - 1], b[i], a[i])
    if carry_out is not None:
        ctl.cnot(carry_out, a[n - 1])
    for i in range(n - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(carry_anc, b[0], a[0])


# ---------------------------------------------------------------------------
# The factoring predicate circuit
# ---------------------------------------------------------------------------

@dataclass
class FactorCircuit:
    """Qubit layout and circuit for ``flag = (b * c == n)``."""

    circuit: ReversibleCircuit
    b: list[int]
    c: list[int]
    product: list[int]
    flag: int
    num_qubits: int
    n: int


def build_quantum_factor_circuit(n: int, bits_b: int, bits_c: int, superpose: bool = True) -> FactorCircuit:
    """Reversible circuit computing ``b * c`` and comparing with ``n``.

    Layout (LSB-first registers): ``b``, ``c``, ``product``
    (``bits_b + bits_c`` wide), a zero pad reused as the addend's high
    bits, one Cuccaro carry ancilla, one Toffoli ancilla, the AND-chain
    ancillas, and the result ``flag``.

    With ``superpose`` the ``b``/``c`` registers get Hadamards (phase 2 of
    the paper's section 2.2 narrative); without it the circuit is a
    classical reversible evaluator usable on basis states.
    """
    if n <= 0 or n >> (bits_b + bits_c):
        raise ReproError(f"{n} does not fit in {bits_b}+{bits_c} bits")
    width_p = bits_b + bits_c
    next_q = 0

    def claim(count: int) -> list[int]:
        nonlocal next_q
        out = list(range(next_q, next_q + count))
        next_q += count
        return out

    b = claim(bits_b)
    c = claim(bits_c)
    product = claim(width_p)
    zero_pad = claim(width_p - bits_b)  # read-only 0 high bits of the addend
    carry_anc = claim(1)[0]
    toffoli_anc = claim(1)[0]
    chain = claim(max(0, width_p - 2))
    flag = claim(1)[0]

    circ = ReversibleCircuit(num_qubits=next_q)
    if superpose:
        for q in b + c:
            circ.h(q)
    # Multiply: for each bit i of c, controlled-add (b << i) into product.
    for i in range(bits_c):
        window = product[i:]
        addend = (b + zero_pad)[: len(window)]
        controlled_cuccaro_add(
            circ, addend, window, carry_anc, control=c[i], toffoli_anc=toffoli_anc
        )
    # Compare with n: flip product bits where n's bit is 0, then AND-chain.
    for i, q in enumerate(product):
        if not (n >> i) & 1:
            circ.x(q)
    if width_p == 1:
        circ.cnot(flag, product[0])
    elif width_p == 2:
        circ.ccnot(flag, product[0], product[1])
    else:
        circ.ccnot(chain[0], product[0], product[1])
        for i in range(2, width_p - 1):
            circ.ccnot(chain[i - 1], chain[i - 2], product[i])
        circ.ccnot(flag, chain[-1], product[-1])
    return FactorCircuit(
        circuit=circ,
        b=b,
        c=c,
        product=product,
        flag=flag,
        num_qubits=next_q,
        n=n,
    )


def run_factoring(
    fc: FactorCircuit, rng: np.random.Generator
) -> tuple[int, int, int]:
    """One full quantum run: prepare, compute, destructively measure.

    Returns ``(b, c, flag)``.  The state is consumed; another sample
    requires building up from |0...0> again (section 2.2's three phases).
    """
    sim = QuantumSimulator(fc.num_qubits, rng)
    fc.circuit.apply(sim)
    outcome = sim.measure_all()
    read = lambda qs: sum(((outcome >> q) & 1) << i for i, q in enumerate(qs))
    return read(fc.b), read(fc.c), (outcome >> fc.flag) & 1
