# Convenience targets for the Tangled/Qat reproduction.

PYTHON ?= python

.PHONY: install test bench harness examples all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

harness:
	$(PYTHON) benchmarks/harness.py

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

all: test bench harness

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
