"""Quickstart: the parallel bit pattern model in five minutes.

Runs the paper's Figure 9 prime-factoring example step by step at the
word level, then drops one level down to raw AoB values and the
entanglement-channel measurement protocol.

Usage::

    python examples/quickstart.py
"""

from repro import AoB, PbpContext
from repro.pbp.measure import values_where


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Pattern integers: Figure 9, line by line.
    # ------------------------------------------------------------------
    print("== Figure 9: word-level prime factoring of 15 ==")
    ctx = PbpContext(ways=8)  # 8-way entanglement: 256-bit AoB per pbit

    a = ctx.pint_mk(4, 15)    # pint a = pint_mk(4, 15);   a = 15
    b = ctx.pint_h(4, 0x0F)   # pint b = pint_h(4, 0x0f);  b = 0..15
    c = ctx.pint_h(4, 0xF0)   # pint c = pint_h(4, 0xf0);  c = 0..15
    d = b * c                 # pint d = pint_mul(b, c);   d = b*c
    e = d.eq(a)               # pint e = pint_eq(d, a);    e = (d == a)
    f = e * b                 # pint f = pint_mul(e, b);   zero non-factors
    print("pint_measure(f):", f.measure())  # 0, 1, 3, 5, 15

    # b and c superpose over DISJOINT channel sets (H0-H3 vs H4-H7), so
    # their product is 8-way entangled -- all 256 products at once:
    print("d holds", len(d.measure()), "distinct products in one value")

    # ------------------------------------------------------------------
    # 2. Non-destructive measurement: everything is still intact.
    # ------------------------------------------------------------------
    print("\n== Non-destructive measurement ==")
    print("b is still uniform:", b.measure() == list(range(16)))
    print("factors of 15 via values_where(b, e):", values_where(b, e))
    print("e's 1-channels decode the (b, c) pairs directly:")
    for channel in e.bits[0].iter_ones():
        print(f"  channel {channel:3d} -> b={channel & 15:2d}, c={channel >> 4:2d}")

    # ------------------------------------------------------------------
    # 3. Raw AoB values and the meas/next protocol.
    # ------------------------------------------------------------------
    print("\n== AoB values and entanglement channels ==")
    h4 = AoB.hadamard(16, 4)  # the full-scale 65,536-bit register
    print("had @a,4 pattern:", h4.to_rle_string(4))
    print("next after channel 42:", h4.next(42), "(the paper's worked example)")
    print("P(pbit = 1):", h4.probability())


if __name__ == "__main__":
    main()
