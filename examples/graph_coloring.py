"""Graph coloring in superposition: every proper coloring at once.

Colors the Petersen graph (and friends) by superposing all color
assignments over entanglement channels, evaluating every edge constraint
with gate operations, and reading the proper colorings out of one
non-destructive measurement.  The 10-vertex, 2-bit-per-vertex encoding
needs 20-way entanglement -- past the Qat hardware's 16-way limit -- so
this also exercises the RE-compressed pattern substrate transparently.

Usage::

    python examples/graph_coloring.py
"""

import networkx as nx

from repro.apps.coloring import chromatic_number, color_graph


def show(name: str, graph: nx.Graph, colors: int) -> None:
    solutions = color_graph(graph.edges(), colors, nodes=graph.nodes(), max_solutions=4)
    total = color_graph(graph.edges(), colors, nodes=graph.nodes())
    print(f"{name}: {len(total)} proper {colors}-colorings; first few:")
    for coloring in solutions:
        rendered = " ".join(f"{v}:{c}" for v, c in sorted(coloring.items(), key=lambda kv: repr(kv[0])))
        print(f"  {rendered}")


def main() -> None:
    print("== Small graphs ==")
    show("triangle K3", nx.complete_graph(3), 3)
    show("5-cycle C5", nx.cycle_graph(5), 3)

    print("\n== Petersen graph (10 vertices, 20-way entanglement) ==")
    petersen = nx.petersen_graph()
    k = chromatic_number(petersen.edges(), nodes=petersen.nodes())
    print(f"chromatic number found by increasing-k sweeps: {k}")
    some = color_graph(petersen.edges(), k, nodes=petersen.nodes(), max_solutions=2)
    for coloring in some:
        assert all(coloring[u] != coloring[v] for u, v in petersen.edges())
    print(f"example coloring: {some[0]}")
    print("(every edge constraint checked classically: OK)")

    print("\nAll of these were single evaluation passes: the substrate")
    print("holds every assignment simultaneously, and measurement is")
    print("non-destructive, so enumerating solutions costs one walk of")
    print("the validity pbit's 1-channels.")


if __name__ == "__main__":
    main()
