"""Run prime factoring on the simulated Tangled/Qat processor.

Executes the paper's literal Figure 10 assembly listing on the pipelined
simulator, then uses the compiler pipeline to generate and run an
equivalent program for a different semiprime with the section-5 ISA
improvements.

Usage::

    python examples/factoring_on_hardware.py [n bits_b bits_c]
"""

import sys

from repro.apps import FIG10_SOURCE, compile_factor_program, fig10_program, run_factor_program
from repro.gates import EmitOptions


def run_figure10() -> None:
    print("== The paper's Figure 10 listing on the pipelined simulator ==")
    program = fig10_program()
    sim, (r0, r1) = run_factor_program(program, ways=8, simulator="pipelined")
    print(f"$0 = {r0}, $1 = {r1}   (the prime factors of 15)")
    stats = sim.stats.as_dict()
    print(
        f"{stats['retired']} instructions in {stats['cycles']} cycles "
        f"(CPI {stats['cpi']}); {stats['fetch_extra']} extra fetch cycles "
        "for two-word Qat instructions"
    )
    first_lines = [l for l in FIG10_SOURCE.splitlines() if l and not l.startswith(";")][:4]
    print("listing starts:", " | ".join(l.strip() for l in first_lines))


def run_compiled(n: int, bits_b: int, bits_c: int) -> None:
    print(f"\n== Compiling a factoring program for n = {n} ==")
    for label, options in (
        ("paper-style greedy allocation", EmitOptions(allocator="greedy")),
        ("section-5 improvements", EmitOptions(allocator="recycle", reserved_constants=True)),
    ):
        compiled = compile_factor_program(n, bits_b, bits_c, options)
        sim, regs = run_factor_program(compiled.program, ways=bits_b + bits_c)
        print(
            f"{label}: factors {sorted(regs)}, "
            f"{compiled.qat_instructions} Qat instructions, "
            f"{compiled.high_water_regs} registers, "
            f"{sim.stats.cycles} cycles"
        )


def main() -> None:
    run_figure10()
    if len(sys.argv) == 4:
        n, bb, bc = (int(x) for x in sys.argv[1:])
    else:
        n, bb, bc = 221, 5, 5
    run_compiled(n, bb, bc)


if __name__ == "__main__":
    main()
