"""Scaling past 16-way entanglement with RE-compressed patterns.

The Qat hardware tops out at 65,536-bit AoB values (16-way).  The
paper's section 1.2 scaling story is software: treat those values as
symbols in a run-length compressed "regular expression".  This example
factors a 20-bit semiprime -- 2^20 entanglement channels, 16x past the
hardware -- and shows the compression statistics that make it cheap.

Usage::

    python examples/beyond_the_hardware_limit.py
"""

import time

from repro.apps import factor_channels
from repro.pattern import ChunkStore, PatternVector
from repro.pbp import PbpContext


def compression_demo() -> None:
    print("== RE compression of regular superpositions ==")
    store = ChunkStore(16)  # 65,536-bit chunks: the hardware word
    print(f"chunk symbols are {store.chunk_bits}-bit AoB values (one Qat register)")
    for ways in (18, 20, 22, 24):
        h = PatternVector.hadamard(ways, ways - 1, store)
        dense_mb = (1 << ways) / 8 / 1e6
        print(
            f"  H({ways - 1}) at {ways}-way: dense {dense_mb:8.2f} MB -> "
            f"{h.num_runs} runs over {h.storage_chunks()} distinct chunks "
            f"(compression {h.compression_ratio():.0f}x)"
        )


def factoring_demo() -> None:
    n = 641 * 769  # 492,929: needs 10+10 bits -> 20-way entanglement
    print(f"\n== Factoring {n} at 20-way entanglement (pattern backend) ==")
    start = time.perf_counter()
    pairs = factor_channels(n, 10, 10, backend="pattern", chunk_ways=16)
    elapsed = time.perf_counter() - start
    print(f"factor pairs: {pairs}  ({elapsed:.2f}s)")

    ctx = PbpContext(ways=20, backend="pattern", chunk_ways=16)
    print(
        "the context's shared ChunkStore interned",
        len(ctx.store) if ctx.store else 0,
        "symbols before any computation (0 and 1 constants)",
    )


def main() -> None:
    compression_demo()
    factoring_demo()


if __name__ == "__main__":
    main()
