"""Exhaustive SAT solving in superposition.

Demonstrates the class of quantum-inspired algorithm PBP is built for:
superpose every assignment of a boolean formula with Hadamard
initializers, evaluate the formula once with ordinary gates, and read
*all* satisfying assignments out of one non-destructive measurement --
where a quantum computer would return one sample per run.

Usage::

    python examples/sat_in_superposition.py
"""

import numpy as np

from repro.apps import invert_function, solve_sat
from repro.quantum import QuantumSimulator, expected_runs_to_see_all


def main() -> None:
    # A small scheduling-style formula over 4 variables:
    #   (x1 or x2) and (not x1 or x3) and (not x2 or not x3) and (x4 or x3)
    clauses = [[1, 2], [-1, 3], [-2, -3], [4, 3]]
    num_vars = 4
    print("== CNF solving on the PBP substrate ==")
    solutions = solve_sat(clauses, num_vars)
    print(f"{len(solutions)} satisfying assignments found in ONE pass:")
    for s in solutions:
        bits = ", ".join(f"x{i+1}={(s >> i) & 1}" for i in range(num_vars))
        print(f"  {s:2d} -> {bits}")

    # The quantum contrast: with answers in superposition, destructive
    # measurement returns one per run.
    probs = [1 / len(solutions)] * len(solutions)
    expected = expected_runs_to_see_all(probs)
    print(
        f"\nA quantum computer holding the same {len(solutions)} answers "
        f"needs ~{expected:.1f} expected runs to see them all (and can "
        "never guarantee it); PBP needed exactly 1 readout."
    )

    # Function inversion: all preimages of a hash-like mixing function.
    print("\n== Inverting a mixing function ==")

    def mix_equals_5(alg, bits):
        # f(x) = (x ^ (x << 1)) & 7 computed at gate level; find f(x) == 5
        shifted = [alg.const(0)] + list(bits[:-1])
        mixed = [alg.bxor(a, b) for a, b in zip(bits, shifted)]
        target = 5
        acc = None
        for i, bit in enumerate(mixed[:3]):
            term = bit if (target >> i) & 1 else alg.bnot(bit)
            acc = term if acc is None else alg.band(acc, term)
        return acc

    preimages = invert_function(mix_equals_5, 4)
    print("x with (x ^ (x<<1)) & 7 == 5:", preimages)
    for x in preimages:
        assert (x ^ (x << 1)) & 7 == 5
    print("verified classically.")


if __name__ == "__main__":
    main()
