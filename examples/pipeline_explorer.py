"""Explore the Tangled/Qat pipeline: write assembly, watch it execute.

Assembles a mixed host/coprocessor program, disassembles the binary,
runs it on the 4-stage pipeline, and reports the timing artifacts the
paper discusses: sustained CPI, interlock stalls, two-word fetch
penalties and branch flushes -- with and without forwarding.

Usage::

    python examples/pipeline_explorer.py
"""

from repro.asm import assemble
from repro.asm.disasm import render_listing
from repro.cpu import PipelineConfig, PipelinedSimulator

PROGRAM = """
; Count the 1-channels of H(2) & H(5) at 8-way entanglement using the
; measurement protocol, mixing Tangled control flow with Qat ops.
        had   @0, 2
        had   @1, 5
        and   @2, @0, @1      ; two-word instruction: extra fetch cycle
        lex   $0, 0           ; walk cursor
        lex   $1, 0           ; count
        meas  $0, @2          ; channel 0 first
        add   $1, $0
        lex   $0, 0
walk:   next  $0, @2          ; coprocessor result feeds a host branch
        brf   $0, done
        lex   $2, 1
        add   $1, $2
        br    walk
done:   copy  $0, $1
        lex   $rv, 1
        sys                    ; print the count
        lex   $rv, 0
        sys
"""


def main() -> None:
    program = assemble(PROGRAM)
    print("== Assembled binary ==")
    print(render_listing(program.words))

    # Watch the first cycles flow through the stages (two-word `and`
    # holds IF -- the trailing `*` -- and the bubble follows it).
    from repro.cpu.visualize import record_pipeline

    sim = PipelinedSimulator(ways=8)
    sim.load(program)
    recording = record_pipeline(sim)
    print("\n== First 12 cycles, stage by stage ==")
    print(recording.render(count=12))

    for forwarding in (True, False):
        sim = PipelinedSimulator(
            ways=8, config=PipelineConfig(stages=4, forwarding=forwarding)
        )
        sim.load(program)
        stats = sim.run()
        mode = "with forwarding" if forwarding else "no forwarding"
        print(f"\n== 4-stage pipeline, {mode} ==")
        print("program output:", sim.machine.output)
        for key, value in stats.as_dict().items():
            print(f"  {key:16} {value}")

    print("\nH(2) & H(5) has a 1 in channels where bits 2 and 5 of the")
    print("channel number are both set: 64 of 256 channels -> count 64.")


if __name__ == "__main__":
    main()
