"""FIG8 experiment: the qatnext netlist, its cost model, and the
O(WAYS) vs O(WAYS^2) delay shape."""

import numpy as np
import pytest

from repro.aob import AoB
from repro.hw import build_next_netlist, next_cost


def evaluate_next(net, ways, aob_bits, s_vals):
    n = 1 << ways
    inputs = {f"aob[{i}]": aob_bits[i] for i in range(n)}
    for b in range(ways):
        inputs[f"s[{b}]"] = ((s_vals >> b) & 1).astype(bool)
    out = net.evaluate(inputs)["r"]
    return (out.astype(np.uint32) << np.arange(ways, dtype=np.uint32)[:, None]).sum(axis=0)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("ways", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("wide", [True, False])
    def test_matches_isa_next(self, ways, wide, rng):
        net = build_next_netlist(ways, wide=wide)
        n = 1 << ways
        lanes = 100
        aob_bits = rng.random((n, lanes)) < 0.25
        s_vals = rng.integers(0, n, lanes)
        got = evaluate_next(net, ways, aob_bits, s_vals)
        for lane in range(lanes):
            a = AoB.from_bits(aob_bits[:, lane].astype(int))
            assert got[lane] == a.next(int(s_vals[lane])), (ways, wide, lane)

    def test_exhaustive_tiny(self):
        """Every (aob, s) pair at 2-way."""
        net = build_next_netlist(2, wide=True)
        for pattern in range(16):
            bits = [(pattern >> i) & 1 for i in range(4)]
            a = AoB.from_bits(bits)
            aob_bits = np.array(bits, dtype=bool).reshape(4, 1)
            for s in range(4):
                got = evaluate_next(net, 2, aob_bits, np.array([s]))
                assert got[0] == a.next(s)

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            build_next_netlist(0)


class TestCostModel:
    @pytest.mark.parametrize("ways", [1, 2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize("wide", [True, False])
    def test_matches_built_netlist_exactly(self, ways, wide):
        net = build_next_netlist(ways, wide=wide)
        cost = next_cost(ways, wide=wide)
        assert cost["gates"] == net.gate_count()
        assert cost["depth"] == net.depth()

    def test_full_scale_evaluates_instantly(self):
        cost = next_cost(16, wide=True)
        assert cost["aob_bits"] == 65536
        assert cost["gates"] > 1_000_000  # barrel shifter dominates

    def test_wide_or_depth_is_linear(self):
        """Section 3.3: O(WAYS) gate delays with wide OR-reduction."""
        depths = [next_cost(w, wide=True)["depth"] for w in range(4, 17)]
        increments = [b - a for a, b in zip(depths, depths[1:])]
        # constant increment per added way = linear depth
        assert max(increments) - min(increments) <= 1

    def test_narrow_or_depth_is_quadratic(self):
        """...but approaches O(WAYS^2) with trees of 2-input ORs."""
        depths = [next_cost(w, wide=False)["depth"] for w in range(4, 17)]
        increments = [b - a for a, b in zip(depths, depths[1:])]
        # increment itself grows by 1 per way: quadratic total
        deltas = [b - a for a, b in zip(increments, increments[1:])]
        assert all(d == 1 for d in deltas)

    def test_narrow_always_deeper_beyond_trivial(self):
        for w in range(3, 17):
            assert next_cost(w, wide=False)["depth"] > next_cost(w, wide=True)["depth"]
