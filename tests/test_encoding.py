"""Instruction encoding: round-trips and error handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa import INSTRUCTIONS, Instr, decode, decode_stream, encode

GPR = st.integers(min_value=0, max_value=15)
QREG = st.integers(min_value=0, max_value=255)
IMM4 = st.integers(min_value=0, max_value=15)
IMM8 = st.integers(min_value=-128, max_value=127)
IMM8U = st.integers(min_value=0, max_value=255)


def instr_strategy():
    """Random well-formed instruction for any mnemonic."""
    kind_map = {
        "d": GPR, "s": GPR, "c": GPR, "a": GPR,
        "A": QREG, "B": QREG, "C": QREG,
        "k": IMM4, "o": IMM8,
    }

    def build(mnemonic):
        spec = INSTRUCTIONS[mnemonic]
        ops = []
        for kind in spec.operands:
            if kind == "i":
                ops.append(IMM8U if mnemonic == "lhi" else IMM8)
            else:
                ops.append(kind_map[kind])
        return st.tuples(*ops).map(lambda t: Instr(mnemonic, t))

    return st.sampled_from(sorted(INSTRUCTIONS)).flatmap(build)


class TestRoundTrip:
    @given(instr_strategy())
    def test_encode_decode_encode_is_stable(self, instr):
        words = encode(instr)
        decoded, size = decode(words)
        assert size == len(words) == instr.spec.words
        assert encode(decoded) == words

    @given(instr_strategy())
    def test_decode_preserves_registers(self, instr):
        decoded, _ = decode(encode(instr))
        assert decoded.mnemonic == instr.mnemonic
        spec = instr.spec
        for kind, mine, theirs in zip(spec.operands, instr.ops, decoded.ops):
            if kind in "dscaABCk":
                assert mine == theirs
            else:  # immediates compare modulo 256 (lex sign-extends anyway)
                assert (mine - theirs) % 256 == 0

    def test_every_mnemonic_has_an_encoding(self):
        for mnemonic, spec in INSTRUCTIONS.items():
            ops = []
            for kind in spec.operands:
                ops.append({"d": 1, "s": 2, "c": 3, "a": 4, "A": 5, "B": 6,
                            "C": 7, "i": 8, "k": 9, "o": 10}[kind])
            words = encode(Instr(mnemonic, tuple(ops)))
            assert len(words) == spec.words
            decoded, _ = decode(words)
            assert decoded.mnemonic == mnemonic


class TestTwoWordInstructions:
    def test_qat_multi_register_ops_are_two_words(self):
        """Paper section 2.2: 8-bit Qat register numbers force some Qat
        instructions to be two 16-bit words long."""
        for mnemonic in ("qand", "qor", "qxor", "qccnot", "qcswap", "qcnot", "qswap"):
            assert INSTRUCTIONS[mnemonic].words == 2

    def test_single_register_qat_ops_are_one_word(self):
        for mnemonic in ("qnot", "qzero", "qone", "qhad", "qmeas", "qnext", "qpop"):
            assert INSTRUCTIONS[mnemonic].words == 1

    def test_truncated_two_word_decode_raises(self):
        words = encode(Instr("qand", (1, 2, 3)))
        with pytest.raises(EncodingError):
            decode(words[:1])


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode(Instr("frobnicate", ()))

    def test_wrong_operand_count(self):
        with pytest.raises(EncodingError):
            encode(Instr("add", (1,)))

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instr("add", (16, 0)))

    def test_qat_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instr("qnot", (256,)))

    def test_branch_offset_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instr("brt", (0, 128)))

    def test_had_imm_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instr("qhad", (0, 16)))

    def test_unassigned_major_opcode(self):
        with pytest.raises(EncodingError):
            decode([0x6000])
        with pytest.raises(EncodingError):
            decode([0xF000])

    def test_bad_sub_opcode(self):
        with pytest.raises(EncodingError):
            decode([0x0F00])  # ALU sub 15 unassigned
        with pytest.raises(EncodingError):
            decode([0x1F00])
        with pytest.raises(EncodingError):
            decode([0x8F00, 0])
        with pytest.raises(EncodingError):
            decode([0xAF00])

    def test_decode_past_end(self):
        with pytest.raises(EncodingError):
            decode([], 0)


class TestDecodeStream:
    def test_walks_variable_length(self):
        words = (
            encode(Instr("lex", (0, 5)))
            + encode(Instr("qand", (1, 2, 3)))
            + encode(Instr("qnot", (4,)))
        )
        stream = decode_stream(words)
        assert [(a, i.mnemonic) for a, i in stream] == [
            (0, "lex"), (1, "qand"), (3, "qnot"),
        ]

    def test_count_limits(self):
        words = encode(Instr("sys", ())) * 5
        assert len(decode_stream(words, count=3)) == 3
