"""PbpContext: backend selection and entanglement-channel bookkeeping."""

import pytest

from repro.aob import AoB
from repro.errors import ChannelExhaustedError, EntanglementError
from repro.pattern import PatternVector
from repro.pbp import PbpContext


class TestBackendSelection:
    def test_auto_dense_up_to_16(self):
        assert PbpContext(ways=8).backend == "aob"
        assert PbpContext(ways=16).backend == "aob"

    def test_auto_pattern_beyond_16(self):
        assert PbpContext(ways=17).backend == "pattern"

    def test_explicit_pattern(self):
        ctx = PbpContext(ways=10, backend="pattern", chunk_ways=8)
        assert isinstance(ctx.const(0), PatternVector)

    def test_explicit_aob(self):
        ctx = PbpContext(ways=10, backend="aob")
        assert isinstance(ctx.const(0), AoB)

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            PbpContext(ways=4, backend="quantum")

    def test_dense_too_wide(self):
        with pytest.raises(EntanglementError):
            PbpContext(ways=30, backend="aob")

    def test_pattern_chunk_default_capped_at_ways(self):
        ctx = PbpContext(ways=10, backend="pattern")
        assert ctx.store.chunk_ways == 10

    def test_negative_ways(self):
        with pytest.raises(EntanglementError):
            PbpContext(ways=-1)


class TestChannelAllocation:
    def test_pint_h_claims_channels(self):
        ctx = PbpContext(ways=8)
        ctx.pint_h(4, 0x0F)
        assert ctx.used_channel_mask == 0x0F

    def test_overlapping_claim_rejected(self):
        """Reusing channel sets computes squares, not products -- the
        context refuses to allow it silently (section 4.1 caution)."""
        ctx = PbpContext(ways=8)
        ctx.pint_h(4, 0x0F)
        with pytest.raises(EntanglementError):
            ctx.pint_h(4, 0x1E)

    def test_disjoint_claims_ok(self):
        ctx = PbpContext(ways=8)
        ctx.pint_h(4, 0x0F)
        ctx.pint_h(4, 0xF0)
        assert ctx.used_channel_mask == 0xFF

    def test_mask_width_must_match(self):
        ctx = PbpContext(ways=8)
        with pytest.raises(EntanglementError):
            ctx.pint_h(3, 0x0F)

    def test_mask_beyond_ways_rejected(self):
        ctx = PbpContext(ways=4)
        with pytest.raises(EntanglementError):
            ctx.pint_h(1, 1 << 5)

    def test_fresh_allocates_lowest(self):
        ctx = PbpContext(ways=8)
        a = ctx.pint_h_fresh(3)
        b = ctx.pint_h_fresh(2)
        assert a.channels == 0b00111
        assert b.channels == 0b11000

    def test_fresh_exhaustion(self):
        ctx = PbpContext(ways=4)
        ctx.pint_h_fresh(3)
        with pytest.raises(ChannelExhaustedError):
            ctx.pint_h_fresh(2)

    def test_fresh_skips_claimed(self):
        ctx = PbpContext(ways=6)
        ctx.pint_h(2, 0b000110)
        p = ctx.pint_h_fresh(2)
        assert p.channels == 0b001001


class TestPintConstructors:
    def test_pint_mk_constant(self):
        ctx = PbpContext(ways=4)
        p = ctx.pint_mk(4, 9)
        assert p.measure() == [9]

    def test_pint_mk_rejects_oversized(self):
        ctx = PbpContext(ways=4)
        with pytest.raises(ValueError):
            ctx.pint_mk(3, 8)

    def test_pint_mk_rejects_zero_width(self):
        ctx = PbpContext(ways=4)
        with pytest.raises(ValueError):
            ctx.pint_mk(0, 0)

    def test_pint_h_uniform(self):
        ctx = PbpContext(ways=4)
        p = ctx.pint_h(4, 0xF)
        assert p.measure() == list(range(16))

    def test_const_and_had_helpers(self):
        ctx = PbpContext(ways=4)
        assert ctx.const(1) == AoB.ones(4)
        assert ctx.had(2) == AoB.hadamard(4, 2)

    def test_repr(self):
        assert "ways=8" in repr(PbpContext(ways=8))
