"""Measurement layer: distributions, values_where, and the S27
reductions built from meas/next."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeasurementError
from repro.pbp import PbpContext
from repro.pbp.measure import measure_distribution, values_where


class TestDenseDistribution:
    def test_counts_sum_to_channels(self):
        ctx = PbpContext(ways=8)
        a = ctx.pint_h(4, 0x0F)
        b = ctx.pint_h(4, 0xF0)
        counts = measure_distribution(a * b)
        assert sum(counts.values()) == 256

    def test_product_distribution_matches_bruteforce(self):
        ctx = PbpContext(ways=6)
        a = ctx.pint_h(3, 0b000111)
        b = ctx.pint_h(3, 0b111000)
        counts = measure_distribution(a * b)
        brute = {}
        for x in range(8):
            for y in range(8):
                brute[x * y] = brute.get(x * y, 0) + 1
        assert dict(counts) == brute

    def test_measure_is_sorted_distinct(self):
        ctx = PbpContext(ways=4)
        p = ctx.pint_h(4, 0xF)
        assert p.measure() == sorted(set(p.measure()))

    def test_nondestructive(self):
        """Measuring twice gives identical results -- no collapse."""
        ctx = PbpContext(ways=6)
        a = ctx.pint_h(3, 0b000111)
        b = ctx.pint_h(3, 0b111000)
        p = a * b
        first = p.counts()
        second = p.counts()
        assert first == second
        # and the value still composes with further computation
        assert (p + ctx.pint_mk(6, 1)).counts()[1] >= 1

    def test_sample_values_are_legal(self, rng):
        ctx = PbpContext(ways=6)
        a = ctx.pint_h(3, 0b000111)
        b = ctx.pint_h(3, 0b111000)
        p = a * b
        legal = set(p.measure())
        for value in p.sample(rng, 50):
            assert int(value) in legal

    def test_width_cap(self):
        ctx = PbpContext(ways=2)
        p = ctx.pint_mk(1, 0).resized(40)
        with pytest.raises(MeasurementError):
            measure_distribution(p)


class TestPatternDistribution:
    def test_matches_dense(self):
        dense = PbpContext(ways=8, backend="aob")
        compressed = PbpContext(ways=8, backend="pattern", chunk_ways=6)
        counts = []
        for ctx in (dense, compressed):
            a = ctx.pint_h(4, 0x0F)
            b = ctx.pint_h(4, 0xF0)
            counts.append(dict(measure_distribution(a * b)))
        assert counts[0] == counts[1]

    def test_regular_patterns_measured_symbolically(self):
        """A 2^18-channel Hadamard word is measured without expanding."""
        ctx = PbpContext(ways=18, backend="pattern", chunk_ways=8)
        p = ctx.pint_h(4, 0xF << 14)  # top channels: long runs
        counts = measure_distribution(p)
        assert sum(counts.values()) == 1 << 18
        assert len(counts) == 16

    def test_mixed_store_rejected(self):
        from repro.pattern import ChunkStore, PatternVector
        from repro.pbp.pint import Pint

        ctx = PbpContext(ways=8, backend="pattern", chunk_ways=6)
        alien = PatternVector.zeros(8, ChunkStore(6))
        p = Pint(ctx, (ctx.const(0), alien))
        with pytest.raises(MeasurementError):
            measure_distribution(p)


class TestValuesWhere:
    def test_filters_by_condition(self):
        ctx = PbpContext(ways=6)
        a = ctx.pint_h(3, 0b000111)
        b = ctx.pint_h(3, 0b111000)
        cond = (a * b).eq_const(12)
        assert values_where(a, cond) == [2, 3, 4, 6]  # factors of 12 < 8

    def test_accepts_width_one_pint(self):
        ctx = PbpContext(ways=4)
        a = ctx.pint_h(4, 0xF)
        cond = a.eq_const(7)
        assert values_where(a, cond) == [7]

    def test_rejects_wide_condition(self):
        ctx = PbpContext(ways=4)
        a = ctx.pint_h(4, 0xF)
        with pytest.raises(MeasurementError):
            values_where(a, a)


class TestS27Reductions:
    """Section 2.7: ANY/ALL built from next + meas; pop splits POP."""

    def _any_via_next(self, pbit):
        """ANY as the paper describes: next after 0, plus a meas of 0."""
        if pbit.next(0) != 0:
            return True
        return bool(pbit.meas(0))

    def _all_via_next(self, pbit):
        """ALL of @a == NOT(ANY(NOT @a))."""
        return not self._any_via_next(~pbit)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=16, max_size=16))
    def test_any_matches(self, bits):
        from repro.aob import AoB

        a = AoB.from_bits(bits)
        assert self._any_via_next(a) == a.any() == any(bits)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=16, max_size=16))
    def test_all_matches(self, bits):
        from repro.aob import AoB

        a = AoB.from_bits(bits)
        assert self._all_via_next(a) == a.all() == all(bits)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=32, max_size=32))
    def test_pop_split(self, bits):
        """True POP = pop after 0 + meas of channel 0 (section 2.7)."""
        from repro.aob import AoB

        a = AoB.from_bits(bits)
        assert a.pop_after(0) + a.meas(0) == sum(bits)

    def test_full_pop_overflow_case(self):
        """The full 16-way POP can be 65,536 -- one more than fits in a
        16-bit register, which is why the instruction splits."""
        from repro.aob import AoB

        a = AoB.ones(16)
        assert a.pop_after(0) + a.meas(0) == 65536
        assert a.pop_after(0) == 65535  # each piece fits in 16 bits

    def test_meas_enumeration_matches_next_walk(self, rng):
        """meas over all channels finds the same ones as the next walk --
        the O(2^E) vs O(ones) contrast of section 2.7."""
        from repro.aob import AoB

        a = AoB.random(10, rng, p=0.02)
        via_meas = [e for e in range(1024) if a.meas(e)]
        assert via_meas == list(a.iter_ones())
