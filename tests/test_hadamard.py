"""Hadamard pattern tests -- the Figure 7 / section 2.3 semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aob import AoB, hadamard_bit, hadamard_words


class TestHadamardBit:
    def test_figure7_semantics(self):
        """aob[i] = bit k of i, for every (i, k) in a small range."""
        for k in range(8):
            for e in range(256):
                assert hadamard_bit(e, k) == (e >> k) & 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hadamard_bit(-1, 0)


class TestHadamardWords:
    @given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=15))
    def test_every_channel_matches_figure7(self, ways, k):
        a = AoB(ways, hadamard_words(ways, k))
        bits = a.to_bool_array()
        idx = np.arange(1 << ways)
        expected = ((idx >> k) & 1).astype(bool)
        assert np.array_equal(bits, expected)

    def test_had_k0_even_odd(self):
        """Section 2.3: had @a,0 makes every even channel 0, odd channel 1."""
        a = AoB.hadamard(8, 0)
        for e in range(256):
            assert a.meas(e) == e & 1

    def test_had_k15_halves(self):
        """Section 2.3: H(15) is 32,768 zeros then 32,768 ones."""
        a = AoB.hadamard(16, 15)
        assert a.meas(0) == 0
        assert a.meas(32767) == 0
        assert a.meas(32768) == 1
        assert a.meas(65535) == 1
        assert a.popcount() == 32768

    def test_k_at_or_beyond_ways_is_zero(self):
        """Figure 7: i >> h is 0 once h passes the top of i."""
        for ways in (2, 4, 6):
            for k in range(ways, 16):
                assert not AoB.hadamard(ways, k).any()

    def test_probability_is_half(self):
        for k in range(8):
            assert AoB.hadamard(8, k).probability() == 0.5

    def test_run_structure(self):
        """H(k) is runs of 2^k zeros then 2^k ones (section 2.3)."""
        a = AoB.hadamard(6, 3)
        assert a.to_rle_string(10) == "0^8 1^8 0^8 1^8 0^8 1^8 0^8 1^8"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hadamard_words(4, -1)
        with pytest.raises(ValueError):
            hadamard_words(-1, 0)

    def test_hadamards_are_independent(self):
        """Distinct H(k) patterns jointly enumerate all combinations --
        the property that makes disjoint channel sets work."""
        ways = 5
        hs = [AoB.hadamard(ways, k) for k in range(ways)]
        seen = set()
        for e in range(1 << ways):
            seen.add(tuple(h.meas(e) for h in hs))
        assert len(seen) == 1 << ways
