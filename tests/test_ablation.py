"""S5A experiment: the section-5 ISA simplification ablations,
asserted as directional claims on the factoring workload."""

import pytest

from repro.apps import compile_factor_program, run_factor_program
from repro.gates import EmitOptions


def compile_and_run(options, n=15, bits=4, ways=8):
    compiled = compile_factor_program(n, bits, bits, options)
    sim, regs = run_factor_program(compiled.program, ways=ways)
    assert regs == (5, 3) if n == 15 else True
    return compiled, sim


class TestAllocatorAblation:
    def test_greedy_matches_papers_profligacy(self):
        """Fig 10 used 81 registers for ~80 ops; greedy emission should
        be in the same regime."""
        compiled, _ = compile_and_run(EmitOptions(allocator="greedy"))
        assert compiled.high_water_regs > 60

    def test_recycling_needs_far_fewer_registers(self):
        """Section 4.2: 'far fewer registers ... could have been used'."""
        greedy, _ = compile_and_run(EmitOptions(allocator="greedy"))
        recycle, _ = compile_and_run(EmitOptions(allocator="recycle"))
        assert recycle.high_water_regs * 3 < greedy.high_water_regs

    def test_recycling_does_not_add_instructions(self):
        greedy, _ = compile_and_run(EmitOptions(allocator="greedy"))
        recycle, _ = compile_and_run(EmitOptions(allocator="recycle"))
        assert recycle.qat_instructions <= greedy.qat_instructions


class TestReservedConstantAblation:
    def test_reserved_registers_remove_initializers(self):
        """Section 5: '@0 be 0, @1 be 1, @2 be H(0) ... would be more
        efficient than having zero, one, and had instructions.'"""
        plain, _ = compile_and_run(EmitOptions(allocator="recycle"))
        reserved, _ = compile_and_run(
            EmitOptions(allocator="recycle", reserved_constants=True)
        )
        assert reserved.qat_instructions < plain.qat_instructions
        # exactly the had/zero/one initializers disappear (the compiled
        # *program* re-materializes the reserved registers in a prologue,
        # but that is simulation plumbing hardware would not execute and
        # is excluded from qat_instructions)
        init_count = sum(
            1 for line in plain.asm.splitlines()
            if line.split() and line.split()[0] in ("had", "zero", "one")
        )
        assert plain.qat_instructions - reserved.qat_instructions == init_count


class TestGateSetAblation:
    def test_reversible_only_is_much_larger(self):
        """Without irreversible and/or/xor, every gate needs ancilla
        initialization -- quantifying section 2.6's 'more convenient'."""
        irrev, _ = compile_and_run(EmitOptions(gate_set="irreversible", allocator="recycle"))
        rev, _ = compile_and_run(EmitOptions(gate_set="reversible", allocator="recycle"))
        assert rev.qat_instructions > 2 * irrev.qat_instructions

    def test_full_set_no_worse_than_irreversible(self):
        full, _ = compile_and_run(EmitOptions(gate_set="full", allocator="recycle"))
        irrev, _ = compile_and_run(EmitOptions(gate_set="irreversible", allocator="recycle"))
        assert full.qat_instructions <= irrev.qat_instructions

    def test_cycle_cost_tracks_instruction_cost(self):
        _, sim_irrev = compile_and_run(EmitOptions(gate_set="irreversible", allocator="recycle"))
        _, sim_rev = compile_and_run(EmitOptions(gate_set="reversible", allocator="recycle"))
        assert sim_rev.stats.cycles > sim_irrev.stats.cycles


class TestWritePortAblation:
    def test_swap_macro_vs_instruction_tradeoff(self):
        """Section 5: swap replaces a three-instruction sequence; without
        the second write port the single instruction loses its edge."""
        from repro.asm import assemble
        from repro.cpu import PipelineConfig, PipelinedSimulator

        swap_src = "had @0, 1\nhad @1, 2\nswap @0, @1\nlex $rv, 0\nsys\n"
        macro_src = (
            "had @0, 1\nhad @1, 2\n"
            "xor @2, @0, @1\nxor @0, @0, @2\nxor @1, @1, @2\n"  # 3-instr swap
            "lex $rv, 0\nsys\n"
        )
        def cycles(src, port):
            sim = PipelinedSimulator(
                ways=6, config=PipelineConfig(second_qat_write_port=port)
            )
            sim.load(assemble(src))
            sim.run()
            return sim.stats.cycles, sim.machine

        swap_fast, m1 = cycles(swap_src, True)
        swap_slow, m2 = cycles(swap_src, False)
        macro, m3 = cycles(macro_src, True)
        # same architectural effect
        import numpy as np

        assert np.array_equal(m1.qregs[:2], m3.qregs[:2])
        # with the port, the single swap beats the macro; without it the
        # gap narrows by the structural stall
        assert swap_fast < macro
        assert swap_slow > swap_fast
