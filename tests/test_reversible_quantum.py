"""Reversible (quantum-style) arithmetic circuit tests.

The circuits use only the Figure 2-3 gate set, so on basis states they
are classical reversible evaluators -- exhaustively checkable.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.quantum import (
    QuantumSimulator,
    ReversibleCircuit,
    build_quantum_factor_circuit,
    controlled_cuccaro_add,
    cuccaro_add,
    run_factoring,
)


def run_on_basis(circ: ReversibleCircuit, basis: int) -> int:
    sim = QuantumSimulator(circ.num_qubits)
    sim.reset(basis)
    circ.apply(sim)
    return int(np.argmax(sim.probabilities()))


def pack(pairs):
    """[(value, qubits)] -> basis index."""
    basis = 0
    for value, qubits in pairs:
        for i, q in enumerate(qubits):
            basis |= ((value >> i) & 1) << q
    return basis


def unpack(basis, qubits):
    return sum(((basis >> q) & 1) << i for i, q in enumerate(qubits))


class TestCuccaroAdder:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive_addition(self, width):
        a = list(range(width))
        b = list(range(width, 2 * width))
        anc = 2 * width
        circ = ReversibleCircuit(2 * width + 1)
        cuccaro_add(circ, a, b, anc)
        mask = (1 << width) - 1
        for va in range(1 << width):
            for vb in range(1 << width):
                out = run_on_basis(circ, pack([(va, a), (vb, b)]))
                assert unpack(out, b) == (va + vb) & mask
                assert unpack(out, a) == va  # operand restored
                assert (out >> anc) & 1 == 0  # ancilla restored

    def test_carry_out(self):
        width = 2
        a, b = [0, 1], [2, 3]
        anc, carry = 4, 5
        circ = ReversibleCircuit(6)
        cuccaro_add(circ, a, b, anc, carry_out=carry)
        for va in range(4):
            for vb in range(4):
                out = run_on_basis(circ, pack([(va, a), (vb, b)]))
                assert (out >> carry) & 1 == (va + vb) >> 2

    def test_is_reversible(self):
        """Applying the adder then its mirror restores the input."""
        circ = ReversibleCircuit(5)
        cuccaro_add(circ, [0, 1], [2, 3], 4)
        inverse = ReversibleCircuit(5)
        for gate in reversed(circ.gates):
            inverse.gates.append(gate)  # each gate is an involution
        basis = pack([(2, [0, 1]), (3, [2, 3])])
        out = run_on_basis(circ, basis)
        sim = QuantumSimulator(5)
        sim.reset(out)
        inverse.apply(sim)
        assert int(np.argmax(sim.probabilities())) == basis

    def test_width_mismatch(self):
        circ = ReversibleCircuit(4)
        with pytest.raises(ReproError):
            cuccaro_add(circ, [0], [1, 2], 3)
        with pytest.raises(ReproError):
            cuccaro_add(circ, [], [], 0)


class TestControlledAdder:
    def test_exhaustive_with_control(self):
        width = 2
        a, b = [0, 1], [2, 3]
        anc, ctl, tof = 4, 5, 6
        circ = ReversibleCircuit(7)
        controlled_cuccaro_add(circ, a, b, anc, control=ctl, toffoli_anc=tof)
        for control_val in (0, 1):
            for va in range(4):
                for vb in range(4):
                    basis = pack([(va, a), (vb, b), (control_val, [ctl])])
                    out = run_on_basis(circ, basis)
                    expected = (va + vb) & 3 if control_val else vb
                    assert unpack(out, b) == expected, (control_val, va, vb)
                    assert unpack(out, a) == va
                    assert (out >> tof) & 1 == 0  # shared ancilla restored


class TestQuantumFactorCircuit:
    def test_predicate_exhaustive_2x2(self):
        fc = build_quantum_factor_circuit(6, 2, 2, superpose=False)
        flip = (~6) & 0xF
        for vb in range(4):
            for vc in range(4):
                out = run_on_basis(fc.circuit, pack([(vb, fc.b), (vc, fc.c)]))
                assert unpack(out, fc.product) ^ flip == vb * vc
                assert (out >> fc.flag) & 1 == int(vb * vc == 6)
                assert unpack(out, fc.b) == vb  # inputs preserved
                assert unpack(out, fc.c) == vc

    def test_sampling_finds_only_true_factors(self, rng):
        fc = build_quantum_factor_circuit(6, 2, 2)
        hits = set()
        for _ in range(60):
            b, c, flag = run_factoring(fc, rng)
            if flag:
                assert b * c == 6
                hits.add((b, c))
        assert hits == {(2, 3), (3, 2)}

    def test_flag_probability_matches_answer_count(self):
        """P(flag=1) = #factor-pairs / 2^(bits_b + bits_c)."""
        fc = build_quantum_factor_circuit(6, 2, 2)
        sim = QuantumSimulator(fc.num_qubits)
        fc.circuit.apply(sim)
        assert sim.probability_of_one(fc.flag) == pytest.approx(2 / 16)

    def test_gate_budget_is_toffoli_dominated(self):
        fc = build_quantum_factor_circuit(6, 2, 2)
        counts = fc.circuit.gate_count()
        assert counts["ccnot"] > 50  # vs 7 PBP gate ops for the same predicate

    def test_oversized_n_rejected(self):
        with pytest.raises(ReproError):
            build_quantum_factor_circuit(99, 2, 2)

    def test_circuit_vs_simulator_size_check(self):
        fc = build_quantum_factor_circuit(6, 2, 2)
        small = QuantumSimulator(3)
        with pytest.raises(ReproError):
            fc.circuit.apply(small)
