"""Doctests embedded in public docstrings stay runnable."""

import doctest

import pytest

import repro.aob.bitvector
import repro.pbp


@pytest.mark.parametrize(
    "module",
    [repro.aob.bitvector, repro.pbp],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_package_docstring_example():
    """The repro.pbp package docstring's Figure 9 walk-through is live."""
    namespace: dict = {}
    exec(  # the documented snippet, verbatim
        "from repro.pbp import PbpContext\n"
        "ctx = PbpContext(ways=8)\n"
        "a = ctx.pint_mk(4, 15)\n"
        "b = ctx.pint_h(4, 0x0f)\n"
        "c = ctx.pint_h(4, 0xf0)\n"
        "d = b * c\n"
        "e = d.eq(a)\n"
        "f = e * b\n"
        "values = f.measure()\n",
        namespace,
    )
    assert namespace["values"] == [0, 1, 3, 5, 15]
