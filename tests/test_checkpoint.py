"""Checkpoint/recovery: snapshots, integrity digests, auto-checkpointing."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.cpu import (
    FunctionalSimulator,
    MultiCycleSimulator,
    PipelinedSimulator,
    TrapPolicy,
)
from repro.errors import CheckpointError
from repro.faults import AutoCheckpointer, Checkpoint
from repro.pattern import ChunkStore, PatternVector

COUNTDOWN = """
    lex $0, 10
loop:
    lex $1, -1
    add $0, $1
    brt $0, loop
    lex $rv, 0
    sys
"""


def _run_some(steps=5):
    sim = FunctionalSimulator(ways=6)
    sim.load(assemble(COUNTDOWN))
    for _ in range(steps):
        sim.step()
    return sim


class TestCheckpoint:
    def test_round_trip_restores_state(self):
        sim = _run_some(5)
        ckpt = Checkpoint.take(sim.machine)
        assert ckpt.verify()
        reference = sim.machine.read_reg(0)
        sim.run(10_000)  # run to completion, clobbering state
        assert sim.machine.halted
        ckpt.restore(sim.machine)
        assert sim.machine.read_reg(0) == reference
        assert sim.machine.pc == ckpt.pc
        assert not sim.machine.halted

    def test_restored_machine_replays_identically(self):
        sim = _run_some(4)
        ckpt = Checkpoint.take(sim.machine)
        sim.run(10_000)
        final = tuple(int(r) for r in sim.machine.regs)
        ckpt.restore(sim.machine)
        sim.run(10_000)
        assert tuple(int(r) for r in sim.machine.regs) == final

    def test_corruption_detected_on_restore(self):
        sim = _run_some(3)
        ckpt = Checkpoint.take(sim.machine)
        ckpt.mem[100] ^= np.uint16(1)
        assert not ckpt.verify()
        with pytest.raises(CheckpointError):
            ckpt.restore(sim.machine)

    def test_corruption_override(self):
        sim = _run_some(3)
        ckpt = Checkpoint.take(sim.machine)
        ckpt.mem[100] ^= np.uint16(1)
        ckpt.restore(sim.machine, verify=False)  # explicit opt-out works
        assert int(sim.machine.mem[100]) == int(ckpt.mem[100])

    def test_shape_mismatch_rejected(self):
        sim = _run_some(2)
        ckpt = Checkpoint.take(sim.machine)
        other = FunctionalSimulator(ways=8)
        with pytest.raises(CheckpointError):
            ckpt.restore(other.machine)

    def test_save_load_round_trip(self, tmp_path):
        sim = _run_some(6)
        ckpt = Checkpoint.take(sim.machine, cycle=17)
        path = str(tmp_path / "state.npz")
        ckpt.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.verify()
        assert loaded.pc == ckpt.pc
        assert loaded.cycle == 17
        assert (loaded.regs == ckpt.regs).all()
        assert (loaded.mem == ckpt.mem).all()

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            Checkpoint.load(str(path))

    def test_captures_chunkstore(self):
        store = ChunkStore(6)
        pv = PatternVector.hadamard(8, 1, store=store)
        sim = _run_some(2)
        ckpt = Checkpoint.take(sim.machine, store=store)
        assert len(ckpt.store_chunks) == len(store.chunks())
        # Corrupt the store in place, then restore it from the snapshot.
        from repro.faults import flip_chunk_bit

        flip_chunk_bit(store, pv.runs[0][0], 1)
        ckpt.restore(sim.machine, store=store)
        assert store.degraded == 0
        assert pv.meas(1) == PatternVector.hadamard(8, 1, store=store).meas(1)


class TestAutoCheckpointer:
    def test_periodic_snapshots_during_run(self):
        sim = FunctionalSimulator(ways=6)
        sim.load(assemble(COUNTDOWN))
        sim.checkpointer = AutoCheckpointer(interval=8, keep=2)
        sim.run(10_000)
        assert sim.checkpointer.taken >= 2
        assert len(sim.checkpointer.checkpoints) == 2
        assert sim.checkpointer.latest is not None

    def test_watchdog_halt_is_recoverable(self):
        """The crash-recovery story: runaway stops cleanly, last good
        checkpoint restores to a pre-runaway machine."""
        sim = FunctionalSimulator(ways=6, trap_policy=TrapPolicy.halting())
        sim.load(assemble("lex $0, 1\nloop:\nbrt $0, loop\n"))
        sim.checkpointer = AutoCheckpointer(interval=16, keep=2)
        sim.run(100)
        assert sim.machine.halted  # watchdog, not sys-halt
        ckpt = sim.checkpointer.latest
        assert ckpt is not None and ckpt.verify()
        ckpt.restore(sim.machine)
        assert not sim.machine.halted
        assert sim.machine.read_reg(0) == 1

    @pytest.mark.parametrize(
        "sim_cls", [MultiCycleSimulator, PipelinedSimulator],
        ids=["multicycle", "pipelined"],
    )
    def test_timed_simulators_drive_checkpointer(self, sim_cls):
        sim = sim_cls(ways=6)
        sim.load(assemble(COUNTDOWN))
        sim.checkpointer = AutoCheckpointer(interval=8, keep=3)
        sim.run(10_000)
        assert sim.checkpointer.taken >= 1
        assert sim.checkpointer.latest.verify()

    def test_rejects_bad_config(self):
        with pytest.raises(CheckpointError):
            AutoCheckpointer(interval=0)
        with pytest.raises(CheckpointError):
            AutoCheckpointer(keep=0)
