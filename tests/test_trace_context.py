"""TraceContext: word-level pint programs compiled to Qat assembly."""

import pytest

from repro.asm import assemble
from repro.cpu import FunctionalSimulator, PipelinedSimulator
from repro.errors import EntanglementError, MeasurementError
from repro.gates import EmitOptions
from repro.pbp import PbpContext, TraceContext


def run_emission(emission, ways=8):
    program = assemble("\n".join(emission.lines + ["lex\t$rv,0", "sys"]))
    sim = FunctionalSimulator(ways=ways)
    sim.load(program)
    sim.run()
    return sim


def figure9_trace():
    ctx = TraceContext(ways=8)
    a = ctx.pint_mk(8, 15)
    b = ctx.pint_h(4, 0x0F)
    c = ctx.pint_h(4, 0xF0)
    e = (b * c).eq(a)
    return ctx, e


class TestCompilation:
    def test_figure9_compiles_and_runs(self):
        ctx, e = figure9_trace()
        emission = ctx.compile({"e": e})
        sim = run_emission(emission)
        result = sim.machine.read_qreg(emission.output_regs["e"])
        assert list(result.iter_ones()) == [31, 53, 83, 241]

    def test_matches_direct_evaluation(self):
        """The compiled program computes what the value backend computes."""
        ctx, e = figure9_trace()
        emission = ctx.compile({"e": e}, EmitOptions(allocator="recycle"))
        sim = run_emission(emission)
        direct = PbpContext(ways=8)
        db = direct.pint_h(4, 0x0F)
        dc = direct.pint_h(4, 0xF0)
        de = (db * dc).eq(direct.pint_mk(8, 15))
        assert sim.machine.read_qreg(emission.output_regs["e"]) == de.bits[0]

    def test_multi_bit_outputs_get_suffixed_names(self):
        ctx = TraceContext(ways=4)
        x = ctx.pint_h(2, 0b0011)
        y = ctx.pint_h(2, 0b1100)
        total = x + y
        emission = ctx.compile({"sum": total})
        assert {"sum", "sum.1"} <= set(emission.output_regs)

    def test_arbitrary_program_on_pipeline(self):
        """A fresh word-level program (min of two words) end to end."""
        ctx = TraceContext(ways=6)
        a = ctx.pint_h(3, 0b000111)
        b = ctx.pint_h(3, 0b111000)
        lo = a.min(b)
        emission = ctx.compile({"m": lo}, EmitOptions(allocator="recycle"))
        program = assemble("\n".join(emission.lines + ["lex\t$rv,0", "sys"]))
        sim = PipelinedSimulator(ways=6)
        sim.load(program)
        sim.run()
        bits = [
            sim.machine.read_qreg(emission.output_regs[name])
            for name in ("m", "m.1", "m.2")
        ]
        for e in range(64):
            got = sum(bit.meas(e) << i for i, bit in enumerate(bits))
            assert got == min(e & 7, e >> 3)

    def test_optimization_shrinks(self):
        ctx, e = figure9_trace()
        raw = ctx.compile({"e": e}, optimized=False)
        # rebuild: compile mutates circuit outputs only, reuse is fine
        opt = ctx.compile({"e": e}, optimized=True)
        assert opt.instruction_count <= raw.instruction_count


class TestGuards:
    def test_measurement_unavailable(self):
        ctx, e = figure9_trace()
        with pytest.raises(MeasurementError):
            e.measure()
        with pytest.raises(MeasurementError):
            e.at(0)

    def test_channel_discipline_still_enforced(self):
        ctx = TraceContext(ways=8)
        ctx.pint_h(4, 0x0F)
        with pytest.raises(EntanglementError):
            ctx.pint_h(4, 0x1E)

    def test_ways_capped_at_hardware(self):
        with pytest.raises(EntanglementError):
            TraceContext(ways=20)

    def test_compile_rejects_foreign_pints(self):
        ctx = TraceContext(ways=4)
        other = TraceContext(ways=4)
        p = other.pint_mk(1, 1)
        with pytest.raises(EntanglementError):
            ctx.compile({"p": p})

    def test_compile_needs_outputs(self):
        ctx = TraceContext(ways=4)
        with pytest.raises(MeasurementError):
            ctx.compile({})
