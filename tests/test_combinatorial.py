"""Subset-sum and max-cut applications, cross-checked by brute force."""

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.combinatorial import max_cut, subset_sum
from repro.errors import ReproError


def brute_subset_sum(weights, target):
    out = []
    for mask in range(1 << len(weights)):
        if sum(w for i, w in enumerate(weights) if (mask >> i) & 1) == target:
            out.append([i for i in range(len(weights)) if (mask >> i) & 1])
    return out


def brute_max_cut(edges, vertices):
    best, arg = -1, []
    index = {v: i for i, v in enumerate(vertices)}
    for mask in range(1 << len(vertices)):
        cut = sum(
            1 for u, v in edges if ((mask >> index[u]) ^ (mask >> index[v])) & 1
        )
        if cut > best:
            best, arg = cut, [mask]
        elif cut == best:
            arg.append(mask)
    return best, [
        {v for v in vertices if (mask >> index[v]) & 1} for mask in arg
    ]


class TestSubsetSum:
    def test_simple_instance(self):
        solutions = subset_sum([3, 5, 8, 13], 16)
        assert solutions == brute_subset_sum([3, 5, 8, 13], 16)
        assert [0, 1, 2] in solutions  # 3 + 5 + 8

    def test_empty_subset_hits_zero(self):
        assert [] in subset_sum([2, 4], 0)

    def test_unreachable_target(self):
        assert subset_sum([2, 4, 6], 5) == []

    def test_target_beyond_total(self):
        assert subset_sum([1, 2], 100) == []

    def test_duplicate_weights_give_multiple_solutions(self):
        solutions = subset_sum([5, 5, 5], 5)
        assert len(solutions) == 3

    def test_zero_weights_are_free_choices(self):
        solutions = subset_sum([0, 7], 7)
        # element 0 contributes nothing: both subsets containing 7 work
        assert sorted(map(tuple, solutions)) == [(0, 1), (1,)]

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=7), st.integers(0, 40))
    def test_matches_brute_force(self, weights, target):
        got = sorted(map(tuple, subset_sum(weights, target)))
        want = sorted(map(tuple, brute_subset_sum(weights, target)))
        assert got == want

    def test_validation(self):
        with pytest.raises(ReproError):
            subset_sum([], 1)
        with pytest.raises(ReproError):
            subset_sum([1], -2)
        with pytest.raises(ReproError):
            subset_sum([-1], 0)


class TestMaxCut:
    def test_triangle(self):
        best, partitions = max_cut([(0, 1), (1, 2), (0, 2)])
        assert best == 2
        assert len(partitions) == 6  # 3 ways x 2 labelings

    def test_square_cycle(self):
        best, partitions = max_cut([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert best == 4
        assert {0, 2} in partitions and {1, 3} in partitions

    def test_bipartite_graph_cuts_everything(self):
        g = nx.complete_bipartite_graph(2, 3)
        best, partitions = max_cut(g.edges(), nodes=g.nodes())
        assert best == g.number_of_edges()

    def test_petersen(self):
        g = nx.petersen_graph()
        best, partitions = max_cut(g.edges(), nodes=g.nodes())
        assert best == 12  # known max cut of the Petersen graph
        for part in partitions:
            cut = sum(1 for u, v in g.edges() if (u in part) != (v in part))
            assert cut == 12

    @settings(max_examples=15)
    @given(st.data())
    def test_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=2, max_value=6))
        possible = list(itertools.combinations(range(n), 2))
        edges = data.draw(
            st.lists(st.sampled_from(possible), min_size=1, max_size=8, unique=True)
        )
        vertices = sorted({v for e in edges for v in e})
        best, partitions = max_cut(edges)
        want_best, want_parts = brute_max_cut(edges, vertices)
        assert best == want_best
        key = lambda sets: sorted(tuple(sorted(map(repr, s))) for s in sets)
        assert key(partitions) == key(want_parts)

    def test_empty_graph(self):
        assert max_cut([]) == (0, [set()])

    def test_self_loop_rejected(self):
        with pytest.raises(ReproError):
            max_cut([(1, 1)])
