"""TAB3 experiment: semantics of every Qat coprocessor instruction,
exercised through assembly on the functional simulator."""

import pytest

from repro.aob import AoB
from repro.isa import INSTRUCTIONS, QAT_MNEMONICS

from tests.conftest import assemble_and_run

WAYS = 8


def qreg(sim, n):
    return sim.machine.read_qreg(n)


class TestTable3Inventory:
    def test_13_paper_instructions_plus_pop(self):
        """Table 3 lists 13 instructions; we add the specified-but-omitted
        pop of section 2.7."""
        assert len(QAT_MNEMONICS) == 14
        assert "qpop" in QAT_MNEMONICS

    def test_operand_orders_match_table(self):
        assert INSTRUCTIONS["qccnot"].operands == "ABC"
        assert INSTRUCTIONS["qmeas"].operands == "dA"


class TestInitializers:
    def test_zero(self):
        sim = assemble_and_run("one @5\nzero @5\n", ways=WAYS)
        assert qreg(sim, 5) == AoB.zeros(WAYS)

    def test_one(self):
        sim = assemble_and_run("one @7\n", ways=WAYS)
        assert qreg(sim, 7) == AoB.ones(WAYS)

    @pytest.mark.parametrize("k", range(9))
    def test_had(self, k):
        sim = assemble_and_run(f"had @3, {k}\n", ways=WAYS)
        assert qreg(sim, 3) == AoB.hadamard(WAYS, k)

    def test_initialization_any_time(self):
        """Unlike quantum hardware, initializers may run mid-computation."""
        sim = assemble_and_run(
            "had @0, 1\nhad @1, 2\nand @2, @0, @1\nzero @0\none @1\n",
            ways=WAYS,
        )
        assert qreg(sim, 0) == AoB.zeros(WAYS)
        assert qreg(sim, 1) == AoB.ones(WAYS)
        assert qreg(sim, 2) == AoB.hadamard(WAYS, 1) & AoB.hadamard(WAYS, 2)


class TestGates:
    def setup_method(self, _method):
        self.prelude = "had @0, 0\nhad @1, 1\nhad @2, 2\n"
        self.h = [AoB.hadamard(WAYS, k) for k in range(3)]

    def test_and_or_xor(self):
        sim = assemble_and_run(
            self.prelude + "and @10, @0, @1\nor @11, @0, @1\nxor @12, @0, @1\n",
            ways=WAYS,
        )
        assert qreg(sim, 10) == self.h[0] & self.h[1]
        assert qreg(sim, 11) == self.h[0] | self.h[1]
        assert qreg(sim, 12) == self.h[0] ^ self.h[1]

    def test_not_in_place(self):
        sim = assemble_and_run(self.prelude + "not @0\n", ways=WAYS)
        assert qreg(sim, 0) == ~self.h[0]

    def test_cnot(self):
        """@a = XOR(@a, @b); control unchanged."""
        sim = assemble_and_run(self.prelude + "cnot @0, @1\n", ways=WAYS)
        assert qreg(sim, 0) == self.h[0] ^ self.h[1]
        assert qreg(sim, 1) == self.h[1]

    def test_ccnot(self):
        """@a = XOR(@a, AND(@b, @c)); controls unchanged."""
        sim = assemble_and_run(self.prelude + "ccnot @0, @1, @2\n", ways=WAYS)
        assert qreg(sim, 0) == self.h[0] ^ (self.h[1] & self.h[2])
        assert qreg(sim, 1) == self.h[1]
        assert qreg(sim, 2) == self.h[2]

    def test_swap(self):
        sim = assemble_and_run(self.prelude + "swap @0, @1\n", ways=WAYS)
        assert qreg(sim, 0) == self.h[1]
        assert qreg(sim, 1) == self.h[0]

    def test_cswap(self):
        """Fredkin: swap @a,@b where @c holds 1."""
        sim = assemble_and_run(self.prelude + "cswap @0, @1, @2\n", ways=WAYS)
        ea, eb = self.h[0].cswap(self.h[1], self.h[2])
        assert qreg(sim, 0) == ea
        assert qreg(sim, 1) == eb
        assert qreg(sim, 2) == self.h[2]

    def test_gates_are_involutions_on_hardware(self):
        """not/cnot/ccnot/swap/cswap applied twice restore the state."""
        sim = assemble_and_run(
            self.prelude
            + "not @0\nnot @0\n"
            + "cnot @0, @1\ncnot @0, @1\n"
            + "ccnot @0, @1, @2\nccnot @0, @1, @2\n"
            + "swap @0, @1\nswap @0, @1\n"
            + "cswap @0, @1, @2\ncswap @0, @1, @2\n",
            ways=WAYS,
        )
        for i in range(3):
            assert qreg(sim, i) == self.h[i]


class TestMeasurement:
    def test_meas_reads_channel(self):
        sim = assemble_and_run(
            "had @0, 2\nlex $0, 4\nmeas $0, @0\n", ways=WAYS
        )
        assert sim.machine.read_reg(0) == 1  # bit 2 of 4

    def test_meas_is_nondestructive(self):
        sim = assemble_and_run(
            "had @0, 2\nlex $0, 4\nmeas $0, @0\nlex $1, 3\nmeas $1, @0\n",
            ways=WAYS,
        )
        assert qreg(sim, 0) == AoB.hadamard(WAYS, 2)
        assert sim.machine.read_reg(1) == 0

    def test_paper_next_worked_example(self):
        """Section 2.7: had @123,4; lex $8,42; next $8,@123 => $8 == 48."""
        sim = assemble_and_run(
            "had @123, 4\nlex $8, 42\nnext $8, @123\n", ways=16
        )
        assert sim.machine.read_reg(8) == 48

    def test_next_returns_zero_when_exhausted(self):
        sim = assemble_and_run(
            "zero @0\nlex $0, 3\nnext $0, @0\n", ways=WAYS
        )
        assert sim.machine.read_reg(0) == 0

    def test_next_chain_walks_ones(self):
        sim = assemble_and_run(
            "had @0, 6\nlex $0, 0\nnext $0, @0\ncopy $1, $0\nnext $1, @0\n",
            ways=WAYS,
        )
        assert sim.machine.read_reg(0) == 64
        assert sim.machine.read_reg(1) == 65

    def test_pop_counts_after_channel(self):
        sim = assemble_and_run(
            "had @0, 0\nlex $0, 9\npop $0, @0\n", ways=WAYS
        )
        # channels 10..255, odd ones hold 1 -> 123
        assert sim.machine.read_reg(0) == 123

    def test_pop_plus_meas_is_full_population(self):
        sim = assemble_and_run(
            "one @0\nlex $0, 0\npop $0, @0\nlex $1, 0\nmeas $1, @0\n"
            "add $0, $1\n",
            ways=WAYS,
        )
        assert sim.machine.read_reg(0) == 256


class TestNoMemoryAccess:
    def test_qat_register_file_is_the_only_storage(self):
        """No Qat instruction reads or writes Tangled memory."""
        from repro.cpu.exec_core import static_effects
        from repro.isa import Instr

        for mnemonic in QAT_MNEMONICS:
            spec = INSTRUCTIONS[mnemonic]
            ops = tuple(
                {"d": 1, "A": 2, "B": 3, "C": 4, "k": 5}[k] for k in spec.operands
            )
            eff = static_effects(Instr(mnemonic, ops))
            assert not eff.is_load and not eff.is_store

    def test_256_registers(self):
        sim = assemble_and_run("one @255\n", ways=WAYS)
        assert qreg(sim, 255) == AoB.ones(WAYS)
