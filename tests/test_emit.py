"""Qat emission tests: emitted assembly must compute what the circuit says,
under every allocator / gate-set / reserved-constant combination."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aob import AoB
from repro.asm import assemble
from repro.cpu import FunctionalSimulator
from repro.errors import CircuitError
from repro.gates import EmitOptions, GateCircuit, emit_qat, optimize
from repro.gates.alg import ValueAlgebra
from repro.gates.regalloc import AllocationError

WAYS = 6


def run_emission(emission, ways=WAYS, prologue=()):
    """Assemble emitted Qat lines (plus halting sys) and execute."""
    lines = list(prologue) + emission.lines + ["lex\t$rv,0", "sys"]
    program = assemble("\n".join(lines))
    sim = FunctionalSimulator(ways=ways)
    sim.load(program)
    sim.run()
    return sim


def reserved_prologue():
    return ["zero\t@0", "one\t@1"] + [f"had\t@{2 + k},{k}" for k in range(16)]


def check_emission_matches_circuit(circuit, options, ways=WAYS):
    emission = emit_qat(circuit, options)
    prologue = reserved_prologue() if options.reserved_constants else ()
    sim = run_emission(emission, ways, prologue)
    alg = ValueAlgebra(ways, AoB)
    expected = circuit.evaluate(alg)
    for name, reg in emission.output_regs.items():
        assert sim.machine.read_qreg(reg) == expected[name], (name, options)
    return emission


def random_circuit(data, num_gates=15):
    c = GateCircuit()
    nodes = [c.had(k) for k in range(4)] + [c.const(0), c.const(1)]
    for _ in range(num_gates):
        op = data.draw(st.sampled_from(["and", "or", "xor", "not"]))
        a = data.draw(st.sampled_from(nodes))
        if op == "not":
            nodes.append(c.bnot(a))
        else:
            b = data.draw(st.sampled_from(nodes))
            nodes.append(getattr(c, f"b{op}")(a, b))
    c.mark_output("o", nodes[-1])
    # a second output exercises liveness-to-end handling
    c.mark_output("mid", nodes[len(nodes) // 2])
    return c


ALL_OPTIONS = [
    EmitOptions(),
    EmitOptions(allocator="recycle"),
    EmitOptions(reserved_constants=True),
    EmitOptions(allocator="recycle", reserved_constants=True),
    EmitOptions(gate_set="irreversible"),
    EmitOptions(gate_set="irreversible", allocator="recycle"),
    EmitOptions(gate_set="reversible"),
    EmitOptions(gate_set="reversible", allocator="recycle"),
]


class TestEmissionCorrectness:
    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=lambda o: f"{o.gate_set}-{o.allocator}-res{int(o.reserved_constants)}")
    def test_small_circuit(self, options):
        c = GateCircuit()
        h0, h1, h2 = c.had(0), c.had(1), c.had(2)
        x = c.bxor(c.band(h0, h1), h2)
        y = c.bnot(c.bor(x, h0))
        c.mark_output("x", x)
        c.mark_output("y", y)
        check_emission_matches_circuit(c, options)

    @settings(max_examples=25)
    @given(st.data(), st.sampled_from(ALL_OPTIONS))
    def test_random_circuits(self, data, options):
        circuit = optimize(random_circuit(data))
        check_emission_matches_circuit(circuit, options)

    def test_not_preserves_source(self):
        """The Figure 10 idiom: not of a still-live value copies first."""
        c = GateCircuit()
        h = c.had(0)
        n = c.bnot(h)
        c.mark_output("n", n)
        c.mark_output("h", h)  # h stays live past the not
        for options in ALL_OPTIONS:
            check_emission_matches_circuit(c, options)

    def test_inputs_require_binding(self):
        c = GateCircuit()
        x = c.input("x")
        c.mark_output("o", c.bnot(x))
        with pytest.raises(CircuitError):
            emit_qat(c)

    def test_input_binding_used(self):
        c = GateCircuit()
        x = c.input("x")
        c.mark_output("o", c.bnot(x))
        emission = emit_qat(c, input_regs={"x": 200})
        prologue = ["had\t@200,3"]
        sim = run_emission(emission, prologue=prologue)
        assert sim.machine.read_qreg(emission.output_regs["o"]) == ~AoB.hadamard(WAYS, 3)


class TestAllocators:
    def test_greedy_never_reuses(self):
        c = GateCircuit()
        nodes = [c.had(0)]
        for _ in range(10):
            nodes.append(c.bxor(nodes[-1], nodes[0]))
        c.mark_output("o", nodes[-1])
        emission = emit_qat(c, EmitOptions(allocator="greedy"))
        regs = [line.split("@")[1].split(",")[0] for line in emission.lines]
        dests = [int(r) for r in regs]
        assert len(set(dests)) == len(dests)  # every dest register fresh

    def test_recycle_uses_fewer(self):
        from repro.apps.fig10 import build_factor_circuit

        circuit = build_factor_circuit(15, 4, 4)
        greedy = emit_qat(circuit, EmitOptions(allocator="greedy"))
        recycle = emit_qat(circuit, EmitOptions(allocator="recycle"))
        assert recycle.high_water_regs < greedy.high_water_regs

    def test_greedy_exhaustion_raises(self):
        c = GateCircuit()
        nodes = [c.had(0), c.had(1)]
        for _ in range(300):
            nodes.append(c.bxor(nodes[-1], nodes[-2]))
        c.mark_output("o", nodes[-1])
        with pytest.raises(AllocationError):
            emit_qat(c, EmitOptions(allocator="greedy"))

    def test_recycle_survives_long_chain(self):
        c = GateCircuit()
        nodes = [c.had(0), c.had(1)]
        for _ in range(300):
            nodes.append(c.bxor(nodes[-1], nodes[-2]))
        c.mark_output("o", nodes[-1])
        emission = emit_qat(c, EmitOptions(allocator="recycle"))
        assert emission.high_water_regs <= 8


class TestGateSets:
    def test_reversible_costs_more(self):
        from repro.apps.fig10 import build_factor_circuit

        circuit = build_factor_circuit(15, 4, 4)
        irrev = emit_qat(circuit, EmitOptions(gate_set="irreversible", allocator="recycle"))
        rev = emit_qat(circuit, EmitOptions(gate_set="reversible", allocator="recycle"))
        assert rev.instruction_count > irrev.instruction_count

    def test_reversible_uses_only_reversible_ops(self):
        from repro.apps.fig10 import build_factor_circuit

        circuit = build_factor_circuit(15, 4, 4)
        emission = emit_qat(circuit, EmitOptions(gate_set="reversible"))
        allowed = {"zero", "one", "had", "cnot", "ccnot", "not", "swap", "cswap"}
        for line in emission.lines:
            assert line.split("\t")[0] in allowed, line

    def test_reserved_constants_emit_no_initializers(self):
        c = GateCircuit()
        c.mark_output("o", c.band(c.had(0), c.const(1)))
        emission = emit_qat(c, EmitOptions(reserved_constants=True))
        mnemonics = {line.split("\t")[0] for line in emission.lines}
        assert "had" not in mnemonics and "one" not in mnemonics and "zero" not in mnemonics

    def test_word_count_tracks_two_word_encodings(self):
        c = GateCircuit()
        c.mark_output("o", c.band(c.had(0), c.had(1)))
        emission = emit_qat(c)
        # had(1 word) x2 + and(2 words) = 4 words, 3 instructions
        assert emission.instruction_count == 3
        assert emission.word_count == 4
