"""FIG7 experiment: the qathad generator netlist and its cost model."""

import numpy as np
import pytest

from repro.aob import AoB
from repro.hw import build_had_netlist, had_cost


def evaluate_had(net, ways, k, hbits):
    inputs = {f"h[{b}]": np.array([(k >> b) & 1], dtype=bool) for b in range(hbits)}
    return net.evaluate(inputs)["aob"][:, 0]


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("ways", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("wide", [True, False])
    def test_matches_aob_hadamard(self, ways, wide):
        net = build_had_netlist(ways, wide=wide)
        hbits = max(4, (ways - 1).bit_length()) if ways > 1 else 4
        for k in range(min(16, 2 ** hbits)):
            out = evaluate_had(net, ways, k, hbits)
            ref = AoB.hadamard(ways, k).to_bool_array()
            assert np.array_equal(out, ref), (ways, k)

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            build_had_netlist(0)


class TestCostModel:
    @pytest.mark.parametrize("ways", [2, 3, 4, 5, 6])
    @pytest.mark.parametrize("wide", [True, False])
    def test_gate_count_matches_netlist(self, ways, wide):
        cost = had_cost(ways, wide=wide)
        net = build_had_netlist(ways, wide=wide)
        assert cost["gates"] == net.gate_count()

    @pytest.mark.parametrize("ways", [3, 4, 5, 6])
    def test_depth_matches_netlist_wide(self, ways):
        assert had_cost(ways, wide=True)["depth"] == build_had_netlist(ways, wide=True).depth()

    def test_gate_count_grows_exponentially(self):
        """The OR network spans ways * 2^(ways-1) inputs -- why section 5
        prefers reserved constant registers."""
        g8 = had_cost(8)["or_inputs"]
        g16 = had_cost(16)["or_inputs"]
        assert g16 / g8 == (16 * (1 << 15)) / (8 * (1 << 7))

    def test_constant_register_alternative_is_linear(self):
        """Constant registers cost 2^ways bits of storage, far below the
        generator's gate count at full scale."""
        cost = had_cost(16)
        assert cost["constant_register_bits"] == 1 << 16
        assert cost["gates"] > cost["constant_register_bits"] / 2

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            had_cost(0)
