"""Pipeline recording/rendering tests."""

from repro.asm import assemble
from repro.cpu import PipelineConfig, PipelinedSimulator
from repro.cpu.visualize import record_pipeline


def record(src, **cfg):
    sim = PipelinedSimulator(ways=6, config=PipelineConfig(**cfg))
    sim.load(assemble(src + "\nlex $rv, 0\nsys\n"))
    return record_pipeline(sim), sim


class TestRecording:
    def test_straight_line_fills_stages(self):
        rec, sim = record("lex $0, 1\nlex $1, 2\nlex $2, 3")
        assert len(rec.rows) == sim.stats.cycles
        # steady state: every stage occupied by a lex
        mid = rec.rows[3]
        assert mid["EX"] == "lex"

    def test_bubble_appears_on_stall(self):
        rec, _ = record("lex $0, 5\nadd $0, $0", forwarding=False)
        # some cycle has a bubble in EX while ID holds the add
        assert any(r["EX"] == "-" and r["ID"] == "add" for r in rec.rows)

    def test_two_word_fetch_marked(self):
        rec, _ = record("had @0, 1\nand @1, @0, @0")
        assert any(r["IF"].startswith("qand") and r["IF"].endswith("*") for r in rec.rows)

    def test_five_stage_has_mem_column(self):
        rec, _ = record("lex $0, 1", stages=5)
        assert rec.stages == ("IF", "ID", "EX", "MEM", "WB")
        assert any(r["MEM"] == "lex" for r in rec.rows)

    def test_render_contains_cycle_numbers(self):
        rec, _ = record("lex $0, 1")
        text = rec.render()
        assert text.splitlines()[0].startswith("cycle")
        assert "lex" in text

    def test_render_slicing(self):
        rec, _ = record("lex $0, 1\nlex $1, 2\nlex $2, 3")
        text = rec.render(first=1, count=2)
        assert len(text.splitlines()) == 3  # header + 2 rows
