"""Integration tests: telemetry wired through the real simulators.

Asserts that the metrics published by the instrumented layers agree with
the simulators' own statistics and with the S31 bench expectations
(straight-line CPI ~1, two-word Qat fetch penalty ~2), and that the CLI
``--stats``/``--trace-out`` flags produce the report and a loadable
Chrome trace.
"""

import json

import pytest

from repro import obs
from repro.asm import assemble
from repro.cli import main
from repro.cpu import FunctionalSimulator, PipelineConfig, PipelinedSimulator
from repro.cpu.trace import ExecutionTrace
from repro.obs.spans import PID_PIPELINE


def _run_pipelined(src, **cfg):
    sim = PipelinedSimulator(ways=8, config=PipelineConfig(**cfg))
    sim.load(assemble(src))
    sim.run()
    return sim


STRAIGHT_LINE = "\n".join(f"lex ${i % 8}, {i % 100}" for i in range(400)) \
    + "\nlex $rv, 0\nsys\n"
QAT_HEAVY = "\n".join("and @2, @0, @1" for _ in range(100)) \
    + "\nlex $rv, 0\nsys\n"


class TestPipelineMetrics:
    def test_published_metrics_match_sim_stats(self):
        with obs.capture() as tel:
            sim = _run_pipelined(STRAIGHT_LINE)
        m = tel.metrics
        assert m.value("pipeline.cycles") == sim.stats.cycles
        assert m.value("pipeline.retired") == sim.stats.retired
        assert m.value("cpu.instructions") == sim.stats.retired
        assert m.value("pipeline.stall.data") == sim.stats.stall_data
        assert m.value("pipeline.flush.branch") == sim.stats.branch_flushes
        assert m.value("pipeline.fetch.extra_cycles") == sim.stats.fetch_extra
        assert m.gauge("pipeline.cpi").value == pytest.approx(sim.stats.cpi)

    def test_straight_line_cpi_near_one(self):
        """The S31 headline claim, read back from the telemetry gauge."""
        with obs.capture(tracing=False) as tel:
            _run_pipelined(STRAIGHT_LINE)
        assert tel.metrics.gauge("pipeline.cpi").value < 1.02

    def test_qat_two_word_fetch_penalty(self):
        """Two-word Qat instructions halve fetch throughput (S31 bench)."""
        with obs.capture(tracing=False) as tel:
            _run_pipelined(QAT_HEAVY)
        assert 1.9 < tel.metrics.gauge("pipeline.cpi").value < 2.1
        assert tel.metrics.value("pipeline.fetch.extra_cycles") == 100

    def test_stage_spans_on_the_cycle_timebase(self):
        with obs.capture() as tel:
            _run_pipelined(STRAIGHT_LINE)
        stage_spans = [s for s in tel.tracer.spans if s.pid == PID_PIPELINE]
        assert {s.tid for s in stage_spans} == {"IF", "ID", "EX", "WB"}
        # one span per stage per retired instruction (the final sys/halt
        # pair drains without emitting)
        per_stage = sum(1 for s in stage_spans if s.tid == "EX")
        assert 400 <= per_stage <= 402
        # cycle domain: timestamps are whole trace-microseconds
        assert all(s.ts_ns % 1000 == 0 for s in stage_spans)

    def test_cpi_counter_track_sampled(self):
        with obs.capture() as tel:
            _run_pipelined(STRAIGHT_LINE)
        samples = [c for c in tel.tracer.counters if c.name == "pipeline.cpi"]
        assert samples  # >= one sample per 64 cycles
        assert all(c.pid == PID_PIPELINE for c in samples)
        assert all(0.5 < c.value < 3.0 for c in samples)

    def test_five_stage_labels(self):
        with obs.capture() as tel:
            _run_pipelined(STRAIGHT_LINE, stages=5)
        tids = {s.tid for s in tel.tracer.spans if s.pid == PID_PIPELINE}
        assert tids == {"IF", "ID", "EX", "MEM", "WB"}

    def test_disabled_runs_record_nothing(self):
        sim = _run_pipelined(STRAIGHT_LINE)
        assert sim.stats.cpi < 1.02  # still runs fine with obs off


class TestFunctionalAndQatMetrics:
    SRC = "had @0, 3\nand @2, @0, @1\nmeas $1, @2\nlex $rv, 0\nsys\n"

    def test_retired_and_syscall_counters(self):
        with obs.capture() as tel:
            sim = FunctionalSimulator(ways=8)
            sim.load(assemble(self.SRC))
            sim.run()
        assert tel.metrics.value("cpu.instructions") == sim.machine.instret
        assert tel.metrics.value("cpu.syscalls") == 1

    def test_qat_op_and_bit_volume_counters(self):
        with obs.capture() as tel:
            sim = FunctionalSimulator(ways=8)
            sim.load(assemble(self.SRC))
            sim.run()
        m = tel.metrics
        assert m.value("qat.ops") == 3  # qhad, qand, qmeas
        assert m.value("qat.ops.qand") == 1
        # 8-way AoB = 256 bits = 4 words per register operation
        assert m.value("qat.bits.and") == 256
        assert m.value("qat.bits.had") == 256
        assert m.value("qat.aob_bits") >= 512
        assert m.histogram("qat.op_seconds").count == 3

    def test_qat_spans_traced(self):
        with obs.capture() as tel:
            sim = FunctionalSimulator(ways=8)
            sim.load(assemble(self.SRC))
            sim.run()
        names = [s.name for s in tel.tracer.spans if s.tid == "qat"]
        assert names == ["qat.qhad", "qat.qand", "qat.qmeas"]


class TestChunkstoreMetrics:
    def test_pattern_backend_memoization_counters(self):
        from repro.apps import factor_word_level

        with obs.capture(tracing=False) as tel:
            result = factor_word_level(15, 4, 4, backend="pattern",
                                       chunk_ways=6)
        assert result.nontrivial == [3, 5]
        m = tel.metrics
        hits = m.value("chunkstore.binop.hit")
        misses = m.value("chunkstore.binop.miss")
        assert hits > 0 and misses > 0
        assert m.gauge("chunkstore.symbols").value > 0
        # every memo hit skips materializing one chunk
        assert m.value("chunkstore.bytes_saved") > 0
        assert "%" in tel.report()  # hit rate rendered in the headline


class TestOptimizerMetrics:
    def test_pass_timings_and_elimination_counters(self):
        from repro.pbp import TraceContext

        with obs.capture() as tel:
            ctx = TraceContext(ways=8)
            b = ctx.pint_h(4, 0x0F)
            c = ctx.pint_h(4, 0xF0)
            e = (b * c).eq(ctx.pint_mk(8, 15))
            ctx.compile({"e": e})
        m = tel.metrics
        assert m.histogram("gates.optimize.pass_seconds").count > 0
        assert m.value("gates.eliminated") > 0
        pass_spans = {s.name for s in tel.tracer.spans
                      if s.name.startswith("gates.optimize.")}
        assert pass_spans <= {"gates.optimize.fold", "gates.optimize.cse",
                              "gates.optimize.dce"}
        assert pass_spans


class TestCli:
    @pytest.fixture
    def asm_file(self, tmp_path):
        path = tmp_path / "prog.s"
        path.write_text(
            "had @0, 3\nand @2, @0, @1\nmeas $0, @2\nlex $rv, 0\nsys\n"
        )
        return path

    def test_run_stats_prints_report_last(self, asm_file, capsys):
        assert main(["run", str(asm_file), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "== telemetry report ==" in out
        assert "pipeline CPI" in out
        assert "Qat coprocessor ops" in out
        # the report follows the normal run output
        assert out.index("registers:") < out.index("== telemetry report ==")

    def test_run_trace_out_writes_loadable_json(self, asm_file, tmp_path,
                                                capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["run", str(asm_file), "--trace-out",
                     str(trace_path)]) == 0
        assert f"chrome trace -> {trace_path}" in capsys.readouterr().out
        with open(trace_path, encoding="utf-8") as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "M" for e in events)

    def test_run_without_flags_leaves_obs_uninstalled(self, asm_file, capsys):
        assert main(["run", str(asm_file)]) == 0
        assert "telemetry" not in capsys.readouterr().out
        assert obs.current() is None

    def test_fig10_stats(self, capsys):
        assert main(["fig10", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "== telemetry report ==" in out
        # the deterministic fig10 CPI on the default pipelined simulator
        assert "pipeline CPI            : 1.8152" in out


class TestExecutionTraceTruncation:
    def test_unlimited_trace_is_not_truncated(self):
        trace = ExecutionTrace()
        sim = FunctionalSimulator(ways=4, trace=trace)
        sim.load(assemble("lex $0, 1\nlex $1, 2\nlex $rv, 0\nsys\n"))
        sim.run()
        assert not trace.truncated
        assert trace.dropped == 0
        assert "truncated" not in trace.render()

    def test_limit_hit_sets_flag_and_marks_render(self):
        trace = ExecutionTrace(limit=2)
        sim = FunctionalSimulator(ways=4, trace=trace)
        sim.load(assemble("lex $0, 1\nlex $1, 2\nlex $rv, 0\nsys\n"))
        sim.run()
        assert len(trace) == 2  # stored entries capped
        assert trace.truncated
        assert trace.dropped == 2  # the other two instructions were counted
        rendered = trace.render()
        assert "truncated: 2 more instruction(s)" in rendered
        assert "limit=2" in rendered

    def test_mix_still_covers_stored_entries(self):
        trace = ExecutionTrace(limit=1)
        sim = FunctionalSimulator(ways=4, trace=trace)
        sim.load(assemble("lex $0, 1\nlex $rv, 0\nsys\n"))
        sim.run()
        assert sum(trace.mix().values()) == 1
