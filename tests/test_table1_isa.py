"""TAB1 experiment: semantics of every Table 1 base instruction.

Each test drives the functional simulator with a tiny assembled program
and checks the architectural effect against the table's functionality
column.
"""

import pytest

from repro.bf16 import bf16_from_float, bf16_to_float
from repro.isa import INSTRUCTIONS, TANGLED_MNEMONICS

from tests.conftest import assemble_and_run


def reg(sim, n):
    return sim.machine.read_reg(n)


class TestTable1Inventory:
    def test_all_24_instructions_present(self):
        """Table 1 lists exactly 24 base instructions."""
        assert len(TANGLED_MNEMONICS) == 24

    def test_descriptions_match_table(self):
        assert INSTRUCTIONS["slt"].description == "set less than"
        assert INSTRUCTIONS["recip"].description == "bfloat16 reciprocal"
        assert INSTRUCTIONS["lex"].description == "load sign extended"


class TestIntegerAlu:
    def test_add(self):
        sim = assemble_and_run("lex $0, 30\nlex $1, 12\nadd $0, $1\n")
        assert reg(sim, 0) == 42

    def test_add_wraps_16_bits(self):
        sim = assemble_and_run("loadi $0, 0xFFFF\nlex $1, 2\nadd $0, $1\n")
        assert reg(sim, 0) == 1

    def test_and_or_xor_not(self):
        sim = assemble_and_run(
            "loadi $0, 0x0F0F\nloadi $1, 0x00FF\n"
            "copy $2, $0\nand $2, $1\n"
            "copy $3, $0\nor  $3, $1\n"
            "copy $4, $0\nxor $4, $1\n"
            "copy $5, $0\nnot $5\n"
        )
        assert reg(sim, 2) == 0x000F
        assert reg(sim, 3) == 0x0FFF
        assert reg(sim, 4) == 0x0FF0
        assert reg(sim, 5) == 0xF0F0

    def test_copy(self):
        sim = assemble_and_run("lex $3, 7\ncopy $9, $3\n")
        assert reg(sim, 9) == 7

    def test_mul_low_16(self):
        sim = assemble_and_run("loadi $0, 300\nloadi $1, 300\nmul $0, $1\n")
        assert reg(sim, 0) == (300 * 300) & 0xFFFF

    def test_neg(self):
        sim = assemble_and_run("lex $0, 5\nneg $0\n")
        assert reg(sim, 0) == (-5) & 0xFFFF

    def test_slt_signed(self):
        sim = assemble_and_run(
            "lex $0, -1\nlex $1, 1\nslt $0, $1\n"  # -1 < 1 -> 1
            "lex $2, 1\nlex $3, -1\nslt $2, $3\n"  # 1 < -1 -> 0
        )
        assert reg(sim, 0) == 1
        assert reg(sim, 2) == 0

    def test_shift_left(self):
        sim = assemble_and_run("lex $0, 3\nlex $1, 4\nshift $0, $1\n")
        assert reg(sim, 0) == 48

    def test_shift_right_with_negative_amount(self):
        sim = assemble_and_run("loadi $0, 0x8000\nlex $1, -15\nshift $0, $1\n")
        assert reg(sim, 0) == 1

    def test_shift_overflow_amount_gives_zero(self):
        sim = assemble_and_run("lex $0, 1\nlex $1, 16\nshift $0, $1\n")
        assert reg(sim, 0) == 0


class TestImmediates:
    def test_lex_sign_extends(self):
        sim = assemble_and_run("lex $0, -2\nlex $1, 100\n")
        assert reg(sim, 0) == 0xFFFE
        assert reg(sim, 1) == 100

    def test_lhi_preserves_low_byte(self):
        sim = assemble_and_run("lex $0, 0x34\nlhi $0, 0x12\n")
        assert reg(sim, 0) == 0x1234

    def test_lex_lhi_pair_builds_any_value(self):
        sim = assemble_and_run("loadi $0, 0xBEEF\n")
        assert reg(sim, 0) == 0xBEEF


class TestMemory:
    def test_store_then_load(self):
        sim = assemble_and_run(
            "loadi $1, 0x200\nlex $0, 77\nstore $0, $1\nload $2, $1\n"
        )
        assert reg(sim, 2) == 77
        assert sim.machine.read_mem(0x200) == 77

    def test_load_uses_address_register(self):
        sim = assemble_and_run(
            "loadi $1, 0x300\nloadi $0, 1234\nstore $0, $1\n"
            "loadi $2, 0x300\nload $3, $2\n"
        )
        assert reg(sim, 3) == 1234


class TestControlFlow:
    def test_brt_taken_and_not_taken(self):
        sim = assemble_and_run(
            "lex $0, 1\nbrt $0, skip\nlex $1, 99\nskip:\nlex $2, 5\n"
        )
        assert reg(sim, 1) == 0  # skipped
        assert reg(sim, 2) == 5

    def test_brf_taken_when_zero(self):
        sim = assemble_and_run(
            "lex $0, 0\nbrf $0, skip\nlex $1, 99\nskip:\nlex $2, 5\n"
        )
        assert reg(sim, 1) == 0

    def test_jumpr(self):
        sim = assemble_and_run(
            "loadi $3, target\njumpr $3\nlex $0, 99\ntarget:\nlex $1, 7\n"
        )
        assert reg(sim, 0) == 0
        assert reg(sim, 1) == 7

    def test_loop_counts(self):
        sim = assemble_and_run(
            "lex $0, 5\nlex $1, 0\nloop:\nadd $1, $0\nlex $2, -1\n"
            "add $0, $2\nbrt $0, loop\n"
        )
        assert reg(sim, 1) == 15


class TestFloatingPoint:
    def test_addf(self):
        a, b = bf16_from_float(1.5), bf16_from_float(2.25)
        sim = assemble_and_run(f"loadi $0, {a}\nloadi $1, {b}\naddf $0, $1\n")
        assert bf16_to_float(reg(sim, 0)) == 3.75

    def test_mulf(self):
        a, b = bf16_from_float(3.0), bf16_from_float(0.5)
        sim = assemble_and_run(f"loadi $0, {a}\nloadi $1, {b}\nmulf $0, $1\n")
        assert bf16_to_float(reg(sim, 0)) == 1.5

    def test_negf(self):
        a = bf16_from_float(2.0)
        sim = assemble_and_run(f"loadi $0, {a}\nnegf $0\n")
        assert bf16_to_float(reg(sim, 0)) == -2.0

    def test_recip(self):
        a = bf16_from_float(4.0)
        sim = assemble_and_run(f"loadi $0, {a}\nrecip $0\n")
        assert bf16_to_float(reg(sim, 0)) == 0.25

    def test_float_int_roundtrip(self):
        sim = assemble_and_run("lex $0, 100\nfloat $0\nint $0\n")
        assert reg(sim, 0) == 100

    def test_float_of_negative(self):
        sim = assemble_and_run("lex $0, -3\nfloat $0\n")
        assert bf16_to_float(reg(sim, 0)) == -3.0


class TestSys:
    def test_sys_halts(self):
        sim = assemble_and_run("lex $rv, 0\nsys\nlex $0, 99\n")
        assert reg(sim, 0) == 0
        assert sim.machine.halted

    def test_sys_print_int(self):
        sim = assemble_and_run(
            "lex $0, -5\nlex $rv, 1\nsys\nlex $rv, 0\nsys\n"
        )
        assert sim.machine.output == ["-5"]
