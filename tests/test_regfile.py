"""Register-file port cost model (sections 2.5 / 5)."""

import pytest

from repro.hw import regfile_cost
from repro.hw.regfile import port_ablation_table


class TestRegfileCost:
    def test_defaults_are_qat_scale(self):
        cost = regfile_cost()
        assert cost.regs == 256 and cost.bits == 65536
        assert cost.read_ports == 2 and cost.write_ports == 1

    def test_more_read_ports_cost_more(self):
        assert regfile_cost(read_ports=3).gates > regfile_cost(read_ports=2).gates

    def test_more_write_ports_cost_more(self):
        assert regfile_cost(write_ports=2).gates > regfile_cost(write_ports=1).gates

    def test_mux_depth_logarithmic(self):
        assert regfile_cost(regs=256).mux_depth == 16
        assert regfile_cost(regs=16).mux_depth == 8

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            regfile_cost(regs=1)
        with pytest.raises(ValueError):
            regfile_cost(read_ports=0)

    def test_as_dict(self):
        d = regfile_cost().as_dict()
        assert set(d) == {"regs", "bits", "read_ports", "write_ports", "gates", "mux_depth"}


class TestPortAblation:
    def test_table_shape(self):
        rows = port_ablation_table()
        assert [r["config"].split(" ")[0] for r in rows] == ["2R1W", "3R1W", "3R2W"]

    def test_overheads_monotonic(self):
        """Each added port costs real area -- the paper's rationale for
        dropping ccnot/cswap/swap from the ISA."""
        rows = port_ablation_table()
        overheads = [r["overhead_vs_2R1W"] for r in rows]
        assert overheads[0] == 1.0
        assert overheads[0] < overheads[1] < overheads[2]

    def test_3r2w_is_substantially_larger(self):
        rows = port_ablation_table()
        assert rows[2]["overhead_vs_2R1W"] > 1.5
