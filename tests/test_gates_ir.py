"""GateCircuit IR: construction, evaluation, analysis."""

import pytest

from repro.aob import AoB
from repro.errors import CircuitError
from repro.gates import GateCircuit
from repro.gates.alg import ValueAlgebra


@pytest.fixture
def alg():
    return ValueAlgebra(4, AoB)


class TestConstruction:
    def test_leaves(self):
        c = GateCircuit()
        assert c.const(0) == 0
        assert c.const(1) == 1
        assert c.had(3) == 2
        assert c.input("x") == 3
        assert len(c) == 4

    def test_bad_const(self):
        with pytest.raises(CircuitError):
            GateCircuit().const(2)

    def test_bad_had_k(self):
        with pytest.raises(CircuitError):
            GateCircuit().had(16)

    def test_dangling_arg_rejected(self):
        c = GateCircuit()
        a = c.const(0)
        with pytest.raises(CircuitError):
            c.band(a, 99)

    def test_bad_output_rejected(self):
        c = GateCircuit()
        with pytest.raises(CircuitError):
            c.mark_output("y", 5)


class TestAnalysis:
    def test_gate_count_excludes_leaves(self):
        c = GateCircuit()
        a, b = c.had(0), c.had(1)
        c.band(a, b)
        assert c.gate_count() == 1
        assert len(c) == 3

    def test_depth(self):
        c = GateCircuit()
        a, b = c.had(0), c.had(1)
        x = c.bxor(a, b)
        y = c.band(x, a)
        c.mark_output("y", y)
        assert c.depth() == 2

    def test_depth_only_counts_outputs(self):
        c = GateCircuit()
        a = c.had(0)
        deep = a
        for _ in range(5):
            deep = c.bnot(deep)
        c.mark_output("shallow", c.bnot(a))
        assert c.depth() == 1

    def test_live_nodes(self):
        c = GateCircuit()
        a, b = c.had(0), c.had(1)
        live = c.band(a, b)
        c.bor(a, b)  # dead
        c.mark_output("o", live)
        assert c.live_nodes() == {a, b, live}

    def test_op_histogram(self):
        c = GateCircuit()
        a, b = c.had(0), c.had(1)
        c.band(a, b)
        c.band(b, a)
        c.bnot(a)
        hist = c.op_histogram()
        assert hist["and"] == 2 and hist["not"] == 1 and hist["had"] == 2


class TestEvaluation:
    def test_evaluates_gates(self, alg):
        c = GateCircuit()
        h0, h1 = c.had(0), c.had(1)
        c.mark_output("and", c.band(h0, h1))
        c.mark_output("xor", c.bxor(h0, h1))
        c.mark_output("not", c.bnot(h0))
        out = c.evaluate(alg)
        assert out["and"] == AoB.hadamard(4, 0) & AoB.hadamard(4, 1)
        assert out["xor"] == AoB.hadamard(4, 0) ^ AoB.hadamard(4, 1)
        assert out["not"] == ~AoB.hadamard(4, 0)

    def test_evaluates_consts(self, alg):
        c = GateCircuit()
        c.mark_output("zero", c.const(0))
        c.mark_output("one", c.const(1))
        out = c.evaluate(alg)
        assert out["zero"] == AoB.zeros(4)
        assert out["one"] == AoB.ones(4)

    def test_inputs_supplied(self, alg):
        c = GateCircuit()
        x = c.input("x")
        c.mark_output("nx", c.bnot(x))
        out = c.evaluate(alg, {"x": AoB.hadamard(4, 2)})
        assert out["nx"] == ~AoB.hadamard(4, 2)

    def test_missing_input_raises(self, alg):
        c = GateCircuit()
        x = c.input("x")
        c.mark_output("x", x)
        with pytest.raises(CircuitError):
            c.evaluate(alg)

    def test_same_circuit_on_pattern_backend(self):
        from repro.pattern import ChunkStore, PatternVector

        store = ChunkStore(6)
        alg = ValueAlgebra(8, PatternVector, store)
        c = GateCircuit()
        h = c.had(7)
        c.mark_output("o", c.bnot(h))
        out = c.evaluate(alg)
        assert out["o"].to_aob() == ~AoB.hadamard(8, 7)
