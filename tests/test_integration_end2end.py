"""Cross-stack integration: word-level PBP -> gate circuit -> Qat
assembly -> binary -> pipelined execution, all agreeing."""

import numpy as np
import pytest

from repro.aob import AoB
from repro.asm import assemble, disassemble
from repro.cpu import FunctionalSimulator, PipelineConfig, PipelinedSimulator
from repro.gates import EmitOptions, GateCircuit, emit_qat, multiply, optimize
from repro.gates.alg import ValueAlgebra
from repro.gates.library import equals_const, less_than
from repro.pbp import PbpContext

WAYS = 8


def run_qat_asm(lines, ways=WAYS, pipeline=False):
    src = "\n".join(list(lines) + ["lex\t$rv,0", "sys"])
    program = assemble(src)
    sim = (
        PipelinedSimulator(ways=ways)
        if pipeline
        else FunctionalSimulator(ways=ways)
    )
    sim.load(program)
    sim.run()
    return sim


class TestFullStack:
    def test_compiled_comparator_matches_pbp(self):
        """A less-than circuit compiled to Qat equals the direct
        word-level evaluation channel-for-channel."""
        circuit = GateCircuit()
        a = [circuit.had(k) for k in range(4)]
        b = [circuit.had(4 + k) for k in range(4)]
        circuit.mark_output("lt", less_than(circuit, a, b))
        circuit = optimize(circuit)
        emission = emit_qat(circuit, EmitOptions(allocator="recycle"))
        sim = run_qat_asm(emission.lines, pipeline=True)
        hw_result = sim.machine.read_qreg(emission.output_regs["lt"])

        ctx = PbpContext(ways=WAYS)
        pa = ctx.pint_h(4, 0x0F)
        pb = ctx.pint_h(4, 0xF0)
        assert hw_result == pa.lt(pb).bits[0]

    def test_roundtrip_through_disassembler_and_back(self):
        """Emit -> assemble -> disassemble -> reassemble -> run."""
        circuit = GateCircuit()
        x = circuit.bxor(circuit.had(0), circuit.had(1))
        circuit.mark_output("x", x)
        emission = emit_qat(circuit)
        program = assemble("\n".join(emission.lines + ["lex\t$rv,0", "sys"]))
        listing = disassemble(program.words)
        program2 = assemble("\n".join(text for _, text in listing))
        assert program2.words == program.words
        sim = FunctionalSimulator(ways=WAYS)
        sim.load(program2)
        sim.run()
        expected = AoB.hadamard(WAYS, 0) ^ AoB.hadamard(WAYS, 1)
        assert sim.machine.read_qreg(emission.output_regs["x"]) == expected

    def test_tangled_loop_reading_qat_results(self):
        """Host code loops over next to count 1-channels, mixing Tangled
        control flow with coprocessor measurement."""
        src = """
            had  @0, 2          ; 64 ones at 8-way
            lex  $0, 0          ; walk cursor
            lex  $1, 0          ; count
            meas $0, @0         ; channel 0
            add  $1, $0
            lex  $0, 0
        walk:
            next $0, @0
            brf  $0, done
            lex  $2, 1
            add  $1, $2
            br   walk
        done:
            copy $0, $1
            lex  $rv, 1
            sys                  ; print count
            lex  $rv, 0
            sys
        """
        program = assemble(src)
        for sim in (FunctionalSimulator(ways=8), PipelinedSimulator(ways=8)):
            sim.load(program)
            sim.run()
            assert sim.machine.output == ["128"]

    def test_multiplier_circuit_on_pipeline_matches_distribution(self):
        """The full 3x3 multiplier compiled and executed in hardware
        reproduces the times-table distribution measured at word level."""
        circuit = GateCircuit()
        a = [circuit.had(k) for k in range(3)]
        b = [circuit.had(3 + k) for k in range(3)]
        product = multiply(circuit, a, b)
        for i, bit in enumerate(product):
            circuit.mark_output(f"p{i}", bit)
        circuit = optimize(circuit)
        emission = emit_qat(circuit, EmitOptions(allocator="recycle"))
        sim = run_qat_asm(emission.lines, ways=6, pipeline=True)
        bits = [
            sim.machine.read_qreg(emission.output_regs[f"p{i}"]).to_bool_array()
            for i in range(6)
        ]
        values = np.zeros(64, dtype=int)
        for i, arr in enumerate(bits):
            values |= arr.astype(int) << i
        got = {}
        for v in values:
            got[int(v)] = got.get(int(v), 0) + 1
        from repro.apps import multiplication_distribution

        assert got == multiplication_distribution(3, 3)

    def test_equals_const_matches_all_three_simulators(self):
        circuit = GateCircuit()
        bits = [circuit.had(k) for k in range(6)]
        circuit.mark_output("e", equals_const(circuit, bits, 37))
        emission = emit_qat(optimize(circuit), EmitOptions(allocator="recycle"))
        results = []
        from repro.cpu import MultiCycleSimulator

        for make in (
            lambda: FunctionalSimulator(ways=6),
            lambda: MultiCycleSimulator(ways=6),
            lambda: PipelinedSimulator(ways=6, config=PipelineConfig(stages=5)),
        ):
            sim = make()
            sim.load(assemble("\n".join(emission.lines + ["lex\t$rv,0", "sys"])))
            sim.run()
            results.append(sim.machine.read_qreg(emission.output_regs["e"]))
        assert results[0] == results[1] == results[2]
        assert list(results[0].iter_ones()) == [37]
