"""Command-line interface tests (the ``tangled`` console script)."""

import pytest

from repro.cli import main


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(
        "lex $0, 21\nadd $0, $0\ncopy $1, $0\nlex $rv, 1\nsys\nlex $rv, 0\nsys\n"
    )
    return path


class TestAsmDis:
    def test_asm_to_stdout(self, asm_file, capsys):
        assert main(["asm", str(asm_file)]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 7
        assert all(len(w) == 4 for w in out)

    def test_asm_to_file_then_dis(self, asm_file, tmp_path, capsys):
        hexfile = tmp_path / "prog.hex"
        assert main(["asm", str(asm_file), "-o", str(hexfile)]) == 0
        capsys.readouterr()
        assert main(["dis", str(hexfile)]) == 0
        listing = capsys.readouterr().out
        assert "lex" in listing and "sys" in listing

    def test_asm_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("frobnicate $0\n")
        assert main(["asm", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["asm", "/nonexistent.s"]) == 1


class TestRun:
    @pytest.mark.parametrize("sim", ["functional", "multicycle", "pipelined"])
    def test_run_prints_output_and_registers(self, asm_file, capsys, sim):
        assert main(["run", str(asm_file), "--sim", sim]) == 0
        out = capsys.readouterr().out
        assert "42" in out
        assert "$0=42" in out

    def test_run_pipeline_options(self, asm_file, capsys):
        assert main([
            "run", str(asm_file), "--sim", "pipelined",
            "--stages", "5", "--no-forwarding",
        ]) == 0
        assert "stalls" in capsys.readouterr().out

    def test_run_limit_guard(self, tmp_path, capsys):
        spin = tmp_path / "spin.s"
        spin.write_text("spin: br spin\n")
        assert main(["run", str(spin), "--limit", "100"]) == 1


class TestFactor:
    def test_factor_221(self, capsys):
        assert main(["factor", "221", "--bits", "5"]) == 0
        out = capsys.readouterr().out
        assert "13" in out and "17" in out

    def test_factor_default_bits(self, capsys):
        assert main(["factor", "15"]) == 0
        assert "nontrivial factors: [3, 5]" in capsys.readouterr().out

    def test_factor_pattern_backend(self, capsys):
        assert main(["factor", "35", "--bits", "4", "--pattern", "--chunk-ways", "6"]) == 0
        assert "5" in capsys.readouterr().out


class TestVerilogAndFig10:
    def test_verilog_qathad(self, capsys):
        assert main(["verilog", "qathad", "--ways", "8"]) == 0
        text = capsys.readouterr().out
        assert "module qathad" in text and "WAYS=8" in text

    def test_verilog_bundle(self, capsys):
        assert main(["verilog", "all"]) == 0
        text = capsys.readouterr().out
        for module in ("qathad", "qatnext", "qatalu"):
            assert f"module {module}" in text

    def test_fig10(self, capsys):
        assert main(["fig10", "--sim", "functional"]) == 0
        out = capsys.readouterr().out
        assert "$0 = 5" in out and "$1 = 3" in out

    def test_fig10_pipelined_stats(self, capsys):
        assert main(["fig10"]) == 0
        assert "cycles" in capsys.readouterr().out


class TestExitTaxonomy:
    """The documented exit-status contract for supervised fan-outs."""

    def test_exit_code_constants(self):
        from repro.cli import (
            EXIT_INTERRUPTED,
            EXIT_REGRESSION,
            EXIT_TIMEOUT,
            EXIT_TOXIC_SHARDS,
        )

        assert EXIT_REGRESSION == 2
        assert EXIT_TIMEOUT == 3
        assert EXIT_TOXIC_SHARDS == 4
        assert EXIT_INTERRUPTED == 130

    def test_toxic_crash_shards_exit_4(self, monkeypatch, capsys):
        from repro.cli import EXIT_TOXIC_SHARDS

        monkeypatch.setenv("TANGLED_CHAOS", "crash:1:99")
        code = main(["faults", "--runs", "4", "--seed", "7",
                     "--jobs", "2", "--retries", "1"])
        assert code == EXIT_TOXIC_SHARDS
        captured = capsys.readouterr()
        assert "quarantined (toxic; exit 4)" in captured.err
        import json

        report = json.loads(captured.out)
        assert report["summary"]["toxic"] == 1
        assert report["runs_detail"][1]["outcome"] == "toxic"

    def test_timeout_only_shards_exit_3(self, monkeypatch, capsys):
        from repro.cli import EXIT_TIMEOUT

        monkeypatch.setenv("TANGLED_CHAOS", "hang:1:99")
        code = main(["faults", "--runs", "4", "--seed", "7",
                     "--jobs", "2", "--retries", "0",
                     "--shard-timeout", "0.5"])
        assert code == EXIT_TIMEOUT
        captured = capsys.readouterr()
        assert "quarantined (timeout; exit 3)" in captured.err
        import json

        report = json.loads(captured.out)
        assert report["runs_detail"][1]["failures"] == ["timeout"]

    def test_resume_requires_the_ledger(self, capsys):
        assert main(["faults", "--runs", "4", "--resume", "abc",
                     "--no-ledger"]) == 1
        assert "--no-ledger" in capsys.readouterr().err

    def test_resume_unknown_run_id_is_an_error(self, capsys):
        assert main(["faults", "--runs", "4", "--resume",
                     "deadbeef"]) == 1
        assert "resume" in capsys.readouterr().err

    def test_toxic_run_then_resume_byte_identical(self, monkeypatch,
                                                  capsys):
        import json
        import os
        import sqlite3

        from repro.cli import EXIT_TOXIC_SHARDS

        assert main(["faults", "--runs", "4", "--seed", "7"]) == 0
        serial_out = capsys.readouterr().out

        monkeypatch.setenv("TANGLED_CHAOS", "crash:1:99")
        assert main(["faults", "--runs", "4", "--seed", "7",
                     "--jobs", "2", "--retries", "0"]) == EXIT_TOXIC_SHARDS
        toxic = capsys.readouterr()
        assert json.loads(toxic.out)["summary"]["toxic"] == 1
        assert "--resume" in toxic.err
        monkeypatch.delenv("TANGLED_CHAOS")

        conn = sqlite3.connect(os.environ["TANGLED_LEDGER"])
        run_ids = [row[0] for row in conn.execute(
            "SELECT DISTINCT run_id FROM shards"
        )]
        conn.close()
        # Two journaled runs: the serial reference and the toxic one;
        # resume the one whose journal holds a toxic shard.
        conn = sqlite3.connect(os.environ["TANGLED_LEDGER"])
        toxic_id = conn.execute(
            "SELECT run_id FROM shards WHERE status = 'toxic'"
        ).fetchone()[0]
        conn.close()
        assert toxic_id in run_ids
        # A bare --resume restores runs/seed/... from the journaled
        # fingerprint -- the original arguments need not be repeated.
        assert main(["faults", "--resume", toxic_id]) == 0
        resumed_out = capsys.readouterr().out
        assert resumed_out == serial_out

    def test_resume_refuses_the_wrong_command(self, capsys):
        import os
        import sqlite3

        assert main(["faults", "--runs", "2", "--seed", "7"]) == 0
        capsys.readouterr()
        conn = sqlite3.connect(os.environ["TANGLED_LEDGER"])
        run_id = conn.execute(
            "SELECT DISTINCT run_id FROM shards").fetchone()[0]
        conn.close()
        assert main(["bench", "--resume", run_id]) == 1
        err = capsys.readouterr().err
        assert "journaled a 'faults' run" in err


class TestAmbiguousRunRefs:
    def _seed_two(self, tmp_path):
        from repro.obs.ledger import open_ledger

        path = str(tmp_path / "amb.db")
        with open_ledger(path) as ledger:
            for run_id, ts in (("abc111", 1.0), ("abd222", 2.0)):
                ledger.record("run", "a", config={}, counters={},
                              run_id=run_id, ts=ts)
        return path

    def test_report_compare_lists_candidates(self, tmp_path, capsys):
        path = self._seed_two(tmp_path)
        assert main(["report", "--compare", "ab", "abd222",
                     "--ledger", path]) == 1
        err = capsys.readouterr().err
        assert "ambiguous" in err
        assert "abc111" in err and "abd222" in err

    def test_blackbox_lists_candidates(self, tmp_path, capsys):
        path = self._seed_two(tmp_path)
        assert main(["blackbox", "ab", "--ledger", path]) == 1
        err = capsys.readouterr().err
        assert "ambiguous" in err
        assert "abc111" in err and "abd222" in err
