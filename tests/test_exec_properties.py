"""Property tests: every instruction's executor vs a pure-Python model.

For each Table 1/3 instruction, hypothesis drives random architectural
state through both the real executor and an independent one-line Python
model of the table's functionality column.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aob import AoB
from repro.bf16 import (
    bf16_add,
    bf16_from_int,
    bf16_mul,
    bf16_neg,
    bf16_recip,
    bf16_to_int,
)
from repro.cpu import MachineState
from repro.cpu.exec_core import execute
from repro.isa import Instr

WAYS = 6
VAL16 = st.integers(min_value=0, max_value=0xFFFF)
REG = st.integers(min_value=0, max_value=15)


def fresh_machine(reg_values):
    m = MachineState(ways=WAYS)
    for i, v in enumerate(reg_values):
        m.write_reg(i, v)
    return m


def sext8(v):
    v &= 0xFF
    return v | 0xFF00 if v & 0x80 else v


def signed(v):
    return v - 0x10000 if v >= 0x8000 else v


# (mnemonic, model(d_val, s_val) -> new d) for all two-register ALU ops
TWO_REG_MODELS = {
    "add": lambda d, s: (d + s) & 0xFFFF,
    "and": lambda d, s: d & s,
    "or": lambda d, s: d | s,
    "xor": lambda d, s: d ^ s,
    "copy": lambda d, s: s,
    "mul": lambda d, s: (d * s) & 0xFFFF,
    "slt": lambda d, s: 1 if signed(d) < signed(s) else 0,
    "addf": bf16_add,
    "mulf": bf16_mul,
}

ONE_REG_MODELS = {
    "neg": lambda d: (-d) & 0xFFFF,
    "not": lambda d: (~d) & 0xFFFF,
    "negf": bf16_neg,
    "recip": bf16_recip,
    "float": bf16_from_int,
    "int": bf16_to_int,
}


class TestTangledSemantics:
    @settings(max_examples=60)
    @given(st.sampled_from(sorted(TWO_REG_MODELS)), REG, REG, st.lists(VAL16, min_size=16, max_size=16))
    def test_two_register_ops(self, mnemonic, d, s, regs):
        m = fresh_machine(regs)
        dv, sv = m.read_reg(d), m.read_reg(s)
        execute(m, Instr(mnemonic, (d, s)))
        if d == s:
            expected = TWO_REG_MODELS[mnemonic](dv, dv)
        else:
            expected = TWO_REG_MODELS[mnemonic](dv, sv)
        assert m.read_reg(d) == expected
        # no other register changed
        for i in range(16):
            if i != d:
                assert m.read_reg(i) == regs[i]

    @settings(max_examples=60)
    @given(st.sampled_from(sorted(ONE_REG_MODELS)), REG, st.lists(VAL16, min_size=16, max_size=16))
    def test_one_register_ops(self, mnemonic, d, regs):
        m = fresh_machine(regs)
        dv = m.read_reg(d)
        execute(m, Instr(mnemonic, (d,)))
        assert m.read_reg(d) == ONE_REG_MODELS[mnemonic](dv)

    @settings(max_examples=60)
    @given(REG, st.integers(-128, 127), st.lists(VAL16, min_size=16, max_size=16))
    def test_lex_lhi(self, d, imm, regs):
        m = fresh_machine(regs)
        execute(m, Instr("lex", (d, imm)))
        assert m.read_reg(d) == sext8(imm)
        before = m.read_reg(d)
        execute(m, Instr("lhi", (d, (imm + 77) & 0xFF)))
        assert m.read_reg(d) == (before & 0xFF) | (((imm + 77) & 0xFF) << 8)

    @settings(max_examples=60)
    @given(REG, REG, VAL16, st.lists(VAL16, min_size=16, max_size=16))
    def test_load_store(self, d, s, value, regs):
        from hypothesis import assume

        assume(d != s)
        m = fresh_machine(regs)
        m.write_reg(d, value)
        execute(m, Instr("store", (d, s)))
        addr = m.read_reg(s)
        assert m.read_mem(addr) == value
        m.write_reg(d, 0)
        execute(m, Instr("load", (d, s)))
        assert m.read_reg(d) == value

    @given(VAL16, VAL16)
    def test_store_load_aliased_address(self, value, addr):
        """store $r,$r writes the register's value at its own address."""
        m = fresh_machine([0] * 16)
        m.write_reg(3, addr)
        execute(m, Instr("store", (3, 3)))
        assert m.read_mem(addr) == addr
        execute(m, Instr("load", (3, 3)))
        assert m.read_reg(3) == addr

    @settings(max_examples=60)
    @given(VAL16, st.integers(-20, 20))
    def test_shift_model(self, value, amount):
        m = fresh_machine([value, amount & 0xFFFF] + [0] * 14)
        execute(m, Instr("shift", (0, 1)))
        if amount >= 16 or amount <= -16:
            expected = 0
        elif amount >= 0:
            expected = (value << amount) & 0xFFFF
        else:
            expected = value >> (-amount)
        assert m.read_reg(0) == expected

    @settings(max_examples=40)
    @given(REG, st.integers(-100, 100), VAL16)
    def test_branches_model(self, c, offset, cond):
        for mnemonic in ("brt", "brf"):
            m = fresh_machine([0] * 16)
            m.write_reg(c, cond)
            m.pc = 500
            execute(m, Instr(mnemonic, (c, offset)))
            taken = (cond != 0) if mnemonic == "brt" else (cond == 0)
            expected = (501 + offset) & 0xFFFF if taken else 501
            assert m.pc == expected

    @given(VAL16)
    def test_jumpr_model(self, target):
        m = fresh_machine([target] + [0] * 15)
        execute(m, Instr("jumpr", (0,)))
        assert m.pc == target


class TestQatSemantics:
    @settings(max_examples=40)
    @given(st.data())
    def test_three_register_gates(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        a, b, c = (data.draw(st.integers(0, 7)) for _ in range(3))
        m = MachineState(ways=WAYS)
        vals = {}
        for q in range(8):
            v = AoB.random(WAYS, rng)
            m.write_qreg(q, v)
            vals[q] = v
        for mnemonic, model in (
            ("qand", lambda x, y: x & y),
            ("qor", lambda x, y: x | y),
            ("qxor", lambda x, y: x ^ y),
        ):
            m2 = MachineState(ways=WAYS)
            for q, v in vals.items():
                m2.write_qreg(q, v)
            execute(m2, Instr(mnemonic, (a, b, c)))
            assert m2.read_qreg(a) == model(vals[b], vals[c])
            for q in range(8):
                if q != a:
                    assert m2.read_qreg(q) == vals[q]

    @settings(max_examples=40)
    @given(st.data())
    def test_reversible_gates(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        m = MachineState(ways=WAYS)
        vals = [AoB.random(WAYS, rng) for _ in range(3)]
        for q, v in enumerate(vals):
            m.write_qreg(q, v)
        execute(m, Instr("qccnot", (0, 1, 2)))
        assert m.read_qreg(0) == vals[0] ^ (vals[1] & vals[2])
        execute(m, Instr("qccnot", (0, 1, 2)))  # involution
        assert m.read_qreg(0) == vals[0]
        execute(m, Instr("qcswap", (0, 1, 2)))
        ea, eb = vals[0].cswap(vals[1], vals[2])
        assert m.read_qreg(0) == ea and m.read_qreg(1) == eb

    @settings(max_examples=40)
    @given(st.data())
    def test_measurement_instructions(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        value = AoB.random(WAYS, rng, p=0.1)
        start = data.draw(st.integers(0, (1 << WAYS) - 1))
        m = MachineState(ways=WAYS)
        m.write_qreg(5, value)
        m.write_reg(0, start)
        execute(m, Instr("qmeas", (0, 5)))
        assert m.read_reg(0) == value.meas(start)
        m.write_reg(1, start)
        execute(m, Instr("qnext", (1, 5)))
        assert m.read_reg(1) == value.next(start)
        m.write_reg(2, start)
        execute(m, Instr("qpop", (2, 5)))
        assert m.read_reg(2) == value.pop_after(start)
        # and the register is untouched (non-destructive)
        assert m.read_qreg(5) == value
