"""Verilog emission: the paper's Figure 7/8 artifacts, regenerated."""

import pytest

from repro.hw.verilog import (
    emit_design_bundle,
    emit_qat_alu,
    emit_qathad,
    emit_qatnext,
)


class TestFigure7:
    def test_matches_paper_listing_structure(self):
        text = emit_qathad(16)
        # the exact lines of the paper's Figure 7
        assert "module qathad(aob, h);" in text
        assert "parameter WAYS=16;" in text
        assert "assign aob[i] = (i >> h);" in text
        assert "genvar i;" in text
        assert text.rstrip().endswith("endmodule")

    def test_parametric_ways(self):
        assert "parameter WAYS=8;" in emit_qathad(8)

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            emit_qathad(0)


class TestFigure8:
    def test_matches_paper_listing_structure(self):
        text = emit_qatnext(16)
        # landmark lines from the paper's Figure 8
        assert "module qatnext(r, aob, s);" in text
        assert "{((aob[(1<<WAYS)-1:1] >> s) << s), 1'b0}" in text
        assert "(|t[pow2].v[(1<<pow2)-1:0])" in text
        assert "assign tr[0] = ~t[0].v[0];" in text
        assert "assign r = ((t[0].v) ? tr : 0);" in text

    def test_student_scale(self):
        assert "parameter WAYS=8;" in emit_qatnext(8)


class TestAluAndBundle:
    def test_alu_covers_table3_gates(self):
        text = emit_qat_alu(16)
        for comment in ("and", "xor", "ccnot", "cswap", "had", "zero", "one"):
            assert comment in text
        assert "input [3:0] op;" in text

    def test_alu_reads_destination(self):
        """Section 2.4: all input values are examined -- the old value of
        the destination feeds the reversible ops."""
        text = emit_qat_alu(16)
        assert "out = a ^ (b & c);" in text  # ccnot
        assert "out = a ^ b;" in text  # cnot

    def test_bundle_contains_all_modules(self):
        text = emit_design_bundle(8)
        assert text.count("endmodule") == 3

    def test_bad_ways(self):
        with pytest.raises(ValueError):
            emit_qat_alu(-1)
        with pytest.raises(ValueError):
            emit_qatnext(0)
