"""Seeded fault injection: plans, campaigns, degradation, stuck-at."""

import numpy as np
import pytest

from repro.aob import AoB
from repro.cpu import FunctionalSimulator
from repro.errors import ReproError
from repro.faults import (
    FaultEvent,
    FaultPlan,
    apply_event,
    flip_chunk_bit,
    run_campaign,
    stuck_at_plan,
)
from repro.faults.campaign import render_report
from repro.hw.netlist import Netlist
from repro.pattern import ChunkStore, PatternVector


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        a = FaultPlan.from_seed(11, 8, max_step=100)
        b = FaultPlan.from_seed(11, 8, max_step=100)
        assert a == b

    def test_different_seed_different_plan(self):
        a = FaultPlan.from_seed(11, 8, max_step=100)
        b = FaultPlan.from_seed(12, 8, max_step=100)
        assert a != b

    def test_round_trips_through_dict(self):
        plan = FaultPlan.from_seed(5, 4, max_step=50, targets=("gpr", "pc"))
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_rejects_unknown_target(self):
        with pytest.raises(ReproError):
            FaultPlan.from_seed(1, 1, max_step=10, targets=("cache",))

    def test_events_stay_in_bounds(self):
        plan = FaultPlan.from_seed(3, 64, max_step=30, ways=6, mem_span=128)
        for e in plan.events:
            assert 0 <= e.step < 30
            if e.target == "gpr":
                assert 0 <= e.index < 16 and 0 <= e.bit < 16
            elif e.target == "mem":
                assert 0 <= e.index < 128
            elif e.target == "qreg":
                assert 0 <= e.index < 256
                assert e.word == 0  # 2^6 bits fit one uint64 word


class TestApplyEvent:
    def test_gpr_flip(self):
        sim = FunctionalSimulator(ways=6)
        sim.machine.write_reg(3, 0b1000)
        apply_event(sim.machine, FaultEvent(0, "gpr", 3, 0, 1))
        assert sim.machine.read_reg(3) == 0b1010

    def test_mem_flip(self):
        sim = FunctionalSimulator(ways=6)
        apply_event(sim.machine, FaultEvent(0, "mem", 40, 0, 15))
        assert int(sim.machine.mem[40]) == 0x8000

    def test_qreg_flip(self):
        sim = FunctionalSimulator(ways=6)
        apply_event(sim.machine, FaultEvent(0, "qreg", 7, 0, 5))
        assert int(sim.machine.qregs[7, 0]) == 1 << 5

    def test_pc_flip(self):
        sim = FunctionalSimulator(ways=6)
        sim.machine.pc = 0
        apply_event(sim.machine, FaultEvent(0, "pc", 0, 0, 4))
        assert sim.machine.pc == 16


class TestCampaign:
    def test_deterministic_report(self):
        kwargs = dict(program="fig10", runs=6, seed=7, sim="functional")
        first = render_report(run_campaign(**kwargs))
        second = render_report(run_campaign(**kwargs))
        assert first == second

    def test_every_run_classified(self):
        report = run_campaign(program="fig10", runs=8, seed=3)
        summary = report["summary"]
        assert (
            summary["detected"] + summary["masked"] + summary["silent"] == 8
        )
        assert len(report["runs_detail"]) == 8
        for run in report["runs_detail"]:
            assert run["outcome"] in ("detected", "masked", "silent")

    def test_golden_matches_fig10(self):
        report = run_campaign(program="fig10", runs=1, seed=1)
        assert {report["golden"]["r0"], report["golden"]["r1"]} == {3, 5}

    def test_pc_faults_get_detected(self):
        report = run_campaign(
            program="fig10", runs=12, seed=3, targets=("gpr", "mem", "pc")
        )
        assert report["summary"]["detected"] > 0

    def test_rejects_bad_program(self):
        with pytest.raises(ReproError):
            run_campaign(program="nosuch", runs=1)


class TestChunkStoreDegradation:
    def test_corrupted_chunk_degrades_not_crashes(self):
        store = ChunkStore(6)
        pv = PatternVector.hadamard(8, 2, store=store)
        sym = pv.runs[0][0]
        before = pv.meas(0)
        flip_chunk_bit(store, sym, 0)
        assert store.degraded == 0
        after = pv.meas(0)  # must not raise
        assert after == before ^ 1
        assert store.degraded == 1

    def test_degraded_chunk_becomes_new_truth(self):
        store = ChunkStore(6)
        pv = PatternVector.zeros(8, store=store)
        flip_chunk_bit(store, store.zero_id, 3)
        assert pv.meas(3) == 1
        assert store.degraded == 1
        # Digest refreshed: further reads see a consistent store.
        assert pv.meas(3) == 1
        assert store.degraded == 1

    def test_out_of_range_symbol_degrades_to_zero_chunk(self):
        store = ChunkStore(6)
        chunk = store.chunk_safe(999)
        assert chunk == AoB.zeros(6)
        assert store.degraded == 1

    def test_degradation_purges_memo_entries(self):
        store = ChunkStore(6)
        a = store.intern(AoB.hadamard(6, 1))
        assert store.popcount(a) == 32
        flip_chunk_bit(store, a, 0)
        store.chunk_safe(a)  # detect + adopt
        assert store.popcount(a) in (31, 33)

    def test_stats_include_degraded(self):
        store = ChunkStore(6)
        store.chunk_safe(12345)
        assert store.stats()["degraded"] == 1


class TestCheckpointChunks:
    def test_store_chunks_round_trip(self):
        store = ChunkStore(6)
        pv = PatternVector.hadamard(8, 1, store=store)
        captured = [np.array(c.words, copy=True) for c in store.chunks()]
        flip_chunk_bit(store, pv.runs[0][0], 2)
        store.restore_chunks(captured)
        assert store.degraded == 0
        assert pv.meas(2) == PatternVector.hadamard(8, 1, store=store).meas(2)


class TestNetlistStuckAt:
    def _xor_net(self):
        net = Netlist()
        a = net.input("a")
        b = net.input("b")
        net.mark_output("y", [net.g_xor(a, b)])
        return net

    def test_stuck_at_forces_output(self):
        net = self._xor_net()
        inputs = {
            "a": np.array([False, True, False, True]),
            "b": np.array([False, False, True, True]),
        }
        clean = net.evaluate(inputs)["y"][0]
        assert list(clean) == [False, True, True, False]
        node = net.logic_nodes()[0]
        stuck = net.evaluate(inputs, stuck_at={node: True})["y"][0]
        assert list(stuck) == [True, True, True, True]

    def test_logic_nodes_excludes_inputs_and_consts(self):
        net = Netlist()
        a = net.input("a")
        c = net.const(True)
        g = net.g_and(a, c)
        net.mark_output("y", [g])
        assert net.logic_nodes() == [g]

    def test_stuck_at_plan_is_seeded(self):
        net = self._xor_net()
        assert stuck_at_plan(net, 9, 5) == stuck_at_plan(net, 9, 5)
        for node, value in stuck_at_plan(net, 9, 5):
            assert node in net.logic_nodes()
            assert isinstance(value, bool)

    def test_stuck_at_detection_sweep(self):
        """Exhaustive stimulus detects a stuck output on a tiny adder."""
        net = Netlist()
        a = net.input("a")
        b = net.input("b")
        net.mark_output("sum", [net.g_xor(a, b)])
        net.mark_output("carry", [net.g_and(a, b)])
        inputs = {
            "a": np.array([False, True, False, True]),
            "b": np.array([False, False, True, True]),
        }
        clean = net.evaluate(inputs)
        detected = 0
        for node in net.logic_nodes():
            for value in (False, True):
                faulty = net.evaluate(inputs, stuck_at={node: value})
                if any(
                    (faulty[name] != clean[name]).any() for name in clean
                ):
                    detected += 1
        # Every single stuck-at on this circuit is detectable with the
        # exhaustive 4-vector batch.
        assert detected == 2 * len(net.logic_nodes())
