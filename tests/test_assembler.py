"""Assembler tests: syntax, labels, directives, errors, disassembly."""

import pytest

from repro.asm import assemble, disassemble
from repro.asm.disasm import render_listing
from repro.errors import AssemblerError
from repro.isa import decode


class TestBasicSyntax:
    def test_empty_source(self):
        assert len(assemble("")) == 0

    def test_comments_all_styles(self):
        p = assemble("lex $0, 1 ; semicolon\nlex $1, 2 # hash\nlex $2, 3 // slashes\n")
        assert len(p.words) == 3

    def test_register_aliases(self):
        p = assemble("copy $at, $rv\ncopy $ra, $fp\ncopy $sp, $0\n")
        instrs = [decode(p.words, i)[0] for i in range(3)]
        assert instrs[0].ops == (11, 12)
        assert instrs[1].ops == (13, 14)
        assert instrs[2].ops == (15, 0)

    def test_numeric_literals(self):
        p = assemble("lex $0, 0x1f\nlex $1, 0b101\nlex $2, -3\n")
        assert p.words[0] & 0xFF == 0x1F
        assert p.words[1] & 0xFF == 5
        assert p.words[2] & 0xFF == 0xFD

    def test_case_insensitive_mnemonics(self):
        p = assemble("LEX $0, 1\nAdd $0, $1\n")
        assert decode(p.words, 0)[0].mnemonic == "lex"

    def test_qat_tangled_disambiguation(self):
        p = assemble("and $0, $1\nand @0, @1, @2\nnot $3\nnot @3\n")
        mnemonics = [i.mnemonic for _, i in
                     ((a, decode(p.words, a)[0]) for a in (0, 1, 3, 4))]
        assert mnemonics == ["and", "qand", "not", "qnot"]


class TestLabels:
    def test_forward_and_backward_branches(self):
        p = assemble(
            "top:\tlex $0, 1\n\tbrt $0, end\n\tbrf $0, top\nend:\tsys\n"
        )
        brt, _ = decode(p.words, 1)
        brf, _ = decode(p.words, 2)
        assert brt.ops == (0, 1)  # end(3) - (1+1) = 1
        assert brf.ops == (0, -3)  # top(0) - (2+1) = -3

    def test_labels_in_word_directive(self):
        p = assemble("entry:\tsys\ndata:\t.word entry, data\n")
        assert p.words[1] == 0
        assert p.words[2] == 1

    def test_stacked_labels(self):
        p = assemble("a: b: c: sys\n")
        assert p.labels == {"a": 0, "b": 0, "c": 0}

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x:\tsys\nx:\tsys\n")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("brt $0, nowhere\n")

    def test_branch_offset_range_checked(self):
        src = "\tbrt $0, far\n" + "\tsys\n" * 200 + "far:\tsys\n"
        with pytest.raises(AssemblerError):
            assemble(src)

    def test_source_map_records_lines(self):
        p = assemble("\tlex $0, 1\n\tsys\n")
        assert p.source_map[0] == 1
        assert p.source_map[1] == 2


class TestDirectives:
    def test_word_values(self):
        p = assemble(".word 1, 0x10, -1\n")
        assert p.words == [1, 16, 0xFFFF]

    def test_origin_moves_forward(self):
        p = assemble("sys\n.origin 0x10\ntarget: sys\n")
        assert p.labels["target"] == 0x10
        assert p.words[0x10] == p.words[0]

    def test_origin_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".origin 5\nsys\n.origin 2\nsys\n")

    def test_origin_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble(".origin 1, 2\n")


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError) as info:
            assemble("blorp $0\n")
        assert "line 1" in str(info.value)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add $0\n")

    def test_wrong_operand_sigil(self):
        with pytest.raises(AssemblerError):
            assemble("add $0, @1\n")

    def test_bad_register_number(self):
        with pytest.raises(AssemblerError):
            assemble("add $16, $0\n")
        with pytest.raises(AssemblerError):
            assemble("zero @256\n")

    def test_bad_literal(self):
        with pytest.raises(AssemblerError):
            assemble("lex $0, 12abc\n")

    def test_bad_label_name(self):
        with pytest.raises(AssemblerError):
            assemble("1bad:\tsys\n")


class TestDisassembly:
    def test_roundtrip_through_disassembler(self):
        src = "\tlex $0, 42\n\thad @9, 3\n\tand @2, @0, @1\n\tsys\n"
        p = assemble(src)
        listing = disassemble(p.words)
        reassembled = assemble("\n".join(text for _, text in listing))
        assert reassembled.words == p.words

    def test_data_renders_as_word(self):
        listing = disassemble([0x6123])
        assert listing[0][1].startswith(".word")

    def test_render_listing_has_addresses(self):
        p = assemble("lex $0, 1\nsys\n")
        text = render_listing(p.words)
        assert "0000:" in text and "0001:" in text
