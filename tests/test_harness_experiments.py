"""The benchmark harness's experiment functions produce valid rows.

(The bench files assert shapes under --benchmark-only; these tests keep
the cheap experiments inside the plain test suite too, so `pytest tests/`
alone exercises the full reproduction pipeline.)
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import harness  # noqa: E402


class TestExperimentRows:
    def test_fig1(self):
        rows = harness.experiment_fig1()
        assert rows[0]["P(0)"] == 0.25
        assert rows[1] == {
            "vectors": "{0,0,1,0},{0,0,1,1}",
            "P(0)": 0.5, "P(1)": 0.0, "P(2)": 0.25, "P(3)": 0.25,
        }

    def test_table2(self):
        rows = harness.experiment_table2()
        assert {r["macro"] for r in rows} >= {"br lab", "jump lab"}
        assert all(r["words"] >= r["instructions"] for r in rows)

    def test_fig7(self):
        rows = harness.experiment_fig7()
        gates = [r["generator_gates"] for r in rows]
        assert gates == sorted(gates)

    def test_fig8(self):
        rows = harness.experiment_fig8()
        for row in rows:
            assert row["depth_2input_or"] >= row["depth_wide_or"]

    def test_fig10(self):
        rows = harness.experiment_fig10()
        assert all((r["$0"], r["$1"]) == (5, 3) for r in rows)
        pipelined = next(r for r in rows if r["simulator"] == "pipelined")
        multicycle = next(r for r in rows if r["simulator"] == "multicycle")
        assert pipelined["cycles"] < multicycle["cycles"]

    def test_s5(self):
        rows = harness.experiment_s5()
        by = {r["variant"]: r for r in rows}
        assert (
            by["recycling allocator"]["registers"]
            < by["paper greedy (Fig 10 style)"]["registers"]
        )

    def test_s5_regfile(self):
        rows = harness.experiment_s5_regfile()
        assert rows[0]["overhead_vs_2R1W"] == 1.0

    def test_s31_teams(self):
        rows = harness.experiment_s31_teams()
        assert len(rows) == 8
        assert all(r["fig10_correct"] == "yes" for r in rows)

    def test_lcpc17(self):
        rows = harness.experiment_lcpc17()
        assert all(r["optimized_gates"] <= r["raw_gates"] for r in rows)

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = harness.format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all rows same width

    def test_format_table_empty(self):
        assert harness.format_table([]) == "(no rows)"

    def test_registry_covers_all_experiments(self):
        names = {fn.__name__ for fn in harness.ALL_EXPERIMENTS.values()}
        module_fns = {
            n for n in dir(harness)
            if n.startswith("experiment_") and n != "experiment_qvp_endtoend"
        }
        # every experiment_* function is registered (endtoend included too)
        assert names >= module_fns - {"experiment_qvp_endtoend"}
