"""Fast-path execution engine: equivalence, invalidation, and fan-out.

The contract of :mod:`repro.cpu.fastpath` is *architectural
invisibility*: the stripped loops must be byte-identical to the
instrumented slow path in every observable (registers, memory, Qat
state, trap records, cycle counts), the predecode cache must survive
self-modifying code, and the ``--jobs`` fan-out of campaigns and
benches must merge back to the serial report exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.cpu import (
    FunctionalSimulator,
    MultiCycleSimulator,
    PipelinedSimulator,
    fastpath,
)
from repro.faults.traps import TrapPolicy
from repro.isa import INSTRUCTIONS

from tests.test_pipeline import random_program

SIMS = [FunctionalSimulator, MultiCycleSimulator, PipelinedSimulator]
BACKENDS = ["dense", "re"]


def _snap(sim) -> dict:
    snap = sim.machine.snapshot()
    # Backend-agnostic Qat readout (the RE backend has no dense matrix).
    snap["qregs"] = [sim.machine.read_qreg(i) for i in range(256)]
    snap["traps"] = [record.as_dict() for record in sim.machine.traps]
    snap["instret"] = sim.machine.instret
    return snap


def _assert_same_state(a: dict, b: dict) -> None:
    assert np.array_equal(a["regs"], b["regs"])
    assert np.array_equal(a["mem"], b["mem"])
    assert a["pc"] == b["pc"]
    assert a["halted"] == b["halted"]
    assert a["output"] == b["output"]
    assert a["instret"] == b["instret"]
    assert a["traps"] == b["traps"]
    assert a["qregs"] == b["qregs"]


def _run_both(sim_cls, words, *, ways=6, qat_backend="dense",
              trap_policy=None, max_steps=5000):
    """Run ``words`` down the slow and fast paths; return both sims."""
    out = []
    for fast in (False, True):
        sim = sim_cls(ways=ways, trap_policy=trap_policy,
                      qat_backend=qat_backend)
        sim.use_fastpath = fast
        sim.load(list(words))
        if sim_cls is PipelinedSimulator:
            # The pipeline has no separate stripped loop; exercise the
            # predecode cache against uncached decoding instead.
            sim.machine.predecode_enabled = fast
            sim.run(max_cycles=max_steps * 10)
        else:
            sim.run(max_steps=max_steps)
        out.append(sim)
    return out


class TestDifferentialFastVsSlow:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("sim_cls", SIMS)
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_random_programs_identical(self, sim_cls, backend, data):
        words = random_program(data)
        slow, fast = _run_both(sim_cls, words, qat_backend=backend)
        _assert_same_state(_snap(slow), _snap(fast))

    @pytest.mark.parametrize("sim_cls", [FunctionalSimulator,
                                         MultiCycleSimulator])
    def test_return_value_matches(self, sim_cls):
        words = assemble("lex $0, 7\nadd $0, $0\nlex $rv, 0\nsys\n").words
        slow, fast = _run_both(sim_cls, words)
        if sim_cls is MultiCycleSimulator:
            assert slow.cycles == fast.cycles > 0
        assert slow.machine.read_reg(0) == fast.machine.read_reg(0) == 14

    @pytest.mark.parametrize("sim_cls", [FunctionalSimulator,
                                         MultiCycleSimulator])
    def test_trap_records_identical_under_halt_policy(self, sim_cls):
        # Illegal opcode mid-stream: the trap record (cause, pc,
        # instret, cycle, detail) must match the slow path exactly.
        words = assemble("lex $0, 1\nlex $1, 2\n").words + [0x6000]
        slow, fast = _run_both(sim_cls, words,
                               trap_policy=TrapPolicy.halting())
        snap_slow, snap_fast = _snap(slow), _snap(fast)
        assert snap_slow["traps"], "expected an illegal-opcode trap"
        _assert_same_state(snap_slow, snap_fast)

    @pytest.mark.parametrize("sim_cls", [FunctionalSimulator,
                                         MultiCycleSimulator])
    def test_watchdog_identical_under_halt_policy(self, sim_cls):
        words = assemble("spin: br spin\n").words
        slow, fast = _run_both(sim_cls, words, max_steps=64,
                               trap_policy=TrapPolicy.halting())
        snap_slow, snap_fast = _snap(slow), _snap(fast)
        assert snap_slow["traps"][0]["cause"] == "watchdog"
        _assert_same_state(snap_slow, snap_fast)

    def test_observer_forces_slow_path(self):
        from repro import obs

        sim = FunctionalSimulator(ways=6)
        assert fastpath.eligible(sim)
        with obs.capture():
            assert not fastpath.eligible(sim)
        assert fastpath.eligible(sim)

    def test_env_kill_switch(self, monkeypatch):
        sim = FunctionalSimulator(ways=6)
        monkeypatch.setattr(fastpath, "ENABLED", False)
        assert not fastpath.eligible(sim)
        sim.use_fastpath = True  # explicit override beats the switch
        assert fastpath.eligible(sim)


class TestPredecodeCache:
    def test_entries_interned_across_machines(self):
        words = assemble("lex $0, 5\nlex $rv, 0\nsys\n").words
        a = FunctionalSimulator(ways=6)
        b = FunctionalSimulator(ways=6)
        a.load(list(words))
        b.load(list(words))
        ea = fastpath.cache_for(a.machine).lookup(a.machine.mem, 0)
        eb = fastpath.cache_for(b.machine).lookup(b.machine.mem, 0)
        assert ea is eb  # process-wide interning by bit pattern

    def test_two_word_invalidation_covers_prefix(self):
        # A store into the *second* word of a two-word Qat instruction
        # must also evict the entry cached at the first word.
        words = assemble("and @2, @0, @1\nlex $rv, 0\nsys\n").words
        sim = FunctionalSimulator(ways=6)
        sim.load(list(words))
        cache = fastpath.cache_for(sim.machine)
        entry = cache.lookup(sim.machine.mem, 0)
        assert entry.words == 2
        assert 0 in cache.entries
        sim.machine.write_mem(1, 0x1234)
        assert 0 not in cache.entries

    def test_invalidate_at_address_zero_does_not_wrap(self):
        # Regression: a store to address 0 used to probe word -1, which
        # wrapped to the top of the 2^16-word space and evicted whatever
        # entry happened to live at 0xFFFF.
        words = assemble("and @2, @0, @1\nlex $rv, 0\nsys\n").words
        sim = FunctionalSimulator(ways=6)
        sim.load(list(words))
        cache = fastpath.cache_for(sim.machine)
        entry = cache.lookup(sim.machine.mem, 0)
        assert entry.words == 2
        # Plant a synthetic two-word entry at the very top.  One cannot
        # arise naturally (it would be truncated), which is exactly why
        # the wrapped probe went unnoticed.
        cache.entries[0xFFFF] = entry
        sim.machine.write_mem(0, 0x1234)
        assert 0 not in cache.entries
        assert 0xFFFF in cache.entries

    def test_two_word_invalidation_at_top_edge(self):
        # A two-word Qat instruction straddling 0xFFFE/0xFFFF: a store
        # into its second (last-addressable) word must evict the prefix.
        words = assemble("and @2, @0, @1\n").words
        sim = FunctionalSimulator(ways=6)
        sim.load([0])
        sim.machine.write_mem(0xFFFE, words[0])
        sim.machine.write_mem(0xFFFF, words[1])
        cache = fastpath.cache_for(sim.machine)
        entry = cache.lookup(sim.machine.mem, 0xFFFE)
        assert entry.words == 2
        sim.machine.write_mem(0xFFFF, 0x0001)
        assert 0xFFFE not in cache.entries

    def test_self_modifying_store_to_address_zero(self):
        # Behavioral check for the same regression: rewriting word 0
        # (already executed) must not disturb later execution.
        src = """
            lex $0, 0
            lex $1, 0
            store $0, $1
            lex $3, 9
            lex $rv, 0
            sys
        """
        program = assemble(src)
        results = []
        for predecode in (True, False):
            sim = FunctionalSimulator(ways=6)
            sim.load(program)
            sim.machine.predecode_enabled = predecode
            sim.run(max_steps=100)
            results.append(_snap(sim))
        _assert_same_state(results[0], results[1])
        assert results[0]["regs"][3] == 9

    @pytest.mark.parametrize("sim_cls", SIMS)
    def test_self_modifying_program(self, sim_cls):
        """A program that rewrites an upcoming instruction word.

        The store overwrites the word at ``target`` (originally
        ``lex $3, 2``) with the encoding of ``lex $3, 42`` well before
        fetch reaches it; differentially compare a predecoding
        simulator against one decoding every fetch.
        """
        from repro.isa import Instr, encode

        (word,) = encode(Instr("lex", (3, 42)))
        filler = "\n".join("lex $4, 0" for _ in range(8))
        src = f"""
            lex $0, {word & 0xFF}
            lhi $0, {(word >> 8) & 0xFF}
            lex $1, target
            store $0, $1
        {filler}
        target:
            lex $3, 2
            lex $rv, 0
            sys
        """
        program = assemble(src)

        results = []
        for predecode in (True, False):
            sim = sim_cls(ways=6)
            sim.load(program)
            sim.machine.predecode_enabled = predecode
            if sim_cls is PipelinedSimulator:
                sim.run(max_cycles=500)
            else:
                sim.run(max_steps=200)
            results.append(_snap(sim))
        _assert_same_state(results[0], results[1])
        # Both actually executed the patched instruction.
        assert results[0]["regs"][3] == 42

    def test_fault_injection_invalidates(self):
        from repro.faults.inject import FaultEvent, apply_event

        words = assemble("lex $0, 5\nlex $rv, 0\nsys\n").words
        sim = FunctionalSimulator(ways=6)
        sim.load(list(words))
        cache = fastpath.cache_for(sim.machine)
        cache.lookup(sim.machine.mem, 0)
        assert 0 in cache.entries
        apply_event(sim.machine,
                    FaultEvent(step=0, target="mem", index=0, word=0, bit=3))
        assert 0 not in cache.entries

    def test_disabled_machine_has_no_cache(self):
        sim = FunctionalSimulator(ways=6)
        sim.machine.predecode_enabled = False
        assert fastpath.cache_for(sim.machine) is None


class TestParallelCampaign:
    def test_jobs_report_byte_identical(self):
        from repro.faults.campaign import render_report, run_campaign

        serial = run_campaign(program="fig10", runs=8, seed=7, jobs=1)
        parallel = run_campaign(program="fig10", runs=8, seed=7, jobs=4)
        assert render_report(serial).encode() == render_report(parallel).encode()

    def test_bad_jobs_rejected(self):
        from repro.errors import ReproError
        from repro.faults.campaign import run_campaign

        with pytest.raises(ReproError):
            run_campaign(runs=2, jobs=0)


class TestParallelBench:
    def test_jobs_counters_byte_identical(self):
        import json

        from repro.obs.bench import spec_by_name, run_suite

        specs = [spec_by_name("fig10.functional"),
                 spec_by_name("fig10.functional_fast")]
        serial = run_suite(specs, rounds=2, warmup=0, jobs=1)
        parallel = run_suite(specs, rounds=2, warmup=0, jobs=2)
        assert serial["benches"].keys() == parallel["benches"].keys()
        for name in serial["benches"]:
            a, b = serial["benches"][name], parallel["benches"][name]
            assert (json.dumps(a["counters"], sort_keys=True).encode()
                    == json.dumps(b["counters"], sort_keys=True).encode()), name
            # steps is deterministic; steps_per_second is timing-derived
            assert (a.get("rate", {}).get("steps")
                    == b.get("rate", {}).get("steps")), name

    def test_fast_spec_reports_rate(self):
        from repro.obs.bench import spec_by_name, run_suite

        report = run_suite([spec_by_name("fig10.functional_fast")],
                           rounds=2, warmup=0)
        entry = report["benches"]["fig10.functional_fast"]
        assert entry["counters"] == {}
        assert entry["rate"]["steps"] > 0
        assert entry["rate"]["steps_per_second"] > 0


class TestChunkStoreMemoBound:
    def test_eviction_counts_and_caps(self):
        from repro.aob import AoB
        from repro.pattern.chunkstore import ChunkStore

        store = ChunkStore(4, memo_limit=4)
        rng = np.random.default_rng(1)
        syms = [store.intern(AoB.random(4, rng)) for _ in range(10)]
        for i in range(9):
            store.binop("xor", syms[i], syms[i + 1])
        assert len(store._binop_cache) <= 4
        assert store.memo_evicted == store.stats()["memo_evicted"] > 0
        assert store.stats()["memo_limit"] == 4

    def test_lru_refresh_on_hit(self):
        from repro.aob import AoB
        from repro.pattern.chunkstore import ChunkStore

        store = ChunkStore(4, memo_limit=2)
        rng = np.random.default_rng(2)
        a, b, c, d = (store.intern(AoB.random(4, rng)) for _ in range(4))
        store.binop("xor", a, b)
        store.binop("xor", a, c)
        store.binop("xor", a, b)  # hit: refresh recency
        store.binop("xor", a, d)  # evicts (a, c), not the refreshed (a, b)
        hits = store.gate_hits
        store.binop("xor", a, b)
        assert store.gate_hits == hits + 1  # still memoized

    def test_results_correct_under_eviction(self):
        from repro.aob import AoB
        from repro.pattern.chunkstore import ChunkStore

        store = ChunkStore(3, memo_limit=1)
        rng = np.random.default_rng(3)
        chunks = [AoB.random(3, rng) for _ in range(6)]
        syms = [store.intern(c) for c in chunks]
        for i in range(5):
            got = store.chunk(store.binop("and", syms[i], syms[i + 1]))
            assert got == (chunks[i] & chunks[i + 1])
            assert store.chunk(store.bnot(syms[i])) == ~chunks[i]

    def test_bad_limit_rejected(self):
        from repro.errors import EntanglementError
        from repro.pattern.chunkstore import ChunkStore

        with pytest.raises(EntanglementError):
            ChunkStore(4, memo_limit=0)


class TestBitvectorVectorized:
    @pytest.mark.parametrize("ways", [0, 3, 6, 10])
    def test_from_int_matches_meas_per_channel(self, ways):
        from repro.aob import AoB

        rng = np.random.default_rng(ways)
        value = int(rng.integers(0, 1 << min(60, 1 << ways))) if ways else 1
        vec = AoB.from_int(ways, value)
        for channel in range(1 << ways):
            assert vec.meas(channel) == (value >> channel) & 1

    @pytest.mark.parametrize("ways", [0, 3, 6, 10])
    def test_roundtrip_and_iteration(self, ways):
        from repro.aob import AoB

        rng = np.random.default_rng(100 + ways)
        vec = AoB.random(ways, rng)
        back = AoB.from_int(ways, vec.to_int())
        assert back == vec
        # iter_ones (the meas/next readout loop) agrees with the dense view
        assert list(vec.iter_ones()) == list(np.flatnonzero(vec.to_bool_array()))

    def test_rle_string_runs(self):
        from repro.aob import AoB

        vec = AoB.from_bits([0, 0, 1, 1, 1, 0, 1, 1])
        assert vec.to_rle_string() == "0^2 1^3 0 1^2"
        wide = AoB.from_bits([i % 2 for i in range(32)])
        assert wide.to_rle_string(max_runs=4).endswith("...")


class TestDispatchTable:
    def test_fast_handlers_cover_isa(self):
        from repro.cpu.exec_core import FAST_HANDLERS

        assert set(FAST_HANDLERS) == set(INSTRUCTIONS)
