"""Telemetry instrumentation of the fault/checkpoint subsystem.

Checkpoint capture/save/load/verify/restore report per-operation
counters and timing histograms; fault campaigns report per-outcome
counters and per-run durations -- the data behind
``tangled faults --stats``.
"""

import numpy as np
import pytest

from repro import obs
from repro.cpu import FunctionalSimulator
from repro.errors import CheckpointError
from repro.faults.campaign import run_campaign
from repro.faults.checkpoint import AutoCheckpointer, Checkpoint


def _halted_sim():
    from repro.asm import assemble

    sim = FunctionalSimulator(ways=8)
    sim.load(assemble("lex $0, 5\nlex $rv, 0\nsys\n"))
    sim.run()
    return sim


class TestCheckpointTelemetry:
    def test_lifecycle_counters_and_timings(self, tmp_path):
        sim = _halted_sim()
        path = str(tmp_path / "cp.npz")
        with obs.capture(tracing=False) as telemetry:
            cp = Checkpoint.take(sim.machine)
            cp.save(path)
            loaded = Checkpoint.load(path)
            assert loaded.verify()
            loaded.restore(sim.machine)
        m = telemetry.metrics
        for op in ("capture", "save", "load", "verify", "restore"):
            assert m.value(f"checkpoint.{op}") >= 1, op
            hist = m.get(f"checkpoint.{op}_seconds")
            assert hist is not None and hist.count >= 1, op
        assert m.value("checkpoint.verify_failures") == 0

    def test_failed_verify_and_restore_counted(self):
        sim = _halted_sim()
        with obs.capture(tracing=False) as telemetry:
            cp = Checkpoint.take(sim.machine)
            cp.regs[0] ^= np.uint16(1)  # corrupt after capture
            assert not cp.verify()
            with pytest.raises(CheckpointError):
                cp.restore(sim.machine)
        m = telemetry.metrics
        assert m.value("checkpoint.verify_failures") >= 1
        assert m.value("checkpoint.restore_failures") == 1

    def test_failed_load_counted(self, tmp_path):
        bad = tmp_path / "garbage.npz"
        bad.write_bytes(b"not a checkpoint")
        with obs.capture(tracing=False) as telemetry:
            with pytest.raises(CheckpointError):
                Checkpoint.load(str(bad))
        assert telemetry.metrics.value("checkpoint.load_failures") == 1

    def test_auto_checkpointer_still_counts_taken(self):
        sim = _halted_sim()
        auto = AutoCheckpointer(interval=2, keep=2)
        with obs.capture(tracing=False) as telemetry:
            for _ in range(6):
                auto.tick(sim.machine)
        assert telemetry.metrics.value("checkpoint.taken") == 3
        assert telemetry.metrics.value("checkpoint.capture") == 3

    def test_uninstrumented_when_disabled(self, tmp_path):
        # No telemetry installed: the hooks must stay silent no-ops.
        sim = _halted_sim()
        cp = Checkpoint.take(sim.machine)
        assert cp.verify()
        assert obs.current() is None


class TestCampaignTelemetry:
    def test_per_outcome_counters_and_run_timing(self):
        with obs.capture(tracing=False) as telemetry:
            report = run_campaign(runs=6, seed=7)
        m = telemetry.metrics
        summary = report["summary"]
        for outcome in ("detected", "masked", "silent"):
            assert m.value(f"faults.{outcome}") == summary[outcome]
        assert m.value("faults.runs") == 6
        hist = m.get("faults.run_seconds")
        assert hist is not None and hist.count == 6

    def test_stats_report_lists_fault_counters(self):
        with obs.capture(tracing=False) as telemetry:
            run_campaign(runs=3, seed=1)
        text = telemetry.report()
        assert "faults.runs = 3" in text
        assert "faults.run_seconds" in text

    def test_campaign_report_unchanged_by_telemetry(self):
        baseline = run_campaign(runs=4, seed=11)
        with obs.capture(tracing=False):
            instrumented = run_campaign(runs=4, seed=11)
        assert baseline == instrumented
