"""The architectural profiler: attribution invariants, blame, rendering.

The load-bearing property is *conservation*: a profiled run attributes
exactly one (pc, reason) per simulated cycle, so the per-PC totals sum
to the simulator's own cycle count -- checked here over every example
workload, both Qat widths, all four pipeline configurations, and the
multi-cycle model.
"""

import json

import pytest

from repro import obs
from repro.apps import fig10_program, profile_factor_program
from repro.asm import assemble
from repro.cpu import CycleCosts, PipelineConfig
from repro.obs.profile import (
    REASONS,
    Profiler,
    flamegraph_trace,
    profile_program,
    render_annotate,
    write_flamegraph,
)
from repro.obs.spans import PID_PROFILE


def _program(body: str):
    return assemble(body + "\nlex $rv, 0\nsys\n")


#: Example workloads covering every attribution reason.
WORKLOADS = {
    "straight-line alu": "\n".join(f"lex ${i % 8}, {i % 100}" for i in range(40)),
    "dependent alu": "lex $0, 1\n" + "add $0, $0\n" * 40,
    "qat 2-word heavy": "had @0, 1\nhad @1, 2\n" + "and @2, @0, @1\n" * 20,
    "branchy loop": "lex $0, 10\nloop: lex $2, -1\nadd $0, $2\nbrt $0, loop",
    "load-use": "loadi $1, 0x100\nlex $0, 7\nstore $0, $1\nload $2, $1\nadd $2, $0",
    "qat swap structural": "had @0, 1\nhad @1, 2\nswap @0, @1\ncswap @2, @0, @1",
}

PIPE_CONFIGS = [
    PipelineConfig(stages=4, forwarding=True),
    PipelineConfig(stages=4, forwarding=False),
    PipelineConfig(stages=5, forwarding=True),
    PipelineConfig(stages=5, forwarding=False),
    PipelineConfig(stages=4, forwarding=True, second_qat_write_port=False),
]


class TestAttributionConservation:
    @pytest.mark.parametrize("ways", [8, 16])
    @pytest.mark.parametrize("body", list(WORKLOADS.values()),
                             ids=list(WORKLOADS))
    @pytest.mark.parametrize("config", PIPE_CONFIGS,
                             ids=["4fwd", "4nofwd", "5fwd", "5nofwd", "4fwd-1wp"])
    def test_pipelined_sum_equals_cycles(self, body, ways, config):
        sim, prof = profile_program(_program(body), ways=ways,
                                    simulator="pipelined", config=config)
        assert prof.total_cycles == sim.stats.cycles
        assert sum(prof.issues_by_pc.values()) == sim.stats.retired

    @pytest.mark.parametrize("ways", [8, 16])
    @pytest.mark.parametrize("body", list(WORKLOADS.values()),
                             ids=list(WORKLOADS))
    def test_multicycle_sum_equals_cycles(self, body, ways):
        sim, prof = profile_program(_program(body), ways=ways,
                                    simulator="multicycle")
        assert prof.total_cycles == sim.cycles

    @pytest.mark.parametrize("ways", [8, 16])
    @pytest.mark.parametrize("simulator", ["pipelined", "multicycle"])
    def test_fig10_sum_equals_cycles(self, ways, simulator):
        sim, prof = profile_factor_program(ways=ways, simulator=simulator)
        expected = sim.stats.cycles if simulator == "pipelined" else sim.cycles
        assert prof.total_cycles == expected
        assert (sim.machine.read_reg(0), sim.machine.read_reg(1)) == (5, 3)

    def test_reasons_are_canonical(self):
        _, prof = profile_factor_program()
        for per_pc in prof.cycles_by_pc.values():
            assert set(per_pc) <= set(REASONS)


class TestBlameAndReasons:
    def test_raw_interlock_blames_producer(self):
        program = _program("lex $0, 1\n" + "add $0, $0\n" * 8)
        _, prof = profile_program(
            program, simulator="pipelined",
            config=PipelineConfig(stages=4, forwarding=False),
        )
        assert prof.reason_totals().get("raw", 0) > 0
        # Every blame edge points at an older (smaller-PC) producer here.
        assert prof.blame
        for (consumer, producer), cycles in prof.blame.items():
            assert producer < consumer
            assert cycles > 0

    def test_branch_flush_charged_to_branch(self):
        program = _program("lex $0, 3\nloop: lex $2, -1\nadd $0, $2\nbrt $0, loop")
        _, prof = profile_program(program, simulator="pipelined")
        assert prof.reason_totals().get("flush", 0) > 0

    def test_structural_stall_on_single_qat_write_port(self):
        program = _program("had @0, 1\nhad @1, 2\nswap @0, @1")
        sim, prof = profile_program(
            program, simulator="pipelined",
            config=PipelineConfig(stages=4, forwarding=True,
                                  second_qat_write_port=False),
        )
        assert prof.reason_totals().get("structural", 0) > 0
        assert prof.total_cycles == sim.stats.cycles

    def test_multicycle_memory_reason(self):
        program = _program("loadi $1, 0x100\nlex $0, 7\nstore $0, $1\nload $2, $1")
        _, prof = profile_program(program, simulator="multicycle")
        assert prof.reason_totals().get("memory", 0) > 0

    def test_qat_bits_attributed_per_pc(self):
        _, prof = profile_factor_program(ways=8)
        assert sum(prof.qat_bits_by_pc.values()) > 0
        # had @0, 3 at pc 0 touches one 8-way AoB: 256 bits.
        assert prof.qat_bits_by_pc[0] == 256

    def test_multicycle_breakdown_sums_to_cycles_for(self):
        costs = CycleCosts()
        from repro.isa.instructions import INSTRUCTIONS

        for mnemonic in INSTRUCTIONS:
            parts = costs.breakdown(mnemonic)
            assert sum(c for _, c in parts) == costs.cycles_for(mnemonic)
            assert all(reason in REASONS for reason, _ in parts)


class TestRendering:
    def test_annotate_listing_shape(self):
        program = fig10_program()
        sim, prof = profile_program(program)
        text = render_annotate(prof, words=program.words, title="fig10")
        assert "total cycles 167" in text.splitlines()[1]
        assert "aob bits" in text
        assert "opcode histogram:" in text
        # No unresolved opcodes: every attributed PC got a label.
        assert "\n  ?" not in text

    def test_json_roundtrip(self):
        _, prof = profile_factor_program()
        data = json.loads(prof.to_json())
        assert data["total_cycles"] == prof.total_cycles
        per_pc = sum(sum(entry["cycles"].values())
                     for entry in data["pcs"].values())
        assert per_pc == data["total_cycles"]

    def test_flamegraph_spans_sum_to_total(self, tmp_path):
        _, prof = profile_factor_program()
        trace = flamegraph_trace(prof)
        reason_spans = [e for e in trace["traceEvents"] if e.get("cat") == "reason"]
        pc_spans = [e for e in trace["traceEvents"] if e.get("cat") == "pc"]
        assert sum(e["dur"] for e in reason_spans) == prof.total_cycles
        assert sum(e["dur"] for e in pc_spans) == prof.total_cycles
        assert all(e["pid"] == PID_PROFILE for e in reason_spans + pc_spans)
        assert trace["otherData"]["truncated"] is False
        path = tmp_path / "flame.json"
        write_flamegraph(str(path), prof)
        assert json.loads(path.read_text())["otherData"]["profile"][
            "total_cycles"] == prof.total_cycles


class TestProfilerIsolation:
    def test_profile_program_restores_previous_telemetry(self):
        previous = obs.enable(tracing=False)
        try:
            profile_factor_program()
            assert obs.current() is previous
        finally:
            obs.disable()

    def test_standalone_profiler_attribution(self):
        prof = Profiler()
        prof.attribute(0, "issue")
        prof.attribute(1, "raw", blame_pc=0)
        prof.attribute(1, "raw", blame_pc=0)
        assert prof.total_cycles == 3
        assert prof.blame[(1, 0)] == 2
        assert prof.blame_for(1) == [(0, 2)]
