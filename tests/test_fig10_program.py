"""FIG10 experiment: the literal paper listing and the compiler that
regenerates equivalent programs."""

import pytest

from repro.aob import AoB
from repro.apps import (
    FIG10_SOURCE,
    compile_factor_program,
    fig10_program,
    run_factor_program,
)
from repro.apps.fig10 import build_factor_circuit
from repro.errors import ReproError
from repro.gates import EmitOptions
from repro.gates.alg import ValueAlgebra


class TestLiteralListing:
    def test_source_has_the_papers_90_instructions(self):
        """Figure 10 is 3 columns x 30 rows: 83 Qat gate/initializer
        operations plus the 7-instruction hand-written readout."""
        lines = [
            line.split(";")[0].strip()
            for line in FIG10_SOURCE.splitlines()
            if line.split(";")[0].strip()
        ]
        assert len(lines) == 90
        gate_ops = [l for l in lines if l.split()[1].startswith("@")]
        assert len(gate_ops) == 83
        assert len(lines) - len(gate_ops) == 7

    def test_greedy_allocation_uses_registers_0_to_80(self):
        assert "@80" in FIG10_SOURCE
        assert "@81" not in FIG10_SOURCE

    @pytest.mark.parametrize("simulator", ["functional", "multicycle", "pipelined"])
    def test_factors_15_on_every_simulator(self, simulator):
        """'the complete Tangled/Qat code to place the prime factors of
        15 in registers $0 and $1' -- $0=5, $1=3."""
        _, regs = run_factor_program(fig10_program(), ways=8, simulator=simulator)
        assert regs == (5, 3)

    def test_also_works_at_full_16_way(self):
        """The author versions implement 16-way; the channel arithmetic
        is unchanged."""
        _, regs = run_factor_program(fig10_program(), ways=16)
        assert regs == (5, 3)

    def test_e_register_contents(self):
        """@80 ends holding e: 1 exactly at channels 31, 53, 83, 241."""
        sim, _ = run_factor_program(fig10_program(), ways=8, simulator="functional")
        e = sim.machine.read_qreg(80)
        assert list(e.iter_ones()) == [31, 53, 83, 241]

    def test_copy_idiom_preserved(self):
        """'or @80,@79,@79 is simply making a copy of @79 into @80 so
        that the not will not destroy the value in @79'."""
        sim, _ = run_factor_program(fig10_program(), ways=8, simulator="functional")
        seventy_nine = sim.machine.read_qreg(79)
        eighty = sim.machine.read_qreg(80)
        assert eighty == ~seventy_nine

    def test_intermediates_all_preserved(self):
        """The greedy scheme keeps every intermediate value live: each of
        @0..@80 is non-trivially populated at the end."""
        sim, _ = run_factor_program(fig10_program(), ways=8, simulator="functional")
        h = [AoB.hadamard(8, k) for k in range(8)]
        assert sim.machine.read_qreg(0) == h[3]
        assert sim.machine.read_qreg(2) == h[3] & h[5]

    def test_matches_word_level_result(self):
        """The listing's e agrees with the Figure 9 word-level circuit."""
        sim, _ = run_factor_program(fig10_program(), ways=8, simulator="functional")
        circuit = build_factor_circuit(15, 4, 4, optimized=False)
        expected = circuit.evaluate(ValueAlgebra(8, AoB))["e"]
        assert sim.machine.read_qreg(80) == expected


class TestCompiledEquivalents:
    @pytest.mark.parametrize("options", [
        EmitOptions(),
        EmitOptions(allocator="recycle"),
        EmitOptions(allocator="recycle", reserved_constants=True),
        EmitOptions(gate_set="reversible", allocator="recycle"),
    ], ids=["greedy", "recycle", "reserved", "reversible"])
    def test_compiled_program_factors_15(self, options):
        compiled = compile_factor_program(15, 4, 4, options)
        _, regs = run_factor_program(compiled.program, ways=8)
        assert regs == (5, 3)

    def test_compiled_close_to_paper_size(self):
        """Greedy compilation lands near the paper's 80 Qat operations."""
        compiled = compile_factor_program(15, 4, 4, EmitOptions())
        assert 60 <= compiled.qat_instructions <= 100
        assert 60 <= compiled.high_water_regs <= 100

    def test_other_semiprimes(self):
        for n, bits, factors in ((21, 4, (7, 3)), (35, 4, (7, 5))):
            compiled = compile_factor_program(n, bits, bits)
            _, regs = run_factor_program(compiled.program, ways=2 * bits)
            assert sorted(regs) == sorted(factors)

    def test_221_needs_ten_ways(self):
        compiled = compile_factor_program(221, 5, 5, EmitOptions(allocator="recycle"))
        _, regs = run_factor_program(compiled.program, ways=10)
        assert sorted(regs) == [13, 17]

    def test_oversized_rejected(self):
        with pytest.raises(ReproError):
            compile_factor_program(999, 4, 4)

    def test_unknown_simulator_rejected(self):
        with pytest.raises(ReproError):
            run_factor_program(fig10_program(), simulator="fpga")

    def test_unoptimized_matches_optimized(self):
        a = compile_factor_program(15, 4, 4, optimized=False)
        b = compile_factor_program(15, 4, 4, optimized=True)
        _, ra = run_factor_program(a.program, ways=8)
        _, rb = run_factor_program(b.program, ways=8)
        assert ra == rb == (5, 3)
        assert b.gate_count <= a.gate_count
