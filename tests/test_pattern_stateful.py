"""Stateful model-based testing: PatternVector vs dense AoB.

A hypothesis rule machine drives random sequences of construction, gate,
and measurement operations against the compressed substrate and a dense
AoB model simultaneously -- any divergence at any point fails.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.aob import AoB
from repro.pattern import ChunkStore, PatternVector

WAYS = 8
CHUNK = 6


class PatternVsDense(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = ChunkStore(CHUNK)
        # parallel slots: (PatternVector, AoB)
        self.slots: list[tuple[PatternVector, AoB]] = [
            (PatternVector.zeros(WAYS, self.store), AoB.zeros(WAYS)),
            (PatternVector.ones(WAYS, self.store), AoB.ones(WAYS)),
        ]
        self.rng = np.random.default_rng(1234)

    slot_idx = st.integers(min_value=0, max_value=30)

    def _slot(self, i: int) -> tuple[PatternVector, AoB]:
        return self.slots[i % len(self.slots)]

    @rule(k=st.integers(min_value=0, max_value=10))
    def make_hadamard(self, k):
        self.slots.append(
            (PatternVector.hadamard(WAYS, k, self.store), AoB.hadamard(WAYS, k))
        )

    @rule()
    def make_random(self):
        dense = AoB.random(WAYS, self.rng)
        self.slots.append((PatternVector.from_aob(dense, store=self.store), dense))

    @rule(i=slot_idx, j=slot_idx, op=st.sampled_from(["and", "or", "xor"]))
    def binary_gate(self, i, j, op):
        pv_a, a = self._slot(i)
        pv_b, b = self._slot(j)
        fn = {"and": lambda x, y: x & y, "or": lambda x, y: x | y, "xor": lambda x, y: x ^ y}[op]
        self.slots.append((fn(pv_a, pv_b), fn(a, b)))

    @rule(i=slot_idx)
    def not_gate(self, i):
        pv, a = self._slot(i)
        self.slots.append((~pv, ~a))

    @rule(i=slot_idx, j=slot_idx, k=slot_idx)
    def ccnot_gate(self, i, j, k):
        pv_a, a = self._slot(i)
        pv_b, b = self._slot(j)
        pv_c, c = self._slot(k)
        self.slots.append((pv_a.ccnot(pv_b, pv_c), a.ccnot(b, c)))

    @rule(i=slot_idx, j=slot_idx, k=slot_idx)
    def cswap_gate(self, i, j, k):
        pv_a, a = self._slot(i)
        pv_b, b = self._slot(j)
        pv_c, c = self._slot(k)
        px, py = pv_a.cswap(pv_b, pv_c)
        x, y = a.cswap(b, c)
        self.slots.append((px, x))
        self.slots.append((py, y))

    @rule(i=slot_idx, channel=st.integers(min_value=0, max_value=(1 << WAYS) - 1))
    def measurements_agree(self, i, channel):
        pv, a = self._slot(i)
        assert pv.meas(channel) == a.meas(channel)
        assert pv.next(channel) == a.next(channel)
        assert pv.pop_after(channel) == a.pop_after(channel)

    @invariant()
    def newest_slot_expands_correctly(self):
        pv, a = self.slots[-1]
        assert pv.to_aob() == a
        assert pv.popcount() == a.popcount()
        assert pv.any() == a.any()
        assert pv.all() == a.all()

    @invariant()
    def runs_are_canonical(self):
        pv, _ = self.slots[-1]
        symbols = [sym for sym, _count in pv.runs]
        # normalization guarantees no two adjacent runs share a symbol
        assert all(x != y for x, y in zip(symbols, symbols[1:]))
        assert sum(count for _s, count in pv.runs) == pv.num_chunks


PatternVsDense.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPatternVsDense = PatternVsDense.TestCase
