"""ProgressTracker tests: heartbeats, stragglers, rendering, gauges."""

from __future__ import annotations

from repro import obs
from repro.obs.progress import STRAGGLER_FACTOR, ProgressTracker, worker_ident


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _tracker(total=10, **kw):
    clock = FakeClock()
    kw.setdefault("clock", clock)
    return ProgressTracker(total, **kw), clock


class TestHeartbeats:
    def test_note_accumulates_per_worker(self):
        tracker, clock = _tracker()
        clock.advance(2.0)
        tracker.note(1, 0.5, steps=100)
        tracker.note(2, 0.25, steps=50)
        tracker.note(1, 0.5, steps=100)
        assert tracker.done == 3
        assert tracker.steps == 250
        assert tracker.workers[1] == {
            "items": 2, "busy_seconds": 1.0, "steps": 200}
        assert tracker.workers[2] == {
            "items": 1, "busy_seconds": 0.25, "steps": 50}

    def test_worker_ident_in_parent_is_zero(self):
        assert worker_ident() == 0

    def test_emit_throttled_to_interval(self):
        lines = []
        tracker, clock = _tracker(total=100, emit=lines.append,
                                  interval=0.5)
        tracker.note(1, 0.01)          # first note: 0s elapsed, throttled
        assert lines == []
        clock.advance(0.6)
        tracker.note(1, 0.01)          # past the interval: emits
        assert len(lines) == 1
        tracker.note(1, 0.01)          # immediately after: throttled
        assert len(lines) == 1

    def test_final_item_always_emits(self):
        lines = []
        tracker, _ = _tracker(total=2, emit=lines.append, interval=60.0)
        tracker.note(1, 0.01)
        assert lines == []
        tracker.note(1, 0.01)          # done == total beats the throttle
        assert len(lines) == 1


class TestStragglers:
    def test_single_worker_never_flagged(self):
        tracker, _ = _tracker()
        for _ in range(8):
            tracker.note(1, 0.1)
        assert tracker.stragglers() == []

    def test_lagging_worker_flagged(self):
        tracker, _ = _tracker(total=20)
        for _ in range(10):
            tracker.note(1, 0.1)
            tracker.note(2, 0.1)
        tracker.note(3, 0.1)           # 1 item vs median 10: > 2x behind
        assert 10 > 1 * STRAGGLER_FACTOR
        assert tracker.stragglers() == [3]
        line = tracker.render_line()
        assert "straggler: w3" in line
        assert tracker.summary()["workers"]["3"]["straggler"] is True

    def test_balanced_workers_not_flagged(self):
        tracker, _ = _tracker(total=9)
        for _ in range(3):
            for wid in (1, 2, 3):
                tracker.note(wid, 0.1)
        assert tracker.stragglers() == []


class TestRendering:
    def test_render_line_shape(self):
        tracker, clock = _tracker(total=10, what="runs")
        clock.advance(1.0)
        tracker.note(1, 0.2, steps=500)
        tracker.note(2, 0.2, steps=500)
        line = tracker.render_line()
        assert line.startswith("progress: 2/10 runs")
        assert "2 worker(s)" in line
        assert "steps/s" in line
        assert "eta" in line

    def test_eta_omitted_when_done(self):
        tracker, clock = _tracker(total=1)
        clock.advance(1.0)
        tracker.note(1, 0.1)
        assert "eta" not in tracker.render_line()

    def test_summary_is_json_ready(self):
        import json

        tracker, clock = _tracker(total=4, what="rounds")
        clock.advance(2.0)
        tracker.note(1, 0.5, steps=200)
        tracker.note(2, 0.4, steps=100)
        summary = tracker.summary()
        json.dumps(summary)  # no exotic types
        assert summary["what"] == "rounds"
        assert summary["done"] == 2
        assert summary["total"] == 4
        assert summary["workers"]["1"]["steps_per_second"] == 400
        assert summary["workers"]["2"]["items"] == 1


class TestTelemetry:
    def test_publish_sets_progress_gauges(self):
        tracker, clock = _tracker(total=2)
        clock.advance(1.0)
        tracker.note(1, 0.5, steps=100)
        tracker.note(2, 0.25, steps=50)
        telemetry = obs.Telemetry(enabled=True, tracing=False)
        tracker.publish(telemetry)
        assert telemetry.gauge("progress.workers").value == 2
        assert telemetry.gauge("progress.runs.done").value == 2
        assert telemetry.gauge("progress.worker.1.runs").value == 1
        assert telemetry.gauge("progress.worker.1.steps_per_sec").value == 200
        assert telemetry.gauge("progress.worker.2.straggler").value == 0.0

    def test_heartbeats_land_on_worker_pid_when_tracing(self):
        from repro.obs.spans import PID_WORKERS

        with obs.capture() as telemetry:
            tracker, _ = _tracker(total=1)
            tracker.note(3, 0.1)
        marks = [e for e in telemetry.tracer.instants
                 if e.pid == PID_WORKERS]
        assert marks, "expected a heartbeat instant on the workers pid"
        assert marks[0].tid == "worker 3"
        assert marks[0].name == "progress.runs"

    def test_finish_publishes_to_active_telemetry(self):
        with obs.capture() as telemetry:
            tracker, _ = _tracker(total=1)
            tracker.note(1, 0.1)
            summary = tracker.finish()
        assert summary["done"] == 1
        assert telemetry.gauge("progress.worker.1.runs").value == 1

    def test_no_telemetry_needed(self):
        tracker, _ = _tracker(total=1)
        tracker.note(1, 0.1)
        assert tracker.finish()["done"] == 1


class TestSupervisorEvents:
    def test_note_supervisor_tallies_kinds(self):
        tracker = ProgressTracker(total=4)
        tracker.note_supervisor("retries")
        tracker.note_supervisor("retries")
        tracker.note_supervisor("crashes")
        assert tracker.supervisor == {"retries": 2, "crashes": 1}

    def test_render_line_annotates_recovery(self):
        tracker = ProgressTracker(total=4, clock=FakeClock())
        tracker.note(1, 0.5)
        assert "recovery:" not in tracker.render_line()
        tracker.note_supervisor("timeouts")
        tracker.note_supervisor("workers.replaced")
        line = tracker.render_line()
        assert "recovery: timeouts=1,workers.replaced=1" in line

    def test_summary_carries_supervisor_tallies(self):
        tracker = ProgressTracker(total=2)
        tracker.note(1, 0.1)
        tracker.note_supervisor("shards.toxic")
        summary = tracker.summary()
        assert summary["supervisor"] == {"shards.toxic": 1}

    def test_publish_sets_supervisor_gauges(self):
        telemetry = obs.enable(tracing=False)
        try:
            tracker = ProgressTracker(total=2)
            tracker.note(1, 0.1)
            tracker.note_supervisor("retries")
            tracker.note_supervisor("retries")
            tracker.publish(telemetry)
            gauge = telemetry.metrics.gauge("progress.supervisor.retries")
            assert gauge.value == 2
        finally:
            obs.disable()
