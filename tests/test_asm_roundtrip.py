"""Property tests: assembler/disassembler/encoder text round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble, disassemble
from repro.isa import INSTRUCTIONS, Instr, decode, encode

GPR = st.integers(min_value=0, max_value=15)
QREG = st.integers(min_value=0, max_value=255)


def renderable_instr():
    """Random instruction whose render() is assembler-legal.

    Branch offsets are emitted numerically by render(), which the
    assembler accepts, so every instruction qualifies; lex immediates are
    limited to the signed range so text and binary agree exactly.
    """
    def build(mnemonic):
        spec = INSTRUCTIONS[mnemonic]
        parts = []
        for kind in spec.operands:
            if kind in "dsca":
                parts.append(GPR)
            elif kind in "ABC":
                parts.append(QREG)
            elif kind == "k":
                parts.append(st.integers(0, 15))
            elif kind == "o":
                parts.append(st.integers(-100, 100))
            else:  # imm8
                if mnemonic == "lhi":
                    parts.append(st.integers(0, 255))
                else:
                    parts.append(st.integers(-128, 127))
        return st.tuples(*parts).map(lambda ops: Instr(mnemonic, ops))

    return st.sampled_from(sorted(INSTRUCTIONS)).flatmap(build)


class TestTextRoundTrip:
    @settings(max_examples=200)
    @given(st.lists(renderable_instr(), min_size=1, max_size=20))
    def test_render_assemble_matches_encode(self, instrs):
        """render -> assemble reproduces the direct binary encoding."""
        source = "\n".join(i.render() for i in instrs)
        program = assemble(source)
        direct: list[int] = []
        for i in instrs:
            direct.extend(encode(i))
        assert program.words == direct

    @settings(max_examples=100)
    @given(st.lists(renderable_instr(), min_size=1, max_size=20))
    def test_disassemble_reassemble_is_identity(self, instrs):
        words: list[int] = []
        for i in instrs:
            words.extend(encode(i))
        listing = disassemble(words)
        reassembled = assemble("\n".join(text for _, text in listing))
        assert reassembled.words == words

    @settings(max_examples=200)
    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_decode_never_crashes(self, w0, w1):
        """Arbitrary words either decode or raise EncodingError -- never
        anything else (wrong-path fetch robustness)."""
        from repro.errors import EncodingError

        try:
            instr, size = decode([w0, w1])
        except EncodingError:
            return
        assert 1 <= size <= 2
        # Don't-care bits make some raw words non-canonical; the decoded
        # instruction must still survive a canonical encode/decode cycle.
        again, size2 = decode(encode(instr))
        assert again == instr and size2 == size
