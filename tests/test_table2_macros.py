"""TAB2 experiment: the pseudo-instructions (assembler macros)."""

import pytest

from repro.asm.macros import LabelRef, PendingInstr, expand_macro
from repro.errors import AssemblerError
from repro.isa.registers import AT

from tests.conftest import assemble_and_run


class TestExpansions:
    def test_br_expands_to_brf_brt_pair(self):
        seq = expand_macro("br", (LabelRef("x"),))
        assert [p.mnemonic for p in seq] == ["brf", "brt"]

    def test_jump_uses_assembler_temporary(self):
        seq = expand_macro("jump", (LabelRef("x"),))
        assert [p.mnemonic for p in seq] == ["lex", "lhi", "jumpr"]
        assert all(p.ops[0] == AT for p in seq)

    def test_jumpf_guards_with_brt(self):
        seq = expand_macro("jumpf", (3, LabelRef("x")))
        assert seq[0].mnemonic == "brt"
        assert seq[0].ops == (3, 3)  # skip the 3-word jump

    def test_jumpt_guards_with_brf(self):
        seq = expand_macro("jumpt", (3, LabelRef("x")))
        assert seq[0].mnemonic == "brf"

    def test_loadi_small_value_single_lex(self):
        assert [p.mnemonic for p in expand_macro("loadi", (0, 42))] == ["lex"]
        assert [p.mnemonic for p in expand_macro("loadi", (0, -100))] == ["lex"]

    def test_loadi_large_value_pair(self):
        assert [p.mnemonic for p in expand_macro("loadi", (0, 0x1234))] == ["lex", "lhi"]

    def test_loadi_range_checked(self):
        with pytest.raises(AssemblerError):
            expand_macro("loadi", (0, 1 << 16))

    def test_operand_counts_checked(self):
        with pytest.raises(AssemblerError):
            expand_macro("br", ())
        with pytest.raises(AssemblerError):
            expand_macro("jumpf", (1,))

    def test_unknown_macro(self):
        with pytest.raises(AssemblerError):
            expand_macro("bogus", ())


class TestBehaviour:
    def test_br_always_branches(self):
        """PC += offset regardless of any register value."""
        for init in ("lex $0, 0", "lex $0, 1"):
            sim = assemble_and_run(
                f"{init}\nbr over\nlex $1, 99\nover:\nlex $2, 1\n"
            )
            assert sim.machine.read_reg(1) == 0
            assert sim.machine.read_reg(2) == 1

    def test_jump_reaches_distant_label(self):
        filler = "\n".join("lex $3, 0" for _ in range(300))
        sim = assemble_and_run(
            f"jump far\n{filler}\nfar:\nlex $1, 7\n"
        )
        assert sim.machine.read_reg(1) == 7

    def test_jumpf_jumps_when_false(self):
        sim = assemble_and_run(
            "lex $0, 0\njumpf $0, away\nlex $1, 99\naway:\nlex $2, 1\n"
        )
        assert sim.machine.read_reg(1) == 0

    def test_jumpf_falls_through_when_true(self):
        sim = assemble_and_run(
            "lex $0, 1\njumpf $0, away\nlex $1, 55\naway:\nlex $2, 1\n"
        )
        assert sim.machine.read_reg(1) == 55

    def test_jumpt_jumps_when_true(self):
        sim = assemble_and_run(
            "lex $0, 1\njumpt $0, away\nlex $1, 99\naway:\nlex $2, 1\n"
        )
        assert sim.machine.read_reg(1) == 0

    def test_jumpt_falls_through_when_false(self):
        sim = assemble_and_run(
            "lex $0, 0\njumpt $0, away\nlex $1, 55\naway:\nlex $2, 1\n"
        )
        assert sim.machine.read_reg(1) == 55

    @pytest.mark.parametrize("value", [0, 1, -1, 127, 128, -128, -129, 0x7FFF, 0x8000, 0xFFFF])
    def test_loadi_immediate_values(self, value):
        sim = assemble_and_run(f"loadi $4, {value}\n")
        assert sim.machine.read_reg(4) == value & 0xFFFF

    def test_loadi_label(self):
        sim = assemble_and_run("loadi $4, here\nhere:\nlex $0, 1\n")
        # 'here' follows the 2-word loadi expansion
        assert sim.machine.read_reg(4) == 2
