"""The bench runner: byte stability, comparison semantics, the CLI gate.

Also home to the satellite audits this PR shipped with the bench work:
histogram edge cases (empty / single-sample / reservoir overflow) and
the truncation flag surfacing in Chrome-trace metadata.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs import Histogram, MetricRegistry, Telemetry, Tracer
from repro.obs import bench
from repro.obs.sinks import chrome_trace, render_report


def _tiny_suite():
    """Two fast, deterministic specs for runner-level tests."""
    return [bench.spec_by_name("fig10.pipelined"),
            bench.spec_by_name("chunkstore.s12")]


class TestRunner:
    def test_report_shape(self):
        report = bench.run_suite(_tiny_suite(), label="t", rounds=2, warmup=0)
        assert report["schema"] == bench.SCHEMA
        assert report["label"] == "t"
        assert set(report["benches"]) == {"fig10.pipelined", "chunkstore.s12"}
        entry = report["benches"]["fig10.pipelined"]
        assert entry["counters"]["pipeline.cycles"] == 167
        assert entry["counters"]["cpu.instructions"] == 92
        assert entry["timing"]["rounds"] == 2
        assert entry["timing"]["min"] <= entry["timing"]["median"]

    def test_byte_stable_modulo_timing(self):
        a = bench.run_suite(_tiny_suite(), label="t", rounds=2, warmup=0)
        b = bench.run_suite(_tiny_suite(), label="t", rounds=2, warmup=0)
        for report in (a, b):
            for entry in report["benches"].values():
                entry["timing"] = {}
        assert bench.render_json(a) == bench.render_json(b)

    def test_chunkstore_counters_present(self):
        report = bench.run_suite([bench.spec_by_name("chunkstore.s12")],
                                 rounds=1, warmup=0)
        counters = report["benches"]["chunkstore.s12"]["counters"]
        assert counters.get("chunkstore.binop.hit", 0) > 0

    def test_rejects_bad_round_counts(self):
        with pytest.raises(ReproError):
            bench.run_suite(_tiny_suite(), rounds=0)
        with pytest.raises(ReproError):
            bench.run_suite(_tiny_suite(), warmup=-1)

    def test_unknown_spec_name(self):
        with pytest.raises(ReproError, match="unknown bench"):
            bench.spec_by_name("no.such.bench")

    def test_report_file_roundtrip(self, tmp_path):
        report = bench.run_suite(_tiny_suite(), rounds=1, warmup=0)
        path = tmp_path / "BENCH_t.json"
        bench.write_report(str(path), report)
        assert bench.load_report(str(path)) == report

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "benches": {}}))
        with pytest.raises(ReproError, match="schema"):
            bench.load_report(str(path))


def _report_with(counters, median=1.0, name="w"):
    return {
        "schema": bench.SCHEMA, "label": "x", "rounds": 2, "warmup": 0,
        "benches": {name: {"counters": counters,
                           "timing": {"median": median, "iqr": 0.0,
                                      "min": median, "max": median,
                                      "mean": median, "rounds": 2}}},
    }


class TestCompare:
    def test_synthetic_2x_slowdown_is_regression(self):
        base = _report_with({"pipeline.cycles": 100, "pipeline.cpi": 1.0})
        cur = _report_with({"pipeline.cycles": 200, "pipeline.cpi": 2.0})
        rows = bench.compare_reports(cur, base, counter_threshold=0.25)
        verdicts = {r["metric"]: r["verdict"] for r in rows
                    if r["kind"] == "counter"}
        assert verdicts == {"pipeline.cycles": bench.REGRESSED,
                           "pipeline.cpi": bench.REGRESSED}
        assert bench.regressions(rows)

    def test_improvement_and_neutral(self):
        base = _report_with({"pipeline.cycles": 100, "qat.ops": 50})
        cur = _report_with({"pipeline.cycles": 80, "qat.ops": 51})
        verdicts = {r["metric"]: r["verdict"]
                    for r in bench.compare_reports(cur, base)
                    if r["kind"] == "counter"}
        assert verdicts["pipeline.cycles"] == bench.IMPROVED
        assert verdicts["qat.ops"] == bench.NEUTRAL

    def test_higher_is_better_metrics_invert(self):
        base = _report_with({"chunkstore.binop.hit": 100})
        cur = _report_with({"chunkstore.binop.hit": 50})
        (row,) = [r for r in bench.compare_reports(cur, base)
                  if r["kind"] == "counter"]
        assert row["verdict"] == bench.REGRESSED

    def test_timing_not_gated_by_default(self):
        base = _report_with({"pipeline.cycles": 100}, median=1.0)
        cur = _report_with({"pipeline.cycles": 100}, median=10.0)
        rows = bench.compare_reports(cur, base)
        (timing,) = [r for r in rows if r["kind"] == "timing"]
        assert timing["verdict"] == bench.REGRESSED
        assert not bench.regressions(rows)
        assert bench.regressions(rows, include_timing=True) == [timing]

    def test_missing_bench_is_a_regression(self):
        base = _report_with({"pipeline.cycles": 100})
        cur = {"schema": bench.SCHEMA, "label": "x", "rounds": 2,
               "warmup": 0, "benches": {}}
        rows = bench.compare_reports(cur, base)
        assert rows[0]["kind"] == "missing"
        assert bench.regressions(rows)

    def test_zero_baseline_counter(self):
        base = _report_with({"pipeline.stall.data": 0})
        cur = _report_with({"pipeline.stall.data": 7})
        (row,) = [r for r in bench.compare_reports(cur, base)
                  if r["kind"] == "counter"]
        assert row["verdict"] == bench.REGRESSED

    def test_render_compare_mentions_counts(self):
        base = _report_with({"pipeline.cycles": 100})
        cur = _report_with({"pipeline.cycles": 300})
        text = bench.render_compare(bench.compare_reports(cur, base))
        assert "regressed" in text
        assert "pipeline.cycles" in text


class TestCli:
    def test_bench_quick_writes_report_and_self_compares(self, tmp_path,
                                                         capsys):
        out = tmp_path / "BENCH_ci.json"
        assert main(["bench", "--quick", "--label", "ci",
                     "--only", "fig10.pipelined",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["benches"]["fig10.pipelined"]["counters"][
            "pipeline.cycles"] == 167
        # Self-comparison from the file: everything neutral, exit 0.
        assert main(["bench", "--input", str(out),
                     "--compare", str(out)]) == 0
        assert "all metrics neutral" in capsys.readouterr().out

    def test_bench_gate_fails_on_synthetic_slowdown(self, tmp_path, capsys):
        current = tmp_path / "cur.json"
        baseline = tmp_path / "base.json"
        cur = _report_with({"pipeline.cpi": 2.0})
        base = _report_with({"pipeline.cpi": 1.0})
        current.write_text(bench.render_json(cur))
        baseline.write_text(bench.render_json(base))
        # Regression gate exits 2 (distinct from the generic error 1).
        assert main(["bench", "--input", str(current),
                     "--compare", str(baseline),
                     "--counter-threshold", "0.25"]) == 2
        captured = capsys.readouterr()
        assert "pipeline.cpi" in captured.out
        # Each regressed counter is itemized on stderr with old/new
        # values and the percent delta.
        assert "pipeline.cpi 1 -> 2 (+100.0%)" in captured.err

    def test_bench_io_error_exits_one_not_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["bench", "--input", str(missing),
                     "--compare", str(missing)]) == 1

    def test_render_regressions_itemizes_rows(self):
        base = _report_with({"pipeline.cpi": 1.0, "qat.ops": 50})
        cur = _report_with({"pipeline.cpi": 2.0, "qat.ops": 50})
        rows = bench.regressions(bench.compare_reports(cur, base))
        text = bench.render_regressions(rows)
        assert "pipeline.cpi 1 -> 2 (+100.0%)" in text
        assert "qat.ops" not in text

    def test_render_regressions_missing_bench(self):
        base = _report_with({"pipeline.cycles": 100})
        cur = {"schema": bench.SCHEMA, "label": "x", "rounds": 2,
               "warmup": 0, "benches": {}}
        rows = bench.regressions(bench.compare_reports(cur, base))
        text = bench.render_regressions(rows)
        assert "missing from current run" in text

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10.pipelined" in out

    def test_profile_fig10_listing(self, capsys):
        assert main(["profile", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "total cycles 167" in out
        assert "opcode histogram:" in out

    def test_profile_json_sums(self, capsys):
        assert main(["profile", "fig10", "--json", "-"]) == 0
        data = json.loads(capsys.readouterr().out)
        per_pc = sum(sum(e["cycles"].values()) for e in data["pcs"].values())
        assert per_pc == data["total_cycles"] == 167

    def test_profile_multicycle_and_flamegraph(self, tmp_path, capsys):
        trace = tmp_path / "flame.json"
        assert main(["profile", "fig10", "--sim", "multicycle",
                     "--trace-out", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        assert payload["otherData"]["truncated"] is False
        total = payload["otherData"]["profile"]["total_cycles"]
        spans = [e for e in payload["traceEvents"] if e.get("cat") == "pc"]
        assert sum(e["dur"] for e in spans) == total

    def test_profile_example_file(self, capsys):
        assert main(["profile", "examples/fig10.s"]) == 0
        assert "aob bits" in capsys.readouterr().out


class TestHistogramEdgeCases:
    def test_empty_summary_is_all_zero(self):
        s = Histogram("t").summary()
        assert s == {"count": 0, "mean": 0.0, "min": 0.0, "p50": 0.0,
                     "p90": 0.0, "p99": 0.0, "max": 0.0}

    def test_single_sample_percentiles(self):
        h = Histogram("t")
        h.observe(4.2)
        for p in (0, 50, 90, 99, 100):
            assert h.percentile(p) == 4.2
        assert h.summary()["p50"] == 4.2

    def test_percentile_range_validated(self):
        h = Histogram("t")
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_max_samples_validated(self):
        with pytest.raises(ValueError, match="max_samples"):
            Histogram("t", max_samples=0)

    def test_reservoir_after_overflow_keeps_exact_aggregates(self):
        h = Histogram("t", max_samples=16)
        n = 1000
        for i in range(n):
            h.observe(float(i))
        assert h.count == n
        assert h.total == sum(range(n))
        assert h.min == 0.0
        assert h.max == float(n - 1)
        assert len(h._samples) <= h.max_samples
        assert h._stride > 1
        # Sampled percentiles stay ordered and within the observed range.
        p50, p90 = h.percentile(50), h.percentile(90)
        assert 0.0 <= p50 <= p90 <= float(n - 1)

    def test_merge_after_overflow_respects_cap(self):
        a = Histogram("t", max_samples=8)
        b = Histogram("t", max_samples=8)
        for i in range(100):
            a.observe(float(i))
            b.observe(float(100 + i))
        a.merge(b)
        assert a.count == 200
        assert a.max == 199.0
        assert len(a._samples) <= a.max_samples


class TestReportDeterminism:
    def test_stats_report_metric_order_is_sorted(self):
        metrics = MetricRegistry()
        for name in ("z.last", "a.first", "m.middle"):
            metrics.counter(name).inc()
        text = render_report(metrics)
        idx = {name: text.index(name) for name in
               ("a.first", "m.middle", "z.last")}
        assert idx["a.first"] < idx["m.middle"] < idx["z.last"]

    def test_identical_runs_render_identical_reports(self):
        def run():
            t = Telemetry(enabled=True, tracing=False)
            t.metrics.counter("pipeline.cycles").add(167)
            t.metrics.gauge("pipeline.cpi").set(1.8152)
            return t.report()

        assert run() == run()


class TestTraceTruncationMetadata:
    def test_truncation_flag_surfaces_in_chrome_trace(self):
        metrics = MetricRegistry()
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.complete(f"s{i}", ts_ns=i, dur_ns=1)
        trace = chrome_trace(metrics, tracer)
        assert trace["otherData"]["truncated"] is True
        assert trace["otherData"]["events_dropped"] == tracer.dropped > 0

    def test_untruncated_trace_reports_clean(self):
        tracer = Tracer(max_events=100)
        tracer.complete("s", ts_ns=0, dur_ns=1)
        trace = chrome_trace(MetricRegistry(), tracer)
        assert trace["otherData"]["truncated"] is False
        assert trace["otherData"]["events_dropped"] == 0

    def test_telemetry_trace_file_carries_metadata(self, tmp_path):
        telemetry = Telemetry(enabled=True, tracing=True, max_events=2)
        with telemetry.span("a"):
            with telemetry.span("b"):
                pass
        with telemetry.span("c"):
            pass
        path = tmp_path / "trace.json"
        telemetry.write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        assert "truncated" in payload["otherData"]
        assert "events_dropped" in payload["otherData"]
