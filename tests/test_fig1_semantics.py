"""FIG1 experiment: the paper's Figure 1 / section 1.1 worked examples.

Two two-way entangled pbits with AoB vectors {0,1,0,1} and {0,0,1,1}
encode the decimal values {0,1,2,3} as four equiprobable values; the
vectors {0,0,1,0} and {0,0,1,1} encode {0,0,3,2} giving P(0)=50%,
P(1)=0%, P(2)=25%, P(3)=25%.
"""

from repro.aob import AoB
from repro.pbp import PbpContext


class TestFigure1Channels:
    def test_channel_pairings(self):
        """Channel 0 pairs {0,0}, 1 pairs {1,0}, 2 pairs {0,1}, 3 pairs {1,1}."""
        lo = AoB.from_bits([0, 1, 0, 1])
        hi = AoB.from_bits([0, 0, 1, 1])
        pairs = [(lo.meas(e), hi.meas(e)) for e in range(4)]
        assert pairs == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_hadamard_is_the_figure1_pair(self):
        """H(0) and H(1) are exactly the Figure 1 vectors."""
        assert AoB.hadamard(2, 0) == AoB.from_bits([0, 1, 0, 1])
        assert AoB.hadamard(2, 1) == AoB.from_bits([0, 0, 1, 1])

    def test_equiprobable_two_bit_value(self):
        """The pair encodes {0,1,2,3}, each with probability 1/4."""
        ctx = PbpContext(ways=2)
        value = ctx.pint_h(2, 0b11)
        assert value.distribution() == {0: 0.25, 1: 0.25, 2: 0.25, 3: 0.25}

    def test_skewed_distribution(self):
        """Vectors {0,0,1,0} / {0,0,1,1} encode {0,0,3,2}:
        50% 0, 0% 1, 25% 2, 25% 3 (the section 1.1 example)."""
        ctx = PbpContext(ways=2)
        lo = AoB.from_bits([0, 0, 1, 0])
        hi = AoB.from_bits([0, 0, 1, 1])
        value = ctx.pint_from_values([lo, hi])
        dist = value.distribution()
        assert dist == {0: 0.5, 2: 0.25, 3: 0.25}
        assert 1 not in dist

    def test_per_channel_values(self):
        """The same example read channel-by-channel: {0,0,3,2}."""
        ctx = PbpContext(ways=2)
        value = ctx.pint_from_values(
            [AoB.from_bits([0, 0, 1, 0]), AoB.from_bits([0, 0, 1, 1])]
        )
        assert [value.at(e) for e in range(4)] == [0, 0, 3, 2]

    def test_probability_in_parts_per_2e(self):
        """Probabilities are measured in integral parts per 2^E."""
        ctx = PbpContext(ways=2)
        value = ctx.pint_from_values(
            [AoB.from_bits([0, 0, 1, 0]), AoB.from_bits([0, 0, 1, 1])]
        )
        counts = value.counts()
        assert counts == {0: 2, 2: 1, 3: 1}
        assert sum(counts.values()) == 4
